"""E-F2 — Figure 2: raster plot of the 80-20 network on the fixed-point datapath."""

from repro.harness import fig2_raster, format_kv


def test_fig2_raster_plot(benchmark):
    result = benchmark.pedantic(lambda: fig2_raster(num_steps=1000, backend="fixed"), rounds=1, iterations=1)
    raster = result["raster"]
    summary = result["summary"]

    print()
    print("Figure 2 — 80-20 raster (1000 neurons x 1000 ms, fixed point), coarse ASCII rendering:")
    print(result["ascii"])
    print(format_kv({k: v for k, v in summary.items() if isinstance(v, float)}, title="Population rhythm summary"))

    # The network is active but sparse, and both rhythm bands carry power.
    assert raster.num_spikes > 1000
    assert 1.0 < raster.mean_rate_hz() < 50.0
    assert summary["alpha_power"] > 0 and summary["gamma_power"] > 0
