"""E-T2 — Table II: DCU shift-add division approximation errors."""

import numpy as np

from repro.fixedpoint import Q15_16
from repro.harness import format_table, table2_dcu
from repro.sim.dcu import approx_divide


def test_table2_dcu_approximation(benchmark):
    values = np.asarray(Q15_16.from_float(np.linspace(-1000, 1000, 4096)), dtype=np.int64)

    def decay_sweep():
        for divider in range(2, 9):
            approx_divide(values, divider)

    benchmark(decay_sweep)

    table = table2_dcu()
    print()
    print(
        format_table(
            ["Division", "Shift selection", "Approx. value", "AE [%] (measured)", "AE [%] (paper)"],
            [
                [
                    f"x/{d}",
                    " + ".join(f"x>>{s}" for s in row["shifts"]),
                    row["approx_value"],
                    row["approx_error_percent"],
                    row["paper_ae_percent"],
                ]
                for d, row in table.items()
            ],
            title="Table II — DCU division approximation (paper /6 entry is a typo, see EXPERIMENTS.md)",
        )
    )
    # All dividers except the paper's inconsistent /6 row match exactly.
    assert all(row["matches_paper"] for d, row in table.items() if d != 6)
    assert all(row["approx_error_percent"] < 0.5 for row in table.values())
