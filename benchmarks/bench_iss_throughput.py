"""E-R2 — ISS fast path: predecoded dispatch vs. the legacy if/elif chain.

The functional simulator compiles each decoded instruction into a bound
per-opcode handler at decode time (``repro.sim.dispatch``) and runs a
record-free inner loop when no trace consumer is attached.  This
benchmark measures instructions/second on the 80-20 workload through
both execution paths, asserts the fast path's contractual speedup, and
verifies the architectural results are bit-identical.

It also writes ``BENCH_iss.json`` (override with ``BENCH_ISS_JSON``) so
the ISS performance trajectory accumulates across CI runs; the pre-PR
seed baseline for this configuration was ~0.18 M instr/s, so absolute
``ips_fast`` readings are comparable across revisions.
"""

import json
import os
import time

from repro.codegen import build_eighty_twenty_workload
from repro.harness import format_table

NUM_NEURONS = int(os.environ.get("ISS_BENCH_NEURONS", "64"))
NUM_STEPS = int(os.environ.get("ISS_BENCH_STEPS", "20"))

#: Contractual floor for fast-dispatch vs. the in-tree legacy chain.  The
#: local/contractual floor is 3x; shared CI runners may lower it (the CI
#: workflow sets 2) so the gate catches regressions without flaking.
MIN_SPEEDUP = float(os.environ.get("ISS_MIN_SPEEDUP", "3.0"))

JSON_PATH = os.environ.get(
    "BENCH_ISS_JSON", os.path.join(os.path.dirname(__file__), "BENCH_iss.json")
)


def _measure(workload, *, fast, rounds=3):
    """Best-of-N wall clock of a full run; returns (ips, instret, fsim)."""
    best = float("inf")
    for _ in range(rounds):
        fsim = workload.make_simulator(fast_dispatch=fast)
        start = time.perf_counter()
        instret = fsim.run(max_instructions=100_000_000)
        best = min(best, time.perf_counter() - start)
    return instret / best, instret, fsim


def test_iss_fast_path_speedup(benchmark):
    workload = build_eighty_twenty_workload(num_neurons=NUM_NEURONS, num_steps=NUM_STEPS)
    # Warm-up (imports, allocator, decode of the image).
    warm = build_eighty_twenty_workload(num_neurons=8, num_steps=1)
    warm.make_simulator().run()
    warm.make_simulator(fast_dispatch=False).run()

    # Same best-of-N methodology for both paths so noise cannot bias the
    # asserted speedup in either direction.
    ips_legacy, instret_legacy, legacy_sim = _measure(workload, fast=False, rounds=3)
    ips_fast, instret_fast, fast_sim = _measure(workload, fast=True, rounds=3)
    speedup = ips_fast / ips_legacy

    rows = [
        ["legacy if/elif chain", f"{ips_legacy / 1e6:.2f}", f"{instret_legacy}"],
        ["predecoded dispatch", f"{ips_fast / 1e6:.2f}", f"{instret_fast}"],
    ]
    print()
    print(
        format_table(
            ["Execution path", "M instr/s", "Instructions"],
            rows,
            title=f"ISS throughput: {NUM_NEURONS}-neuron 80-20 workload, {NUM_STEPS} steps",
        )
    )
    print(f"Speedup: {speedup:.1f}x (required: >= {MIN_SPEEDUP:g}x)")

    payload = {
        "workload": f"eighty-twenty-{NUM_NEURONS}n-{NUM_STEPS}t",
        "instret": instret_fast,
        "ips_fast": ips_fast,
        "ips_legacy": ips_legacy,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"Wrote {JSON_PATH}")

    benchmark.extra_info.update(payload)
    benchmark.pedantic(
        lambda: workload.make_simulator().run(max_instructions=100_000_000),
        rounds=1,
        iterations=1,
    )

    # Bit-identical architectural behaviour between the two paths.
    assert instret_fast == instret_legacy
    assert fast_sim.regs == legacy_sim.regs
    assert fast_sim.spike_count == legacy_sim.spike_count
    assert workload.total_spikes(fast_sim) == workload.total_spikes(legacy_sim)
    assert workload.vu_checksum(fast_sim) == workload.vu_checksum(legacy_sim)
    # The contractual fast-path speedup.
    assert speedup >= MIN_SPEEDUP


def test_run_result_cache_short_circuits(tmp_path, benchmark):
    """A repeated backend run is served from the on-disk cache."""
    from repro.runtime import RunRequest, RunResultCache, run_on_backend

    cache = RunResultCache(tmp_path)
    request = RunRequest(num_neurons=16, num_steps=2, seed=3)

    start = time.perf_counter()
    cold = run_on_backend("functional", request, cache=cache)
    t_cold = time.perf_counter() - start
    start = time.perf_counter()
    hot = run_on_backend("functional", request, cache=cache)
    t_hot = time.perf_counter() - start

    print()
    print(f"cold run: {t_cold * 1e3:.1f} ms, cached run: {t_hot * 1e3:.1f} ms")
    benchmark.extra_info["t_cold_ms"] = t_cold * 1e3
    benchmark.extra_info["t_hot_ms"] = t_hot * 1e3
    benchmark.pedantic(
        lambda: run_on_backend("functional", request, cache=cache), rounds=1, iterations=1
    )

    assert cache.hits >= 1 and cache.misses == 1
    assert hot.metrics == cold.metrics
    assert t_hot < t_cold
