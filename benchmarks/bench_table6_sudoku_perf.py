"""E-T6 / E-S2 — Table VI: Sudoku WTA solver metrics plus the soft-float speedup."""


from repro.harness import format_comparison, format_kv, paper_data, softfloat_speedup, table6_sudoku


def test_table6_sudoku_metrics(benchmark):
    result = benchmark.pedantic(lambda: table6_sudoku(num_steps=1), rounds=1, iterations=1)

    rows = result.comparison_rows()
    paper = paper_data.PAPER_TABLE6_SUDOKU
    rows["IPC"]["paper single"] = paper["single"]["ipc"]
    rows["IPC_eff"]["paper single"] = paper["single"]["ipc_eff"]
    rows["Hazard stalls [%]"]["paper single"] = paper["single"]["hazard_stall_percent"]
    rows["I-cache hit rate [%]"]["paper single"] = paper["single"]["icache_hit_rate"]
    rows["D-cache hit rate [%]"]["paper single"] = paper["single"]["dcache_hit_rate"]
    rows["Mem intensity"]["paper single"] = paper["single"]["memory_intensity"]
    rows["Speedup"]["paper single"] = paper_data.PAPER_SPEEDUP_DUAL_CORE_SUDOKU

    print()
    print(
        format_comparison(
            rows,
            columns=["Single-core", "Dual core #1", "Dual core #2", "paper single"],
            title="Table VI — Sudoku WTA window (729 neurons, per-timestep metrics)",
        )
    )

    time_per_step_ms = result.single["execution_time_s"] * 1e3 / result.num_steps
    print(f"Per-timestep execution time (single core, 30 MHz): {time_per_step_ms:.3f} ms "
          f"(paper: {paper['single']['time_per_step_ms']} ms)")

    assert 0.3 < result.single["ipc"] < 1.0
    assert result.single["icache_hit_rate"] > 95.0
    # The paper's 729-neuron state fits the FPGA's on-chip memory (≈100 %
    # D-cache hit rate); our default 4 KiB D-cache is smaller than the
    # working set, so the hit rate is lower — see EXPERIMENTS.md.
    assert result.single["dcache_hit_rate"] > 70.0
    assert 1.3 < result.speedup <= 2.1


def test_softfloat_speedup_estimate(benchmark):
    result = benchmark.pedantic(
        lambda: softfloat_speedup(num_neurons=96, num_steps=3), rounds=1, iterations=1
    )
    print()
    print(format_kv(result, title="§VI-C — NPU/DCU fixed point vs soft-float (per neuron update)"))
    # The paper reports roughly 40x; the cost model should land in the same
    # order of magnitude (tens of times faster).
    assert 15.0 < result["speedup"] < 120.0
