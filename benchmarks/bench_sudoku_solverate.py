"""E-S3 — §VI-C: the SNN solver solves the evaluation puzzle set.

The paper runs the "Top 100 difficult" list; the substitute set is
generated with a uniqueness-preserving clue-removal procedure
(see DESIGN.md).  The benchmark solves a small deterministic subset so the
full suite stays fast; increase ``count`` for a fuller sweep.

The sweep executes on the batched runtime: all puzzles advance together
through :meth:`SNNSudokuSolver.solve_batch` on one stacked ``(B, 729)``
network, producing results bit-identical to the sequential per-puzzle
loop (the pre-runtime behaviour, still reachable with ``batched=False``).
"""

from repro.harness import format_table, sudoku_solve_rate


def test_sudoku_snn_solve_rate(benchmark):
    result = benchmark.pedantic(
        lambda: sudoku_solve_rate(count=2, max_steps=8000, target_clues=34, batched=True),
        rounds=1,
        iterations=1,
    )

    rows = [
        [i, clues, r.solved, r.steps, r.total_spikes]
        for i, (clues, r) in enumerate(zip(result["clue_counts"], result["results"]))
    ]
    print()
    print(
        format_table(
            ["Puzzle", "Clues", "Solved", "Steps [ms]", "Spikes"],
            rows,
            title="Sudoku SNN solver on the generated evaluation set",
        )
    )
    print(f"Solve rate: {result['solved']}/{result['num_puzzles']}  mean steps: {result['mean_steps']:.0f}")

    benchmark.extra_info["solve_rate"] = result["solve_rate"]
    # The WTA solver converges on the evaluated instances.
    assert result["solve_rate"] >= 0.5
