"""E-F5 — Figure 5: per-block floorplan breakdown on FreePDK45 and ASAP7."""

from repro.harness import fig5_floorplan


def test_fig5_floorplan(benchmark):
    result = benchmark(fig5_floorplan)

    print()
    for tech in ("FreePDK45", "ASAP7"):
        print(result[tech]["ascii"])
        print()

    # The paper's headline claims: NPU no more than ~20 % of the core,
    # DCU below 2 %.
    assert result["npu_fraction"] <= 0.25
    assert result["dcu_fraction"] < 0.03
    for tech in ("FreePDK45", "ASAP7"):
        summary = result[tech]["summary"]
        assert 0.1 < summary["npu_fraction"] < 0.3
        assert summary["total_area_um2"] > 0
