"""E-T3 — Table III: dual-core IzhiRISC-V resource utilisation on MAX10."""

import pytest

from repro.harness import format_comparison, table3_max10
from repro.hw import FPGAResourceModel, MAX10_CORE, MAX10_DEVICE


def test_table3_max10_resources(benchmark):
    result = benchmark(table3_max10)
    report = result["model"]
    paper = result["paper"]

    rows = {
        "Frequency [MHz]": {"measured": report.clock_mhz, "paper": paper["frequency_mhz"]},
        "Logic elements": {"measured": report.logic, "paper": paper["logic_elements"]},
        "Logic [%]": {"measured": report.logic_percent, "paper": paper["logic_percent"]},
        "FF": {"measured": report.flipflops, "paper": paper["flipflops"]},
        "BRAM [Kb]": {"measured": report.memory, "paper": paper["bram_kb"]},
        "Embedded mult (9b)": {"measured": report.dsp, "paper": paper["multipliers"]},
    }
    print()
    print(format_comparison(rows, columns=["measured", "paper"], title="Table III — dual-core on Intel MAX10"))

    assert report.logic == pytest.approx(paper["logic_elements"], rel=0.02)
    assert report.fits
    # The paper notes a third core only fits with reduced caches/clock.
    assert FPGAResourceModel(MAX10_DEVICE, MAX10_CORE).max_cores() == 2
