"""E-F4 — Figure 4: inhibitory structure of the Sudoku WTA network."""

from repro.harness import fig4_wta, format_kv
from repro.sudoku import build_wta_synapses


def test_fig4_wta_connectivity(benchmark):
    benchmark(build_wta_synapses)
    data = fig4_wta()
    stats = data["stats"]

    print()
    print(
        format_kv(
            {
                "neurons": stats.num_neurons,
                "inhibitory edges": stats.num_inhibitory_edges,
                "self-excitation edges": stats.num_self_edges,
                "inhibitory out-degree": stats.inhibitory_out_degree,
                "row targets": stats.row_targets,
                "column targets": stats.column_targets,
                "box-only targets": stats.box_only_targets,
                "same-cell targets": stats.cell_targets,
            },
            title="Figure 4 — WTA inhibition structure (one neuron's fan-out)",
        )
    )

    assert stats.num_neurons == 729
    assert stats.inhibitory_out_degree == 28
    assert (stats.row_targets, stats.column_targets, stats.box_only_targets, stats.cell_targets) == (8, 8, 4, 8)
    assert stats.num_inhibitory_edges == 729 * 28
