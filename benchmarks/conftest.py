"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper
(``pytest benchmarks/ --benchmark-only``).  Pass ``-s`` to also print the
regenerated tables next to the paper's published values.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
