"""E-T5 / E-S1 — Table V: 80-20 network performance metrics, 1 vs 2 cores.

The cycle simulator runs a steady-state window of the 80-20 workload
(scaled population, few timesteps); the reported quantities (IPC, IPC_eff,
hazard stalls, cache hit rates, memory intensity, dual-core speedup) are
per-timestep/steady-state metrics directly comparable to the paper's
full-size run (see DESIGN.md §2).

Cycle-accurate windows cannot be vectorised, so the driver dispatches the
independent single- and dual-core system simulations as
``repro.runtime.SweepExecutor`` tasks.  The benchmark uses the
process-pool mode to run them on separate cores; results are identical
to the serial default by construction (deterministic per-task seeding).
"""


from repro.harness import format_comparison, paper_data, table5_eighty_twenty
from repro.runtime import SweepExecutor


def test_table5_eighty_twenty_metrics(benchmark):
    result = benchmark.pedantic(
        lambda: table5_eighty_twenty(
            num_neurons=120, num_steps=4, executor=SweepExecutor(mode="process", max_workers=2)
        ),
        rounds=1,
        iterations=1,
    )

    rows = result.comparison_rows()
    paper = paper_data.PAPER_TABLE5_8020
    rows["IPC"]["paper single"] = paper["single"]["ipc"]
    rows["IPC_eff"]["paper single"] = paper["single"]["ipc_eff"]
    rows["Hazard stalls [%]"]["paper single"] = paper["single"]["hazard_stall_percent"]
    rows["I-cache hit rate [%]"]["paper single"] = paper["single"]["icache_hit_rate"]
    rows["D-cache hit rate [%]"]["paper single"] = paper["single"]["dcache_hit_rate"]
    rows["Mem intensity"]["paper single"] = paper["single"]["memory_intensity"]
    rows["Speedup"]["paper single"] = paper_data.PAPER_SPEEDUP_DUAL_CORE_8020

    print()
    print(
        format_comparison(
            rows,
            columns=["Single-core", "Dual core #1", "Dual core #2", "paper single"],
            title=f"Table V — 80-20 window ({result.num_neurons} neurons x {result.num_steps} steps)",
        )
    )

    benchmark.extra_info["speedup"] = result.speedup
    benchmark.extra_info["single_ipc"] = result.single["ipc"]

    # Shape checks against the paper.
    assert 0.3 < result.single["ipc"] < 1.0
    assert result.single["ipc_eff"] > result.single["ipc"]
    assert result.single["icache_hit_rate"] > 95.0
    assert result.single["dcache_hit_rate"] > 80.0
    assert 10.0 < result.single["memory_intensity"] < 60.0
    # Dual-core speedup in the neighbourhood of the paper's 1.643x.
    assert 1.3 < result.speedup <= 2.05
