"""E-T1 — Table I: the custom neuromorphic instruction encodings.

Regenerates the encoding table (opcode, funct3, format) and measures the
encode+decode cost of the four custom instructions.
"""

from repro.harness import format_table, table1_isa_roundtrip
from repro.isa import decode, encode


def test_table1_isa_encoding(benchmark):
    rows = table1_isa_roundtrip()

    def encode_decode_all():
        for name in rows:
            decode(encode(name, rd=10, rs1=11, rs2=12))

    benchmark(encode_decode_all)

    print()
    print(
        format_table(
            ["Instruction", "Opcode", "funct3", "Format", "Word", "Round-trip"],
            [
                [name, r["opcode"], r["funct3"], r["format"], r["word"], "ok" if r["roundtrip_ok"] else "FAIL"]
                for name, r in rows.items()
            ],
            title="Table I — custom ISA extension on opcode custom-0 (0001011)",
        )
    )
    assert all(r["roundtrip_ok"] and r["custom0"] for r in rows.values())
