"""E-T7 — Table VII: FreePDK45 / ASAP7 standard-cell mapping results."""

import pytest

from repro.harness import format_comparison, table7_asic


def test_table7_standard_cell_mapping(benchmark):
    result = benchmark(table7_asic)
    reports = result["reports"]
    paper = result["paper"]

    rows = {}
    for metric, getter in [
        ("Total area [um2]", lambda r: r.total_area_um2),
        ("NPU area [um2]", lambda r: r.block_area("NPU")),
        ("DCU area [um2]", lambda r: r.block_area("DCU")),
        ("Total power [mW]", lambda r: r.total_power_mw),
        ("Clock [MHz]", lambda r: r.clock_mhz),
        ("Throughput [MUpd/s]", lambda r: r.throughput_mupd_s),
        ("Power eff. [GUpd/s/W]", lambda r: r.power_efficiency_gupd_s_w),
        ("Peak neural IPS [G/s]", lambda r: r.peak_neural_gips),
    ]:
        rows[metric] = {
            "FreePDK45 (model)": getter(reports["FreePDK45"]),
            "ASAP7 (model)": getter(reports["ASAP7"]),
        }
    rows["Total area [um2]"].update(
        {"FreePDK45 (paper)": paper["FreePDK45"]["total_area_um2"], "ASAP7 (paper)": paper["ASAP7"]["total_area_um2"]}
    )
    rows["Total power [mW]"].update(
        {"FreePDK45 (paper)": paper["FreePDK45"]["total_power_mw"], "ASAP7 (paper)": paper["ASAP7"]["total_power_mw"]}
    )
    rows["Power eff. [GUpd/s/W]"].update(
        {
            "FreePDK45 (paper)": paper["FreePDK45"]["power_efficiency_gupd_s_w"],
            "ASAP7 (paper)": paper["ASAP7"]["power_efficiency_gupd_s_w"],
        }
    )
    print()
    print(
        format_comparison(
            rows,
            columns=["FreePDK45 (model)", "FreePDK45 (paper)", "ASAP7 (model)", "ASAP7 (paper)"],
            title="Table VII — standard-cell mapping",
        )
    )

    for tech in ("FreePDK45", "ASAP7"):
        assert reports[tech].total_area_um2 == pytest.approx(paper[tech]["total_area_um2"], rel=0.02)
        assert reports[tech].total_power_mw == pytest.approx(paper[tech]["total_power_mw"], rel=0.1)
        assert reports[tech].peak_neural_gips == pytest.approx(paper[tech]["peak_neural_gips"], rel=0.02)
