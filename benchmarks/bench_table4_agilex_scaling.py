"""E-T4 — Table IV: 16/32/64-core systems on Agilex-7 plus the 192-core estimate."""

import pytest

from repro.harness import format_table, table4_agilex


def test_table4_agilex_scaling(benchmark):
    result = benchmark(table4_agilex)
    reports = result["reports"]
    paper = result["paper"]

    rows = []
    for n, report in reports.items():
        rows.append(
            [
                n,
                f"{report.logic:.0f} / {paper[n]['alm']}",
                f"{report.flipflops:.0f} / {paper[n]['ff']}",
                f"{report.memory:.0f} / {paper[n]['ram_blocks']}",
                f"{report.dsp:.0f} / {paper[n]['dsp']}",
            ]
        )
    print()
    print(
        format_table(
            ["Cores", "ALM (model/paper)", "FF (model/paper)", "RAM blocks (model/paper)", "DSP (model/paper)"],
            rows,
            title="Table IV — IzhiRISC-V scaling on Intel Agilex-7 @ 100 MHz",
        )
    )
    print(f"Maximum cores (linear scaling): model {result['max_cores']} vs paper estimate {result['paper_max_cores']}")

    for n, report in reports.items():
        assert report.logic == pytest.approx(paper[n]["alm"], rel=0.05)
        assert report.fits
    assert result["max_cores"] == pytest.approx(result["paper_max_cores"], rel=0.15)
