"""E-F3 — Figure 3: ISI histograms across arithmetic backends."""

import numpy as np

from repro.harness import fig3_isi, format_table


def test_fig3_isi_histograms(benchmark):
    result = benchmark.pedantic(lambda: fig3_isi(num_steps=700), rounds=1, iterations=1)
    variants = result["variants"]
    similarities = result["similarities"]

    rows = []
    for name, data in variants.items():
        counts = np.asarray(data["counts"])
        mode_bin = float(data["edges"][int(np.argmax(counts))]) if counts.any() else 0.0
        rows.append(
            [
                name,
                int(counts.sum()),
                mode_bin,
                data["summary"]["mean_rate_hz"],
                similarities[name],
            ]
        )
    print()
    print(
        format_table(
            ["Implementation", "ISI count", "ISI mode [ms]", "Mean rate [Hz]", "Similarity vs double"],
            rows,
            title="Figure 3 — inter-spike-interval histograms (cosine similarity vs double precision)",
        )
    )

    # Every backend produces activity and the fixed-point variants resemble
    # the double-precision reference (the paper's qualitative claim).
    for name, data in variants.items():
        assert np.asarray(data["counts"]).sum() > 0
    assert similarities["fixed point"] > 0.5
    # The DCU-decay variant changes the current dynamics more, so its ISI
    # distribution drifts further from the double-precision reference.
    assert similarities["IzhiRISC-V (fixed + DCU decay)"] > 0.1
