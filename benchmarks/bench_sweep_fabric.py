"""Work-stealing sweep fabric: scaling and crash-resume benchmark.

Runs the registered ``pooled-csp`` workload once with the serial executor
and once over the process fabric (all cores by default) on the *same*
:class:`~repro.runtime.sweep.SweepSpec`-derived task set, asserting the
two summaries are identical (the fabric never changes results, only
wall clock) and gating the parallel efficiency::

    efficiency = (serial_seconds / fabric_seconds) / min(workers, count)

With ``SWEEP_BENCH_RESUME=1`` (default) it also exercises the
crash-resume contract: a partial sweep populates the ``RunResultCache``,
the full re-run must serve exactly those tasks from cache and reproduce
the uncached summary verbatim.

Emits ``BENCH_sweep.json`` (override with ``BENCH_SWEEP_JSON``);
``tools/check_bench_regression.py`` compares it against the committed
baseline — efficiency, speedup and the deterministic solve rate are
gated.

Environment knobs (CI smoke lowers the workload; nightly runs it full):

===============================  ===========================================
``SWEEP_BENCH_COUNT``            instances in the sweep (default 12)
``SWEEP_BENCH_MAX_STEPS``        per-solve step budget (default 1500)
``SWEEP_BENCH_VERTICES``         coloring vertices per instance (default 12)
``SWEEP_BENCH_WORKERS``          fabric workers (default: all cores)
``SWEEP_BENCH_ROUNDS``           timing rounds, best-of (default 2)
``SWEEP_BENCH_MIN_EFFICIENCY``   scaling gate (default 0.7)
``SWEEP_BENCH_RESUME``           1 to exercise cache resume (default 1)
===============================  ===========================================
"""

import json
import os
import shutil
import tempfile
import time

from repro.harness import format_table
from repro.runtime import SweepExecutor, run_sweep_workload

COUNT = int(os.environ.get("SWEEP_BENCH_COUNT", "12"))
MAX_STEPS = int(os.environ.get("SWEEP_BENCH_MAX_STEPS", "1500"))
VERTICES = int(os.environ.get("SWEEP_BENCH_VERTICES", "12"))
WORKERS = int(os.environ.get("SWEEP_BENCH_WORKERS", str(os.cpu_count() or 1)))
ROUNDS = int(os.environ.get("SWEEP_BENCH_ROUNDS", "2"))
MIN_EFFICIENCY = float(os.environ.get("SWEEP_BENCH_MIN_EFFICIENCY", "0.7"))
RESUME = os.environ.get("SWEEP_BENCH_RESUME", "1") not in ("0", "false", "")

JSON_PATH = os.environ.get(
    "BENCH_SWEEP_JSON", os.path.join(os.path.dirname(__file__), "BENCH_sweep.json")
)

WORKLOAD_KWARGS = dict(
    count=COUNT,
    max_steps=MAX_STEPS,
    scenario_params={"num_vertices": VERTICES, "num_colors": 3},
)


def _merge_into_json(updates):
    """Merge ``updates`` into ``BENCH_sweep.json``, preserving other keys."""
    payload = {}
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            payload = {}
    payload.update(updates)
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"Wrote {JSON_PATH}")


def _best_of(run, rounds):
    """Best wall-clock report of ``rounds`` runs; summaries must agree."""
    best = run()
    for _ in range(max(0, rounds - 1)):
        repeat = run()
        assert repeat.summary == best.summary  # deterministic workload
        if repeat.elapsed < best.elapsed:
            best = repeat
    return best


def _run_resume_check():
    """Partial sweep populates the cache; the full re-run must resume."""
    cache_dir = tempfile.mkdtemp(prefix="sweep-bench-cache-")
    try:
        partial = max(1, COUNT // 2)
        executor = SweepExecutor(mode="process", max_workers=WORKERS)
        started = time.perf_counter()
        run_sweep_workload(
            "pooled-csp",
            count=partial,
            max_steps=MAX_STEPS,
            scenario_params=WORKLOAD_KWARGS["scenario_params"],
            executor=executor,
            cache=cache_dir,
        )
        partial_seconds = time.perf_counter() - started
        started = time.perf_counter()
        resumed = run_sweep_workload(
            "pooled-csp",
            executor=SweepExecutor(mode="process", max_workers=WORKERS),
            cache=cache_dir,
            **WORKLOAD_KWARGS,
        )
        resumed_seconds = time.perf_counter() - started
        assert resumed.cache_hits == partial, (
            f"resume served {resumed.cache_hits} tasks from cache, expected {partial}"
        )
        uncached = run_sweep_workload("pooled-csp", **WORKLOAD_KWARGS)
        assert resumed.summary == uncached.summary  # resume is bit-identical
        return {
            "partial_tasks": partial,
            "partial_seconds": partial_seconds,
            "resumed_seconds": resumed_seconds,
            "cache_hits": resumed.cache_hits,
            "cache_hit_fraction": resumed.cache_hits / COUNT,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def test_sweep_fabric_scaling(benchmark):
    serial = _best_of(lambda: run_sweep_workload("pooled-csp", **WORKLOAD_KWARGS), ROUNDS)
    fabric = _best_of(
        lambda: run_sweep_workload(
            "pooled-csp",
            executor=SweepExecutor(mode="process", max_workers=WORKERS),
            **WORKLOAD_KWARGS,
        ),
        ROUNDS,
    )
    # The fabric reorders scheduling, never results.
    assert fabric.summary == serial.summary

    ideal = min(WORKERS, COUNT)
    speedup = serial.elapsed / fabric.elapsed if fabric.elapsed > 0 else 0.0
    efficiency = speedup / ideal if ideal else 0.0
    resume = _run_resume_check() if RESUME else None

    payload = {
        "pooled_csp_scaling": {
            # Run configuration (the regression gate's fingerprint).
            "scenario": "coloring",
            "count": COUNT,
            "max_steps": MAX_STEPS,
            "num_vertices": VERTICES,
            "workers": WORKERS,
            "chunk_size": fabric.chunk_size,
            # Deterministic outcomes.
            "solve_rate": serial.summary["solve_rate"],
            # Wall-clock scaling (best of ROUNDS).
            "serial_seconds": serial.elapsed,
            "fabric_seconds": fabric.elapsed,
            "speedup": speedup,
            "ideal_speedup": ideal,
            "efficiency": efficiency,
            "tasks_per_second": COUNT / fabric.elapsed if fabric.elapsed > 0 else 0.0,
            # Fabric scheduling counters.
            "steals": fabric.steals,
            "lease_retries": fabric.lease_retries,
            "duplicates": fabric.duplicates,
            "worker_utilisation": {
                str(k): v for k, v in fabric.worker_utilisation().items()
            },
        }
    }
    if resume is not None:
        payload["pooled_csp_resume"] = {
            "count": COUNT,
            "max_steps": MAX_STEPS,
            "num_vertices": VERTICES,
            "workers": WORKERS,
            **resume,
        }

    summary = payload["pooled_csp_scaling"]
    print()
    print(
        format_table(
            ["Tasks", "Workers", "Serial s", "Fabric s", "Speedup", "Efficiency", "Steals"],
            [
                [
                    COUNT,
                    WORKERS,
                    f"{summary['serial_seconds']:.2f}",
                    f"{summary['fabric_seconds']:.2f}",
                    f"{summary['speedup']:.2f}x",
                    f"{summary['efficiency']:.2f}",
                    summary["steals"],
                ]
            ],
            title=(
                f"Sweep fabric: pooled-csp x{COUNT}, {MAX_STEPS} steps, "
                f"{VERTICES}x3 coloring"
            ),
        )
    )
    # The consolidated BENCH-history view the nightly artifact tracks.
    view = fabric.bench_view()
    print("bench view:", ", ".join(sorted(view["bench"])) or "(no BENCH files)")

    _merge_into_json(payload)
    benchmark.extra_info.update(
        {
            "speedup": summary["speedup"],
            "efficiency": summary["efficiency"],
            "solve_rate": summary["solve_rate"],
        }
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    assert summary["efficiency"] >= MIN_EFFICIENCY, (
        f"fabric efficiency {summary['efficiency']:.2f} below the "
        f"{MIN_EFFICIENCY:.2f} gate (speedup {summary['speedup']:.2f}x "
        f"over {ideal} ideal workers)"
    )
