"""E-C1 — generic spiking constraint solver across scenario families.

Solves deterministic instance sets of the three non-Sudoku scenario
families (graph coloring, N-queens, Latin-square completion) on the
exact-mode batched runtime, asserts per-scenario solve-rate floors, and
measures solver throughput (neuron updates per second).

It also writes ``BENCH_csp.json`` (override with ``BENCH_CSP_JSON``) so
the constraint-solver performance trajectory accumulates across CI runs;
``tools/check_bench_regression.py`` compares the emitted file against the
committed baseline in ``benchmarks/baselines/``.

Environment knobs (CI smoke lowers the workload; nightly runs it full):

==========================  ===========================================
``CSP_BENCH_COUNT``         instances per scenario (default 4)
``CSP_BENCH_MAX_STEPS``     step budget per instance (default 4000)
``CSP_MIN_SOLVE_RATE``      asserted per-scenario floor (default 0.75)
==========================  ===========================================
"""

import json
import os
import time

from repro.csp import SpikingCSPSolver, make_instance
from repro.csp.solver import solve_instances
from repro.harness import format_table
from repro.runtime.batch import BatchedNetwork
from repro.runtime.drives import compile_batched_external

COUNT = int(os.environ.get("CSP_BENCH_COUNT", "4"))
MAX_STEPS = int(os.environ.get("CSP_BENCH_MAX_STEPS", "4000"))
MIN_SOLVE_RATE = float(os.environ.get("CSP_MIN_SOLVE_RATE", "0.75"))
#: Timing rounds per scenario (best-of-N; the solves are deterministic,
#: so repeats only tighten the wall-clock measurement).
ROUNDS = int(os.environ.get("CSP_BENCH_ROUNDS", "3"))
#: Fixed step count of the throughput measurement.  Solves early-stop
#: after a few tens of steps, which is too short a wall-clock window for
#: a stable updates/s figure, so throughput is measured separately on a
#: fixed-length batched run over the same stacked networks.
THROUGHPUT_STEPS = int(os.environ.get("CSP_BENCH_THROUGHPUT_STEPS", "500"))

JSON_PATH = os.environ.get(
    "BENCH_CSP_JSON", os.path.join(os.path.dirname(__file__), "BENCH_csp.json")
)

#: Scenario families benchmarked: (name, generator params, solver seeds).
SCENARIOS = [
    ("coloring", {"num_vertices": 12, "num_colors": 3}, 1),
    ("queens", {"n": 6}, 1),
    ("latin", {"n": 4, "clamp_fraction": 0.5}, 7),
]


def _measure_throughput(instances, solver_seed):
    """Best-of-N updates/s of a fixed-length batched run (no early stop).

    Runs the solve path's full fast configuration: exact mode (the
    integer CSR kernel engages automatically on the WTA weights) with the
    per-replica noise closures compiled into one batched provider.
    """
    best = float("inf")
    batch = None
    for _ in range(max(1, ROUNDS)):
        solvers = [
            SpikingCSPSolver(graph, seed=solver_seed) for graph, _ in instances
        ]
        networks = [
            solver.build_network(clamps)
            for solver, (_, clamps) in zip(solvers, instances)
        ]
        batch = BatchedNetwork.from_networks(
            networks,
            synapse_mode="exact",
            batched_external=compile_batched_external(networks),
        )
        start = time.perf_counter()
        batch.run(THROUGHPUT_STEPS, record=False, start_step=1)
        best = min(best, time.perf_counter() - start)
    substeps = getattr(batch.networks[0].population, "substeps_per_ms", 1)
    updates = THROUGHPUT_STEPS * batch.batch_size * batch.size * substeps
    return updates / best if best > 0 else 0.0


def _run_scenario(name, params, solver_seed):
    instances = [make_instance(name, seed=i, **params) for i in range(COUNT)]
    # One noise stream per replica: for structurally identical instances
    # (queens) the instance seed only names the graph, so seed diversity
    # must come from the solver side or the batch solves N copies of one
    # run and the solve rate measures nothing.
    seeds = [solver_seed + i for i in range(COUNT)]
    results = solve_instances(instances, seeds=seeds, max_steps=MAX_STEPS, check_interval=10)
    solved = sum(r.solved for r in results)
    return {
        "num_instances": COUNT,
        "num_neurons": instances[0][0].num_neurons,
        "max_steps": MAX_STEPS,
        "throughput_steps": THROUGHPUT_STEPS,
        "solved": solved,
        "solve_rate": solved / COUNT,
        "mean_steps": sum(r.steps for r in results) / COUNT,
        "updates_per_second": _measure_throughput(instances, solver_seed),
    }


def test_csp_scenarios_solve_on_batched_runtime(benchmark):
    payload = {}
    rows = []
    for name, params, solver_seed in SCENARIOS:
        summary = _run_scenario(name, params, solver_seed)
        payload[name] = summary
        rows.append(
            [
                name,
                summary["num_neurons"],
                f"{summary['solved']}/{summary['num_instances']}",
                f"{summary['mean_steps']:.0f}",
                f"{summary['updates_per_second'] / 1e6:.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["Scenario", "Neurons", "Solved", "Mean steps", "M updates/s"],
            rows,
            title=f"Spiking CSP solver: {COUNT} instances/scenario, <= {MAX_STEPS} steps",
        )
    )

    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"Wrote {JSON_PATH}")

    benchmark.extra_info.update({name: summary["solve_rate"] for name, summary in payload.items()})
    # One representative re-run feeds pytest-benchmark's timing column.
    name, params, solver_seed = SCENARIOS[0]
    benchmark.pedantic(lambda: _run_scenario(name, params, solver_seed), rounds=1, iterations=1)

    # Every scenario family converges on the evaluated instance sets.
    for name, summary in payload.items():
        assert summary["solve_rate"] >= MIN_SOLVE_RATE, (
            f"{name}: solve rate {summary['solve_rate']:.2f} "
            f"below floor {MIN_SOLVE_RATE:.2f}"
        )
