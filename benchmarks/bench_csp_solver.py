"""E-C1 — generic spiking constraint solver across scenario families.

Solves deterministic instance sets of the three non-Sudoku scenario
families (graph coloring, N-queens, Latin-square completion) on the
exact-mode batched runtime, asserts per-scenario solve-rate floors, and
measures solver throughput (neuron updates per second).

A second gate compares the restart-portfolio engine
(:func:`repro.csp.portfolio.solve_instances_portfolio`) against
fixed-seed :func:`~repro.csp.solver.solve_instances` on a deterministic
pool of hard instances (near-threshold graph coloring plus hard low-clue
Sudoku): at the same global step budget the portfolio must reach at
least the fixed-seed solve rate while spending measurably fewer total
neuron updates.

It also writes ``BENCH_csp.json`` (override with ``BENCH_CSP_JSON``) so
the constraint-solver performance trajectory accumulates across CI runs;
``tools/check_bench_regression.py`` compares the emitted file against the
committed baseline in ``benchmarks/baselines/``.

Environment knobs (CI smoke lowers the workload; nightly runs it full):

===============================  ===========================================
``CSP_BENCH_COUNT``              instances per scenario (default 4)
``CSP_BENCH_MAX_STEPS``          step budget per instance (default 4000)
``CSP_MIN_SOLVE_RATE``           asserted per-scenario floor (default 0.75)
``CSP_PORTFOLIO_COLORING``       hard coloring instances (default 28)
``CSP_PORTFOLIO_SUDOKU``         hard Sudoku instances (default 4)
``CSP_PORTFOLIO_MIN_RATIO``      asserted fixed/portfolio update ratio
                                 floor (default 1.05)
===============================  ===========================================
"""

import json
import os
import time

from repro.csp import PortfolioConfig, SpikingCSPSolver, make_instance
from repro.csp.solver import solve_instances
from repro.harness import csp_portfolio_solve_rate, format_table
from repro.runtime.batch import BatchedNetwork
from repro.runtime.drives import compile_batched_external

COUNT = int(os.environ.get("CSP_BENCH_COUNT", "4"))
MAX_STEPS = int(os.environ.get("CSP_BENCH_MAX_STEPS", "4000"))
MIN_SOLVE_RATE = float(os.environ.get("CSP_MIN_SOLVE_RATE", "0.75"))
#: Timing rounds per scenario (best-of-N; the solves are deterministic,
#: so repeats only tighten the wall-clock measurement).
ROUNDS = int(os.environ.get("CSP_BENCH_ROUNDS", "3"))
#: Fixed step count of the throughput measurement.  Solves early-stop
#: after a few tens of steps, which is too short a wall-clock window for
#: a stable updates/s figure, so throughput is measured separately on a
#: fixed-length batched run over the same stacked networks.
THROUGHPUT_STEPS = int(os.environ.get("CSP_BENCH_THROUGHPUT_STEPS", "500"))

JSON_PATH = os.environ.get(
    "BENCH_CSP_JSON", os.path.join(os.path.dirname(__file__), "BENCH_csp.json")
)

#: Scenario families benchmarked: (name, generator params, solver seeds).
SCENARIOS = [
    ("coloring", {"num_vertices": 12, "num_colors": 3}, 1),
    ("queens", {"n": 6}, 1),
    ("latin", {"n": 4, "clamp_fraction": 0.5}, 7),
]

#: Hard-pool composition of the restart-portfolio gate.  The coloring
#: sub-pool sits near the satisfiability threshold of the planted
#: 4-partition family (absorbing stalls under a bad noise stream — the
#: regime restarts fix); the Sudoku sub-pool uses hard low-clue puzzles
#: at the stochastic WTA search's difficulty frontier (~29 clues; the
#: classic 17-clue instances are beyond its reach at any practical step
#: budget, see docs/CSP.md).
PORTFOLIO_COLORING = int(os.environ.get("CSP_PORTFOLIO_COLORING", "28"))
PORTFOLIO_SUDOKU = int(os.environ.get("CSP_PORTFOLIO_SUDOKU", "4"))
PORTFOLIO_MIN_RATIO = float(os.environ.get("CSP_PORTFOLIO_MIN_RATIO", "1.05"))
PORTFOLIO_POOLS = [
    {
        "scenario": "coloring",
        "count": PORTFOLIO_COLORING,
        "seed": 200,
        "max_steps": 3000,
        "scenario_params": {"num_vertices": 40, "num_colors": 4, "edge_probability": 0.45},
        "portfolio": PortfolioConfig(base_budget=300, seed=0, max_parallel=2),
    },
    {
        "scenario": "sudoku",
        "count": PORTFOLIO_SUDOKU,
        "seed": 50,
        "max_steps": 6000,
        "scenario_params": {"target_clues": 29},
        "portfolio": PortfolioConfig(base_budget=3000, seed=0, max_parallel=1),
    },
]


def _merge_into_json(updates):
    """Merge ``updates`` into ``BENCH_csp.json``, preserving other sections.

    The scenario and portfolio gates run as separate tests but share one
    emitted file, so each writes only its own keys.
    """
    payload = {}
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            payload = {}
    payload.update(updates)
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"Wrote {JSON_PATH}")


def _measure_throughput(instances, solver_seed):
    """Best-of-N updates/s of a fixed-length batched run (no early stop).

    Runs the solve path's full fast configuration: exact mode (the
    integer CSR kernel engages automatically on the WTA weights) with the
    per-replica noise closures compiled into one batched provider.
    """
    best = float("inf")
    batch = None
    for _ in range(max(1, ROUNDS)):
        solvers = [
            SpikingCSPSolver(graph, seed=solver_seed) for graph, _ in instances
        ]
        networks = [
            solver.build_network(clamps)
            for solver, (_, clamps) in zip(solvers, instances)
        ]
        batch = BatchedNetwork.from_networks(
            networks,
            synapse_mode="exact",
            batched_external=compile_batched_external(networks),
        )
        start = time.perf_counter()
        batch.run(THROUGHPUT_STEPS, record=False, start_step=1)
        best = min(best, time.perf_counter() - start)
    substeps = getattr(batch.networks[0].population, "substeps_per_ms", 1)
    updates = THROUGHPUT_STEPS * batch.batch_size * batch.size * substeps
    return updates / best if best > 0 else 0.0


def _run_scenario(name, params, solver_seed):
    instances = [make_instance(name, seed=i, **params) for i in range(COUNT)]
    # One noise stream per replica: for structurally identical instances
    # (queens) the instance seed only names the graph, so seed diversity
    # must come from the solver side or the batch solves N copies of one
    # run and the solve rate measures nothing.
    # reprolint: disable-next-line=RL002 -- frozen benchmark solver seeds; baselines pin them
    seeds = [solver_seed + i for i in range(COUNT)]
    results = solve_instances(instances, seeds=seeds, max_steps=MAX_STEPS, check_interval=10)
    solved = sum(r.solved for r in results)
    return {
        "num_instances": COUNT,
        "num_neurons": instances[0][0].num_neurons,
        "max_steps": MAX_STEPS,
        "throughput_steps": THROUGHPUT_STEPS,
        "solved": solved,
        "solve_rate": solved / COUNT,
        "mean_steps": sum(r.steps for r in results) / COUNT,
        "updates_per_second": _measure_throughput(instances, solver_seed),
    }


def test_csp_scenarios_solve_on_batched_runtime(benchmark):
    payload = {}
    rows = []
    for name, params, solver_seed in SCENARIOS:
        summary = _run_scenario(name, params, solver_seed)
        payload[name] = summary
        rows.append(
            [
                name,
                summary["num_neurons"],
                f"{summary['solved']}/{summary['num_instances']}",
                f"{summary['mean_steps']:.0f}",
                f"{summary['updates_per_second'] / 1e6:.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["Scenario", "Neurons", "Solved", "Mean steps", "M updates/s"],
            rows,
            title=f"Spiking CSP solver: {COUNT} instances/scenario, <= {MAX_STEPS} steps",
        )
    )

    _merge_into_json(payload)

    benchmark.extra_info.update({name: summary["solve_rate"] for name, summary in payload.items()})
    # One representative re-run feeds pytest-benchmark's timing column.
    name, params, solver_seed = SCENARIOS[0]
    benchmark.pedantic(lambda: _run_scenario(name, params, solver_seed), rounds=1, iterations=1)

    # Every scenario family converges on the evaluated instance sets.
    for name, summary in payload.items():
        assert summary["solve_rate"] >= MIN_SOLVE_RATE, (
            f"{name}: solve rate {summary['solve_rate']:.2f} "
            f"below floor {MIN_SOLVE_RATE:.2f}"
        )


def test_csp_portfolio_beats_fixed_seed_on_hard_pool(benchmark):
    """Restart-portfolio gate on the deterministic hard-instance pool.

    At equal global step budget per pool, the portfolio must reach at
    least the fixed-seed solve rate while spending measurably fewer total
    neuron updates — the freed-slot refills truncate the heavy tail that
    fixed-seed runs pay in full.  Everything (instances, first-attempt
    seeds, restart seeds, schedules) is seeded, so the comparison is
    deterministic.
    """
    pools = {}
    rows = []
    start = time.perf_counter()
    for spec in PORTFOLIO_POOLS:
        summary = csp_portfolio_solve_rate(
            scenario=spec["scenario"],
            count=spec["count"],
            max_steps=spec["max_steps"],
            seed=spec["seed"],
            portfolio=spec["portfolio"],
            scenario_params=spec["scenario_params"],
            compare_fixed=True,
        )
        pcfg = spec["portfolio"]
        pools[spec["scenario"]] = {
            "num_instances": spec["count"],
            "num_neurons": summary["num_neurons"],
            "max_steps": spec["max_steps"],
            "base_budget": pcfg.base_budget,
            "max_parallel": pcfg.max_parallel,
            "schedule": pcfg.schedule,
            "solve_rate_fixed": summary["fixed_solve_rate"],
            "solve_rate_portfolio": summary["solve_rate"],
            "updates_fixed": summary["fixed_neuron_updates"],
            "updates_portfolio": summary["neuron_updates"],
            "total_attempts": summary["total_attempts"],
        }
        rows.append(
            [
                spec["scenario"],
                spec["count"],
                f"{summary['fixed_solve_rate']:.2f}",
                f"{summary['solve_rate']:.2f}",
                f"{summary['fixed_neuron_updates'] / 1e6:.1f}",
                f"{summary['neuron_updates'] / 1e6:.1f}",
            ]
        )
    elapsed = time.perf_counter() - start

    updates_fixed = sum(p["updates_fixed"] for p in pools.values())
    updates_portfolio = sum(p["updates_portfolio"] for p in pools.values())
    solved_fixed = sum(round(p["solve_rate_fixed"] * p["num_instances"]) for p in pools.values())
    solved_portfolio = sum(
        round(p["solve_rate_portfolio"] * p["num_instances"]) for p in pools.values()
    )
    num_instances = sum(p["num_instances"] for p in pools.values())
    ratio = updates_fixed / updates_portfolio if updates_portfolio else 0.0

    print()
    print(
        format_table(
            ["Pool", "N", "Fixed rate", "Portfolio rate", "Fixed MU", "Portfolio MU"],
            rows,
            title=(
                f"Restart portfolio vs fixed seeds: {num_instances} hard instances, "
                f"update ratio {ratio:.2f} ({elapsed:.1f}s)"
            ),
        )
    )

    portfolio_summary = {
        "num_instances": num_instances,
        "solved_fixed": int(solved_fixed),
        "solved_portfolio": int(solved_portfolio),
        "solve_rate_fixed": solved_fixed / num_instances if num_instances else 0.0,
        "solve_rate_portfolio": solved_portfolio / num_instances if num_instances else 0.0,
        "updates_fixed": int(updates_fixed),
        "updates_portfolio": int(updates_portfolio),
        "update_ratio": ratio,
        "pools": pools,
    }
    _merge_into_json({"portfolio": portfolio_summary})

    benchmark.extra_info.update(
        {"update_ratio": ratio, "solve_rate_portfolio": portfolio_summary["solve_rate_portfolio"]}
    )
    # One representative re-run (the cheap coloring pool) feeds the
    # pytest-benchmark timing column.
    spec = PORTFOLIO_POOLS[0]
    benchmark.pedantic(
        lambda: csp_portfolio_solve_rate(
            scenario=spec["scenario"],
            count=spec["count"],
            max_steps=spec["max_steps"],
            seed=spec["seed"],
            portfolio=spec["portfolio"],
            scenario_params=spec["scenario_params"],
            compare_fixed=False,
        ),
        rounds=1,
        iterations=1,
    )

    assert solved_portfolio >= solved_fixed, (
        f"portfolio solved {solved_portfolio}/{num_instances}, below the "
        f"fixed-seed engine's {solved_fixed}"
    )
    assert ratio >= PORTFOLIO_MIN_RATIO, (
        f"portfolio spent {updates_portfolio} neuron updates vs fixed-seed "
        f"{updates_fixed} (ratio {ratio:.2f}, floor {PORTFOLIO_MIN_RATIO:.2f})"
    )
