"""E-R1 — batched multi-network runtime: B=32 workloads vs. the legacy loops.

Two gates:

* **80-20 seed sweep** — the fused high-throughput mode (vectorised
  float gather + one batched noise draw per step) against ``B`` separate
  ``SNNNetwork.run`` calls; contractual >= 10x at B=32.
* **CSP/Sudoku batch solve** — the bit-exact solve path (integer CSR
  synapse kernel + compiled batched drives + active-set shrinking)
  against the pre-PR exact mode (per-replica float propagation,
  per-replica input closures, solved replicas merely masked out);
  contractual >= 3x batch-solve throughput at B=32.  Both engines must
  produce identical results, which this benchmark asserts outright.

The solve gate writes ``BENCH_batched.json`` (override with
``BENCH_BATCHED_JSON``) so the batched-runtime performance trajectory
accumulates across CI runs; ``tools/check_bench_regression.py`` compares
the emitted file against the committed baseline in
``benchmarks/baselines/``.

Bit-exact equivalence of the engine's default mode with the sequential
loop is locked down separately in ``tests/runtime``.
"""

import json
import os
import time

import numpy as np

from repro.csp import SpikingCSPSolver, make_instance
from repro.csp.config import CSPConfig
from repro.csp.solver import _BatchEntry, decode_assignment, solve_instances
from repro.csp.scenarios.sudoku import clamps_from_cells, shared_sudoku_graph
from repro.harness import format_table
from repro.runtime import eighty_twenty_seed_sweep
from repro.runtime.batch import BatchedNetwork
from repro.sudoku.puzzles import generate_puzzle_set

#: Sweep configuration: B=32 replicas of a scaled 80-20 network.
BATCH = 32
NUM_NEURONS = 100
NUM_STEPS = 200
SEEDS = list(range(2003, 2003 + BATCH))

#: Acceptance floor for the batched-vs-sequential speedup.  Defaults to
#: the runtime's contractual 10x; shared CI runners with noisy-neighbour
#: scheduling may override it downwards (the CI workflow sets 4) so the
#: gate catches real regressions without flaking on scheduler jitter.
MIN_SPEEDUP = float(os.environ.get("BATCHED_RUNTIME_MIN_SPEEDUP", "10.0"))

#: Acceptance floor for the exact-mode (integer CSR) solve speedup over
#: the pre-PR exact mode.  Contractual 3x locally; CI lowers it to absorb
#: scheduler jitter on shared runners.
MIN_EXACT_SPEEDUP = float(os.environ.get("BATCHED_EXACT_MIN_SPEEDUP", "3.0"))

#: Batch width and step budget of the solve-throughput gate.
SOLVE_BATCH = int(os.environ.get("BATCHED_BENCH_B", "32"))
SOLVE_MAX_STEPS = int(os.environ.get("BATCHED_BENCH_MAX_STEPS", "2000"))
SOLVE_CHECK_INTERVAL = 10

JSON_PATH = os.environ.get(
    "BENCH_BATCHED_JSON", os.path.join(os.path.dirname(__file__), "BENCH_batched.json")
)


def _sequential():
    return eighty_twenty_seed_sweep(
        SEEDS, num_steps=NUM_STEPS, num_neurons=NUM_NEURONS, batched=False
    )


def _batched():
    return eighty_twenty_seed_sweep(
        SEEDS, num_steps=NUM_STEPS, num_neurons=NUM_NEURONS, batched=True, fused=True
    )


def test_batched_runtime_speedup(benchmark):
    # Warm-up both paths (imports, allocator, BLAS threads).
    eighty_twenty_seed_sweep(SEEDS[:2], num_steps=10, num_neurons=NUM_NEURONS, batched=False)
    eighty_twenty_seed_sweep(
        SEEDS[:2], num_steps=10, num_neurons=NUM_NEURONS, batched=True, fused=True
    )

    start = time.perf_counter()
    sequential = _sequential()
    t_sequential = time.perf_counter() - start

    # Best-of-3 for the batched side; the sequential baseline is long
    # enough to be stable with a single measurement.
    t_batched = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batched = _batched()
        t_batched = min(t_batched, time.perf_counter() - start)

    speedup = t_sequential / t_batched
    rows = [
        ["sequential loop", f"{t_sequential * 1e3:.1f}", f"{sequential.mean_rate_hz:.2f}"],
        ["batched (fused)", f"{t_batched * 1e3:.1f}", f"{batched.mean_rate_hz:.2f}"],
    ]
    print()
    print(
        format_table(
            ["Engine", "Wall clock [ms]", "Mean rate [Hz]"],
            rows,
            title=f"B={BATCH} x {NUM_NEURONS} neurons x {NUM_STEPS} ms 80-20 seed sweep",
        )
    )
    print(f"Speedup: {speedup:.1f}x (required: >= {MIN_SPEEDUP:g}x)")

    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["t_sequential_ms"] = t_sequential * 1e3
    benchmark.extra_info["t_batched_ms"] = t_batched * 1e3
    benchmark.pedantic(_batched, rounds=1, iterations=1)

    # Both engines must simulate plausible, comparable network activity.
    assert 1.0 < sequential.mean_rate_hz < 50.0
    assert abs(batched.mean_rate_hz - sequential.mean_rate_hz) / sequential.mean_rate_hz < 0.25
    # The contractual speedup of the batched runtime at B=32 (typical
    # measurements are 15-20x; CI lowers the floor via the env override).
    assert speedup >= MIN_SPEEDUP


def test_batched_runtime_scaling(benchmark):
    """Throughput as the batch width grows (fixed per-replica work)."""
    rows = []
    results = {}
    for width in (1, 8, 32):
        seeds = SEEDS[:width]
        start = time.perf_counter()
        result = eighty_twenty_seed_sweep(
            seeds, num_steps=100, num_neurons=NUM_NEURONS, batched=True, fused=True
        )
        elapsed = time.perf_counter() - start
        per_replica = elapsed / width
        results[width] = per_replica
        rows.append([width, f"{elapsed * 1e3:.1f}", f"{per_replica * 1e3:.2f}", f"{result.mean_rate_hz:.2f}"])
    print()
    print(
        format_table(
            ["B", "Wall clock [ms]", "Per replica [ms]", "Mean rate [Hz]"],
            rows,
            title="Batched runtime scaling (100 ms windows)",
        )
    )
    benchmark.extra_info["per_replica_ms"] = {str(k): v * 1e3 for k, v in results.items()}
    benchmark.pedantic(
        lambda: eighty_twenty_seed_sweep(
            SEEDS, num_steps=100, num_neurons=NUM_NEURONS, batched=True, fused=True
        ),
        rounds=1,
        iterations=1,
    )
    # Batching must amortise per-step overhead: a B=32 replica-step must be
    # much cheaper than a B=1 replica-step.
    assert results[32] < results[1] / 4.0


# ---------------------------------------------------------------------- #
# Exact-mode batch-solve throughput (integer CSR + compiled drives +
# active-set shrinking) vs. the pre-PR exact mode.
# ---------------------------------------------------------------------- #
def _legacy_run_batch(entries, config, *, max_steps, check_interval):
    """The pre-PR CSP batch loop, kept verbatim as the benchmark baseline.

    Per-replica float synapse propagation (``integer_csr=False``),
    per-replica external-input closures (no drive compilation) and
    freeze-only bookkeeping: solved replicas stay in the batch and keep
    being stepped, only their statistics are masked.
    """
    num = len(entries)
    num_neurons = entries[0].graph.num_neurons
    batch = BatchedNetwork.from_networks(
        [e.network for e in entries], synapse_mode="exact", integer_csr=False
    )
    window = max(1, config.decode_window)
    history = np.zeros((window, num, num_neurons), dtype=bool)
    window_counts = np.zeros((num, num_neurons), dtype=np.int64)
    last_spike_step = np.full((num, num_neurons), -1, dtype=np.int64)
    total_spikes = np.zeros(num, dtype=np.int64)
    solved = np.zeros(num, dtype=bool)
    final_steps = np.zeros(num, dtype=np.int64)
    values = [np.zeros(e.graph.num_variables, dtype=np.int64) for e in entries]
    active = np.ones(num, dtype=bool)
    step = 0
    for step in range(1, max_steps + 1):
        fired = batch.step(step)
        slot = step % window
        window_counts -= history[slot]
        history[slot] = fired
        window_counts += fired
        active_fired = fired & active[:, None]
        if active_fired.any():
            last_spike_step[active_fired] = step
            total_spikes += active_fired.sum(axis=1)
        if step % check_interval == 0:
            for b in np.flatnonzero(active):
                e = entries[b]
                vals, dec = decode_assignment(
                    e.graph, window_counts[b], last_spike_step[b], e.clamps
                )
                if e.graph.is_solution(vals, dec):
                    solved[b] = True
                    final_steps[b] = step
                    values[b] = vals
                    active[b] = False
            if not active.any():
                break
    for b in np.flatnonzero(active):
        e = entries[b]
        vals, dec = decode_assignment(e.graph, window_counts[b], last_spike_step[b], e.clamps)
        solved[b] = e.graph.is_solution(vals, dec)
        final_steps[b] = step
        values[b] = vals
    return solved, final_steps, total_spikes


def _sudoku_workload():
    """B solvable puzzles on the shared 729-neuron WTA graph."""
    graph = shared_sudoku_graph()
    puzzles = [
        p.puzzle for p in generate_puzzle_set(SOLVE_BATCH, base_seed=1000, target_clues=45)
    ]
    clamp_sets = [clamps_from_cells(p.cells) for p in puzzles]

    def legacy():
        entries = []
        for clamps in clamp_sets:
            solver = SpikingCSPSolver(graph, seed=7)
            resolved = graph.resolve_clamps(clamps)
            entries.append(_BatchEntry(graph, resolved, solver.build_network(resolved)))
        return _legacy_run_batch(
            entries, CSPConfig(), max_steps=SOLVE_MAX_STEPS, check_interval=SOLVE_CHECK_INTERVAL
        )

    def optimised():
        results = SpikingCSPSolver(graph, seed=7).solve_batch(
            clamp_sets, max_steps=SOLVE_MAX_STEPS, check_interval=SOLVE_CHECK_INTERVAL
        )
        return (
            [r.solved for r in results],
            [r.steps for r in results],
            [r.total_spikes for r in results],
        )

    return graph.num_neurons, legacy, optimised


def _coloring_workload():
    """B independently seeded solver runs of one planted coloring instance."""
    graph, clamps = make_instance("coloring", seed=0, num_vertices=12, num_colors=3)
    resolved = graph.resolve_clamps(clamps)
    seeds = list(range(7, 7 + SOLVE_BATCH))

    def legacy():
        entries = [
            _BatchEntry(graph, resolved, SpikingCSPSolver(graph, seed=s).build_network(resolved))
            for s in seeds
        ]
        return _legacy_run_batch(
            entries, CSPConfig(), max_steps=SOLVE_MAX_STEPS, check_interval=SOLVE_CHECK_INTERVAL
        )

    def optimised():
        results = solve_instances(
            [(graph, clamps)] * SOLVE_BATCH,
            seeds=seeds,
            max_steps=SOLVE_MAX_STEPS,
            check_interval=SOLVE_CHECK_INTERVAL,
        )
        return (
            [r.solved for r in results],
            [r.steps for r in results],
            [r.total_spikes for r in results],
        )

    return graph.num_neurons, legacy, optimised


def _best_of(fn, rounds):
    """Best-of-N wall clock of a deterministic callable (result, seconds)."""
    best = float("inf")
    result = None
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_exact_solve_throughput(benchmark):
    """>= 3x CSP/Sudoku batch-solve throughput over the pre-PR exact mode."""
    payload = {}
    rows = []
    # Solves are deterministic, so repeats only tighten the wall-clock
    # measurement; the small coloring workload is dispatch-bound and
    # noisier, hence more rounds.
    workloads = [
        ("csp_exact", "coloring", _coloring_workload, 3),
        ("sudoku_exact", "sudoku-45", _sudoku_workload, 1),
    ]
    # Warm-up (imports, allocator, BLAS threads) before any timing.
    _, _, warm = _coloring_workload()
    warm()
    for key, label, build, rounds in workloads:
        num_neurons, legacy, optimised = build()
        legacy_result, t_legacy = _best_of(legacy, rounds)
        new_result, t_new = _best_of(optimised, rounds)
        # The two engines are bit-identical by contract; a mismatch means
        # the speedup below would be comparing different computations.
        assert list(legacy_result[0]) == list(new_result[0])
        assert list(legacy_result[1]) == list(new_result[1])
        assert list(legacy_result[2]) == list(new_result[2])
        solved = int(sum(new_result[0]))
        speedup = t_legacy / t_new
        payload[key] = {
            "batch": SOLVE_BATCH,
            "num_neurons": num_neurons,
            "max_steps": SOLVE_MAX_STEPS,
            "check_interval": SOLVE_CHECK_INTERVAL,
            "solved": solved,
            "solve_rate": solved / SOLVE_BATCH,
            "t_legacy_s": t_legacy,
            "t_optimised_s": t_new,
            "speedup": speedup,
            "solves_per_second": solved / t_new if t_new > 0 else 0.0,
        }
        rows.append(
            [
                label,
                num_neurons,
                f"{solved}/{SOLVE_BATCH}",
                f"{t_legacy:.2f}",
                f"{t_new:.2f}",
                f"{speedup:.2f}x",
            ]
        )
    print()
    print(
        format_table(
            ["Workload", "Neurons", "Solved", "Legacy [s]", "Optimised [s]", "Speedup"],
            rows,
            title=f"Exact-mode batch solve at B={SOLVE_BATCH} (<= {SOLVE_MAX_STEPS} steps)",
        )
    )

    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"Wrote {JSON_PATH}")

    benchmark.extra_info.update({k: v["speedup"] for k, v in payload.items()})
    _, _, optimised = _coloring_workload()
    benchmark.pedantic(optimised, rounds=1, iterations=1)

    for key, summary in payload.items():
        assert summary["speedup"] >= MIN_EXACT_SPEEDUP, (
            f"{key}: solve speedup {summary['speedup']:.2f}x below floor "
            f"{MIN_EXACT_SPEEDUP:.2f}x"
        )
