"""E-R1 — batched multi-network runtime: B=32 seed sweep vs. the sequential loop.

The batched runtime (``repro.runtime``) stacks ``B`` independent 80-20
networks into ``(B, N)`` state arrays and advances all of them per step
with fused NumPy updates, instead of looping over ``B`` separate
``SNNNetwork.run`` calls.  This benchmark measures the end-to-end
wall-clock of a 32-seed sweep both ways and asserts the batched engine's
contractual >= 10x speedup (the acceptance bar of the runtime subsystem;
typical measurements land well above it).

The batched run uses the high-throughput configuration (fused synaptic
gather + one batched noise draw per step); bit-exact equivalence of the
engine's default mode with the sequential loop is locked down separately
in ``tests/runtime/test_batch_equivalence.py``.
"""

import os
import time

from repro.harness import format_table
from repro.runtime import eighty_twenty_seed_sweep

#: Sweep configuration: B=32 replicas of a scaled 80-20 network.
BATCH = 32
NUM_NEURONS = 100
NUM_STEPS = 200
SEEDS = list(range(2003, 2003 + BATCH))

#: Acceptance floor for the batched-vs-sequential speedup.  Defaults to
#: the runtime's contractual 10x; shared CI runners with noisy-neighbour
#: scheduling may override it downwards (the CI workflow sets 4) so the
#: gate catches real regressions without flaking on scheduler jitter.
MIN_SPEEDUP = float(os.environ.get("BATCHED_RUNTIME_MIN_SPEEDUP", "10.0"))


def _sequential():
    return eighty_twenty_seed_sweep(
        SEEDS, num_steps=NUM_STEPS, num_neurons=NUM_NEURONS, batched=False
    )


def _batched():
    return eighty_twenty_seed_sweep(
        SEEDS, num_steps=NUM_STEPS, num_neurons=NUM_NEURONS, batched=True, fused=True
    )


def test_batched_runtime_speedup(benchmark):
    # Warm-up both paths (imports, allocator, BLAS threads).
    eighty_twenty_seed_sweep(SEEDS[:2], num_steps=10, num_neurons=NUM_NEURONS, batched=False)
    eighty_twenty_seed_sweep(
        SEEDS[:2], num_steps=10, num_neurons=NUM_NEURONS, batched=True, fused=True
    )

    start = time.perf_counter()
    sequential = _sequential()
    t_sequential = time.perf_counter() - start

    # Best-of-3 for the batched side; the sequential baseline is long
    # enough to be stable with a single measurement.
    t_batched = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batched = _batched()
        t_batched = min(t_batched, time.perf_counter() - start)

    speedup = t_sequential / t_batched
    rows = [
        ["sequential loop", f"{t_sequential * 1e3:.1f}", f"{sequential.mean_rate_hz:.2f}"],
        ["batched (fused)", f"{t_batched * 1e3:.1f}", f"{batched.mean_rate_hz:.2f}"],
    ]
    print()
    print(
        format_table(
            ["Engine", "Wall clock [ms]", "Mean rate [Hz]"],
            rows,
            title=f"B={BATCH} x {NUM_NEURONS} neurons x {NUM_STEPS} ms 80-20 seed sweep",
        )
    )
    print(f"Speedup: {speedup:.1f}x (required: >= {MIN_SPEEDUP:g}x)")

    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["t_sequential_ms"] = t_sequential * 1e3
    benchmark.extra_info["t_batched_ms"] = t_batched * 1e3
    benchmark.pedantic(_batched, rounds=1, iterations=1)

    # Both engines must simulate plausible, comparable network activity.
    assert 1.0 < sequential.mean_rate_hz < 50.0
    assert abs(batched.mean_rate_hz - sequential.mean_rate_hz) / sequential.mean_rate_hz < 0.25
    # The contractual speedup of the batched runtime at B=32 (typical
    # measurements are 15-20x; CI lowers the floor via the env override).
    assert speedup >= MIN_SPEEDUP


def test_batched_runtime_scaling(benchmark):
    """Throughput as the batch width grows (fixed per-replica work)."""
    rows = []
    results = {}
    for width in (1, 8, 32):
        seeds = SEEDS[:width]
        start = time.perf_counter()
        result = eighty_twenty_seed_sweep(
            seeds, num_steps=100, num_neurons=NUM_NEURONS, batched=True, fused=True
        )
        elapsed = time.perf_counter() - start
        per_replica = elapsed / width
        results[width] = per_replica
        rows.append([width, f"{elapsed * 1e3:.1f}", f"{per_replica * 1e3:.2f}", f"{result.mean_rate_hz:.2f}"])
    print()
    print(
        format_table(
            ["B", "Wall clock [ms]", "Per replica [ms]", "Mean rate [Hz]"],
            rows,
            title="Batched runtime scaling (100 ms windows)",
        )
    )
    benchmark.extra_info["per_replica_ms"] = {str(k): v * 1e3 for k, v in results.items()}
    benchmark.pedantic(
        lambda: eighty_twenty_seed_sweep(
            SEEDS, num_steps=100, num_neurons=NUM_NEURONS, batched=True, fused=True
        ),
        rounds=1,
        iterations=1,
    )
    # Batching must amortise per-step overhead: a B=32 replica-step must be
    # much cheaper than a B=1 replica-step.
    assert results[32] < results[1] / 4.0
