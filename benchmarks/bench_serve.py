"""E-S2 — continuous-batching solve service under synthetic open-loop load.

Drives the :mod:`repro.serve` service at batch capacity with a seeded
many-client open-loop workload (Poisson arrivals over the scheduler's
step clock, a bounded unique-instance pool so repeats exercise the
dedup layer) and measures sustained served solves per wall-clock second
plus the deterministic scheduler-step latency percentiles.

Two properties are *asserted*, not just reported:

* every served result is bit-identical to the offline
  ``SpikingCSPSolver.solve`` run with the same derived seed and budget
  (the serving contract of ``docs/SERVING.md``); and
* the run's request ledger is conserved
  (``served + shed + cancelled + in_flight == submitted``).

Emits ``BENCH_serve.json`` (override with ``BENCH_SERVE_JSON``);
``tools/check_bench_regression.py`` compares it against the committed
baseline — throughput and the p99 step latency are gated.

Environment knobs (CI smoke lowers the workload; nightly runs it full):

===============================  ===========================================
``SERVE_BENCH_CAPACITY``         batch rows kept hot (default 32)
``SERVE_BENCH_CLIENTS``          concurrent synthetic clients (default 8)
``SERVE_BENCH_REQUESTS``         requests per client (default 8)
``SERVE_BENCH_UNIQUE``           unique instances in the pool (default 24)
``SERVE_BENCH_INTERARRIVAL``     mean arrival gap in steps (default 12)
``SERVE_BENCH_MAX_STEPS``        per-request step budget (default 1500)
``SERVE_BENCH_VERTICES``         coloring vertices per instance (default 12)
``SERVE_BENCH_ROUNDS``           wall-clock timing rounds, best-of (default 3)
===============================  ===========================================
"""

import json
import os
import time

import numpy as np

from repro.csp.config import CSPConfig
from repro.csp.solver import SpikingCSPSolver
from repro.harness import format_table
from repro.serve import OpenLoopLoad, build_instance_pool, run_open_loop_sync

CAPACITY = int(os.environ.get("SERVE_BENCH_CAPACITY", "32"))
CLIENTS = int(os.environ.get("SERVE_BENCH_CLIENTS", "8"))
REQUESTS = int(os.environ.get("SERVE_BENCH_REQUESTS", "8"))
UNIQUE = int(os.environ.get("SERVE_BENCH_UNIQUE", "24"))
INTERARRIVAL = float(os.environ.get("SERVE_BENCH_INTERARRIVAL", "12"))
MAX_STEPS = int(os.environ.get("SERVE_BENCH_MAX_STEPS", "1500"))
VERTICES = int(os.environ.get("SERVE_BENCH_VERTICES", "12"))
ROUNDS = int(os.environ.get("SERVE_BENCH_ROUNDS", "3"))
CHECK_INTERVAL = 10
SEED = 2025

JSON_PATH = os.environ.get(
    "BENCH_SERVE_JSON", os.path.join(os.path.dirname(__file__), "BENCH_serve.json")
)

SPEC = OpenLoopLoad(
    num_clients=CLIENTS,
    requests_per_client=REQUESTS,
    mean_interarrival_steps=INTERARRIVAL,
    scenario="coloring",
    scenario_params={"num_vertices": VERTICES, "num_colors": 3},
    unique_instances=UNIQUE,
    seed=SEED,
    max_steps=MAX_STEPS,
)


def _merge_into_json(updates):
    """Merge ``updates`` into ``BENCH_serve.json``, preserving other keys."""
    payload = {}
    if os.path.exists(JSON_PATH):
        try:
            with open(JSON_PATH) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            payload = {}
    payload.update(updates)
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"Wrote {JSON_PATH}")


def _run_load(**extra_service_kwargs):
    """One full open-loop run; returns (rows, metrics, wall seconds)."""
    start = time.perf_counter()
    rows, metrics, _ = run_open_loop_sync(
        SPEC,
        capacity=CAPACITY,
        check_interval=CHECK_INTERVAL,
        default_max_steps=MAX_STEPS,
        seed=SEED,
        clock="steps",
        **extra_service_kwargs,
    )
    return rows, metrics, time.perf_counter() - start


#: Durability counters differ between a plain and a checkpointed run by
#: construction; everything else in the snapshot must be identical.
_DURABILITY_KEYS = frozenset(
    {"checkpoints", "restores", "restored_rows", "replayed", "checkpoint_failures"}
)


def _scheduling_metrics(metrics):
    return {k: v for k, v in metrics.as_dict().items() if k not in _DURABILITY_KEYS}


def _assert_offline_identity(rows):
    """Every served result equals the standalone solve with its seed."""
    pool = build_instance_pool(SPEC)
    config = CSPConfig()
    offline = {}
    for _, pick, served in rows:
        assert served is not None, "open-loop run shed requests unexpectedly"
        ident = (pick, served.seed, served.max_steps)
        if ident not in offline:
            graph, clamps = pool[pick]
            offline[ident] = SpikingCSPSolver(graph, config, seed=served.seed).solve(
                clamps, max_steps=served.max_steps, check_interval=CHECK_INTERVAL
            )
        reference = offline[ident]
        assert reference.solved == served.result.solved
        assert reference.steps == served.result.steps
        assert reference.total_spikes == served.result.total_spikes
        assert reference.neuron_updates == served.result.neuron_updates
        np.testing.assert_array_equal(reference.values, served.result.values)
        np.testing.assert_array_equal(reference.decided, served.result.decided)
    return len(offline)


def test_serve_open_loop_sustained_throughput(benchmark):
    rows, metrics, wall = _run_load()
    for _ in range(max(0, ROUNDS - 1)):
        _, repeat_metrics, repeat_wall = _run_load()
        # Deterministic service: repeats only tighten the wall clock.
        assert repeat_metrics.as_dict() == metrics.as_dict()
        wall = min(wall, repeat_wall)

    unique_solves = _assert_offline_identity(rows)
    snap = metrics.as_dict()
    assert (
        snap["served"] + snap["shed"] + snap["cancelled"] + snap["in_flight"]
        == snap["submitted"]
    )
    assert snap["in_flight"] == 0  # drained

    total = SPEC.total_requests
    repeats = total - unique_solves
    dedup_hits = snap["cache_hits"] + snap["coalesced"]
    payload = {
        "open_loop": {
            # Run configuration (the regression gate's fingerprint).
            "scenario": "coloring",
            "capacity": CAPACITY,
            "num_clients": CLIENTS,
            "requests_per_client": REQUESTS,
            "unique_instances": UNIQUE,
            "mean_interarrival_steps": INTERARRIVAL,
            "max_steps": MAX_STEPS,
            "num_neurons": VERTICES * 3,
            # Deterministic outcomes.
            "total_requests": total,
            "served": snap["served"],
            "solved": snap["solved"],
            "solve_rate": snap["solved"] / total,
            "total_steps": snap["total_steps"],
            "occupancy": snap["occupancy"],
            "latency_steps_p50": snap["latency_steps_p50"],
            "latency_steps_p99": snap["latency_steps_p99"],
            "cache_hits": snap["cache_hits"],
            "coalesced": snap["coalesced"],
            "repeat_requests": repeats,
            "cache_hit_rate": dedup_hits / repeats if repeats else 0.0,
            "shed": snap["shed"],
            # Wall-clock throughput (best of ROUNDS).
            "wall_seconds": wall,
            "solves_per_second": snap["solved"] / wall if wall > 0 else 0.0,
            "steps_per_second": snap["total_steps"] / wall if wall > 0 else 0.0,
        }
    }

    summary = payload["open_loop"]
    print()
    print(
        format_table(
            ["Requests", "Served", "Solved", "p50 steps", "p99 steps", "Dedup", "Solves/s"],
            [
                [
                    total,
                    summary["served"],
                    summary["solved"],
                    f"{summary['latency_steps_p50']:.0f}",
                    f"{summary['latency_steps_p99']:.0f}",
                    f"{dedup_hits}/{repeats}",
                    f"{summary['solves_per_second']:.1f}",
                ]
            ],
            title=(
                f"Solve service: {CLIENTS} clients x {REQUESTS} requests, "
                f"B={CAPACITY}, {UNIQUE} unique instances"
            ),
        )
    )

    _merge_into_json(payload)
    benchmark.extra_info.update(
        {
            "solves_per_second": summary["solves_per_second"],
            "latency_steps_p99": summary["latency_steps_p99"],
            "cache_hit_rate": summary["cache_hit_rate"],
        }
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # The service must actually solve the pool it serves...
    assert summary["solve_rate"] >= 0.9
    # ...and repeats of in-pool instances must be deduplicated.
    if repeats:
        assert dedup_hits == repeats


def test_serve_open_loop_checkpointed_overhead(benchmark):
    """E-S3 — the same open-loop load with crash-safe durability enabled.

    The service journals every admission (fsynced write-ahead log) and
    snapshots the full engine state every ``10 * check_interval`` steps
    (:mod:`repro.runtime.checkpoint`).  Two things are asserted: the
    durability layer is **results-invisible** — every served row and
    every scheduling metric is bit-identical to the plain run — and its
    wall-clock cost stays within the committed-baseline gate
    (``open_loop_checkpointed`` in ``BENCH_serve.json``).
    """
    import tempfile

    rows_plain, metrics_plain, _ = _run_load()

    def durable_round(root, index):
        return _run_load(
            checkpoint_dir=os.path.join(root, f"ckpts-{index}"),
            checkpoint_every=10 * CHECK_INTERVAL,
            journal_path=os.path.join(root, f"journal-{index}.wal"),
        )

    with tempfile.TemporaryDirectory(prefix="bench-serve-ckpt-") as root:
        rows, metrics, wall = durable_round(root, 0)
        for index in range(1, max(1, ROUNDS)):
            _, repeat_metrics, repeat_wall = durable_round(root, index)
            assert _scheduling_metrics(repeat_metrics) == _scheduling_metrics(metrics)
            wall = min(wall, repeat_wall)

    # Durability must not change a single served bit...
    assert _scheduling_metrics(metrics) == _scheduling_metrics(metrics_plain)
    for (client, pick, served), (ref_client, ref_pick, reference) in zip(rows, rows_plain):
        assert (client, pick) == (ref_client, ref_pick)
        assert served is not None and reference is not None
        assert served.seed == reference.seed
        assert served.result.solved == reference.result.solved
        assert served.result.steps == reference.result.steps
        assert served.result.total_spikes == reference.result.total_spikes
        np.testing.assert_array_equal(served.result.values, reference.result.values)
        np.testing.assert_array_equal(served.result.decided, reference.result.decided)
    # ...and it must have actually been on.
    snap = metrics.as_dict()
    assert snap["checkpoints"] >= 1 and snap["restores"] == 0

    unique = len({(pick, served.seed, served.max_steps) for _, pick, served in rows})
    repeats = SPEC.total_requests - unique
    dedup_hits = snap["cache_hits"] + snap["coalesced"]
    payload = {
        "open_loop_checkpointed": {
            # Run configuration (the regression gate's fingerprint).
            "scenario": "coloring",
            "capacity": CAPACITY,
            "num_clients": CLIENTS,
            "requests_per_client": REQUESTS,
            "unique_instances": UNIQUE,
            "mean_interarrival_steps": INTERARRIVAL,
            "max_steps": MAX_STEPS,
            "num_neurons": VERTICES * 3,
            # Deterministic outcomes (identical to the plain leg by assert).
            "served": snap["served"],
            "solved": snap["solved"],
            "solve_rate": snap["solved"] / SPEC.total_requests,
            "latency_steps_p50": snap["latency_steps_p50"],
            "latency_steps_p99": snap["latency_steps_p99"],
            "cache_hit_rate": dedup_hits / repeats if repeats else 0.0,
            "checkpoints": snap["checkpoints"],
            # Wall-clock throughput with durability on (best of ROUNDS).
            "wall_seconds": wall,
            "solves_per_second": snap["solved"] / wall if wall > 0 else 0.0,
        }
    }
    summary = payload["open_loop_checkpointed"]
    print()
    print(
        format_table(
            ["Served", "Solved", "Checkpoints", "p99 steps", "Solves/s"],
            [
                [
                    summary["served"],
                    summary["solved"],
                    summary["checkpoints"],
                    f"{summary['latency_steps_p99']:.0f}",
                    f"{summary['solves_per_second']:.1f}",
                ]
            ],
            title="Solve service with checkpointing + admission journal",
        )
    )
    _merge_into_json(payload)
    benchmark.extra_info.update(
        {
            "solves_per_second": summary["solves_per_second"],
            "latency_steps_p99": summary["latency_steps_p99"],
        }
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
