#!/usr/bin/env python3
"""Generating, inspecting and timing the evaluation kernels (paper Listing 1).

Builds the 80-20 workload twice — once with the neuromorphic instructions
and once with base RV32IM only — shows the generated assembly, verifies
that both programs compute bit-identical network state, and compares their
instruction counts and cycle counts on the 3-stage pipeline (the core of
the paper's argument for the ISA extension), including the dual-core
configuration on a shared bus.

Run with:  python examples/custom_isa_program.py [--neurons 64] [--steps 3]
"""

import argparse

import numpy as np

from repro.codegen import build_eighty_twenty_workload
from repro.sim import CycleAccurateCore, MultiCoreSystem


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--neurons", type=int, default=64)
    parser.add_argument("--steps", type=int, default=3)
    args = parser.parse_args()

    workloads = {
        kind: build_eighty_twenty_workload(num_neurons=args.neurons, num_steps=args.steps, kind=kind)
        for kind in ("extension", "baseline")
    }

    print("=== Generated neuron-update loop (extension kernel, excerpt) ===")
    source = workloads["extension"].source
    excerpt = source.split("ext_neuron_loop:")[1].split("ext_no_spike:")[0]
    print("ext_neuron_loop:" + excerpt)

    print("=== Functional equivalence ===")
    final_state = {}
    for kind, workload in workloads.items():
        sim = workload.make_simulator()
        sim.run(max_instructions=20_000_000)
        final_state[kind] = workload.read_vu_words(sim)
        print(f"  {kind:10s}: {sim.instret:8d} instructions, {workload.total_spikes(sim)} spikes")
    identical = bool(np.array_equal(final_state["extension"], final_state["baseline"]))
    print(f"  final VU state bit-identical across kernels: {identical}\n")

    print("=== Cycle-level comparison (single core @ 30 MHz) ===")
    cycles = {}
    for kind, workload in workloads.items():
        counters = CycleAccurateCore(workload.make_simulator()).run()
        cycles[kind] = counters.cycles
        print(f"  {kind:10s}: {counters.cycles:8d} cycles, IPC={counters.ipc:.3f}, "
              f"IPC_eff={counters.ipc_eff:.3f}, time={counters.execution_time_s(30e6)*1e3:.3f} ms")
    print(f"  extension speedup over base-ISA kernel: {cycles['baseline'] / cycles['extension']:.2f}x\n")

    print("=== Dual-core configuration (static neuron partitioning) ===")

    def builder(core_id: int, total: int):
        return build_eighty_twenty_workload(
            num_neurons=args.neurons // total, num_steps=args.steps, kind="extension", seed=2003 + core_id
        ).make_simulator()

    single = MultiCoreSystem.from_builder(1, builder).run()
    dual = MultiCoreSystem.from_builder(2, builder).run()
    print(f"  single core: {single.system_cycles} cycles")
    print(f"  dual core  : {dual.system_cycles} cycles  -> speedup {dual.speedup_over(single):.3f}x "
          f"(paper reports 1.643x on the full-size network)")


if __name__ == "__main__":
    main()
