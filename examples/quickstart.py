#!/usr/bin/env python3
"""Quickstart: the neuromorphic instructions end-to-end in a few minutes.

The walkthrough lives in :mod:`repro.quickstart` so it is also available
as the ``izhirisc-quickstart`` console script after ``pip install -e .``;
this file keeps the historical ``python examples/quickstart.py`` entry
point working from a plain checkout.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.quickstart import main

if __name__ == "__main__":
    raise SystemExit(main())
