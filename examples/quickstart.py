#!/usr/bin/env python3
"""Quickstart: the neuromorphic instructions end-to-end in a few minutes.

This example walks through the core pieces of the IzhiRISC-V reproduction:

1. packing Izhikevich parameters for the ``nmldl`` configuration
   instruction and stepping a single neuron on the bit-accurate NPU model,
2. decaying a synaptic current with the DCU shift-add approximation,
3. assembling and running a small RISC-V program that uses the custom
   instructions on the functional simulator, and
4. timing the same program on the cycle-accurate 3-stage pipeline model.

Run with:  python examples/quickstart.py
"""

from repro.fixedpoint import Q15_16, pack_vu_float, unpack_vu_float
from repro.isa import IzhikevichParams, assemble, disassemble, pack_nmldl_operands
from repro.sim import (
    CycleAccurateCore,
    DCU,
    DEFAULT_MEMORY_MAP,
    FunctionalSimulator,
    Memory,
    NMConfig,
    NPU,
)


def single_neuron_on_the_npu() -> None:
    """Step a regular-spiking neuron with a constant 10 pA-equivalent drive."""
    print("=== 1. Single Izhikevich neuron on the NPU (nmpn semantics) ===")
    config = NMConfig()
    config.load_params(IzhikevichParams.regular_spiking())
    config.load_timestep(fine_timestep=False)  # 0.5 ms Euler steps
    npu = NPU(config)

    v, u, spikes = -65.0, -13.0, 0
    for _ in range(2000):  # 1 second of biological time
        v, u, fired = npu.update_float(v, u, isyn=10.0)
        spikes += fired
    print(f"  after 1000 ms at Isyn=10: v={v:.2f} mV, u={u:.2f}, spikes={spikes}\n")


def current_decay_on_the_dcu() -> None:
    """Apply the AMPA-style exponential decay used by nmdec."""
    print("=== 2. Synaptic current decay on the DCU (nmdec semantics) ===")
    config = NMConfig()
    config.load_timestep()
    dcu = DCU(config)
    current = 100.0
    trace = []
    for _ in range(10):
        current = dcu.decay_float(current, tau_select=4)
        trace.append(round(current, 3))
    print(f"  I(t) over 10 steps (tau select 4): {trace}\n")


def run_assembly_program() -> FunctionalSimulator:
    """Assemble a program using the custom instructions and execute it."""
    print("=== 3. Assembly program with nmldl/nmldh/nmpn/nmdec ===")
    rs1, rs2 = pack_nmldl_operands(IzhikevichParams.regular_spiking())
    vu_word = pack_vu_float(-65.0, -13.0)
    isyn_word = Q15_16.to_unsigned(Q15_16.from_float(12.0))

    source = f"""
    .equ VU_ADDR, 0x10000000
    _start:
        li   a6, {rs1}
        li   a7, {rs2}
        nmldl x0, a6, a7          # load a, b, c, d
        li   t0, 0
        nmldh x0, t0, x0          # 0.5 ms timestep, no pin
        li   a0, {vu_word}        # packed (v, u)
        li   a1, {isyn_word}      # synaptic current (Q15.16)
        li   a2, VU_ADDR
        li   s0, 100              # simulate 100 timesteps
        li   s1, 0                # spike counter
    loop:
        nmpn a2, a0, a1           # update neuron, store VU word, a2 <- spike
        add  s1, s1, a2
        li   a2, VU_ADDR
        lw   a0, 0(a2)            # reload the updated state
        li   t1, 4
        nmdec a1, t1, a1          # decay the current
        addi s0, s0, -1
        bnez s0, loop
        li   a0, 0
        li   a7, 93
        ecall
    """
    program = assemble(source)
    print("  first instructions of the assembled program:")
    for line in disassemble(program.words[:6]).splitlines():
        print("   ", line)

    memory = Memory(DEFAULT_MEMORY_MAP())
    sim = FunctionalSimulator(memory)
    sim.load_program(program)
    sim.run()
    v, u = unpack_vu_float(memory.load_word(0x1000_0000))
    print(f"  executed {sim.instret} instructions; spikes={sim.regs[9]}, final v={v:.2f} mV, u={u:.2f}\n")
    return sim


def time_it_on_the_pipeline() -> None:
    """Run the same workload on the cycle-accurate 3-stage pipeline."""
    print("=== 4. Cycle-accurate timing on the 3-stage DTEK-V pipeline ===")
    from repro.codegen import build_eighty_twenty_workload

    workload = build_eighty_twenty_workload(num_neurons=64, num_steps=3, kind="extension")
    core = CycleAccurateCore(workload.make_simulator())
    counters = core.run()
    print(f"  cycles={counters.cycles}  instructions={counters.instructions}")
    print(f"  IPC={counters.ipc:.3f}  IPC_eff={counters.ipc_eff:.3f}  "
          f"hazard stalls={counters.hazard_stall_percent:.2f}%")
    print(f"  I-cache hit rate={counters.icache.hit_rate:.2f}%  "
          f"D-cache hit rate={counters.dcache.hit_rate:.2f}%")
    print(f"  execution time @30 MHz = {counters.execution_time_s(30e6) * 1e3:.3f} ms\n")


if __name__ == "__main__":
    single_neuron_on_the_npu()
    current_decay_on_the_dcu()
    run_assembly_program()
    time_it_on_the_pipeline()
    print("Quickstart finished.")
