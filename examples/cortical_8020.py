#!/usr/bin/env python3
"""The 80-20 cortical network (paper §VI-B, Figures 2 and 3).

Simulates Izhikevich's 1000-neuron pulse-coupled network (80 % excitatory,
20 % inhibitory) on two arithmetic backends — the double-precision
reference and the NPU's 16-bit fixed point — prints a coarse ASCII raster
plot (Figure 2), compares inter-spike-interval histograms (Figure 3) and
reports the alpha/gamma rhythm content.

Run with:  python examples/cortical_8020.py [--steps 1000] [--neurons 1000]
"""

import argparse


from repro.snn import (
    EightyTwentyConfig,
    histogram_similarity,
    isi_histogram,
    render_ascii_raster,
    run_eighty_twenty,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=1000, help="simulation length in 1 ms steps")
    parser.add_argument("--neurons", type=int, default=1000, help="population size (80/20 split)")
    args = parser.parse_args()

    num_exc = int(round(0.8 * args.neurons))
    config = EightyTwentyConfig(num_excitatory=num_exc, num_inhibitory=args.neurons - num_exc)

    print(f"Simulating the 80-20 network: {args.neurons} neurons, {args.steps} ms\n")
    results = {}
    for backend in ("float64", "fixed"):
        raster, summary = run_eighty_twenty(num_steps=args.steps, backend=backend, config=config)
        results[backend] = (raster, summary)
        print(f"--- {backend} backend ---")
        print(f"  spikes: {raster.num_spikes}, mean rate: {raster.mean_rate_hz():.2f} Hz")
        print(f"  alpha fraction: {summary['alpha_fraction']:.3f}, gamma fraction: {summary['gamma_fraction']:.3f}")

    print("\nFigure 2 — raster plot (fixed-point backend, coarse ASCII rendering):")
    print(render_ascii_raster(results["fixed"][0], max_rows=30, max_cols=100))

    _, counts_float = isi_histogram(results["float64"][0])
    edges, counts_fixed = isi_histogram(results["fixed"][0])
    similarity = histogram_similarity(counts_float, counts_fixed)
    print("\nFigure 3 — ISI histogram comparison (counts per 5 ms bin, first 100 ms):")
    header = "bin [ms]   " + " ".join(f"{int(e):>5d}" for e in edges[:20])
    print(header)
    print("float64    " + " ".join(f"{int(c):>5d}" for c in counts_float[:20]))
    print("fixed      " + " ".join(f"{int(c):>5d}" for c in counts_fixed[:20]))
    print(f"\ncosine similarity between the two histograms: {similarity:.3f}")


if __name__ == "__main__":
    main()
