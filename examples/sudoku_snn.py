#!/usr/bin/env python3
"""Solving Sudoku with the 729-neuron WTA spiking network (paper §VI-C).

Builds the Winner-Takes-All network (Figure 4's inhibition structure),
runs it on the NPU fixed-point datapath with the membrane pin enabled and
decodes the solution from the spike activity.  The classical backtracking
solver verifies the answer.

Run with:  python examples/sudoku_snn.py [--puzzles 2] [--max-steps 6000]
"""

import argparse
import time

from repro.sudoku import (
    BacktrackingSolver,
    EXAMPLE_PUZZLE,
    PuzzleGenerator,
    SNNSudokuSolver,
    SudokuBoard,
    connectivity_statistics,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--puzzles", type=int, default=1, help="extra generated puzzles to solve")
    parser.add_argument("--max-steps", type=int, default=6000, help="network step budget per puzzle")
    parser.add_argument("--clues", type=int, default=31, help="target clue count of generated puzzles")
    args = parser.parse_args()

    stats = connectivity_statistics()
    print("WTA network structure (Figure 4):")
    print(f"  neurons: {stats.num_neurons}, inhibitory edges: {stats.num_inhibitory_edges}")
    print(f"  each spike inhibits {stats.inhibitory_out_degree} neurons "
          f"({stats.row_targets} row / {stats.column_targets} column / "
          f"{stats.box_only_targets} box / {stats.cell_targets} same-cell)\n")

    boards = [("example", SudokuBoard.from_string(EXAMPLE_PUZZLE))]
    generator = PuzzleGenerator()
    for i in range(args.puzzles):
        generated = generator.generate(seed=2000 + i, target_clues=args.clues)
        boards.append((f"generated #{i} ({generated.num_clues} clues)", generated.puzzle))

    solver = SNNSudokuSolver()
    reference = BacktrackingSolver()
    for name, puzzle in boards:
        print(f"--- {name} ---")
        print(puzzle.pretty())
        start = time.perf_counter()
        result = solver.solve(puzzle, max_steps=args.max_steps, check_interval=5)
        elapsed = time.perf_counter() - start
        print(f"\nSNN solver: solved={result.solved} in {result.steps} network steps "
              f"({result.total_spikes} spikes, {result.neuron_updates} neuron updates, {elapsed:.1f} s wall clock)")
        if result.solved:
            reference_solution = reference.solve(puzzle)
            agrees = reference_solution is not None and (reference_solution.cells == result.board.cells).all()
            print(f"matches the backtracking reference: {agrees}")
            print(result.board.pretty())
        else:
            print("did not converge within the step budget "
                  "(harder instances need a larger --max-steps).")
        print()


if __name__ == "__main__":
    main()
