#!/usr/bin/env python3
"""Solving classic constraint problems with the spiking WTA solver.

The paper's Sudoku network (§VI-C) generalises to any finite-domain
constraint-satisfaction problem: `repro.csp` maps variables to neuron
arrays, conflicts to inhibitory synapses and clues to clamp drives.
This example solves three scenario families on the NPU fixed-point
datapath: map coloring (Australia), N-queens and Latin-square
completion — all stacked into one exact-mode batched network where the
instances are compatible.

Run with:  python examples/csp_scenarios.py [--max-steps 4000]
"""

import argparse
import time

from repro.csp import SpikingCSPSolver, make_instance
from repro.csp.scenarios.latin import random_latin_square
from repro.csp.solver import solve_instances


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def show_result(name, result):
    status = f"solved in {result.steps} steps" if result.solved else "NOT solved"
    print(f"  {name:<28} {status:<22} ({result.total_spikes} spikes)")
    return result.solved


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-steps", type=int, default=4000, help="step budget per instance")
    args = parser.parse_args()

    banner("Map coloring: Australia with 3 colors")
    graph, clamps = make_instance("australia")
    stats = graph.statistics()
    print(f"  {stats.num_variables} regions x 3 colors = {stats.num_neurons} neurons, "
          f"{stats.num_conflict_edges} inhibitory conflict edges")
    result = SpikingCSPSolver(graph, seed=1).solve(clamps, max_steps=args.max_steps)
    show_result("australia", result)
    if result.solved:
        colors = result.assignment(graph)
        print("  coloring:", ", ".join(f"{k}={v}" for k, v in sorted(colors.items())))

    banner("6-queens")
    graph, clamps = make_instance("queens", n=6)
    result = SpikingCSPSolver(graph, seed=2).solve(clamps, max_steps=args.max_steps)
    show_result("queens-6", result)
    if result.solved:
        n = graph.num_variables
        for row in range(n):
            col = int(result.values[row])
            print("  " + " ".join("Q" if c + 1 == col else "." for c in range(n)))

    banner("Latin-square completion (4x4, batched)")
    instances = [make_instance("latin", n=4, seed=seed) for seed in range(3)]
    start = time.perf_counter()
    results = solve_instances(instances, seeds=[7, 7, 7], max_steps=args.max_steps)
    elapsed = time.perf_counter() - start
    solved = 0
    for seed, result in enumerate(results):
        solved += show_result(f"latin-4 seed={seed}", result)
    print(f"  batch of {len(results)} solved together in {elapsed * 1e3:.0f} ms "
          f"({solved}/{len(results)} solved)")
    if results[0].solved:
        square = results[0].values.reshape(4, 4)
        reference = random_latin_square(4, seed=0)
        print("  first square:", square.ravel().tolist(),
              "(source square:", reference.ravel().tolist(), ")")


if __name__ == "__main__":
    main()
