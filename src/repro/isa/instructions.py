"""Instruction registry and decoder for RV32IM plus the neuromorphic extension.

The registry maps mnemonics to :class:`InstrSpec` (format, opcode, funct3,
funct7) and the :func:`decode` function turns a 32-bit instruction word into
a :class:`DecodedInstr` used by the functional and cycle-level simulators.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Tuple

from . import encoding as enc
from .encoding import InstrFormat

__all__ = [
    "InstrSpec",
    "DecodedInstr",
    "INSTRUCTIONS",
    "lookup",
    "decode",
    "encode",
    "NM_MNEMONICS",
]

#: Mnemonics of the custom neuromorphic instructions (paper Table I).
NM_MNEMONICS = ("nmldl", "nmldh", "nmpn", "nmdec")


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one instruction encoding."""

    name: str
    fmt: InstrFormat
    opcode: int
    funct3: Optional[int] = None
    funct7: Optional[int] = None

    def encode(self, rd: int = 0, rs1: int = 0, rs2: int = 0, imm: int = 0) -> int:
        """Encode this instruction with the given operands."""
        f3 = self.funct3 or 0
        f7 = self.funct7 or 0
        if self.fmt in (InstrFormat.R, InstrFormat.N):
            return enc.encode_r(self.opcode, rd, f3, rs1, rs2, f7)
        if self.fmt is InstrFormat.I:
            if self.name in ("slli", "srli", "srai"):
                shamt = imm & 0x1F
                return enc.encode_i(self.opcode, rd, f3, rs1, (f7 << 5) | shamt)
            return enc.encode_i(self.opcode, rd, f3, rs1, imm)
        if self.fmt is InstrFormat.S:
            return enc.encode_s(self.opcode, f3, rs1, rs2, imm)
        if self.fmt is InstrFormat.B:
            return enc.encode_b(self.opcode, f3, rs1, rs2, imm)
        if self.fmt is InstrFormat.U:
            return enc.encode_u(self.opcode, rd, imm)
        if self.fmt is InstrFormat.J:
            return enc.encode_j(self.opcode, rd, imm)
        raise ValueError(f"cannot encode format {self.fmt}")  # pragma: no cover


def _build_registry() -> Dict[str, InstrSpec]:
    R, I, S, B, U, J, N = (
        InstrFormat.R,
        InstrFormat.I,
        InstrFormat.S,
        InstrFormat.B,
        InstrFormat.U,
        InstrFormat.J,
        InstrFormat.N,
    )
    specs: List[InstrSpec] = [
        # RV32I — upper immediates and jumps
        InstrSpec("lui", U, enc.OPCODE_LUI),
        InstrSpec("auipc", U, enc.OPCODE_AUIPC),
        InstrSpec("jal", J, enc.OPCODE_JAL),
        InstrSpec("jalr", I, enc.OPCODE_JALR, 0b000),
        # RV32I — branches
        InstrSpec("beq", B, enc.OPCODE_BRANCH, 0b000),
        InstrSpec("bne", B, enc.OPCODE_BRANCH, 0b001),
        InstrSpec("blt", B, enc.OPCODE_BRANCH, 0b100),
        InstrSpec("bge", B, enc.OPCODE_BRANCH, 0b101),
        InstrSpec("bltu", B, enc.OPCODE_BRANCH, 0b110),
        InstrSpec("bgeu", B, enc.OPCODE_BRANCH, 0b111),
        # RV32I — loads
        InstrSpec("lb", I, enc.OPCODE_LOAD, 0b000),
        InstrSpec("lh", I, enc.OPCODE_LOAD, 0b001),
        InstrSpec("lw", I, enc.OPCODE_LOAD, 0b010),
        InstrSpec("lbu", I, enc.OPCODE_LOAD, 0b100),
        InstrSpec("lhu", I, enc.OPCODE_LOAD, 0b101),
        # RV32I — stores
        InstrSpec("sb", S, enc.OPCODE_STORE, 0b000),
        InstrSpec("sh", S, enc.OPCODE_STORE, 0b001),
        InstrSpec("sw", S, enc.OPCODE_STORE, 0b010),
        # RV32I — register-immediate ALU
        InstrSpec("addi", I, enc.OPCODE_OP_IMM, 0b000),
        InstrSpec("slti", I, enc.OPCODE_OP_IMM, 0b010),
        InstrSpec("sltiu", I, enc.OPCODE_OP_IMM, 0b011),
        InstrSpec("xori", I, enc.OPCODE_OP_IMM, 0b100),
        InstrSpec("ori", I, enc.OPCODE_OP_IMM, 0b110),
        InstrSpec("andi", I, enc.OPCODE_OP_IMM, 0b111),
        InstrSpec("slli", I, enc.OPCODE_OP_IMM, 0b001, 0b0000000),
        InstrSpec("srli", I, enc.OPCODE_OP_IMM, 0b101, 0b0000000),
        InstrSpec("srai", I, enc.OPCODE_OP_IMM, 0b101, 0b0100000),
        # RV32I — register-register ALU
        InstrSpec("add", R, enc.OPCODE_OP, 0b000, 0b0000000),
        InstrSpec("sub", R, enc.OPCODE_OP, 0b000, 0b0100000),
        InstrSpec("sll", R, enc.OPCODE_OP, 0b001, 0b0000000),
        InstrSpec("slt", R, enc.OPCODE_OP, 0b010, 0b0000000),
        InstrSpec("sltu", R, enc.OPCODE_OP, 0b011, 0b0000000),
        InstrSpec("xor", R, enc.OPCODE_OP, 0b100, 0b0000000),
        InstrSpec("srl", R, enc.OPCODE_OP, 0b101, 0b0000000),
        InstrSpec("sra", R, enc.OPCODE_OP, 0b101, 0b0100000),
        InstrSpec("or", R, enc.OPCODE_OP, 0b110, 0b0000000),
        InstrSpec("and", R, enc.OPCODE_OP, 0b111, 0b0000000),
        # RV32I — misc
        InstrSpec("fence", I, enc.OPCODE_MISC_MEM, 0b000),
        InstrSpec("ecall", I, enc.OPCODE_SYSTEM, 0b000),
        InstrSpec("ebreak", I, enc.OPCODE_SYSTEM, 0b000),
        # Zicsr subset (the paper mentions a possible CSR writeback path).
        InstrSpec("csrrw", I, enc.OPCODE_SYSTEM, 0b001),
        InstrSpec("csrrs", I, enc.OPCODE_SYSTEM, 0b010),
        InstrSpec("csrrc", I, enc.OPCODE_SYSTEM, 0b011),
        # RV32M
        InstrSpec("mul", R, enc.OPCODE_OP, 0b000, 0b0000001),
        InstrSpec("mulh", R, enc.OPCODE_OP, 0b001, 0b0000001),
        InstrSpec("mulhsu", R, enc.OPCODE_OP, 0b010, 0b0000001),
        InstrSpec("mulhu", R, enc.OPCODE_OP, 0b011, 0b0000001),
        InstrSpec("div", R, enc.OPCODE_OP, 0b100, 0b0000001),
        InstrSpec("divu", R, enc.OPCODE_OP, 0b101, 0b0000001),
        InstrSpec("rem", R, enc.OPCODE_OP, 0b110, 0b0000001),
        InstrSpec("remu", R, enc.OPCODE_OP, 0b111, 0b0000001),
        # Neuromorphic extension on custom-0 (funct3 assignment is ours:
        # the paper fixes only the opcode and the operand layout).
        InstrSpec("nmldl", R, enc.OPCODE_CUSTOM0, 0b000, 0b0000000),
        InstrSpec("nmldh", R, enc.OPCODE_CUSTOM0, 0b001, 0b0000000),
        InstrSpec("nmpn", N, enc.OPCODE_CUSTOM0, 0b010, 0b0000000),
        InstrSpec("nmdec", R, enc.OPCODE_CUSTOM0, 0b011, 0b0000000),
    ]
    return {s.name: s for s in specs}


#: Global instruction registry keyed by mnemonic.
INSTRUCTIONS: Dict[str, InstrSpec] = _build_registry()


def lookup(name: str) -> InstrSpec:
    """Return the :class:`InstrSpec` for a mnemonic (case-insensitive)."""
    key = name.lower()
    if key not in INSTRUCTIONS:
        raise KeyError(f"unknown instruction mnemonic: {name!r}")
    return INSTRUCTIONS[key]


def encode(name: str, rd: int = 0, rs1: int = 0, rs2: int = 0, imm: int = 0) -> int:
    """Encode an instruction by mnemonic with the given operand values."""
    spec = lookup(name)
    if spec.name == "ebreak":
        return enc.encode_i(spec.opcode, 0, 0, 0, 1)
    return spec.encode(rd=rd, rs1=rs1, rs2=rs2, imm=imm)


@dataclass(frozen=True)
class DecodedInstr:
    """A decoded instruction as consumed by the simulators."""

    name: str
    fmt: InstrFormat
    rd: int
    rs1: int
    rs2: int
    imm: int
    word: int

    # ------------------------------------------------------------------ #
    # Operand/dependency views used by the hazard and forwarding logic
    # ------------------------------------------------------------------ #
    # ``cached_property`` works on a frozen dataclass because it writes to
    # the instance ``__dict__`` directly; decoded instructions are immutable
    # and the hazard unit queries these views once per issued instruction.
    @cached_property
    def source_registers(self) -> Tuple[int, ...]:
        """Architectural registers read by this instruction (x0 excluded)."""
        srcs: List[int] = []
        if self.fmt in (InstrFormat.R, InstrFormat.B, InstrFormat.S, InstrFormat.N):
            srcs = [self.rs1, self.rs2]
        elif self.fmt is InstrFormat.I:
            srcs = [self.rs1]
        if self.fmt is InstrFormat.N:
            # nmpn also reads rd as the VU-word address (paper §IV-B).
            srcs.append(self.rd)
        return tuple(r for r in srcs if r != 0)

    @cached_property
    def dest_register(self) -> Optional[int]:
        """Architectural register written by this instruction, if any."""
        if self.fmt in (InstrFormat.S, InstrFormat.B):
            return None
        if self.rd == 0:
            return None
        return self.rd

    # ------------------------------------------------------------------ #
    # Classification helpers
    # ------------------------------------------------------------------ #
    @property
    def is_load(self) -> bool:
        return self.name in ("lb", "lh", "lw", "lbu", "lhu")

    @property
    def is_store(self) -> bool:
        return self.name in ("sb", "sh", "sw")

    @property
    def is_branch(self) -> bool:
        return self.fmt is InstrFormat.B

    @property
    def is_jump(self) -> bool:
        return self.name in ("jal", "jalr")

    @property
    def is_mul(self) -> bool:
        return self.name in ("mul", "mulh", "mulhsu", "mulhu")

    @property
    def is_div(self) -> bool:
        return self.name in ("div", "divu", "rem", "remu")

    @property
    def is_neuromorphic(self) -> bool:
        return self.name in NM_MNEMONICS

    @property
    def writes_memory(self) -> bool:
        """``True`` for stores and for ``nmpn`` (which stores the VU word)."""
        return self.is_store or self.name == "nmpn"

    @property
    def reads_memory(self) -> bool:
        return self.is_load


class IllegalInstructionError(Exception):
    """Raised when a word cannot be decoded into a known instruction."""


# Decode lookup tables hoisted to module level so ``decode`` does not
# rebuild them per call (the ISS decodes cold paths through here).
_OP_TABLE = {
    (0b000, 0b0000000): "add", (0b000, 0b0100000): "sub",
    (0b001, 0b0000000): "sll", (0b010, 0b0000000): "slt",
    (0b011, 0b0000000): "sltu", (0b100, 0b0000000): "xor",
    (0b101, 0b0000000): "srl", (0b101, 0b0100000): "sra",
    (0b110, 0b0000000): "or", (0b111, 0b0000000): "and",
    (0b000, 0b0000001): "mul", (0b001, 0b0000001): "mulh",
    (0b010, 0b0000001): "mulhsu", (0b011, 0b0000001): "mulhu",
    (0b100, 0b0000001): "div", (0b101, 0b0000001): "divu",
    (0b110, 0b0000001): "rem", (0b111, 0b0000001): "remu",
}
_OP_IMM_NAMES = {0b000: "addi", 0b010: "slti", 0b011: "sltiu", 0b100: "xori", 0b110: "ori", 0b111: "andi"}
_BRANCH_NAMES = {0b000: "beq", 0b001: "bne", 0b100: "blt", 0b101: "bge", 0b110: "bltu", 0b111: "bgeu"}
_LOAD_NAMES = {0b000: "lb", 0b001: "lh", 0b010: "lw", 0b100: "lbu", 0b101: "lhu"}
_STORE_NAMES = {0b000: "sb", 0b001: "sh", 0b010: "sw"}
_CSR_NAMES = {0b001: "csrrw", 0b010: "csrrs", 0b011: "csrrc"}
_CUSTOM0_NAMES = {0b000: "nmldl", 0b001: "nmldh", 0b010: "nmpn", 0b011: "nmdec"}


def _decode_op(word: int, f: dict) -> DecodedInstr:
    key = (f["funct3"], f["funct7"])
    if key not in _OP_TABLE:
        raise IllegalInstructionError(f"unknown OP encoding funct3={f['funct3']:#05b} funct7={f['funct7']:#09b}")
    return DecodedInstr(_OP_TABLE[key], InstrFormat.R, f["rd"], f["rs1"], f["rs2"], 0, word)


def _decode_op_imm(word: int, f: dict) -> DecodedInstr:
    f3 = f["funct3"]
    if f3 in _OP_IMM_NAMES:
        return DecodedInstr(_OP_IMM_NAMES[f3], InstrFormat.I, f["rd"], f["rs1"], 0, enc.imm_i(word), word)
    shamt = (word >> 20) & 0x1F
    if f3 == 0b001 and f["funct7"] == 0:
        return DecodedInstr("slli", InstrFormat.I, f["rd"], f["rs1"], 0, shamt, word)
    if f3 == 0b101 and f["funct7"] == 0:
        return DecodedInstr("srli", InstrFormat.I, f["rd"], f["rs1"], 0, shamt, word)
    if f3 == 0b101 and f["funct7"] == 0b0100000:
        return DecodedInstr("srai", InstrFormat.I, f["rd"], f["rs1"], 0, shamt, word)
    raise IllegalInstructionError(f"unknown OP-IMM encoding funct3={f3:#05b}")


def _decode_custom0(word: int, f: dict) -> DecodedInstr:
    f3 = f["funct3"]
    if f3 not in _CUSTOM0_NAMES:
        raise IllegalInstructionError(f"unknown custom-0 funct3={f3:#05b}")
    fmt = InstrFormat.N if _CUSTOM0_NAMES[f3] == "nmpn" else InstrFormat.R
    return DecodedInstr(_CUSTOM0_NAMES[f3], fmt, f["rd"], f["rs1"], f["rs2"], 0, word)


def decode(word: int) -> DecodedInstr:
    """Decode a 32-bit instruction word into a :class:`DecodedInstr`.

    Raises
    ------
    IllegalInstructionError
        If the word does not correspond to a supported RV32IM / custom-0
        instruction.
    """
    word &= enc.MASK32
    f = enc.decode_fields(word)
    op = f["opcode"]
    if op == enc.OPCODE_LUI:
        return DecodedInstr("lui", InstrFormat.U, f["rd"], 0, 0, enc.imm_u(word), word)
    if op == enc.OPCODE_AUIPC:
        return DecodedInstr("auipc", InstrFormat.U, f["rd"], 0, 0, enc.imm_u(word), word)
    if op == enc.OPCODE_JAL:
        return DecodedInstr("jal", InstrFormat.J, f["rd"], 0, 0, enc.imm_j(word), word)
    if op == enc.OPCODE_JALR:
        return DecodedInstr("jalr", InstrFormat.I, f["rd"], f["rs1"], 0, enc.imm_i(word), word)
    if op == enc.OPCODE_BRANCH:
        if f["funct3"] not in _BRANCH_NAMES:
            raise IllegalInstructionError(f"unknown branch funct3={f['funct3']:#05b}")
        return DecodedInstr(_BRANCH_NAMES[f["funct3"]], InstrFormat.B, 0, f["rs1"], f["rs2"], enc.imm_b(word), word)
    if op == enc.OPCODE_LOAD:
        if f["funct3"] not in _LOAD_NAMES:
            raise IllegalInstructionError(f"unknown load funct3={f['funct3']:#05b}")
        return DecodedInstr(_LOAD_NAMES[f["funct3"]], InstrFormat.I, f["rd"], f["rs1"], 0, enc.imm_i(word), word)
    if op == enc.OPCODE_STORE:
        if f["funct3"] not in _STORE_NAMES:
            raise IllegalInstructionError(f"unknown store funct3={f['funct3']:#05b}")
        return DecodedInstr(_STORE_NAMES[f["funct3"]], InstrFormat.S, 0, f["rs1"], f["rs2"], enc.imm_s(word), word)
    if op == enc.OPCODE_OP_IMM:
        return _decode_op_imm(word, f)
    if op == enc.OPCODE_OP:
        return _decode_op(word, f)
    if op == enc.OPCODE_MISC_MEM:
        return DecodedInstr("fence", InstrFormat.I, f["rd"], f["rs1"], 0, enc.imm_i(word), word)
    if op == enc.OPCODE_SYSTEM:
        if f["funct3"] == 0:
            return DecodedInstr("ebreak" if enc.imm_i(word) == 1 else "ecall", InstrFormat.I, 0, 0, 0, 0, word)
        if f["funct3"] in _CSR_NAMES:
            return DecodedInstr(_CSR_NAMES[f["funct3"]], InstrFormat.I, f["rd"], f["rs1"], 0, (word >> 20) & 0xFFF, word)
        raise IllegalInstructionError(f"unknown SYSTEM funct3={f['funct3']:#05b}")
    if op == enc.OPCODE_CUSTOM0:
        return _decode_custom0(word, f)
    raise IllegalInstructionError(f"unknown opcode {op:#09b} in word {word:#010x}")
