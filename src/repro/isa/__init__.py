"""RISC-V RV32IM instruction-set architecture plus the neuromorphic extension.

Provides encodings, an assembler, a disassembler and the software-side
operand packing for ``nmldl``/``nmldh``/``nmpn``/``nmdec`` (paper Table I).
"""

from .assembler import Assembler, AssemblerError, Program, assemble
from .disassembler import disassemble, disassemble_word
from .encoding import InstrFormat, OPCODE_CUSTOM0, sign_extend, to_signed32, to_unsigned32
from .instructions import (
    DecodedInstr,
    INSTRUCTIONS,
    IllegalInstructionError,
    InstrSpec,
    NM_MNEMONICS,
    decode,
    encode,
    lookup,
)
from .nm_ext import (
    IzhikevichParams,
    TAU_SELECT_MAX,
    TAU_SELECT_MIN,
    TIMESTEP_COARSE_MS,
    TIMESTEP_FINE_MS,
    pack_isyn,
    pack_nmldh_operand,
    pack_nmldl_operands,
    unpack_isyn,
    unpack_nmldh_operand,
    unpack_nmldl_operands,
)
from .registers import ABI_NAMES, NUM_REGISTERS, register_index, register_name

__all__ = [
    "Assembler",
    "AssemblerError",
    "Program",
    "assemble",
    "disassemble",
    "disassemble_word",
    "InstrFormat",
    "OPCODE_CUSTOM0",
    "sign_extend",
    "to_signed32",
    "to_unsigned32",
    "DecodedInstr",
    "INSTRUCTIONS",
    "IllegalInstructionError",
    "InstrSpec",
    "NM_MNEMONICS",
    "decode",
    "encode",
    "lookup",
    "IzhikevichParams",
    "TAU_SELECT_MAX",
    "TAU_SELECT_MIN",
    "TIMESTEP_COARSE_MS",
    "TIMESTEP_FINE_MS",
    "pack_isyn",
    "pack_nmldh_operand",
    "pack_nmldl_operands",
    "unpack_isyn",
    "unpack_nmldh_operand",
    "unpack_nmldl_operands",
    "ABI_NAMES",
    "NUM_REGISTERS",
    "register_index",
    "register_name",
]
