"""A small two-pass RISC-V assembler for RV32IM plus the neuromorphic extension.

The assembler exists so that the evaluation programs (the 80-20 network
loop, the Sudoku solver loop and the soft-float baseline) can be written as
readable assembly text, assembled to machine words and executed on the
functional and cycle-level simulators — mirroring the role of the GCC
toolchain in the paper's FPGA flow.

Supported syntax
----------------
* One statement per line; comments start with ``#`` or ``//``.
* Labels: ``name:`` (may share a line with a statement).
* Directives: ``.text``, ``.data``, ``.org ADDR``, ``.align N``,
  ``.word``/``.half``/``.byte`` (comma-separated values), ``.space N``,
  ``.equ NAME, VALUE`` (and ``.set``), ``.globl`` (ignored).
* All RV32IM mnemonics from :mod:`repro.isa.instructions`, the custom
  ``nmldl``/``nmldh``/``nmpn``/``nmdec`` instructions and the common
  pseudo-instructions (``li``, ``la``, ``mv``, ``nop``, ``j``, ``jr``,
  ``ret``, ``call``, ``beqz``, ``bnez``, ``bgt``, ``ble``, ``neg``,
  ``not``, ``seqz``, ``snez``).
* Immediates: decimal, hex (``0x``), binary (``0b``), character (``'a'``),
  symbols, ``%hi(expr)`` / ``%lo(expr)`` and ``+``/``-`` expressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .instructions import INSTRUCTIONS, lookup
from .encoding import InstrFormat, sign_extend, to_unsigned32
from .registers import register_index

__all__ = ["AssemblerError", "Program", "Assembler", "assemble"]


class AssemblerError(Exception):
    """Raised on any syntax or semantic error, with line information."""


@dataclass
class Program:
    """An assembled program image.

    Attributes
    ----------
    origin:
        Byte address of the first word in ``words``.
    words:
        Instruction/data words in ascending address order (4-byte units).
    symbols:
        Label and ``.equ`` symbol table (name → byte address/value).
    source_map:
        Byte address → original source line (1-based) for diagnostics.
    entry_point:
        Address of the ``_start`` symbol if present, else ``origin``.
    """

    origin: int
    words: List[int] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    source_map: Dict[int, int] = field(default_factory=dict)

    @property
    def entry_point(self) -> int:
        return self.symbols.get("_start", self.origin)

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.words)

    def word_at(self, address: int) -> int:
        """Return the program word at a byte address."""
        offset = address - self.origin
        if offset % 4 != 0 or not 0 <= offset // 4 < len(self.words):
            raise IndexError(f"address {address:#x} outside program image")
        return self.words[offset // 4]


_TOKEN_SPLIT = re.compile(r"\s*,\s*")
_MEM_OPERAND = re.compile(r"^(?P<offset>.*)\((?P<base>[A-Za-z0-9]+)\)$")
_HI_LO = re.compile(r"^%(?P<which>hi|lo)\((?P<expr>.*)\)$")

#: Instruction-count expansion of each pseudo-instruction (used by pass 1).
_PSEUDO_SIZES = {
    "nop": 1, "mv": 1, "not": 1, "neg": 1, "seqz": 1, "snez": 1,
    "j": 1, "jr": 1, "ret": 1, "call": 1,
    "beqz": 1, "bnez": 1, "blez": 1, "bgez": 1, "bltz": 1, "bgtz": 1,
    "bgt": 1, "ble": 1, "bgtu": 1, "bleu": 1,
    "li": 2, "la": 2,
}


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, origin: int = 0x0000_0000) -> None:
        self.default_origin = origin

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def assemble(self, source: str, *, origin: Optional[int] = None) -> Program:
        """Assemble ``source`` text into a :class:`Program`."""
        origin = self.default_origin if origin is None else origin
        statements = self._parse(source)
        symbols = self._first_pass(statements, origin)
        return self._second_pass(statements, symbols, origin)

    # ------------------------------------------------------------------ #
    # Parsing
    # ------------------------------------------------------------------ #
    def _parse(self, source: str) -> List[Tuple[int, Optional[str], Optional[str], List[str]]]:
        """Return a list of (line number, label, mnemonic, operands)."""
        statements: List[Tuple[int, Optional[str], Optional[str], List[str]]] = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].split("//", 1)[0].strip()
            if not line:
                continue
            label: Optional[str] = None
            if ":" in line:
                label_part, line = line.split(":", 1)
                label = label_part.strip()
                if not re.fullmatch(r"[A-Za-z_.][A-Za-z0-9_.$]*", label):
                    raise AssemblerError(f"line {lineno}: invalid label {label!r}")
                line = line.strip()
            if not line:
                statements.append((lineno, label, None, []))
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            operands = _TOKEN_SPLIT.split(parts[1].strip()) if len(parts) > 1 else []
            statements.append((lineno, label, mnemonic, [o for o in operands if o != ""]))
        return statements

    # ------------------------------------------------------------------ #
    # Pass 1: symbol resolution
    # ------------------------------------------------------------------ #
    def _first_pass(self, statements, origin: int) -> Dict[str, int]:
        symbols: Dict[str, int] = {}
        pc = origin
        for lineno, label, mnemonic, operands in statements:
            if label is not None:
                if label in symbols:
                    raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
                symbols[label] = pc
            if mnemonic is None:
                continue
            if mnemonic.startswith("."):
                pc = self._directive_size(lineno, mnemonic, operands, pc, symbols, define=True)
            else:
                pc += 4 * self._instruction_words(lineno, mnemonic)
        return symbols

    def _instruction_words(self, lineno: int, mnemonic: str) -> int:
        if mnemonic in INSTRUCTIONS:
            return 1
        if mnemonic in _PSEUDO_SIZES:
            return _PSEUDO_SIZES[mnemonic]
        raise AssemblerError(f"line {lineno}: unknown mnemonic {mnemonic!r}")

    def _directive_size(self, lineno, directive, operands, pc, symbols, *, define: bool) -> int:
        if directive in (".text", ".data", ".globl", ".global", ".section"):
            return pc
        if directive in (".equ", ".set"):
            if define:
                if len(operands) != 2:
                    raise AssemblerError(f"line {lineno}: {directive} expects NAME, VALUE")
                symbols[operands[0]] = self._eval(lineno, operands[1], symbols)
            return pc
        if directive == ".org":
            target = self._eval(lineno, operands[0], symbols)
            if target < pc:
                raise AssemblerError(f"line {lineno}: .org {target:#x} moves backwards from {pc:#x}")
            return target
        if directive == ".align":
            n = self._eval(lineno, operands[0], symbols)
            step = 1 << n
            return (pc + step - 1) & ~(step - 1)
        if directive == ".word":
            return pc + 4 * len(operands)
        if directive == ".half":
            return pc + 4 * ((2 * len(operands) + 3) // 4)
        if directive == ".byte":
            return pc + 4 * ((len(operands) + 3) // 4)
        if directive == ".space":
            nbytes = self._eval(lineno, operands[0], symbols)
            return pc + 4 * ((nbytes + 3) // 4)
        raise AssemblerError(f"line {lineno}: unsupported directive {directive!r}")

    # ------------------------------------------------------------------ #
    # Pass 2: encoding
    # ------------------------------------------------------------------ #
    def _second_pass(self, statements, symbols: Dict[str, int], origin: int) -> Program:
        program = Program(origin=origin, symbols=dict(symbols))
        image: Dict[int, int] = {}
        source_map: Dict[int, int] = {}
        pc = origin

        def emit(addr: int, word: int, lineno: int) -> None:
            image[addr] = to_unsigned32(word)
            source_map[addr] = lineno

        for lineno, _label, mnemonic, operands in statements:
            if mnemonic is None:
                continue
            if mnemonic.startswith("."):
                pc = self._emit_directive(lineno, mnemonic, operands, pc, symbols, emit)
                continue
            words = self._encode_statement(lineno, mnemonic, operands, pc, symbols)
            for w in words:
                emit(pc, w, lineno)
                pc += 4

        if image:
            max_addr = max(image)
            min_addr = origin
            program.words = [image.get(addr, 0) for addr in range(min_addr, max_addr + 4, 4)]
        program.source_map = source_map
        return program

    def _emit_directive(self, lineno, directive, operands, pc, symbols, emit) -> int:
        if directive in (".text", ".data", ".globl", ".global", ".section", ".equ", ".set"):
            return pc
        if directive == ".org":
            return self._eval(lineno, operands[0], symbols)
        if directive == ".align":
            n = self._eval(lineno, operands[0], symbols)
            step = 1 << n
            new_pc = (pc + step - 1) & ~(step - 1)
            for addr in range(pc, new_pc, 4):
                emit(addr, 0, lineno)
            return new_pc
        if directive == ".word":
            for op in operands:
                emit(pc, self._eval(lineno, op, symbols), lineno)
                pc += 4
            return pc
        if directive == ".half":
            values = [self._eval(lineno, op, symbols) & 0xFFFF for op in operands]
            for i in range(0, len(values), 2):
                lo = values[i]
                hi = values[i + 1] if i + 1 < len(values) else 0
                emit(pc, (hi << 16) | lo, lineno)
                pc += 4
            return pc
        if directive == ".byte":
            values = [self._eval(lineno, op, symbols) & 0xFF for op in operands]
            for i in range(0, len(values), 4):
                chunk = values[i : i + 4] + [0] * (4 - len(values[i : i + 4]))
                word = chunk[0] | chunk[1] << 8 | chunk[2] << 16 | chunk[3] << 24
                emit(pc, word, lineno)
                pc += 4
            return pc
        if directive == ".space":
            nbytes = self._eval(lineno, operands[0], symbols)
            nwords = (nbytes + 3) // 4
            for _ in range(nwords):
                emit(pc, 0, lineno)
                pc += 4
            return pc
        raise AssemblerError(f"line {lineno}: unsupported directive {directive!r}")

    # ------------------------------------------------------------------ #
    # Statement encoding (real + pseudo instructions)
    # ------------------------------------------------------------------ #
    def _encode_statement(self, lineno, mnemonic, operands, pc, symbols) -> List[int]:
        if mnemonic in _PSEUDO_SIZES:
            return self._encode_pseudo(lineno, mnemonic, operands, pc, symbols)
        spec = lookup(mnemonic)
        try:
            return [self._encode_real(lineno, spec, operands, pc, symbols)]
        except AssemblerError:
            raise
        except Exception as exc:  # re-wrap with line information
            raise AssemblerError(f"line {lineno}: {exc}") from exc

    def _encode_real(self, lineno, spec, operands, pc, symbols) -> int:
        name, fmt = spec.name, spec.fmt
        if name in ("ecall", "ebreak", "fence", "nop"):
            # ebreak shares ecall's encoding except for imm[0] = 1.
            return spec.encode(imm=1 if name == "ebreak" else 0)
        if fmt in (InstrFormat.R, InstrFormat.N):
            self._expect(lineno, name, operands, 3)
            rd = register_index(operands[0])
            rs1 = register_index(operands[1])
            rs2 = register_index(operands[2])
            return spec.encode(rd=rd, rs1=rs1, rs2=rs2)
        if fmt is InstrFormat.I:
            if spec.name in ("lb", "lh", "lw", "lbu", "lhu", "jalr") and len(operands) == 2 and "(" in operands[1]:
                rd = register_index(operands[0])
                offset, base = self._mem_operand(lineno, operands[1], symbols)
                self._check_imm(lineno, offset, 12)
                return spec.encode(rd=rd, rs1=base, imm=offset)
            self._expect(lineno, name, operands, 3)
            rd = register_index(operands[0])
            if name in ("csrrw", "csrrs", "csrrc"):
                # Standard CSR syntax: csrrw rd, csr, rs1.
                imm = self._eval(lineno, operands[1], symbols)
                rs1 = register_index(operands[2])
                if not 0 <= imm < 4096:
                    raise AssemblerError(f"line {lineno}: CSR address {imm} out of range")
                return spec.encode(rd=rd, rs1=rs1, imm=imm)
            rs1 = register_index(operands[1])
            imm = self._eval(lineno, operands[2], symbols)
            if name in ("slli", "srli", "srai"):
                if not 0 <= imm < 32:
                    raise AssemblerError(f"line {lineno}: shift amount {imm} out of range")
            elif name in ("csrrw", "csrrs", "csrrc"):
                if not 0 <= imm < 4096:
                    raise AssemblerError(f"line {lineno}: CSR address {imm} out of range")
            else:
                self._check_imm(lineno, imm, 12)
            return spec.encode(rd=rd, rs1=rs1, imm=imm)
        if fmt is InstrFormat.S:
            self._expect(lineno, name, operands, 2)
            rs2 = register_index(operands[0])
            offset, base = self._mem_operand(lineno, operands[1], symbols)
            self._check_imm(lineno, offset, 12)
            return spec.encode(rs1=base, rs2=rs2, imm=offset)
        if fmt is InstrFormat.B:
            self._expect(lineno, name, operands, 3)
            rs1 = register_index(operands[0])
            rs2 = register_index(operands[1])
            offset = self._branch_target(lineno, operands[2], pc, symbols, bits=13)
            return spec.encode(rs1=rs1, rs2=rs2, imm=offset)
        if fmt is InstrFormat.U:
            self._expect(lineno, name, operands, 2)
            rd = register_index(operands[0])
            imm = self._eval(lineno, operands[1], symbols)
            if not 0 <= imm < (1 << 20):
                raise AssemblerError(f"line {lineno}: U-type immediate {imm} out of range")
            return spec.encode(rd=rd, imm=imm)
        if fmt is InstrFormat.J:
            if len(operands) == 1:
                rd, target = 1, operands[0]
            else:
                self._expect(lineno, name, operands, 2)
                rd, target = register_index(operands[0]), operands[1]
            offset = self._branch_target(lineno, target, pc, symbols, bits=21)
            return spec.encode(rd=rd, imm=offset)
        raise AssemblerError(f"line {lineno}: cannot encode {name}")  # pragma: no cover

    def _encode_pseudo(self, lineno, mnemonic, operands, pc, symbols) -> List[int]:
        E = lambda name, **kw: lookup(name).encode(**kw)  # noqa: E731
        reg = register_index
        if mnemonic == "nop":
            return [E("addi", rd=0, rs1=0, imm=0)]
        if mnemonic == "mv":
            self._expect(lineno, mnemonic, operands, 2)
            return [E("addi", rd=reg(operands[0]), rs1=reg(operands[1]), imm=0)]
        if mnemonic == "not":
            self._expect(lineno, mnemonic, operands, 2)
            return [E("xori", rd=reg(operands[0]), rs1=reg(operands[1]), imm=-1)]
        if mnemonic == "neg":
            self._expect(lineno, mnemonic, operands, 2)
            return [E("sub", rd=reg(operands[0]), rs1=0, rs2=reg(operands[1]))]
        if mnemonic == "seqz":
            self._expect(lineno, mnemonic, operands, 2)
            return [E("sltiu", rd=reg(operands[0]), rs1=reg(operands[1]), imm=1)]
        if mnemonic == "snez":
            self._expect(lineno, mnemonic, operands, 2)
            return [E("sltu", rd=reg(operands[0]), rs1=0, rs2=reg(operands[1]))]
        if mnemonic in ("li", "la"):
            self._expect(lineno, mnemonic, operands, 2)
            rd = reg(operands[0])
            value = self._eval(lineno, operands[1], symbols)
            return self._expand_li(rd, value)
        if mnemonic == "j":
            self._expect(lineno, mnemonic, operands, 1)
            offset = self._branch_target(lineno, operands[0], pc, symbols, bits=21)
            return [E("jal", rd=0, imm=offset)]
        if mnemonic == "jr":
            self._expect(lineno, mnemonic, operands, 1)
            return [E("jalr", rd=0, rs1=reg(operands[0]), imm=0)]
        if mnemonic == "ret":
            return [E("jalr", rd=0, rs1=1, imm=0)]
        if mnemonic == "call":
            self._expect(lineno, mnemonic, operands, 1)
            offset = self._branch_target(lineno, operands[0], pc, symbols, bits=21)
            return [E("jal", rd=1, imm=offset)]
        branch_zero = {"beqz": "beq", "bnez": "bne", "bltz": "blt", "bgez": "bge"}
        if mnemonic in branch_zero:
            self._expect(lineno, mnemonic, operands, 2)
            offset = self._branch_target(lineno, operands[1], pc, symbols, bits=13)
            return [E(branch_zero[mnemonic], rs1=reg(operands[0]), rs2=0, imm=offset)]
        if mnemonic in ("blez", "bgtz"):
            self._expect(lineno, mnemonic, operands, 2)
            offset = self._branch_target(lineno, operands[1], pc, symbols, bits=13)
            name = "bge" if mnemonic == "blez" else "blt"
            return [E(name, rs1=0, rs2=reg(operands[0]), imm=offset)]
        swap = {"bgt": "blt", "ble": "bge", "bgtu": "bltu", "bleu": "bgeu"}
        if mnemonic in swap:
            self._expect(lineno, mnemonic, operands, 3)
            offset = self._branch_target(lineno, operands[2], pc, symbols, bits=13)
            return [E(swap[mnemonic], rs1=reg(operands[1]), rs2=reg(operands[0]), imm=offset)]
        raise AssemblerError(f"line {lineno}: unknown pseudo-instruction {mnemonic!r}")  # pragma: no cover

    @staticmethod
    def _expand_li(rd: int, value: int) -> List[int]:
        """Expand ``li rd, value`` into ``lui`` + ``addi`` (always two words).

        Pseudo-instruction expansion is kept at a fixed size so pass-1
        address computation stays simple; ``li`` of a small constant emits
        a leading ``lui rd, 0`` that the pipeline treats as a regular ALU op.
        """
        value = to_unsigned32(value)
        lo = sign_extend(value & 0xFFF, 12)
        hi = (value - lo) >> 12 & 0xFFFFF
        return [
            lookup("lui").encode(rd=rd, imm=hi),
            lookup("addi").encode(rd=rd, rs1=rd, imm=lo),
        ]

    # ------------------------------------------------------------------ #
    # Operand helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _expect(lineno: int, name: str, operands: List[str], count: int) -> None:
        if len(operands) != count:
            raise AssemblerError(f"line {lineno}: {name} expects {count} operands, got {len(operands)}")

    def _mem_operand(self, lineno: int, text: str, symbols: Dict[str, int]) -> Tuple[int, int]:
        match = _MEM_OPERAND.match(text.strip())
        if not match:
            raise AssemblerError(f"line {lineno}: expected offset(base) operand, got {text!r}")
        offset_text = match.group("offset").strip() or "0"
        offset = self._eval(lineno, offset_text, symbols)
        base = register_index(match.group("base"))
        return offset, base

    def _branch_target(self, lineno: int, text: str, pc: int, symbols: Dict[str, int], *, bits: int) -> int:
        value = self._eval(lineno, text, symbols)
        if text.strip().lstrip("+-").isdigit():
            offset = value  # numeric operands are PC-relative offsets already
        else:
            offset = value - pc
        limit = 1 << (bits - 1)
        if not -limit <= offset < limit:
            raise AssemblerError(f"line {lineno}: branch target out of range ({offset} bytes)")
        return offset

    @staticmethod
    def _check_imm(lineno: int, value: int, bits: int) -> None:
        limit = 1 << (bits - 1)
        if not -limit <= value < limit:
            raise AssemblerError(f"line {lineno}: immediate {value} does not fit in {bits} signed bits")

    def _eval(self, lineno: int, text: str, symbols: Dict[str, int]) -> int:
        """Evaluate an immediate expression (symbols, %hi/%lo, + and -)."""
        text = text.strip()
        match = _HI_LO.match(text)
        if match:
            value = to_unsigned32(self._eval(lineno, match.group("expr"), symbols))
            lo = sign_extend(value & 0xFFF, 12)
            if match.group("which") == "lo":
                return lo
            return ((value - lo) >> 12) & 0xFFFFF
        # character literal
        if len(text) == 3 and text[0] == "'" and text[2] == "'":
            return ord(text[1])
        # split on top-level + and - (no parentheses support needed)
        tokens = re.findall(r"[+-]?[^+-]+", text.replace(" ", ""))
        if len(tokens) > 1:
            return sum(self._eval(lineno, tok, symbols) for tok in tokens)
        sign = 1
        if text.startswith("-"):
            sign, text = -1, text[1:]
        elif text.startswith("+"):
            text = text[1:]
        if "<<" in text:
            left, right = text.split("<<", 1)
            return sign * (self._eval(lineno, left, symbols) << self._eval(lineno, right, symbols))
        try:
            return sign * int(text, 0)
        except ValueError:
            pass
        if text in symbols:
            return sign * symbols[text]
        raise AssemblerError(f"line {lineno}: cannot evaluate expression {text!r}")


def assemble(source: str, *, origin: int = 0) -> Program:
    """Assemble RISC-V source text starting at ``origin`` (convenience API)."""
    return Assembler(origin).assemble(source)
