"""RISC-V instruction-word encoding and field extraction.

Implements the six base instruction formats of the RV32I/RV32M user-level
ISA (R, I, S, B, U, J) plus bit-field helpers shared by the assembler,
the disassembler and the simulators.  The custom neuromorphic instructions
("N"-type ``nmpn`` and R-type ``nmldl``/``nmldh``/``nmdec``) reuse the
R-type field layout, see :mod:`repro.isa.nm_ext`.
"""

from __future__ import annotations

from enum import Enum

__all__ = [
    "InstrFormat",
    "sign_extend",
    "to_unsigned32",
    "to_signed32",
    "encode_r",
    "encode_i",
    "encode_s",
    "encode_b",
    "encode_u",
    "encode_j",
    "decode_fields",
    "imm_i",
    "imm_s",
    "imm_b",
    "imm_u",
    "imm_j",
    "OPCODE_LUI",
    "OPCODE_AUIPC",
    "OPCODE_JAL",
    "OPCODE_JALR",
    "OPCODE_BRANCH",
    "OPCODE_LOAD",
    "OPCODE_STORE",
    "OPCODE_OP_IMM",
    "OPCODE_OP",
    "OPCODE_MISC_MEM",
    "OPCODE_SYSTEM",
    "OPCODE_CUSTOM0",
]

MASK32 = 0xFFFFFFFF

# Major opcodes (RISC-V unprivileged spec, table 24.1).
OPCODE_LOAD = 0b0000011
OPCODE_MISC_MEM = 0b0001111
OPCODE_OP_IMM = 0b0010011
OPCODE_AUIPC = 0b0010111
OPCODE_STORE = 0b0100011
OPCODE_OP = 0b0110011
OPCODE_LUI = 0b0110111
OPCODE_BRANCH = 0b1100011
OPCODE_JALR = 0b1100111
OPCODE_JAL = 0b1101111
OPCODE_SYSTEM = 0b1110011
#: ``custom-0`` opcode used by the neuromorphic extension (paper Table I).
OPCODE_CUSTOM0 = 0b0001011


class InstrFormat(Enum):
    """RISC-V instruction encoding formats."""

    R = "R"
    I = "I"  # noqa: E741 - canonical RISC-V format name
    S = "S"
    B = "B"
    U = "U"
    J = "J"
    #: The paper's hybrid format for ``nmpn``: encoded like R-type but the
    #: ``rd`` field is read as a source (address) in decode and written
    #: with the spike flag at writeback.
    N = "N"


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend ``value`` from ``bits`` bits to a Python int."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def to_unsigned32(value: int) -> int:
    """Reduce an integer to its unsigned 32-bit representation."""
    return value & MASK32


def to_signed32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    return sign_extend(value, 32)


def _check_range(name: str, value: int, bits: int, signed: bool) -> None:
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= value <= hi:
        raise ValueError(f"{name} value {value} does not fit in {bits} {'signed' if signed else 'unsigned'} bits")


def _check_reg(name: str, value: int) -> None:
    if not 0 <= value < 32:
        raise ValueError(f"{name} register index out of range: {value}")


def encode_r(opcode: int, rd: int, funct3: int, rs1: int, rs2: int, funct7: int) -> int:
    """Encode an R-type instruction word."""
    _check_reg("rd", rd), _check_reg("rs1", rs1), _check_reg("rs2", rs2)
    return (
        (funct7 & 0x7F) << 25
        | (rs2 & 0x1F) << 20
        | (rs1 & 0x1F) << 15
        | (funct3 & 0x7) << 12
        | (rd & 0x1F) << 7
        | (opcode & 0x7F)
    )


def encode_i(opcode: int, rd: int, funct3: int, rs1: int, imm: int) -> int:
    """Encode an I-type instruction word (12-bit signed immediate)."""
    _check_reg("rd", rd), _check_reg("rs1", rs1)
    _check_range("I-immediate", sign_extend(imm & 0xFFF, 12), 12, True)
    imm &= 0xFFF
    return (imm << 20) | (rs1 & 0x1F) << 15 | (funct3 & 0x7) << 12 | (rd & 0x1F) << 7 | (opcode & 0x7F)


def encode_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """Encode an S-type instruction word (12-bit signed immediate)."""
    _check_reg("rs1", rs1), _check_reg("rs2", rs2)
    imm &= 0xFFF
    imm_11_5 = (imm >> 5) & 0x7F
    imm_4_0 = imm & 0x1F
    return (
        imm_11_5 << 25
        | (rs2 & 0x1F) << 20
        | (rs1 & 0x1F) << 15
        | (funct3 & 0x7) << 12
        | imm_4_0 << 7
        | (opcode & 0x7F)
    )


def encode_b(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    """Encode a B-type instruction word (13-bit signed, bit 0 implicit)."""
    _check_reg("rs1", rs1), _check_reg("rs2", rs2)
    if imm % 2 != 0:
        raise ValueError(f"branch offset must be even, got {imm}")
    _check_range("B-immediate", imm, 13, True)
    imm &= 0x1FFF
    return (
        ((imm >> 12) & 0x1) << 31
        | ((imm >> 5) & 0x3F) << 25
        | (rs2 & 0x1F) << 20
        | (rs1 & 0x1F) << 15
        | (funct3 & 0x7) << 12
        | ((imm >> 1) & 0xF) << 8
        | ((imm >> 11) & 0x1) << 7
        | (opcode & 0x7F)
    )


def encode_u(opcode: int, rd: int, imm: int) -> int:
    """Encode a U-type instruction word (imm is the upper-20-bit value)."""
    _check_reg("rd", rd)
    return ((imm & 0xFFFFF) << 12) | (rd & 0x1F) << 7 | (opcode & 0x7F)


def encode_j(opcode: int, rd: int, imm: int) -> int:
    """Encode a J-type instruction word (21-bit signed, bit 0 implicit)."""
    _check_reg("rd", rd)
    if imm % 2 != 0:
        raise ValueError(f"jump offset must be even, got {imm}")
    _check_range("J-immediate", imm, 21, True)
    imm &= 0x1FFFFF
    return (
        ((imm >> 20) & 0x1) << 31
        | ((imm >> 1) & 0x3FF) << 21
        | ((imm >> 11) & 0x1) << 20
        | ((imm >> 12) & 0xFF) << 12
        | (rd & 0x1F) << 7
        | (opcode & 0x7F)
    )


def decode_fields(word: int) -> dict:
    """Extract the raw bit fields shared by all formats from a 32-bit word."""
    word &= MASK32
    return {
        "opcode": word & 0x7F,
        "rd": (word >> 7) & 0x1F,
        "funct3": (word >> 12) & 0x7,
        "rs1": (word >> 15) & 0x1F,
        "rs2": (word >> 20) & 0x1F,
        "funct7": (word >> 25) & 0x7F,
    }


def imm_i(word: int) -> int:
    """Extract the sign-extended I-type immediate."""
    return sign_extend(word >> 20, 12)


def imm_s(word: int) -> int:
    """Extract the sign-extended S-type immediate."""
    imm = ((word >> 25) & 0x7F) << 5 | ((word >> 7) & 0x1F)
    return sign_extend(imm, 12)


def imm_b(word: int) -> int:
    """Extract the sign-extended B-type immediate (byte offset)."""
    imm = (
        ((word >> 31) & 0x1) << 12
        | ((word >> 7) & 0x1) << 11
        | ((word >> 25) & 0x3F) << 5
        | ((word >> 8) & 0xF) << 1
    )
    return sign_extend(imm, 13)


def imm_u(word: int) -> int:
    """Extract the U-type immediate (already shifted into bits 31:12)."""
    return to_signed32(word & 0xFFFFF000)


def imm_j(word: int) -> int:
    """Extract the sign-extended J-type immediate (byte offset)."""
    imm = (
        ((word >> 31) & 0x1) << 20
        | ((word >> 12) & 0xFF) << 12
        | ((word >> 20) & 0x1) << 11
        | ((word >> 21) & 0x3FF) << 1
    )
    return sign_extend(imm, 21)
