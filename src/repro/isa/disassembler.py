"""Disassembler for RV32IM + neuromorphic instruction words.

Used by the simulators' trace output, by tests (round-trip checks against
the assembler) and by the examples when printing generated kernels.
"""

from __future__ import annotations

from .encoding import InstrFormat
from .instructions import DecodedInstr, decode
from .registers import register_name

__all__ = ["disassemble", "disassemble_word", "format_instr"]


def format_instr(instr: DecodedInstr, *, pc: int | None = None) -> str:
    """Render a decoded instruction as canonical assembly text."""
    name = instr.name
    rd = register_name(instr.rd)
    rs1 = register_name(instr.rs1)
    rs2 = register_name(instr.rs2)
    if name in ("ecall", "ebreak", "fence"):
        return name
    if instr.fmt in (InstrFormat.R, InstrFormat.N):
        return f"{name} {rd}, {rs1}, {rs2}"
    if instr.fmt is InstrFormat.I:
        if instr.is_load or name == "jalr":
            return f"{name} {rd}, {instr.imm}({rs1})"
        if name in ("csrrw", "csrrs", "csrrc"):
            return f"{name} {rd}, {instr.imm:#x}, {rs1}"
        return f"{name} {rd}, {rs1}, {instr.imm}"
    if instr.fmt is InstrFormat.S:
        return f"{name} {rs2}, {instr.imm}({rs1})"
    if instr.fmt is InstrFormat.B:
        target = f"{pc + instr.imm:#x}" if pc is not None else f"{instr.imm:+d}"
        return f"{name} {rs1}, {rs2}, {target}"
    if instr.fmt is InstrFormat.U:
        return f"{name} {rd}, {(instr.imm >> 12) & 0xFFFFF:#x}"
    if instr.fmt is InstrFormat.J:
        target = f"{pc + instr.imm:#x}" if pc is not None else f"{instr.imm:+d}"
        return f"{name} {rd}, {target}"
    return f"{name} (raw {instr.word:#010x})"  # pragma: no cover


def disassemble_word(word: int, *, pc: int | None = None) -> str:
    """Disassemble a single 32-bit instruction word to text."""
    return format_instr(decode(word), pc=pc)


def disassemble(words, *, origin: int = 0) -> str:
    """Disassemble a sequence of instruction words into a listing."""
    lines = []
    for i, word in enumerate(words):
        pc = origin + 4 * i
        try:
            text = disassemble_word(word, pc=pc)
        except Exception:
            text = f".word {word:#010x}"
        lines.append(f"{pc:08x}:  {word:08x}  {text}")
    return "\n".join(lines)
