"""RISC-V integer register file naming (RV32I ABI).

Both raw names (``x0``..``x31``) and ABI names (``zero``, ``ra``, ``sp``,
``a0``..``a7``, ``t0``..``t6``, ``s0``..``s11``) are accepted by the
assembler; the disassembler prints ABI names.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["ABI_NAMES", "NAME_TO_INDEX", "register_index", "register_name", "NUM_REGISTERS"]

#: Number of integer registers in RV32I.
NUM_REGISTERS = 32

#: ABI names indexed by register number.
ABI_NAMES: List[str] = [
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
]

#: Mapping from every accepted register spelling to its index.
NAME_TO_INDEX: Dict[str, int] = {}
for _i, _abi in enumerate(ABI_NAMES):
    NAME_TO_INDEX[_abi] = _i
    NAME_TO_INDEX[f"x{_i}"] = _i
NAME_TO_INDEX["fp"] = 8  # frame pointer alias for s0


def register_index(name: str) -> int:
    """Resolve a register name (ABI or ``xN``) to its index.

    Raises
    ------
    ValueError
        If the name is not a valid RV32I register.
    """
    key = name.strip().lower()
    if key not in NAME_TO_INDEX:
        raise ValueError(f"unknown register name: {name!r}")
    return NAME_TO_INDEX[key]


def register_name(index: int) -> str:
    """Return the canonical ABI name of register ``index``."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {index}")
    return ABI_NAMES[index]
