"""Software-side helpers for the neuromorphic ISA extension (paper Table I).

The four custom instructions live on the ``custom-0`` opcode (``0001011``):

===========  ======  ==========================================================
Mnemonic     Type    Operands
===========  ======  ==========================================================
``nmldl``    R       ``rs1[31:16]=b`` (Q4.11), ``rs1[15:0]=a`` (Q4.11),
                     ``rs2[31:16]=d`` (Q4.11), ``rs2[15:0]=c`` (Q7.8);
                     ``rd`` receives 1 on completion.
``nmldh``    R       ``rs1[1]=pin`` (cap ``v`` at the reset potential),
                     ``rs1[0]=h`` (1 → 0.125 ms, 0 → 0.5 ms);
                     ``rd`` receives 1 on completion.
``nmpn``     "N"     ``rs1`` = VU word (v Q7.8 | u Q7.8), ``rs2`` = Isyn
                     (Q15.16), ``rd`` read as the address of the VU word and
                     written with the spike flag (1 = spike, 0 = no spike).
``nmdec``    R       ``rs1`` = tau select (1..9), ``rs2`` = Isyn (Q15.16);
                     ``rd`` receives the decayed Isyn (Q15.16).
===========  ======  ==========================================================

These helpers pack/unpack the register operand words so that software
(code generators, tests and examples) and the NPU/DCU models agree on the
bit layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..fixedpoint import Q4_11, Q7_8, Q15_16

__all__ = [
    "IzhikevichParams",
    "pack_nmldl_operands",
    "unpack_nmldl_operands",
    "pack_nmldh_operand",
    "unpack_nmldh_operand",
    "pack_isyn",
    "unpack_isyn",
    "TIMESTEP_COARSE_MS",
    "TIMESTEP_FINE_MS",
    "TAU_SELECT_MIN",
    "TAU_SELECT_MAX",
]

#: Timestep selected when the ``h`` bit of ``nmldh`` is 0 (paper Table I).
TIMESTEP_COARSE_MS = 0.5
#: Timestep selected when the ``h`` bit of ``nmldh`` is 1.
TIMESTEP_FINE_MS = 0.125

#: Valid range of the ``nmdec`` tau-select operand (paper §IV-B).
TAU_SELECT_MIN = 1
TAU_SELECT_MAX = 9

_MASK16 = 0xFFFF
_MASK32 = 0xFFFFFFFF


@dataclass(frozen=True)
class IzhikevichParams:
    """Izhikevich neuron parameters ``(a, b, c, d)`` in real units.

    ``a``, ``b``, ``d`` are quantised to Q4.11 and ``c`` to Q7.8 when packed
    for the ``nmldl`` instruction, mirroring the hardware's configuration
    registers.
    """

    a: float
    b: float
    c: float
    d: float

    def quantized(self) -> "IzhikevichParams":
        """Return the parameters after a round trip through the Q-formats."""
        return IzhikevichParams(
            a=Q4_11.to_float(Q4_11.from_float(self.a)),
            b=Q4_11.to_float(Q4_11.from_float(self.b)),
            c=Q7_8.to_float(Q7_8.from_float(self.c)),
            d=Q4_11.to_float(Q4_11.from_float(self.d)),
        )

    @staticmethod
    def regular_spiking() -> "IzhikevichParams":
        """Izhikevich's regular-spiking (excitatory) parameter set."""
        return IzhikevichParams(a=0.02, b=0.2, c=-65.0, d=8.0)

    @staticmethod
    def fast_spiking() -> "IzhikevichParams":
        """Izhikevich's fast-spiking (inhibitory) parameter set."""
        return IzhikevichParams(a=0.1, b=0.2, c=-65.0, d=2.0)

    @staticmethod
    def intrinsically_bursting() -> "IzhikevichParams":
        """Intrinsically-bursting parameter set (c=-55, d=4)."""
        return IzhikevichParams(a=0.02, b=0.2, c=-55.0, d=4.0)

    @staticmethod
    def chattering() -> "IzhikevichParams":
        """Chattering parameter set (c=-50, d=2)."""
        return IzhikevichParams(a=0.02, b=0.2, c=-50.0, d=2.0)


def pack_nmldl_operands(params: IzhikevichParams) -> Tuple[int, int]:
    """Pack ``(a, b, c, d)`` into the ``(rs1, rs2)`` words of ``nmldl``.

    Returns
    -------
    (rs1, rs2):
        ``rs1 = b<<16 | a`` (both Q4.11), ``rs2 = d<<16 | c``
        (d in Q4.11, c in Q7.8), as unsigned 32-bit words.
    """
    a_bits = Q4_11.to_unsigned(Q4_11.from_float(params.a))
    b_bits = Q4_11.to_unsigned(Q4_11.from_float(params.b))
    c_bits = Q7_8.to_unsigned(Q7_8.from_float(params.c))
    d_bits = Q4_11.to_unsigned(Q4_11.from_float(params.d))
    rs1 = ((b_bits << 16) | a_bits) & _MASK32
    rs2 = ((d_bits << 16) | c_bits) & _MASK32
    return rs1, rs2


def unpack_nmldl_operands(rs1: int, rs2: int) -> IzhikevichParams:
    """Unpack the ``nmldl`` operand words back into real-valued parameters."""
    a = Q4_11.to_float(Q4_11.from_unsigned(rs1 & _MASK16))
    b = Q4_11.to_float(Q4_11.from_unsigned((rs1 >> 16) & _MASK16))
    c = Q7_8.to_float(Q7_8.from_unsigned(rs2 & _MASK16))
    d = Q4_11.to_float(Q4_11.from_unsigned((rs2 >> 16) & _MASK16))
    return IzhikevichParams(a=a, b=b, c=c, d=d)


def pack_nmldh_operand(*, fine_timestep: bool, pin_voltage: bool) -> int:
    """Pack the ``nmldh`` configuration word (``rs1``).

    Parameters
    ----------
    fine_timestep:
        ``True`` selects h = 0.125 ms, ``False`` selects h = 0.5 ms.
    pin_voltage:
        ``True`` caps the membrane potential at the reset potential
        (disables the rebound behaviour, paper §V-B).
    """
    return (int(bool(pin_voltage)) << 1) | int(bool(fine_timestep))


def unpack_nmldh_operand(rs1: int) -> Tuple[bool, bool]:
    """Unpack ``nmldh``'s ``rs1`` into ``(fine_timestep, pin_voltage)``."""
    return bool(rs1 & 0x1), bool((rs1 >> 1) & 0x1)


def pack_isyn(isyn: float) -> int:
    """Quantise a synaptic current to Q15.16 and return the unsigned word."""
    return Q15_16.to_unsigned(Q15_16.from_float(isyn))


def unpack_isyn(word: int) -> float:
    """Interpret an unsigned 32-bit word as a Q15.16 synaptic current."""
    return Q15_16.to_float(Q15_16.from_unsigned(word & _MASK32))
