"""Soft-float baseline cost model (the ~40x comparison of paper §VI-C).

The original DTEK-V has no floating-point unit, so a single-precision
implementation of the Sudoku solver runs on compiler-provided soft-float
routines (``__mulsf3``, ``__addsf3``, ``__divsf3`` ...).  The paper reports
that the NPU/DCU fixed-point solver is roughly 40x faster per timestep
than that soft-float build.

Reproducing the exact libgcc routines is not necessary to reproduce the
*shape* of that claim: the per-timestep cost of the soft-float build is
dominated by the number of float operations per neuron update multiplied
by the (well-known) instruction cost of each emulated operation.  This
module provides that calibrated cost model — per-operation instruction
counts taken from the RV32IM libgcc/berkeley-softfloat implementations —
and combines it with the *measured* cycle cost of the extension kernel to
produce the per-timestep speedup estimate.  EXPERIMENTS.md documents this
substitution explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["SoftFloatCostModel", "FloatOpCounts", "IZHIKEVICH_FLOAT_OPS", "estimate_softfloat_speedup"]


@dataclass(frozen=True)
class FloatOpCounts:
    """Number of single-precision operations per neuron per timestep."""

    additions: int
    multiplications: int
    divisions: int
    comparisons: int
    int_float_conversions: int

    @property
    def total(self) -> int:
        return (
            self.additions
            + self.multiplications
            + self.divisions
            + self.comparisons
            + self.int_float_conversions
        )


#: Float operations of one Izhikevich Euler update plus the synaptic decay
#: (the same 19-operation budget as the fixed-point path, §II-C, but now
#: every operation is a library call).
IZHIKEVICH_FLOAT_OPS = FloatOpCounts(
    additions=7,          # +140, -u, +I, +v, -u (recovery), +u, decay subtract
    multiplications=8,    # v*v, 0.04*, 5*, *h, b*v, *a, *h, decay *h
    divisions=1,          # I / tau
    comparisons=1,        # spike threshold
    int_float_conversions=2,  # unpack/repack of the stored state
)


@dataclass
class SoftFloatCostModel:
    """Instruction-cost model of RV32IM soft-float library routines.

    The per-call instruction counts are representative averages of the
    libgcc soft-float implementations on RV32IM (normalised operands, no
    subnormal fast paths) and include call/return overhead.
    """

    add_instructions: int = 52
    mul_instructions: int = 68
    div_instructions: int = 190
    compare_instructions: int = 14
    conversion_instructions: int = 24
    #: Loads/stores and loop bookkeeping around the float calls.
    overhead_instructions: int = 24
    #: Average cycles per instruction of the soft-float code on the 3-stage
    #: core (branch-heavy code; calibrated from the cycle simulator's IPC
    #: on integer-only control-flow-heavy kernels).
    cycles_per_instruction: float = 1.35

    def instructions_per_update(self, ops: FloatOpCounts = IZHIKEVICH_FLOAT_OPS) -> int:
        """Soft-float instructions needed for one neuron update + decay."""
        return (
            ops.additions * self.add_instructions
            + ops.multiplications * self.mul_instructions
            + ops.divisions * self.div_instructions
            + ops.comparisons * self.compare_instructions
            + ops.int_float_conversions * self.conversion_instructions
            + self.overhead_instructions
        )

    def cycles_per_update(self, ops: FloatOpCounts = IZHIKEVICH_FLOAT_OPS) -> float:
        """Estimated core cycles for one soft-float neuron update + decay."""
        return self.instructions_per_update(ops) * self.cycles_per_instruction

    def breakdown(self, ops: FloatOpCounts = IZHIKEVICH_FLOAT_OPS) -> Dict[str, int]:
        """Instruction budget per operation class (for reporting)."""
        return {
            "additions": ops.additions * self.add_instructions,
            "multiplications": ops.multiplications * self.mul_instructions,
            "divisions": ops.divisions * self.div_instructions,
            "comparisons": ops.comparisons * self.compare_instructions,
            "conversions": ops.int_float_conversions * self.conversion_instructions,
            "overhead": self.overhead_instructions,
        }


def estimate_softfloat_speedup(
    extension_cycles_per_update: float,
    *,
    model: SoftFloatCostModel | None = None,
    ops: FloatOpCounts = IZHIKEVICH_FLOAT_OPS,
) -> float:
    """Per-timestep speedup of the NPU/DCU kernel over the soft-float build.

    Parameters
    ----------
    extension_cycles_per_update:
        Measured cycles per neuron update of the extension kernel (from
        the cycle simulator: total cycles / neuron updates).
    """
    cost = model if model is not None else SoftFloatCostModel()
    return cost.cycles_per_update(ops) / extension_cycles_per_update
