"""Memory layout and data encoding for the generated evaluation programs.

The evaluation programs (the 80-20 loop and the Sudoku WTA loop of paper
§VI) keep all network state in the on-chip memory region, mirroring the
FPGA system: packed VU words, Q15.16 synaptic currents, per-neuron
parameter words (in exactly the ``nmldl`` operand layout), a table of
pre-computed external inputs for each simulated step, the recurrent
connectivity in CSR form and a small result/scratch area.

:class:`NetworkDataLayout` computes the addresses; :func:`encode_network_data`
turns a :class:`WorkloadSpec` (parameters, initial state, weights, inputs)
into the word image that is pre-loaded into the simulator's memory before
the program runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..fixedpoint import Q4_11, Q7_8, Q15_16
from ..fixedpoint.vuword import pack_vu

__all__ = ["ONCHIP_BASE", "NetworkDataLayout", "WorkloadSpec", "encode_network_data"]

#: Base of the on-chip data region (see :func:`repro.sim.memory.DEFAULT_MEMORY_MAP`).
ONCHIP_BASE = 0x1000_0000

_MASK16 = 0xFFFF


@dataclass(frozen=True)
class NetworkDataLayout:
    """Addresses of every data structure used by the generated kernels."""

    num_neurons: int
    num_steps: int
    num_synapses: int
    base: int = ONCHIP_BASE

    def _offset(self, words: int) -> int:
        return words * 4

    # Region sizes in words -------------------------------------------------
    @property
    def vu_base(self) -> int:
        """Packed VU words, one per neuron."""
        return self.base

    @property
    def current_base(self) -> int:
        """Q15.16 synaptic currents, one per neuron."""
        return self.vu_base + self._offset(self.num_neurons)

    @property
    def param_base(self) -> int:
        """Two words per neuron: ``(b<<16|a)`` and ``(d<<16|c)`` (nmldl layout)."""
        return self.current_base + self._offset(self.num_neurons)

    @property
    def input_base(self) -> int:
        """Pre-computed external input, ``num_steps`` rows of ``num_neurons`` words."""
        return self.param_base + self._offset(2 * self.num_neurons)

    @property
    def rowptr_base(self) -> int:
        """CSR row-pointer array (``num_neurons + 1`` words)."""
        return self.input_base + self._offset(self.num_steps * self.num_neurons)

    @property
    def syn_index_base(self) -> int:
        """CSR column-index array (``num_synapses`` words)."""
        return self.rowptr_base + self._offset(self.num_neurons + 1)

    @property
    def syn_weight_base(self) -> int:
        """CSR weight array in Q15.16 (``num_synapses`` words)."""
        return self.syn_index_base + self._offset(self.num_synapses)

    @property
    def spike_buffer_base(self) -> int:
        """Scratch buffer of spiking neuron indices for the current step."""
        return self.syn_weight_base + self._offset(self.num_synapses)

    @property
    def result_base(self) -> int:
        """Result words: [0] total spikes, [1] checksum of VU words."""
        return self.spike_buffer_base + self._offset(self.num_neurons)

    @property
    def end(self) -> int:
        """First address past the data image."""
        return self.result_base + self._offset(4)

    @property
    def total_bytes(self) -> int:
        return self.end - self.base

    def as_symbols(self) -> Dict[str, int]:
        """Symbol table handed to the assembler via ``.equ`` directives."""
        return {
            "VU_BASE": self.vu_base,
            "CURRENT_BASE": self.current_base,
            "PARAM_BASE": self.param_base,
            "INPUT_BASE": self.input_base,
            "ROWPTR_BASE": self.rowptr_base,
            "SYN_INDEX_BASE": self.syn_index_base,
            "SYN_WEIGHT_BASE": self.syn_weight_base,
            "SPIKE_BUF_BASE": self.spike_buffer_base,
            "RESULT_BASE": self.result_base,
            "NUM_NEURONS": self.num_neurons,
            "NUM_STEPS": self.num_steps,
        }


@dataclass
class WorkloadSpec:
    """A fully-specified SNN workload ready to be encoded and compiled.

    Attributes
    ----------
    a, b, c, d:
        Per-neuron Izhikevich parameters (real-valued; quantised when
        encoded).
    v0, u0:
        Initial state (real-valued).
    weights:
        Dense ``[post, pre]`` weight matrix; zeros are dropped when the
        CSR image is built.
    external_input:
        ``[num_steps, num_neurons]`` array of per-step injected currents.
    tau_select:
        DCU decay selector used by the kernel.
    pin_voltage:
        Whether the kernel configures the NPU membrane pin.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray
    v0: np.ndarray
    u0: np.ndarray
    weights: np.ndarray
    external_input: np.ndarray
    tau_select: int = 4
    pin_voltage: bool = False
    name: str = "workload"

    def __post_init__(self) -> None:
        n = len(np.asarray(self.a))
        for label in ("b", "c", "d", "v0", "u0"):
            if len(np.asarray(getattr(self, label))) != n:
                raise ValueError(f"parameter array {label!r} does not match population size {n}")
        weights = np.asarray(self.weights)
        if weights.shape != (n, n):
            raise ValueError(f"weight matrix must be [{n}, {n}], got {weights.shape}")
        inputs = np.asarray(self.external_input)
        if inputs.ndim != 2 or inputs.shape[1] != n:
            raise ValueError("external_input must be [num_steps, num_neurons]")

    @property
    def num_neurons(self) -> int:
        return len(np.asarray(self.a))

    @property
    def num_steps(self) -> int:
        return int(np.asarray(self.external_input).shape[0])

    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR view of the weight matrix, row = presynaptic neuron.

        Returns ``(row_ptr, col_index, weight)`` where row ``s`` lists the
        postsynaptic targets of neuron ``s`` (the kernel walks this row
        when neuron ``s`` spikes).
        """
        n = self.num_neurons
        weights = np.asarray(self.weights, dtype=np.float64)
        row_ptr = np.zeros(n + 1, dtype=np.int64)
        cols: List[np.ndarray] = []
        vals: List[np.ndarray] = []
        for pre in range(n):
            targets = np.nonzero(weights[:, pre])[0]
            cols.append(targets)
            vals.append(weights[targets, pre])
            row_ptr[pre + 1] = row_ptr[pre] + len(targets)
        col_index = np.concatenate(cols) if cols else np.zeros(0, dtype=np.int64)
        weight = np.concatenate(vals) if vals else np.zeros(0, dtype=np.float64)
        return row_ptr, col_index.astype(np.int64), weight

    def layout(self, *, base: int = ONCHIP_BASE) -> NetworkDataLayout:
        row_ptr, col_index, _ = self.csr()
        return NetworkDataLayout(
            num_neurons=self.num_neurons,
            num_steps=self.num_steps,
            num_synapses=int(row_ptr[-1]),
            base=base,
        )


def encode_network_data(spec: WorkloadSpec, layout: NetworkDataLayout) -> List[Tuple[int, int]]:
    """Encode a workload into ``(address, word)`` pairs for memory pre-load."""
    words: List[Tuple[int, int]] = []

    v_raw = np.asarray(Q7_8.from_float(np.asarray(spec.v0, dtype=np.float64)))
    u_raw = np.asarray(Q7_8.from_float(np.asarray(spec.u0, dtype=np.float64)))
    vu_words = np.asarray(pack_vu(v_raw, u_raw))
    for i, word in enumerate(vu_words):
        words.append((layout.vu_base + 4 * i, int(word)))

    for i in range(spec.num_neurons):
        words.append((layout.current_base + 4 * i, 0))

    a_bits = np.asarray(Q4_11.to_unsigned(Q4_11.from_float(np.asarray(spec.a, dtype=np.float64))))
    b_bits = np.asarray(Q4_11.to_unsigned(Q4_11.from_float(np.asarray(spec.b, dtype=np.float64))))
    c_bits = np.asarray(Q7_8.to_unsigned(Q7_8.from_float(np.asarray(spec.c, dtype=np.float64))))
    d_bits = np.asarray(Q4_11.to_unsigned(Q4_11.from_float(np.asarray(spec.d, dtype=np.float64))))
    for i in range(spec.num_neurons):
        ab_word = ((int(b_bits[i]) & _MASK16) << 16) | (int(a_bits[i]) & _MASK16)
        dc_word = ((int(d_bits[i]) & _MASK16) << 16) | (int(c_bits[i]) & _MASK16)
        words.append((layout.param_base + 8 * i, ab_word))
        words.append((layout.param_base + 8 * i + 4, dc_word))

    inputs = np.asarray(spec.external_input, dtype=np.float64)
    input_raw = np.asarray(Q15_16.from_float(inputs))
    input_bits = np.asarray(Q15_16.to_unsigned(input_raw))
    for t in range(spec.num_steps):
        base = layout.input_base + 4 * t * spec.num_neurons
        for i in range(spec.num_neurons):
            words.append((base + 4 * i, int(input_bits[t, i])))

    row_ptr, col_index, weight = spec.csr()
    for i, value in enumerate(row_ptr):
        words.append((layout.rowptr_base + 4 * i, int(value)))
    weight_bits = np.asarray(Q15_16.to_unsigned(Q15_16.from_float(weight))) if len(weight) else []
    for k in range(len(col_index)):
        words.append((layout.syn_index_base + 4 * k, int(col_index[k])))
        words.append((layout.syn_weight_base + 4 * k, int(weight_bits[k])))

    for i in range(4):
        words.append((layout.result_base + 4 * i, 0))
    return words
