"""Code generation for the IzhiRISC-V evaluation programs.

Memory layout / data encoding, the assembly kernels (extension vs base-ISA
baseline) and the workload builders used by the Table V / Table VI
benchmarks and the multi-core speedup experiments.
"""

from .kernels import baseline_kernel, extension_kernel, kernel_source
from .layout import NetworkDataLayout, ONCHIP_BASE, WorkloadSpec, encode_network_data
from .program import (
    Workload,
    build_eighty_twenty_workload,
    build_sudoku_workload,
    build_workload,
)
from .softfloat import (
    FloatOpCounts,
    IZHIKEVICH_FLOAT_OPS,
    SoftFloatCostModel,
    estimate_softfloat_speedup,
)

__all__ = [
    "FloatOpCounts",
    "IZHIKEVICH_FLOAT_OPS",
    "SoftFloatCostModel",
    "estimate_softfloat_speedup",
    "baseline_kernel",
    "extension_kernel",
    "kernel_source",
    "NetworkDataLayout",
    "ONCHIP_BASE",
    "WorkloadSpec",
    "encode_network_data",
    "Workload",
    "build_eighty_twenty_workload",
    "build_sudoku_workload",
    "build_workload",
]
