"""Workload builders: from a network description to a runnable simulator.

A *workload* bundles an assembled program, the memory image holding the
network data and the metadata needed to interpret the results.  Builders
are provided for the paper's two applications:

* :func:`build_eighty_twenty_workload` — a (scalable) version of the 80-20
  cortical network: the full-size instance matches Table V's 1000 neurons,
  while smaller instances are used for the cycle-accurate steady-state
  windows (full-size cycle simulation is impractical in pure Python; see
  DESIGN.md).
* :func:`build_sudoku_workload` — the 729-neuron WTA network driving the
  Sudoku solver of Table VI.

Each builder accepts ``kind`` = ``"extension"`` (neuromorphic
instructions) or ``"baseline"`` (base RV32IM), producing bit-compatible
programs whose performance difference is exactly the contribution of the
ISA extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..isa.assembler import Program, assemble
from ..sim.functional import FunctionalSimulator
from ..sim.memory import DEFAULT_MEMORY_MAP, Memory
from ..snn.eighty_twenty import EightyTwentyConfig, build_eighty_twenty
from ..sudoku.board import SudokuBoard
from ..sudoku.wta import WTAConfig, build_wta_synapses, neuron_index, NUM_NEURONS as WTA_NEURONS
from .kernels import kernel_source
from .layout import NetworkDataLayout, WorkloadSpec, encode_network_data

__all__ = ["Workload", "build_workload", "build_eighty_twenty_workload", "build_sudoku_workload"]


@dataclass
class Workload:
    """A runnable evaluation program plus its data image and metadata."""

    name: str
    kind: str
    spec: WorkloadSpec
    layout: NetworkDataLayout
    program: Program
    source: str

    def make_simulator(self, *, fast_dispatch: bool = True) -> FunctionalSimulator:
        """Create a fresh functional simulator pre-loaded with program + data.

        ``fast_dispatch=False`` selects the legacy ``if/elif`` execution
        chain (for differential testing and baseline benchmarks).
        """
        memory = Memory(DEFAULT_MEMORY_MAP())
        fsim = FunctionalSimulator(memory, fast_dispatch=fast_dispatch)
        fsim.load_program(self.program)
        for address, word in encode_network_data(self.spec, self.layout):
            memory.store_word(address, word)
        return fsim

    # ------------------------------------------------------------------ #
    # Result decoding helpers
    # ------------------------------------------------------------------ #
    def total_spikes(self, fsim: FunctionalSimulator) -> int:
        """Read the total spike count written by the program."""
        return fsim.memory.load_word(self.layout.result_base)

    def vu_checksum(self, fsim: FunctionalSimulator) -> int:
        """Read the final VU-word checksum written by the program."""
        return fsim.memory.load_word(self.layout.result_base + 4)

    def read_vu_words(self, fsim: FunctionalSimulator) -> np.ndarray:
        """Read back the packed VU words after the run."""
        return np.asarray(
            fsim.memory.read_words(self.layout.vu_base, self.layout.num_neurons), dtype=np.int64
        )

    def read_currents(self, fsim: FunctionalSimulator) -> np.ndarray:
        """Read back the Q15.16 current words after the run."""
        return np.asarray(
            fsim.memory.read_words(self.layout.current_base, self.layout.num_neurons), dtype=np.int64
        )

    @property
    def instructions_per_update_estimate(self) -> int:
        """Static estimate of kernel instructions per neuron update."""
        body = self.source.split("neuron_loop:")[1].split("_prop_loop")[0]
        return sum(
            1
            for line in body.splitlines()
            if line.strip() and not line.strip().startswith(("#", ".", "_"))
            and ":" not in line.split("#")[0]
        )


def build_workload(spec: WorkloadSpec, *, kind: str = "extension", origin: int = 0) -> Workload:
    """Assemble the requested kernel for an arbitrary :class:`WorkloadSpec`."""
    layout = spec.layout()
    source = kernel_source(kind, layout, tau_select=spec.tau_select, pin_voltage=spec.pin_voltage)
    program = assemble(source, origin=origin)
    return Workload(name=spec.name, kind=kind, spec=spec, layout=layout, program=program, source=source)


# ---------------------------------------------------------------------- #
# 80-20 cortical network workload (Table V)
# ---------------------------------------------------------------------- #
def build_eighty_twenty_workload(
    *,
    num_neurons: int = 1000,
    num_steps: int = 5,
    kind: str = "extension",
    tau_select: int = 4,
    seed: int = 2003,
) -> Workload:
    """Build the 80-20 workload, optionally scaled down for cycle simulation.

    The neuron population keeps the 80/20 excitatory/inhibitory split and
    Izhikevich's parameter distributions; the dense random connectivity and
    the per-step thalamic noise are scaled to ``num_neurons``.
    """
    if num_neurons < 5:
        raise ValueError("the 80-20 network needs at least 5 neurons")
    num_exc = int(round(0.8 * num_neurons))
    num_inh = num_neurons - num_exc
    config = EightyTwentyConfig(num_excitatory=num_exc, num_inhibitory=num_inh, seed=seed)
    net = build_eighty_twenty(config)
    external = np.stack([net.thalamic_input(t) for t in range(num_steps)])
    spec = WorkloadSpec(
        a=net.a,
        b=net.b,
        c=net.c,
        d=net.d,
        v0=np.full(num_neurons, -65.0),
        u0=net.b * -65.0,
        weights=net.weights,
        external_input=external,
        tau_select=tau_select,
        pin_voltage=False,
        name=f"eighty-twenty-{num_neurons}n-{num_steps}t",
    )
    return build_workload(spec, kind=kind)


# ---------------------------------------------------------------------- #
# Sudoku WTA workload (Table VI)
# ---------------------------------------------------------------------- #
def build_sudoku_workload(
    puzzle: Optional[SudokuBoard] = None,
    *,
    num_steps: int = 5,
    kind: str = "extension",
    config: Optional[WTAConfig] = None,
    seed: int = 7,
) -> Workload:
    """Build the 729-neuron Sudoku WTA workload for performance measurement.

    The generated program runs the per-timestep update/propagation loop of
    the solver; the drive (clues + exploration noise) is pre-computed per
    step, exactly as the processor would read it from its input buffer.
    """
    cfg = config if config is not None else WTAConfig()
    board = puzzle if puzzle is not None else SudokuBoard.empty()
    synapses = build_wta_synapses(cfg)
    weights = np.asarray(synapses.matrix.todense(), dtype=np.float64)

    drive = np.full(WTA_NEURONS, cfg.free_bias, dtype=np.float64)
    for row, col, digit in board.clue_positions():
        for d in range(1, 10):
            drive[neuron_index(row, col, d)] = 0.0
        drive[neuron_index(row, col, digit)] = cfg.clue_drive
    rng = np.random.default_rng(seed)
    free_mask = (drive > 0.0) & (drive != cfg.clue_drive)
    external = np.stack(
        [drive + cfg.noise_sigma * rng.standard_normal(WTA_NEURONS) * free_mask for _ in range(num_steps)]
    )

    spec = WorkloadSpec(
        a=np.full(WTA_NEURONS, cfg.a),
        b=np.full(WTA_NEURONS, cfg.b),
        c=np.full(WTA_NEURONS, cfg.c),
        d=np.full(WTA_NEURONS, cfg.d),
        v0=np.full(WTA_NEURONS, -65.0),
        u0=np.full(WTA_NEURONS, cfg.b * -65.0),
        weights=weights,
        external_input=external,
        tau_select=cfg.tau_select,
        pin_voltage=True,
        name=f"sudoku-wta-{num_steps}t",
    )
    return build_workload(spec, kind=kind)
