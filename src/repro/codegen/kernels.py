"""Assembly kernels for the SNN evaluation programs.

Two functionally-equivalent neuron-update kernels are generated:

* :func:`extension_kernel` — uses the neuromorphic instructions
  (``nmldl``/``nmldh``/``nmpn``/``nmdec``), mirroring the paper's
  Listing 1: one single-cycle neuron update and one single-cycle current
  decay per neuron per timestep.
* :func:`baseline_kernel` — the same computation expressed with base
  RV32IM instructions only (the "19 equivalent operations" of §II-C plus
  the unavoidable packing/unpacking), bit-compatible with the NPU/DCU
  datapath so the two programs produce identical network trajectories.

Both kernels share the same program skeleton: per timestep they walk the
neuron arrays (parameters, packed VU word, synaptic current, pre-computed
external input), record which neurons spiked and then propagate the spikes
through the CSR connectivity by accumulating weights into the target
currents.  The final instruction stores the total spike count and a VU
checksum into the result area and halts through the MMIO halt register.
"""

from __future__ import annotations

from typing import List

from ..isa.nm_ext import pack_nmldh_operand
from ..sim.dcu import SHIFT_SELECTIONS
from ..sim.functional import MMIO_HALT
from .layout import NetworkDataLayout

__all__ = ["extension_kernel", "baseline_kernel", "kernel_source"]


def _header(layout: NetworkDataLayout, *, tau_select: int, pin_voltage: bool, kernel: str) -> List[str]:
    """Common prologue: symbol definitions and register initialisation."""
    nmldh_word = pack_nmldh_operand(fine_timestep=False, pin_voltage=pin_voltage)
    lines = [
        f"# ---- {kernel} kernel: {layout.num_neurons} neurons, {layout.num_steps} steps ----",
        "# Register convention:",
        "#   s0 = NUM_NEURONS        s1 = NUM_STEPS       s2 = VU pointer",
        "#   s3 = current pointer    s4 = parameter ptr   s5 = input pointer",
        "#   s6 = spike buffer base  s7 = total spikes    s8 = step counter",
        "#   s9 = neuron counter     s10 = tau select     s11 = spikes this step",
    ]
    for name, value in layout.as_symbols().items():
        lines.append(f".equ {name}, {value}")
    lines += [
        f".equ TAU_SELECT, {tau_select}",
        f".equ MMIO_HALT_ADDR, {MMIO_HALT}",
        "",
        "_start:",
        "    li   s0, NUM_NEURONS",
        "    li   s1, NUM_STEPS",
        "    li   s6, SPIKE_BUF_BASE",
        "    li   s7, 0",
        "    li   s8, 0",
        "    li   s10, TAU_SELECT",
        "    li   s5, INPUT_BASE",
    ]
    if kernel == "extension":
        lines += [
            f"    li   t0, {nmldh_word}",
            "    nmldh x0, t0, x0          # configure timestep (0.5 ms) and pin bit",
        ]
    return lines


def _footer(kernel: str) -> List[str]:
    """Result write-out, VU checksum and halt."""
    p = kernel[:3]
    return [
        f"{p}_all_steps_done:",
        "    li   t0, RESULT_BASE",
        "    sw   s7, 0(t0)              # result[0] = total spikes",
        "    # checksum of the final VU words -> result[1]",
        "    li   t1, VU_BASE",
        "    li   t2, 0",
        "    li   t3, 0",
        f"{p}_checksum_loop:",
        "    lw   t4, 0(t1)",
        "    xor  t2, t2, t4",
        "    addi t1, t1, 4",
        "    addi t3, t3, 1",
        f"    blt  t3, s0, {p}_checksum_loop",
        "    sw   t2, 4(t0)              # result[1] = VU checksum",
        "    li   t5, MMIO_HALT_ADDR",
        "    sw   x0, 0(t5)              # halt the simulation",
    ]


def _step_prologue(kernel: str) -> List[str]:
    p = kernel[:3]
    return [
        "",
        f"{p}_time_loop:",
        "    li   s2, VU_BASE",
        "    li   s3, CURRENT_BASE",
        "    li   s4, PARAM_BASE",
        "    li   s9, 0                  # neuron index",
        "    li   s11, 0                 # spikes in this step",
    ]


def _spike_record(kernel: str) -> List[str]:
    """Append the spiking neuron's index to the per-step spike buffer."""
    p = kernel[:3]
    return [
        f"    beqz a2, {p}_no_spike",
        "    slli t0, s11, 2",
        "    add  t0, t0, s6",
        "    sw   s9, 0(t0)              # record spiking neuron index",
        "    addi s11, s11, 1",
        f"{p}_no_spike:",
    ]


def _neuron_loop_epilogue(kernel: str) -> List[str]:
    p = kernel[:3]
    return [
        "    addi s2, s2, 4",
        "    addi s3, s3, 4",
        "    addi s4, s4, 8",
        "    addi s5, s5, 4",
        "    addi s9, s9, 1",
        f"    blt  s9, s0, {p}_neuron_loop",
    ]


def _propagation_loop(kernel: str) -> List[str]:
    """Spike propagation through the CSR connectivity."""
    p = kernel[:3]
    return [
        "    add  s7, s7, s11            # accumulate total spikes",
        "    li   t0, 0                  # spike-buffer index",
        f"{p}_prop_loop:",
        f"    bge  t0, s11, {p}_prop_done",
        "    slli t1, t0, 2",
        "    add  t1, t1, s6",
        "    lw   t2, 0(t1)              # spiking neuron id",
        "    slli t3, t2, 2",
        "    li   t4, ROWPTR_BASE",
        "    add  t3, t3, t4",
        "    lw   t5, 0(t3)              # row start",
        "    lw   t6, 4(t3)              # row end",
        f"{p}_prop_inner:",
        f"    bge  t5, t6, {p}_prop_next",
        "    slli a0, t5, 2",
        "    li   a1, SYN_INDEX_BASE",
        "    add  a1, a1, a0",
        "    lw   a2, 0(a1)              # postsynaptic index",
        "    li   a3, SYN_WEIGHT_BASE",
        "    add  a3, a3, a0",
        "    lw   a3, 0(a3)              # weight (Q15.16)",
        "    slli a2, a2, 2",
        "    li   a4, CURRENT_BASE",
        "    add  a4, a4, a2",
        "    lw   a5, 0(a4)",
        "    add  a5, a5, a3",
        "    sw   a5, 0(a4)              # I[target] += weight",
        "    addi t5, t5, 1",
        f"    j    {p}_prop_inner",
        f"{p}_prop_next:",
        "    addi t0, t0, 1",
        f"    j    {p}_prop_loop",
        f"{p}_prop_done:",
        "    addi s8, s8, 1",
        f"    blt  s8, s1, {kernel[:3]}_time_loop",
    ]


def _decay_shift_add(tau_select: int, src: str, dst: str, scratch: str) -> List[str]:
    """Emit the DCU shift-add division approximation for the baseline kernel.

    Computes ``dst = src - ((Σ src >> shift_i) >> 1)`` — identical to the
    ``nmdec`` semantics with the 0.5 ms timestep.
    """
    shifts = SHIFT_SELECTIONS[tau_select]
    lines = [f"    srai {dst}, {src}, {shifts[0]}"]
    for shift in shifts[1:]:
        lines.append(f"    srai {scratch}, {src}, {shift}")
        lines.append(f"    add  {dst}, {dst}, {scratch}")
    lines.append(f"    srai {dst}, {dst}, 1            # multiply by h = 0.5 ms")
    lines.append(f"    sub  {dst}, {src}, {dst}")
    return lines


def extension_kernel(layout: NetworkDataLayout, *, tau_select: int = 4, pin_voltage: bool = False) -> str:
    """Generate the neuromorphic-extension program (paper Listing 1 style)."""
    lines = _header(layout, tau_select=tau_select, pin_voltage=pin_voltage, kernel="extension")
    lines += _step_prologue("extension")
    lines += [
        "ext_neuron_loop:",
        "    lw   a6, 0(s4)              # (b << 16 | a) parameter word",
        "    lw   a7, 4(s4)              # (d << 16 | c) parameter word",
        "    nmldl x0, a6, a7            # load a, b, c, d into the NM registers",
        "    lw   t5, 0(s5)              # external (thalamic) input",
        "    lw   a1, 0(s3)              # synaptic current I[n]",
        "    add  a1, a1, t5",
        "    lw   a0, 0(s2)              # packed VU word",
        "    add  a2, x0, s2             # VU address for the nmpn writeback",
        "    nmpn a2, a0, a1             # single-cycle neuron update, a2 <- spike",
        "    nmdec a3, s10, a1           # single-cycle current decay",
        "    sw   a3, 0(s3)",
    ]
    lines += _spike_record("extension")
    lines += _neuron_loop_epilogue("extension")
    lines += _propagation_loop("extension")
    lines += _footer("extension")
    return "\n".join(lines) + "\n"


def baseline_kernel(layout: NetworkDataLayout, *, tau_select: int = 4, pin_voltage: bool = False) -> str:
    """Generate the base-ISA (RV32IM, fixed-point) program.

    The arithmetic mirrors the NPU datapath exactly: Q.16 accumulator,
    timestep as a right shift, reset/threshold in Q7.8 and the DCU
    shift-add decay, so the trajectory is bit-identical to the extension
    program (a property the integration tests verify).
    """
    lines = _header(layout, tau_select=tau_select, pin_voltage=pin_voltage, kernel="baseline")
    lines += _step_prologue("baseline")
    lines += [
        "bas_neuron_loop:",
        "    lw   a6, 0(s4)              # (b << 16 | a)",
        "    lw   a7, 4(s4)              # (d << 16 | c)",
        "    lw   t5, 0(s5)              # external input",
        "    lw   a1, 0(s3)              # synaptic current I[n]",
        "    add  a1, a1, t5",
        "    lw   a0, 0(s2)              # packed VU word",
        "    # ---- unpack parameters and state ----",
        "    slli t0, a6, 16",
        "    srai t0, t0, 16             # a (Q4.11)",
        "    srai t1, a6, 16             # b (Q4.11)",
        "    slli t2, a7, 16",
        "    srai t2, t2, 16             # c (Q7.8)",
        "    srai t3, a7, 16             # d (Q4.11)",
        "    srai t4, a0, 16             # v (Q7.8)",
        "    slli t6, a0, 16",
        "    srai t6, t6, 16             # u (Q7.8)",
        "    slli a2, t4, 8              # v accumulator (Q.16)",
        "    slli a3, t6, 8              # u accumulator (Q.16)",
        "    # ---- dv = (0.04 v^2 + 5 v + 140 - u + I) * h ----",
        "    mul  a4, t4, t4             # v*v (Q.16), needs 64-bit product below",
        "    li   a5, 82                 # 0.04 in Q4.11",
        "    mulh a6, a4, a5             # wide product of 0.04 * v^2",
        "    mul  a4, a4, a5",
        "    srli a4, a4, 11",
        "    slli a6, a6, 21",
        "    or   a4, a4, a6             # (0.04 v^2) in Q.16",
        "    slli a5, a2, 2",
        "    add  a5, a5, a2             # 5 * v_acc",
        "    add  a4, a4, a5",
        "    li   a5, 9175040            # 140 << 16",
        "    add  a4, a4, a5",
        "    sub  a4, a4, a3",
        "    add  a4, a4, a1",
        "    srai a4, a4, 1              # * h (0.5 ms)",
        "    add  a2, a2, a4             # v_new accumulator",
        "    # ---- du = a (b v - u) * h ----",
        "    mul  a5, t1, t4             # b*v (Q.19)",
        "    srai a5, a5, 3              # -> Q.16",
        "    sub  a5, a5, a3",
        "    mul  a5, a5, t0             # * a",
        "    srai a5, a5, 11",
        "    srai a5, a5, 1              # * h",
        "    add  a3, a3, a5             # u_new accumulator",
        "    srai a2, a2, 8              # v_new (Q7.8)",
        "    srai a3, a3, 8              # u_new (Q7.8)",
        "    # ---- spike detection and reset ----",
        "    li   a4, 7680               # 30 mV threshold in Q7.8",
        "    li   a6, 0                  # spike flag",
        "    blt  a2, a4, bas_below_threshold",
        "    add  a2, x0, t2             # v <- c",
        "    srai a5, t3, 3              # d in Q7.8",
        "    add  a3, a3, a5             # u <- u + d",
        "    li   a6, 1",
        "bas_below_threshold:",
    ]
    if pin_voltage:
        lines += [
            "    bge  a2, t2, bas_no_pin     # pin v at the reset potential",
            "    add  a2, x0, t2",
            "bas_no_pin:",
        ]
    lines += [
        "    # ---- pack and store the VU word ----",
        "    slli a2, a2, 16",
        "    slli a3, a3, 16",
        "    srli a3, a3, 16",
        "    or   a0, a2, a3",
        "    sw   a0, 0(s2)",
        "    add  a2, x0, a6             # spike flag for the recording code",
        "    # ---- synaptic current decay (DCU shift-add approximation) ----",
    ]
    lines += _decay_shift_add(tau_select, src="a1", dst="a3", scratch="a4")
    lines += [
        "    sw   a3, 0(s3)",
    ]
    lines += _spike_record("baseline")
    lines += _neuron_loop_epilogue("baseline")
    lines += _propagation_loop("baseline")
    lines += _footer("baseline")
    return "\n".join(lines) + "\n"


def kernel_source(kind: str, layout: NetworkDataLayout, *, tau_select: int = 4, pin_voltage: bool = False) -> str:
    """Dispatch on the kernel kind (``"extension"`` or ``"baseline"``)."""
    if kind == "extension":
        return extension_kernel(layout, tau_select=tau_select, pin_voltage=pin_voltage)
    if kind == "baseline":
        return baseline_kernel(layout, tau_select=tau_select, pin_voltage=pin_voltage)
    raise ValueError(f"unknown kernel kind {kind!r}")
