"""Synaptic connectivity and current handling for SNN simulations.

Two connectivity containers are provided:

* :class:`DenseSynapses` — a full weight matrix, as used by Izhikevich's
  80-20 network (every neuron connects to every other neuron).
* :class:`SparseSynapses` — compressed sparse connectivity, as used by the
  Sudoku Winner-Takes-All network where each neuron inhibits only the
  digits in its row, column, 3x3 box and cell.

Both expose ``propagate(fired)``: the synaptic current delivered to every
postsynaptic neuron given the boolean array of presynaptic spikes, i.e.
``I_j = Σ_i W[j, i] · fired[i]`` (weights are indexed ``[post, pre]``).

:class:`CurrentState` models the synaptic current book-keeping of the
processor: either recomputed from scratch every network step (Izhikevich's
original script) or accumulated and exponentially decayed with the DCU's
shift-add approximation (the ``nmdec`` path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np
from scipy import sparse

from ..fixedpoint import Q15_16
from .fixed_izhikevich import decay_current_raw

__all__ = ["DenseSynapses", "SparseSynapses", "CurrentState", "quantize_weights_q15_16"]


def quantize_weights_q15_16(weights: np.ndarray) -> Tuple[np.ndarray, bool]:
    """Quantise a weight array to raw Q15.16 ``int64`` payloads.

    Returns ``(raw, lossless)`` where ``lossless`` is ``True`` iff every
    weight is *exactly* representable in Q15.16 (no rounding, no
    saturation).  Lossless weights are the precondition of the batched
    integer propagation path: when they hold, any float64 summation of
    the weights is exact (every partial sum is an integer multiple of
    ``2**-16`` well inside the 53-bit mantissa), so an integer gather +
    reduction is bit-identical to the sequential float propagation.
    """
    weights = np.asarray(weights, dtype=np.float64)
    raw = np.asarray(Q15_16.from_float(weights), dtype=np.int64)
    lossless = bool(np.all(raw.astype(np.float64) / Q15_16.scale == weights))
    return raw, lossless


class DenseSynapses:
    """All-to-all connectivity backed by a dense ``[post, pre]`` matrix."""

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError("weight matrix must be 2-D [post, pre]")
        self.weights = weights
        # Column-gather scratch, sized to the observed firing counts and
        # grown geometrically (firing is typically sparse, so worst-case
        # ``(post, pre)`` sizing would waste weights-sized memory per
        # instance).  Fortran order keeps the ``[:, :k]`` slice
        # contiguous so the gather writes straight into it instead of
        # materialising a fresh ``(post, k)`` array per step.
        self._gather_scratch: Optional[np.ndarray] = None

    @property
    def num_pre(self) -> int:
        return self.weights.shape[1]

    @property
    def num_post(self) -> int:
        return self.weights.shape[0]

    @property
    def num_synapses(self) -> int:
        """Number of non-zero synapses."""
        return int(np.count_nonzero(self.weights))

    def quantized_q15_16(self) -> Tuple[np.ndarray, bool]:
        """Raw Q15.16 weights plus the lossless-quantisation flag."""
        return quantize_weights_q15_16(self.weights)

    def propagate(self, fired: np.ndarray) -> np.ndarray:
        """Synaptic current delivered by the firing presynaptic neurons."""
        fired = np.asarray(fired, dtype=bool)
        if fired.shape[0] != self.num_pre:
            raise ValueError("fired mask length does not match presynaptic count")
        idx = np.flatnonzero(fired)
        if idx.size == 0:
            return np.zeros(self.num_post, dtype=np.float64)
        # Gather the firing columns into the preallocated scratch and
        # pairwise-sum them.  NumPy's pairwise reduction depends only on
        # the reduction length, not the memory layout, so this is
        # bit-identical to the historical ``weights[:, fired].sum(axis=1)``
        # (locked down in tests/snn) without the per-step column copy.
        if self._gather_scratch is None or self._gather_scratch.shape[1] < idx.size:
            width = min(self.num_pre, 2 * idx.size)
            self._gather_scratch = np.empty((self.num_post, width), order="F")
        columns = self._gather_scratch[:, : idx.size]
        np.take(self.weights, idx, axis=1, out=columns)
        return columns.sum(axis=1)


class SparseSynapses:
    """Sparse connectivity backed by a CSC matrix (efficient column gather)."""

    def __init__(self, matrix: sparse.spmatrix) -> None:
        self.matrix = sparse.csc_matrix(matrix, dtype=np.float64)

    @classmethod
    def from_triplets(
        cls, triplets: Iterable[Tuple[int, int, float]], *, num_neurons: int
    ) -> "SparseSynapses":
        """Build from ``(pre, post, weight)`` triplets."""
        pres, posts, weights = [], [], []
        for pre, post, w in triplets:
            pres.append(pre)
            posts.append(post)
            weights.append(w)
        matrix = sparse.coo_matrix(
            (weights, (posts, pres)), shape=(num_neurons, num_neurons)
        )
        return cls(matrix)

    @property
    def num_pre(self) -> int:
        return self.matrix.shape[1]

    @property
    def num_post(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_synapses(self) -> int:
        return int(self.matrix.nnz)

    def quantized_q15_16(self) -> Tuple[np.ndarray, bool]:
        """Raw Q15.16 payloads of ``matrix.data`` plus the lossless flag."""
        return quantize_weights_q15_16(self.matrix.data)

    def propagate(self, fired: np.ndarray) -> np.ndarray:
        """Synaptic current delivered by the firing presynaptic neurons."""
        fired = np.asarray(fired, dtype=bool)
        if fired.shape[0] != self.num_pre:
            raise ValueError("fired mask length does not match presynaptic count")
        if not fired.any():
            return np.zeros(self.num_post, dtype=np.float64)
        indicator = fired.astype(np.float64)
        return np.asarray(self.matrix @ indicator).ravel()

    def out_degree(self) -> np.ndarray:
        """Number of outgoing synapses per presynaptic neuron."""
        return np.asarray((self.matrix != 0).sum(axis=0)).ravel()

    def in_degree(self) -> np.ndarray:
        """Number of incoming synapses per postsynaptic neuron."""
        return np.asarray((self.matrix != 0).sum(axis=1)).ravel()


@dataclass
class CurrentState:
    """Synaptic current book-keeping with optional DCU-style decay.

    Parameters
    ----------
    num_neurons:
        Population size.
    mode:
        ``"recompute"`` — the current is rebuilt from external input plus
        this step's synaptic events (Izhikevich's original script);
        ``"decay"`` — the current persists across steps and decays through
        the DCU approximation before new events are added.
    tau_select:
        DCU decay selector (1..9), only used in ``"decay"`` mode.
    h_shift:
        Timestep shift used by the decay (1 → 0.5 ms, 3 → 0.125 ms).
    decay_steps_per_ms:
        Number of ``nmdec`` applications per 1 ms network step.
    """

    num_neurons: int
    mode: str = "recompute"
    tau_select: int = 4
    h_shift: int = 1
    decay_steps_per_ms: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("recompute", "decay"):
            raise ValueError(f"unknown current mode {self.mode!r}")
        self.current = np.zeros(self.num_neurons, dtype=np.float64)

    def update(self, external: np.ndarray, synaptic: np.ndarray) -> np.ndarray:
        """Advance one network step and return the current seen by the neurons."""
        external = np.asarray(external, dtype=np.float64)
        synaptic = np.asarray(synaptic, dtype=np.float64)
        if self.mode == "recompute":
            self.current = external + synaptic
        else:
            raw = np.asarray(Q15_16.from_float(self.current), dtype=np.int64)
            for _ in range(self.decay_steps_per_ms):
                raw = decay_current_raw(raw, self.tau_select, self.h_shift)
            self.current = np.asarray(Q15_16.to_float(raw)) + external + synaptic
        return self.current

    def reset(self) -> None:
        """Zero the stored current."""
        self.current = np.zeros(self.num_neurons, dtype=np.float64)
