"""Spiking-neural-network substrate of the IzhiRISC-V reproduction.

Double-precision and NPU-bit-exact fixed-point Izhikevich populations,
synaptic connectivity containers, the network simulation engine, the
80-20 cortical workload and spike-train analysis utilities.
"""

from .analysis import (
    SpikeRaster,
    band_power,
    histogram_similarity,
    interspike_intervals,
    isi_histogram,
    population_rate,
    render_ascii_raster,
    rhythm_summary,
)
from .eighty_twenty import (
    EightyTwentyConfig,
    EightyTwentyNetwork,
    build_eighty_twenty,
    run_eighty_twenty,
)
from .fixed_izhikevich import FixedPointPopulation, decay_current_raw
from .izhikevich import SPIKE_THRESHOLD_MV, IzhikevichPopulation, euler_step, izhikevich_derivatives
from .network import SNNNetwork
from .synapse import CurrentState, DenseSynapses, SparseSynapses

__all__ = [
    "SpikeRaster",
    "band_power",
    "histogram_similarity",
    "interspike_intervals",
    "isi_histogram",
    "population_rate",
    "render_ascii_raster",
    "rhythm_summary",
    "EightyTwentyConfig",
    "EightyTwentyNetwork",
    "build_eighty_twenty",
    "run_eighty_twenty",
    "FixedPointPopulation",
    "decay_current_raw",
    "SPIKE_THRESHOLD_MV",
    "IzhikevichPopulation",
    "euler_step",
    "izhikevich_derivatives",
    "SNNNetwork",
    "CurrentState",
    "DenseSynapses",
    "SparseSynapses",
]
