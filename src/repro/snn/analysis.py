"""Spike-train analysis: rasters, inter-spike intervals and rhythms.

These utilities regenerate the paper's Figure 2 (raster plot of the 80-20
network) and Figure 3 (inter-spike-interval histograms compared across the
double-precision, fixed-point and IzhiRISC-V implementations), plus the
alpha/gamma population-rhythm measures the paper refers to qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "SpikeRaster",
    "interspike_intervals",
    "isi_histogram",
    "population_rate",
    "band_power",
    "rhythm_summary",
    "histogram_similarity",
    "render_ascii_raster",
]


@dataclass
class SpikeRaster:
    """A recorded spike raster: (time step, neuron id) pairs.

    Attributes
    ----------
    times:
        Spike times in network steps (milliseconds for a 1 ms step).
    neuron_ids:
        Neuron index of each spike (same length as ``times``).
    num_neurons, num_steps:
        Dimensions of the recording.
    """

    times: np.ndarray
    neuron_ids: np.ndarray
    num_neurons: int
    num_steps: int

    @classmethod
    def empty(cls, num_neurons: int, num_steps: int) -> "SpikeRaster":
        return cls(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), num_neurons, num_steps)

    @classmethod
    def from_events(
        cls, events: Sequence[Tuple[int, int]], *, num_neurons: int, num_steps: int
    ) -> "SpikeRaster":
        """Build from an iterable of ``(time, neuron_id)`` tuples."""
        if events:
            times, ids = zip(*events)
        else:
            times, ids = (), ()
        return cls(
            np.asarray(times, dtype=np.int64),
            np.asarray(ids, dtype=np.int64),
            num_neurons,
            num_steps,
        )

    @classmethod
    def from_bool_matrix(cls, fired: np.ndarray) -> "SpikeRaster":
        """Build from a ``[steps, neurons]`` boolean firing matrix."""
        fired = np.asarray(fired, dtype=bool)
        times, ids = np.nonzero(fired)
        return cls(times.astype(np.int64), ids.astype(np.int64), fired.shape[1], fired.shape[0])

    # ------------------------------------------------------------------ #
    @property
    def num_spikes(self) -> int:
        return int(self.times.shape[0])

    def mean_rate_hz(self, *, dt_ms: float = 1.0) -> float:
        """Mean per-neuron firing rate in Hz."""
        duration_s = self.num_steps * dt_ms / 1000.0
        if duration_s == 0 or self.num_neurons == 0:
            return 0.0
        return self.num_spikes / (self.num_neurons * duration_s)

    def spikes_of(self, neuron_id: int) -> np.ndarray:
        """Sorted spike times of one neuron."""
        return np.sort(self.times[self.neuron_ids == neuron_id])

    def to_bool_matrix(self) -> np.ndarray:
        """Return the ``[steps, neurons]`` boolean firing matrix."""
        out = np.zeros((self.num_steps, self.num_neurons), dtype=bool)
        out[self.times, self.neuron_ids] = True
        return out

    def restrict_neurons(self, neuron_slice: slice) -> "SpikeRaster":
        """Raster restricted to a contiguous neuron range (ids re-based)."""
        start, stop, _ = neuron_slice.indices(self.num_neurons)
        mask = (self.neuron_ids >= start) & (self.neuron_ids < stop)
        return SpikeRaster(
            self.times[mask], self.neuron_ids[mask] - start, stop - start, self.num_steps
        )


def interspike_intervals(raster: SpikeRaster) -> np.ndarray:
    """All inter-spike intervals (in steps) pooled over every neuron."""
    order = np.lexsort((raster.times, raster.neuron_ids))
    ids = raster.neuron_ids[order]
    times = raster.times[order]
    if ids.size == 0:
        return np.zeros(0, dtype=np.int64)
    diffs = np.diff(times)
    same_neuron = np.diff(ids) == 0
    return diffs[same_neuron]


def isi_histogram(
    raster: SpikeRaster, *, bin_width: float = 5.0, max_interval: float = 200.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of inter-spike intervals (Fig. 3).

    Returns ``(bin_edges, counts)`` where intervals beyond ``max_interval``
    are clipped into the last bin.
    """
    intervals = interspike_intervals(raster).astype(np.float64)
    edges = np.arange(0.0, max_interval + bin_width, bin_width)
    clipped = np.clip(intervals, 0.0, max_interval - 1e-9)
    counts, _ = np.histogram(clipped, bins=edges)
    return edges, counts


def population_rate(raster: SpikeRaster) -> np.ndarray:
    """Number of spikes per timestep across the whole population."""
    rate = np.zeros(raster.num_steps, dtype=np.float64)
    np.add.at(rate, raster.times, 1.0)
    return rate


def band_power(signal: np.ndarray, *, dt_ms: float = 1.0, low_hz: float, high_hz: float) -> float:
    """Power of ``signal`` within a frequency band (rectangular window FFT)."""
    signal = np.asarray(signal, dtype=np.float64)
    if signal.size < 4:
        return 0.0
    detrended = signal - signal.mean()
    spectrum = np.abs(np.fft.rfft(detrended)) ** 2
    freqs = np.fft.rfftfreq(signal.size, d=dt_ms / 1000.0)
    mask = (freqs >= low_hz) & (freqs <= high_hz)
    return float(spectrum[mask].sum())


def rhythm_summary(raster: SpikeRaster, *, dt_ms: float = 1.0) -> Dict[str, float]:
    """Alpha / gamma band power of the population rate (paper §VI-B).

    The 80-20 network exhibits alpha (≈10 Hz) and gamma (≈40 Hz) rhythms;
    the summary reports absolute band powers and their share of the total
    spectrum so different arithmetic backends can be compared.
    """
    rate = population_rate(raster)
    total = band_power(rate, dt_ms=dt_ms, low_hz=1.0, high_hz=min(200.0, 500.0 / dt_ms))
    alpha = band_power(rate, dt_ms=dt_ms, low_hz=8.0, high_hz=12.0)
    gamma = band_power(rate, dt_ms=dt_ms, low_hz=30.0, high_hz=80.0)
    return {
        "alpha_power": alpha,
        "gamma_power": gamma,
        "total_power": total,
        "alpha_fraction": alpha / total if total else 0.0,
        "gamma_fraction": gamma / total if total else 0.0,
        "mean_rate_hz": raster.mean_rate_hz(dt_ms=dt_ms),
    }


def histogram_similarity(counts_a: np.ndarray, counts_b: np.ndarray) -> float:
    """Cosine similarity between two histograms (1.0 = identical shape)."""
    a = np.asarray(counts_a, dtype=np.float64)
    b = np.asarray(counts_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("histograms must have the same binning")
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm == 0:
        return 1.0 if not a.any() and not b.any() else 0.0
    return float(np.dot(a, b) / norm)


def render_ascii_raster(
    raster: SpikeRaster,
    *,
    max_rows: int = 40,
    max_cols: int = 100,
    mark: str = "|",
) -> str:
    """Render a coarse ASCII raster plot (Fig. 2 without matplotlib).

    Neurons are binned onto ``max_rows`` rows and timesteps onto
    ``max_cols`` columns; a cell is marked if any spike falls into it.
    """
    rows = min(max_rows, raster.num_neurons) or 1
    cols = min(max_cols, raster.num_steps) or 1
    grid = np.zeros((rows, cols), dtype=bool)
    if raster.num_spikes:
        row_idx = (raster.neuron_ids * rows) // max(raster.num_neurons, 1)
        col_idx = (raster.times * cols) // max(raster.num_steps, 1)
        grid[np.clip(row_idx, 0, rows - 1), np.clip(col_idx, 0, cols - 1)] = True
    lines = ["".join(mark if cell else "." for cell in row) for row in grid]
    return "\n".join(lines)
