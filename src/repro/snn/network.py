"""Network-level simulation engine tying populations, synapses and inputs.

:class:`SNNNetwork` runs a spiking network for a number of 1 ms steps,
recording the spike raster.  It is backend-agnostic: the population may be
a double-precision :class:`~repro.snn.izhikevich.IzhikevichPopulation`
(the "MATLAB" reference) or a
:class:`~repro.snn.fixed_izhikevich.FixedPointPopulation` (bit-exact with
the IzhiRISC-V NPU), and the synaptic current may be recomputed per step
or decayed through the DCU approximation — covering all the arithmetic
variants compared in the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from .analysis import SpikeRaster
from .fixed_izhikevich import FixedPointPopulation
from .izhikevich import IzhikevichPopulation
from .synapse import CurrentState, DenseSynapses, SparseSynapses

__all__ = ["SNNNetwork", "InputProvider"]

#: Signature of an external-input provider: ``f(step) -> current array``.
InputProvider = Callable[[int], np.ndarray]

Population = Union[IzhikevichPopulation, FixedPointPopulation]
Synapses = Union[DenseSynapses, SparseSynapses, None]


@dataclass
class SNNNetwork:
    """A recurrent spiking network driven by an external-input provider.

    Parameters
    ----------
    population:
        The neuron population (float64 reference or fixed-point engine).
    synapses:
        Recurrent connectivity, or ``None`` for an unconnected population.
    external_input:
        Callable mapping the step index to the externally injected current
        (e.g. the 80-20 network's thalamic noise); ``None`` means zero.
    current_mode:
        ``"recompute"`` or ``"decay"`` (see :class:`CurrentState`).
    tau_select:
        DCU decay selector used in ``"decay"`` mode.
    """

    population: Population
    synapses: Synapses = None
    external_input: Optional[InputProvider] = None
    current_mode: str = "recompute"
    tau_select: int = 4

    def __post_init__(self) -> None:
        h_shift = getattr(self.population, "h_shift", 1)
        self.current_state = CurrentState(
            num_neurons=self.population.size,
            mode=self.current_mode,
            tau_select=self.tau_select,
            h_shift=h_shift,
        )
        self._last_fired = np.zeros(self.population.size, dtype=bool)

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of neurons in the network."""
        return self.population.size

    @property
    def is_fixed_point(self) -> bool:
        """``True`` when the population runs on the NPU fixed-point datapath."""
        return isinstance(self.population, FixedPointPopulation)

    def _external(self, step: int) -> np.ndarray:
        if self.external_input is None:
            return np.zeros(self.size, dtype=np.float64)
        return np.asarray(self.external_input(step), dtype=np.float64)

    def _advance_population(self, current: np.ndarray) -> np.ndarray:
        if isinstance(self.population, FixedPointPopulation):
            return self.population.step_ms(current)
        return self.population.step(current, dt_ms=1.0)

    # ------------------------------------------------------------------ #
    def step(self, step_index: int) -> np.ndarray:
        """Advance the network by one 1 ms step; returns the fired mask."""
        external = self._external(step_index)
        if self.synapses is not None:
            synaptic = self.synapses.propagate(self._last_fired)
        else:
            synaptic = np.zeros(self.size, dtype=np.float64)
        current = self.current_state.update(external, synaptic)
        fired = self._advance_population(current)
        self._last_fired = np.asarray(fired, dtype=bool)
        return self._last_fired

    def run(
        self,
        num_steps: int,
        *,
        record: bool = True,
        progress_callback: Optional[Callable[[int, np.ndarray], None]] = None,
    ) -> SpikeRaster:
        """Run ``num_steps`` network steps and return the spike raster.

        Parameters
        ----------
        record:
            When false, spikes are not stored (useful for long warm-ups);
            an empty raster with correct dimensions is returned.
        progress_callback:
            Optional callable invoked as ``cb(step, fired)`` after every
            step (used by the Sudoku solver to detect convergence).
        """
        fired_matrix = np.zeros((num_steps, self.size), dtype=bool) if record else None
        for t in range(num_steps):
            fired = self.step(t)
            if fired_matrix is not None:
                fired_matrix[t] = fired
            if progress_callback is not None:
                progress_callback(t, fired)
        if fired_matrix is None:
            return SpikeRaster.empty(self.size, num_steps)
        return SpikeRaster.from_bool_matrix(fired_matrix)

    def reset_currents(self) -> None:
        """Clear the synaptic-current state and the last-fired mask."""
        self.current_state.reset()
        self._last_fired = np.zeros(self.size, dtype=bool)
