"""Izhikevich's "80-20" cortical network (1000 neurons, 80 % excitatory).

This is the first evaluation workload of the paper (§VI-B, Fig. 2, Fig. 3,
Table V): Izhikevich's 2003 pulse-coupled network of 800 excitatory
(regular-spiking-like, with per-neuron heterogeneity) and 200 inhibitory
(fast-spiking-like) neurons, fully connected with random weights and
driven by per-step thalamic noise.  The population exhibits alpha and
gamma rhythms visible in the raster plot.

The builder produces either the double-precision reference network or the
fixed-point network running on the NPU datapath, using the same weights
and the same thalamic-noise stream so the comparison isolates the effect
of the 16-bit arithmetic (paper Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .analysis import SpikeRaster, isi_histogram, rhythm_summary
from .fixed_izhikevich import FixedPointPopulation
from .izhikevich import IzhikevichPopulation
from .network import SNNNetwork
from .synapse import DenseSynapses

__all__ = ["EightyTwentyConfig", "EightyTwentyNetwork", "build_eighty_twenty", "run_eighty_twenty"]


@dataclass(frozen=True)
class EightyTwentyConfig:
    """Construction parameters of the 80-20 network."""

    num_excitatory: int = 800
    num_inhibitory: int = 200
    #: Scale of excitatory synaptic weights (Izhikevich 2003 uses 0.5).
    excitatory_weight: float = 0.5
    #: Scale of inhibitory synaptic weights (Izhikevich 2003 uses -1.0).
    inhibitory_weight: float = -1.0
    #: Standard deviation of the thalamic input to excitatory neurons.
    thalamic_excitatory: float = 5.0
    #: Standard deviation of the thalamic input to inhibitory neurons.
    thalamic_inhibitory: float = 2.0
    seed: int = 2003

    @property
    def num_neurons(self) -> int:
        return self.num_excitatory + self.num_inhibitory


@dataclass
class EightyTwentyNetwork:
    """The assembled network plus the shared random streams."""

    config: EightyTwentyConfig
    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray
    weights: np.ndarray
    rng: np.random.Generator

    @property
    def num_neurons(self) -> int:
        return self.config.num_neurons

    def thalamic_input(self, step: int) -> np.ndarray:
        """Fresh thalamic noise for one network step (Izhikevich 2003)."""
        cfg = self.config
        return np.concatenate(
            [
                cfg.thalamic_excitatory * self.rng.standard_normal(cfg.num_excitatory),
                cfg.thalamic_inhibitory * self.rng.standard_normal(cfg.num_inhibitory),
            ]
        )

    # ------------------------------------------------------------------ #
    def float_network(self) -> SNNNetwork:
        """Double-precision reference network (the "MATLAB" column of Fig. 3)."""
        population = IzhikevichPopulation.from_parameters(self.a, self.b, self.c, self.d)
        return SNNNetwork(
            population=population,
            synapses=DenseSynapses(self.weights),
            external_input=self.thalamic_input,
        )

    def fixed_network(self, *, h_shift: int = 1, current_mode: str = "recompute") -> SNNNetwork:
        """Fixed-point network bit-exact with the IzhiRISC-V NPU."""
        population = FixedPointPopulation.from_float_parameters(
            self.a, self.b, self.c, self.d, h_shift=h_shift
        )
        return SNNNetwork(
            population=population,
            synapses=DenseSynapses(self.weights),
            external_input=self.thalamic_input,
            current_mode=current_mode,
        )


def build_eighty_twenty(config: Optional[EightyTwentyConfig] = None) -> EightyTwentyNetwork:
    """Instantiate the 80-20 network exactly as Izhikevich's script does.

    Excitatory neurons: ``(a, b) = (0.02, 0.2)``,
    ``(c, d) = (-65 + 15 r², 8 - 6 r²)`` with ``r ~ U(0, 1)``;
    inhibitory neurons: ``(a, b) = (0.02 + 0.08 r, 0.25 - 0.05 r)``,
    ``(c, d) = (-65, 2)``.  Weights: excitatory columns ``0.5 U(0, 1)``,
    inhibitory columns ``-U(0, 1)``.
    """
    cfg = config if config is not None else EightyTwentyConfig()
    rng = np.random.default_rng(cfg.seed)
    ne, ni = cfg.num_excitatory, cfg.num_inhibitory

    re = rng.random(ne)
    ri = rng.random(ni)
    a = np.concatenate([0.02 * np.ones(ne), 0.02 + 0.08 * ri])
    b = np.concatenate([0.2 * np.ones(ne), 0.25 - 0.05 * ri])
    c = np.concatenate([-65.0 + 15.0 * re**2, -65.0 * np.ones(ni)])
    d = np.concatenate([8.0 - 6.0 * re**2, 2.0 * np.ones(ni)])
    weights = np.concatenate(
        [
            cfg.excitatory_weight * rng.random((ne + ni, ne)),
            cfg.inhibitory_weight * rng.random((ne + ni, ni)),
        ],
        axis=1,
    )
    return EightyTwentyNetwork(config=cfg, a=a, b=b, c=c, d=d, weights=weights, rng=rng)


def run_eighty_twenty(
    *,
    num_steps: int = 1000,
    backend: str = "fixed",
    config: Optional[EightyTwentyConfig] = None,
    h_shift: int = 1,
    current_mode: str = "recompute",
) -> Tuple[SpikeRaster, dict]:
    """Run the 80-20 workload and return the raster plus a rhythm summary.

    Parameters
    ----------
    num_steps:
        Simulation length in 1 ms steps (the paper uses 1000).
    backend:
        ``"float64"`` for the double-precision reference or ``"fixed"``
        for the NPU fixed-point datapath.
    """
    net_def = build_eighty_twenty(config)
    if backend == "float64":
        network = net_def.float_network()
    elif backend == "fixed":
        network = net_def.fixed_network(h_shift=h_shift, current_mode=current_mode)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    raster = network.run(num_steps)
    summary = rhythm_summary(raster)
    summary["backend"] = backend
    edges, counts = isi_histogram(raster)
    summary["isi_mode_ms"] = float(edges[int(np.argmax(counts))]) if counts.any() else 0.0
    return raster, summary
