"""Fixed-point Izhikevich population, bit-exact with the IzhiRISC-V NPU.

This is the vectorised engine used for the full-size 80-20 and Sudoku
experiments.  It calls the *same* integer datapath as the NPU model
(:func:`repro.sim.npu.izhikevich_update_raw`) with per-neuron parameter
arrays, so simulating a network here is bit-identical to executing one
``nmpn`` instruction per neuron per sub-step on the processor — only
orders of magnitude faster, which is what makes the 1000-neuron x 1000 ms
raster and the 100-puzzle Sudoku sweep tractable in Python.

Synaptic currents can either be recomputed every network step (matching
Izhikevich's original script and the float64 reference) or accumulated
and decayed through the DCU shift-add approximation (matching the paper's
AMPA-style ``nmdec`` path).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fixedpoint import Q4_11, Q7_8, Q15_16
from ..sim.dcu import approx_divide
from ..sim.npu import izhikevich_update_raw

__all__ = ["FixedPointPopulation", "decay_current_raw"]


def decay_current_raw(isyn_raw: np.ndarray, tau_select: int, h_shift: int) -> np.ndarray:
    """Vectorised DCU decay: ``I - (approx(I / tau) >> h_shift)`` in Q15.16."""
    delta = approx_divide(isyn_raw, tau_select)
    out = np.asarray(isyn_raw, dtype=np.int64) - (np.asarray(delta, dtype=np.int64) >> h_shift)
    return np.asarray(Q15_16.handle_overflow(out), dtype=np.int64)


@dataclass
class FixedPointPopulation:
    """A population of Izhikevich neurons in the NPU's fixed-point formats.

    State and parameters are stored as raw integer payloads (``int64``
    NumPy arrays): ``v``/``u``/``c`` in Q7.8, ``a``/``b``/``d`` in Q4.11.
    """

    a_raw: np.ndarray
    b_raw: np.ndarray
    c_raw: np.ndarray
    d_raw: np.ndarray
    v_raw: np.ndarray
    u_raw: np.ndarray
    #: ``h_shift = 1`` → 0.5 ms sub-steps, ``h_shift = 3`` → 0.125 ms.
    h_shift: int = 1
    #: Cap the membrane potential at the reset value (Sudoku WTA stabiliser).
    pin_voltage: bool = False

    @classmethod
    def from_float_parameters(
        cls,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        d: np.ndarray,
        *,
        v0: float = -65.0,
        h_shift: int = 1,
        pin_voltage: bool = False,
    ) -> "FixedPointPopulation":
        """Quantise real-valued parameters and start at the resting state."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        c = np.asarray(c, dtype=np.float64)
        d = np.asarray(d, dtype=np.float64)
        v = np.full_like(a, float(v0))
        u = b * v
        return cls(
            a_raw=np.asarray(Q4_11.from_float(a), dtype=np.int64),
            b_raw=np.asarray(Q4_11.from_float(b), dtype=np.int64),
            c_raw=np.asarray(Q7_8.from_float(c), dtype=np.int64),
            d_raw=np.asarray(Q4_11.from_float(d), dtype=np.int64),
            v_raw=np.asarray(Q7_8.from_float(v), dtype=np.int64),
            u_raw=np.asarray(Q7_8.from_float(u), dtype=np.int64),
            h_shift=h_shift,
            pin_voltage=pin_voltage,
        )

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of neurons."""
        return int(self.v_raw.shape[0])

    @property
    def substeps_per_ms(self) -> int:
        """Number of NPU calls needed to advance the population by 1 ms."""
        return 1 << self.h_shift

    @property
    def v(self) -> np.ndarray:
        """Membrane potentials in millivolts (float view)."""
        return np.asarray(Q7_8.to_float(self.v_raw))

    @property
    def u(self) -> np.ndarray:
        """Recovery variable (float view)."""
        return np.asarray(Q7_8.to_float(self.u_raw))

    # ------------------------------------------------------------------ #
    def substep(self, isyn_raw: np.ndarray) -> np.ndarray:
        """Advance by one NPU timestep (0.5 ms or 0.125 ms); returns spikes."""
        v_new, u_new, spike = izhikevich_update_raw(
            self.v_raw,
            self.u_raw,
            np.asarray(isyn_raw, dtype=np.int64),
            a_raw=self.a_raw,
            b_raw=self.b_raw,
            c_raw=self.c_raw,
            d_raw=self.d_raw,
            h_shift=self.h_shift,
            pin_voltage=self.pin_voltage,
        )
        self.v_raw = np.asarray(v_new, dtype=np.int64)
        self.u_raw = np.asarray(u_new, dtype=np.int64)
        return np.asarray(spike, dtype=np.int64)

    def step_ms(self, isyn: np.ndarray) -> np.ndarray:
        """Advance by one 1 ms network step (several NPU sub-steps).

        Parameters
        ----------
        isyn:
            Real-valued synaptic + injected current, quantised to Q15.16
            once and held constant over the sub-steps (exactly what the
            generated assembly does).

        Returns
        -------
        Boolean array marking neurons that spiked at least once within
        the network step.
        """
        isyn_raw = np.asarray(Q15_16.from_float(np.asarray(isyn, dtype=np.float64)), dtype=np.int64)
        fired = np.zeros(self.size, dtype=bool)
        for _ in range(self.substeps_per_ms):
            fired |= self.substep(isyn_raw).astype(bool)
        return fired

    def step_ms_raw(self, isyn_raw: np.ndarray) -> np.ndarray:
        """Like :meth:`step_ms` but taking a raw Q15.16 current array."""
        fired = np.zeros(self.size, dtype=bool)
        for _ in range(self.substeps_per_ms):
            fired |= self.substep(isyn_raw).astype(bool)
        return fired
