"""Double-precision reference implementation of the Izhikevich neuron model.

This is the "MATLAB" reference of the paper's Figure 3 comparison: the
original Izhikevich (2003) simple model integrated with forward Euler in
float64.  The integration follows Izhikevich's published script — the
membrane potential ``v`` is advanced in two half-millisecond sub-steps per
1 ms network step for numerical stability while the recovery variable
``u`` is advanced once per network step (this is also what the hardware
approximates when the NPU runs with ``h = 0.5 ms``).

The functions are fully vectorised over neuron populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "SPIKE_THRESHOLD_MV",
    "IzhikevichPopulation",
    "izhikevich_derivatives",
    "euler_step",
]

#: Spike threshold in millivolts (Izhikevich 2003).
SPIKE_THRESHOLD_MV = 30.0


def izhikevich_derivatives(
    v: np.ndarray, u: np.ndarray, isyn: np.ndarray, a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Right-hand side of the Izhikevich ODE system (paper Eq. 1).

    ``dv/dt = 0.04 v^2 + 5 v + 140 - u + Isyn``,  ``du/dt = a (b v - u)``.
    """
    dv = 0.04 * v * v + 5.0 * v + 140.0 - u + isyn
    du = a * (b * v - u)
    return dv, du


def euler_step(
    v: np.ndarray,
    u: np.ndarray,
    isyn: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    d: np.ndarray,
    *,
    dt_ms: float = 1.0,
    v_substeps: int = 2,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Advance a population by one network timestep of ``dt_ms``.

    Parameters
    ----------
    v, u:
        State arrays (modified copies are returned, inputs untouched).
    isyn:
        Synaptic + injected current for this timestep.
    a, b, c, d:
        Per-neuron Izhikevich parameters.
    dt_ms:
        Network timestep in milliseconds.
    v_substeps:
        Number of Euler sub-steps applied to ``v`` within the timestep
        (Izhikevich's script uses 2 sub-steps of 0.5 ms).

    Returns
    -------
    (v_new, u_new, fired):
        Updated state and a boolean array marking neurons that spiked.
    """
    v = np.array(v, dtype=np.float64, copy=True)
    u = np.array(u, dtype=np.float64, copy=True)
    fired = v >= SPIKE_THRESHOLD_MV
    # Reset neurons that crossed threshold at the end of the previous step
    # (Izhikevich's script resets before integrating the next step).
    v = np.where(fired, c, v)
    u = np.where(fired, u + d, u)
    sub_dt = dt_ms / v_substeps
    for _ in range(v_substeps):
        dv, _ = izhikevich_derivatives(v, u, isyn, a, b)
        v = v + sub_dt * dv
    _, du = izhikevich_derivatives(v, u, isyn, a, b)
    u = u + dt_ms * du
    return v, u, fired


@dataclass
class IzhikevichPopulation:
    """A population of Izhikevich neurons integrated in double precision.

    The population keeps its own state and exposes a ``step`` method that
    mirrors Izhikevich's reference script: threshold detection happens on
    the state *entering* the step, so a neuron that crossed 30 mV during
    step ``n`` is reported as firing at step ``n + 1``'s entry — identical
    to the published MATLAB loop.
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray
    v: np.ndarray
    u: np.ndarray
    v_substeps: int = 2

    @classmethod
    def from_parameters(
        cls,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        d: np.ndarray,
        *,
        v0: float = -65.0,
        v_substeps: int = 2,
    ) -> "IzhikevichPopulation":
        """Create a population at the standard resting state ``v0``, ``u0 = b v0``."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        c = np.asarray(c, dtype=np.float64)
        d = np.asarray(d, dtype=np.float64)
        v = np.full_like(a, float(v0))
        u = b * v
        return cls(a=a, b=b, c=c, d=d, v=v, u=u, v_substeps=v_substeps)

    @property
    def size(self) -> int:
        """Number of neurons in the population."""
        return int(self.v.shape[0])

    def fired(self) -> np.ndarray:
        """Boolean mask of neurons currently above the spike threshold."""
        return self.v >= SPIKE_THRESHOLD_MV

    def step(self, isyn: np.ndarray, *, dt_ms: float = 1.0) -> np.ndarray:
        """Advance the population one timestep; returns the fired mask."""
        self.v, self.u, fired = euler_step(
            self.v,
            self.u,
            np.asarray(isyn, dtype=np.float64),
            self.a,
            self.b,
            self.c,
            self.d,
            dt_ms=dt_ms,
            v_substeps=self.v_substeps,
        )
        return fired
