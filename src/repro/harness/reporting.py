"""Plain-text table rendering used by the benchmarks and examples.

The paper's evaluation is a set of tables and figures; the harness prints
each regenerated artefact as an aligned text table (optionally with the
paper's published value next to the measured one) so ``pytest
benchmarks/ --benchmark-only -s`` reproduces the evaluation section in the
terminal.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Union

__all__ = ["format_table", "format_comparison", "format_kv"]

Cell = Union[str, int, float]


def _fmt(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], *, title: Optional[str] = None) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_comparison(
    metric_rows: Dict[str, Dict[str, Cell]],
    *,
    columns: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Render a ``metric -> {column -> value}`` mapping as a table."""
    headers = ["Metric", *columns]
    rows = []
    for metric, values in metric_rows.items():
        rows.append([metric, *[values.get(col, "-") for col in columns]])
    return format_table(headers, rows, title=title)


def format_kv(values: Dict[str, Cell], *, title: Optional[str] = None) -> str:
    """Render a flat key/value mapping."""
    return format_table(["Quantity", "Value"], list(values.items()), title=title)
