"""Experiment harness: drivers for every paper table/figure plus reporting."""

from . import paper_data
from .experiments import (
    CycleExperimentResult,
    csp_portfolio_solve_rate,
    csp_solve_rate,
    eighty_twenty_seed_sweep,
    fig2_raster,
    fig3_isi,
    fig4_wta,
    fig5_floorplan,
    softfloat_speedup,
    sudoku_solve_rate,
    table1_isa_roundtrip,
    table2_dcu,
    table3_max10,
    table4_agilex,
    table5_eighty_twenty,
    table6_sudoku,
    table7_asic,
)
from .reporting import format_comparison, format_kv, format_table

__all__ = [
    "paper_data",
    "CycleExperimentResult",
    "csp_portfolio_solve_rate",
    "csp_solve_rate",
    "eighty_twenty_seed_sweep",
    "fig2_raster",
    "fig3_isi",
    "fig4_wta",
    "fig5_floorplan",
    "softfloat_speedup",
    "sudoku_solve_rate",
    "table1_isa_roundtrip",
    "table2_dcu",
    "table3_max10",
    "table4_agilex",
    "table5_eighty_twenty",
    "table6_sudoku",
    "table7_asic",
    "format_comparison",
    "format_kv",
    "format_table",
]
