"""Experiment drivers: one function per paper table / figure.

Each driver returns plain data (dicts / dataclasses) so it can be consumed
both by the benchmark harness (which prints measured-vs-paper tables and
feeds pytest-benchmark) and by the examples.  The cycle-level experiments
accept scale parameters because full-size cycle simulation of the paper's
workloads is impractical in pure Python — the defaults are steady-state
windows whose per-timestep metrics are directly comparable to the paper's
(see DESIGN.md §2).

Multi-run drivers execute through :mod:`repro.runtime`: homogeneous
network-level runs (the Sudoku solve-rate evaluation, seed sweeps of the
80-20 network) are stacked on the vectorised batch engine, while
heterogeneous or ISA/cycle-level runs (the Fig. 3 backend comparison,
whose variants mix backends and current modes, and the Table V/VI system
windows) fan out through a
:class:`~repro.runtime.sweep.SweepExecutor` — serial by default,
process-parallel when an executor with ``mode="process"`` is passed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..codegen import (
    build_eighty_twenty_workload,
    build_sudoku_workload,
    estimate_softfloat_speedup,
    SoftFloatCostModel,
)
from ..hw import agilex_scaling_reports, max10_dual_core_report, standard_cell_reports
from ..hw.asic import AsicModel, ASAP7, FREEPDK45
from ..hw.floorplan import floorplan_summary, render_floorplan
from ..hw.fpga import AGILEX7_CORE, AGILEX7_DEVICE, FPGAResourceModel
from ..sim import CoreConfig, CycleAccurateCore, MultiCoreSystem, SystemResult
from ..sim.dcu import approximation_error_table
from ..snn import (
    histogram_similarity,
    isi_histogram,
    render_ascii_raster,
    run_eighty_twenty,
)
from ..runtime import (
    SweepExecutor,
    SweepReport,
    SweepSpec,
    SweepTask,
    eighty_twenty_seed_sweep,
    run_sweep_workload,
)
from ..sudoku import SNNSudokuSolver, generate_puzzle_set
from ..sudoku.wta import connectivity_statistics
from . import paper_data

__all__ = [
    "table1_isa_roundtrip",
    "table2_dcu",
    "table3_max10",
    "table4_agilex",
    "CycleExperimentResult",
    "table5_eighty_twenty",
    "table6_sudoku",
    "table7_asic",
    "fig2_raster",
    "fig3_isi",
    "fig4_wta",
    "fig5_floorplan",
    "softfloat_speedup",
    "sudoku_solve_rate",
    "csp_solve_rate",
    "csp_portfolio_solve_rate",
    "eighty_twenty_seed_sweep",
    "sweep_workload",
]


# ---------------------------------------------------------------------- #
# Table I — ISA encoding round trip
# ---------------------------------------------------------------------- #
def table1_isa_roundtrip() -> Dict[str, Dict[str, object]]:
    """Encode/decode every custom instruction and report its fields."""
    from ..isa import decode, encode, NM_MNEMONICS
    from ..isa.encoding import OPCODE_CUSTOM0

    rows: Dict[str, Dict[str, object]] = {}
    for name in NM_MNEMONICS:
        word = encode(name, rd=10, rs1=11, rs2=12)
        instr = decode(word)
        rows[name] = {
            "opcode": f"{word & 0x7F:07b}",
            "funct3": (word >> 12) & 0x7,
            "format": instr.fmt.value,
            "word": f"{word:#010x}",
            "roundtrip_ok": instr.name == name,
            "custom0": (word & 0x7F) == OPCODE_CUSTOM0,
        }
    return rows


# ---------------------------------------------------------------------- #
# Table II — DCU approximation errors
# ---------------------------------------------------------------------- #
def table2_dcu() -> Dict[int, Dict[str, object]]:
    """Recompute the shift-add approximation errors and compare to Table II."""
    table = approximation_error_table(range(2, 9))
    for divider, row in table.items():
        row["paper_ae_percent"] = paper_data.PAPER_TABLE2_AE_PERCENT[divider]
        row["matches_paper"] = abs(row["approx_error_percent"] - row["paper_ae_percent"]) < 0.01
    return table


# ---------------------------------------------------------------------- #
# Tables III / IV — FPGA resources
# ---------------------------------------------------------------------- #
def table3_max10() -> Dict[str, object]:
    """Regenerate Table III and attach the published values."""
    report = max10_dual_core_report()
    return {
        "model": report,
        "model_rows": report.as_rows(),
        "paper": paper_data.PAPER_TABLE3_MAX10,
    }


def table4_agilex(core_counts: Sequence[int] = (16, 32, 64)) -> Dict[str, object]:
    """Regenerate Table IV plus the maximum-core extrapolation."""
    reports = agilex_scaling_reports(list(core_counts))
    model = FPGAResourceModel(AGILEX7_DEVICE, AGILEX7_CORE)
    return {
        "reports": {r.num_cores: r for r in reports},
        "paper": paper_data.PAPER_TABLE4_AGILEX,
        "max_cores": model.max_cores(),
        "paper_max_cores": paper_data.PAPER_MAX_AGILEX_CORES,
    }


# ---------------------------------------------------------------------- #
# Tables V / VI — cycle-level performance metrics
# ---------------------------------------------------------------------- #
@dataclass
class CycleExperimentResult:
    """Single- and dual-core metrics for one workload window."""

    workload: str
    num_neurons: int
    num_steps: int
    single: Dict[str, float]
    dual_per_core: List[Dict[str, float]]
    dual_system: Dict[str, float]
    speedup: float
    clock_hz: float

    def comparison_rows(self) -> Dict[str, Dict[str, float]]:
        """Metric rows in the layout of paper Tables V / VI."""
        rows: Dict[str, Dict[str, float]] = {}
        keys = [
            ("ipc", "IPC"),
            ("ipc_eff", "IPC_eff"),
            ("hazard_stall_percent", "Hazard stalls [%]"),
            ("icache_hit_rate", "I-cache hit rate [%]"),
            ("dcache_hit_rate", "D-cache hit rate [%]"),
            ("memory_intensity", "Mem intensity"),
            ("total_cache_misses", "All cache misses"),
        ]
        for key, label in keys:
            rows[label] = {
                "Single-core": self.single[key],
                "Dual core #1": self.dual_per_core[0][key],
                "Dual core #2": self.dual_per_core[1][key],
            }
        rows["Speedup"] = {"Single-core": 1.0, "Dual core #1": self.speedup, "Dual core #2": self.speedup}
        return rows


def _table5_system_task(task: SweepTask) -> SystemResult:
    """Run one statically-partitioned 80-20 window (picklable sweep task)."""
    p = task.params
    num_cores = int(p["num_cores"])

    def make(core_id: int, total: int):
        share = p["num_neurons"] // total
        count = share if core_id < total - 1 else p["num_neurons"] - share * (total - 1)
        workload = build_eighty_twenty_workload(
            num_neurons=count, num_steps=p["num_steps"], kind=p["kind"], seed=p["seed"] + core_id
        )
        return workload.make_simulator()

    config = p.get("core_config") or CoreConfig()
    system = MultiCoreSystem.from_builder(num_cores, make, core_config=config)
    return system.run()


def table5_eighty_twenty(
    *,
    num_neurons: int = 120,
    num_steps: int = 4,
    core_config: Optional[CoreConfig] = None,
    kind: str = "extension",
    seed: int = 2003,
    executor: Optional[SweepExecutor] = None,
) -> CycleExperimentResult:
    """Regenerate the Table V metrics on a scaled 80-20 window.

    The population is statically split across cores exactly as the paper's
    dual-core system splits the 1000 neurons.  The single- and dual-core
    system simulations are independent, so they are dispatched as two
    tasks through the runtime's :class:`SweepExecutor` (serial inline
    execution by default; pass ``SweepExecutor(mode="process")`` to run
    them on separate cores).
    """
    executor = executor if executor is not None else SweepExecutor()
    params = {
        "num_neurons": num_neurons,
        "num_steps": num_steps,
        "kind": kind,
        "seed": seed,
        "core_config": core_config,
    }
    single, dual = executor.execute(
        SweepSpec(
            fn=_table5_system_task,
            param_sets=[{**params, "num_cores": 1}, {**params, "num_cores": 2}],
            base_seed=seed,
        )
    ).results
    clock = (core_config or CoreConfig()).clock_hz
    return CycleExperimentResult(
        workload="eighty-twenty",
        num_neurons=num_neurons,
        num_steps=num_steps,
        single=single.per_core[0].as_dict(clock_hz=clock),
        dual_per_core=[c.as_dict(clock_hz=clock) for c in dual.per_core],
        dual_system=dual.summary(),
        speedup=dual.speedup_over(single),
        clock_hz=clock,
    )


def _table6_system_task(task: SweepTask) -> SystemResult:
    """Run one Sudoku WTA window (single or halved dual; picklable task)."""
    from ..sudoku import SudokuBoard

    p = task.params
    puzzle = SudokuBoard(np.asarray(p["puzzle_cells"], dtype=np.int64))
    num_cores = int(p["num_cores"])

    def make(core_id: int, total: int):
        # Each core runs the same per-step kernel over its neuron share; the
        # share is modelled by scaling the step count of a full network
        # (instruction mix per neuron is identical, so metrics match).
        workload = build_sudoku_workload(
            puzzle, num_steps=p["num_steps"], kind=p["kind"], seed=p["seed"] + core_id
        )
        if num_cores == 1:
            return workload.make_simulator()
        # Dual core: each core handles half the neurons -> half the work.
        return _HalvedSimulator.build(workload)

    config = p.get("core_config") or CoreConfig()
    return MultiCoreSystem.from_builder(num_cores, make, core_config=config).run()


def table6_sudoku(
    *,
    num_steps: int = 2,
    core_config: Optional[CoreConfig] = None,
    kind: str = "extension",
    clue_fraction: float = 0.35,
    seed: int = 7,
    executor: Optional[SweepExecutor] = None,
) -> CycleExperimentResult:
    """Regenerate the Table VI metrics on a Sudoku WTA window.

    For the dual-core configuration the 729 neurons are split between the
    cores; each core's program updates its share and propagates its share
    of the spikes (shared-memory effects on the currents do not change the
    instruction mix, which is what the metrics measure).  As with Table V,
    the two system simulations run as independent
    :class:`SweepExecutor` tasks.
    """
    from ..sudoku import PuzzleGenerator

    puzzle = PuzzleGenerator().generate(seed=seed, target_clues=max(17, int(81 * clue_fraction))).puzzle
    executor = executor if executor is not None else SweepExecutor()
    params = {
        "puzzle_cells": np.asarray(puzzle.cells, dtype=np.int64),
        "num_steps": max(1, num_steps),
        "kind": kind,
        "seed": seed,
        "core_config": core_config,
    }
    single, dual = executor.execute(
        SweepSpec(
            fn=_table6_system_task,
            param_sets=[
                {**params, "num_cores": 1, "num_steps": num_steps},
                {**params, "num_cores": 2},
            ],
            base_seed=seed,
        )
    ).results
    clock = (core_config or CoreConfig()).clock_hz
    speedup = single.system_cycles / dual.system_cycles if dual.system_cycles else 0.0
    return CycleExperimentResult(
        workload="sudoku-wta",
        num_neurons=729,
        num_steps=num_steps,
        single=single.per_core[0].as_dict(clock_hz=clock),
        dual_per_core=[c.as_dict(clock_hz=clock) for c in dual.per_core],
        dual_system=dual.summary(),
        speedup=speedup,
        clock_hz=clock,
    )


class _HalvedSimulator:
    """Helper producing a simulator for half of the Sudoku population.

    The dual-core Sudoku system assigns ~364 neurons to each core.  Rather
    than re-deriving a half-size WTA graph (which would change the synapse
    statistics), the half share is modelled by running the full kernel on a
    population whose second half is masked out of the update loop via the
    neuron-count register — the per-neuron instruction mix is unchanged.
    """

    @staticmethod
    def build(workload):
        fsim = workload.make_simulator()
        # Patch the NUM_NEURONS immediate: the kernel loads it with
        # `li s0, NUM_NEURONS`; halving the loop count halves the work.
        half = workload.layout.num_neurons // 2
        source = workload.source.replace(
            f".equ NUM_NEURONS, {workload.layout.num_neurons}",
            f".equ NUM_NEURONS, {half}",
        )
        from ..isa.assembler import assemble

        program = assemble(source, origin=workload.program.origin)
        fsim.load_program(program)
        return fsim


# ---------------------------------------------------------------------- #
# Table VII / Fig. 5 — standard-cell mapping
# ---------------------------------------------------------------------- #
def table7_asic(*, cycles_per_update: float = 3.0) -> Dict[str, object]:
    """Regenerate both Table VII columns plus the paper's values."""
    reports = standard_cell_reports(cycles_per_update=cycles_per_update)
    return {"reports": reports, "paper": paper_data.PAPER_TABLE7_ASIC}


def fig5_floorplan() -> Dict[str, object]:
    """Regenerate the Fig. 5 block breakdown for both technologies."""
    model = AsicModel()
    out: Dict[str, object] = {}
    for tech in (FREEPDK45, ASAP7):
        report = model.report(tech)
        out[tech.name] = {
            "summary": floorplan_summary(report),
            "ascii": render_floorplan(report),
        }
    out["npu_fraction"] = model.npu_area_fraction()
    out["dcu_fraction"] = model.dcu_area_fraction()
    return out


# ---------------------------------------------------------------------- #
# Figures 2 / 3 — 80-20 network behaviour
# ---------------------------------------------------------------------- #
def fig2_raster(*, num_steps: int = 1000, backend: str = "fixed") -> Dict[str, object]:
    """Run the full 80-20 network and return the raster + rhythm summary."""
    raster, summary = run_eighty_twenty(num_steps=num_steps, backend=backend)
    return {
        "raster": raster,
        "summary": summary,
        "ascii": render_ascii_raster(raster, max_rows=30, max_cols=100),
    }


def _fig3_variant_task(task: SweepTask) -> Tuple[str, object, Dict[str, object]]:
    """Run one Fig. 3 arithmetic variant (picklable sweep task)."""
    params = dict(task.params)
    name = params.pop("name")
    raster, summary = run_eighty_twenty(**params)
    edges, counts = isi_histogram(raster)
    return name, raster, {"edges": edges, "counts": counts, "summary": summary}


def fig3_isi(
    *, num_steps: int = 1000, executor: Optional[SweepExecutor] = None
) -> Dict[str, object]:
    """Compare ISI histograms across the three arithmetic backends.

    The three variants are independent simulations and run as
    :class:`SweepExecutor` tasks (inline by default; pass a
    process-mode executor to spread them over cores).
    """
    executor = executor if executor is not None else SweepExecutor()
    param_sets = [
        {"name": "double precision", "backend": "float64", "num_steps": num_steps},
        {"name": "fixed point", "backend": "fixed", "num_steps": num_steps},
        {
            "name": "IzhiRISC-V (fixed + DCU decay)",
            "backend": "fixed",
            "current_mode": "decay",
            "num_steps": num_steps,
        },
    ]
    variants: Dict[str, object] = {}
    rasters = {}
    report = executor.execute(SweepSpec(fn=_fig3_variant_task, param_sets=param_sets))
    for name, raster, data in report.results:
        rasters[name] = raster
        variants[name] = data
    reference_counts = variants["double precision"]["counts"]
    similarities = {
        name: histogram_similarity(reference_counts, data["counts"])
        for name, data in variants.items()
    }
    return {"variants": variants, "similarities": similarities, "rasters": rasters}


# ---------------------------------------------------------------------- #
# Figure 4 — WTA connectivity
# ---------------------------------------------------------------------- #
def fig4_wta() -> Dict[str, object]:
    """Structural statistics of the Sudoku WTA inhibition graph."""
    stats = connectivity_statistics()
    return {
        "stats": stats,
        "expected_out_degree": 8 + 8 + 4 + 8,
        "num_neurons": stats.num_neurons,
    }


# ---------------------------------------------------------------------- #
# §VI-C headline numbers
# ---------------------------------------------------------------------- #
def softfloat_speedup(
    *, num_neurons: int = 96, num_steps: int = 3, core_config: Optional[CoreConfig] = None
) -> Dict[str, float]:
    """Estimate the per-timestep speedup over the soft-float baseline."""
    workload = build_eighty_twenty_workload(num_neurons=num_neurons, num_steps=num_steps, kind="extension")
    core = CycleAccurateCore(workload.make_simulator(), core_config)
    counters = core.run()
    cycles_per_update = counters.cycles / max(counters.neuron_updates, 1)
    model = SoftFloatCostModel()
    speedup = estimate_softfloat_speedup(cycles_per_update, model=model)
    return {
        "extension_cycles_per_update": cycles_per_update,
        "softfloat_cycles_per_update": model.cycles_per_update(),
        "speedup": speedup,
        "paper_speedup": paper_data.PAPER_SOFTFLOAT_SPEEDUP,
    }


def sudoku_solve_rate(
    *,
    count: int = 3,
    max_steps: int = 6000,
    target_clues: int = 30,
    seed: int = 1000,
    batched: bool = True,
) -> Dict[str, object]:
    """Solve a set of generated puzzles with the SNN solver (E-S3).

    With ``batched=True`` (default) all puzzles advance together on the
    vectorised batch engine (:meth:`SNNSudokuSolver.solve_batch`), which
    is bit-identical to — and much faster than — the sequential
    ``batched=False`` loop kept as the reference baseline.
    """
    puzzles = generate_puzzle_set(count, base_seed=seed, target_clues=target_clues)
    solver = SNNSudokuSolver()
    if batched:
        results = solver.solve_batch(
            [p.puzzle for p in puzzles], max_steps=max_steps, check_interval=5
        )
    else:
        results = [solver.solve(p.puzzle, max_steps=max_steps, check_interval=5) for p in puzzles]
    solved = sum(1 for r in results if r.solved)
    return {
        "num_puzzles": count,
        "solved": solved,
        "solve_rate": solved / count if count else 0.0,
        "mean_steps": float(np.mean([r.steps for r in results])) if results else 0.0,
        "results": results,
        "clue_counts": [p.num_clues for p in puzzles],
    }


def csp_solve_rate(
    *,
    scenario: str = "coloring",
    count: int = 3,
    max_steps: int = 3000,
    check_interval: int = 10,
    seed: int = 0,
    solver_seed: int = 7,
    backend: str = "fixed",
    batched: bool = True,
    scenario_params: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Solve a set of generated CSP instances with the spiking solver.

    The generic-constraint-solver counterpart of :func:`sudoku_solve_rate`:
    ``count`` deterministic instances of one scenario family (graph
    coloring, N-queens, Latin squares, ... — see
    :mod:`repro.csp.scenarios`) are generated from ``seed + index`` and
    solved on the WTA network.  With ``batched=True`` (default) all
    instances advance together on the exact-mode batch engine
    (:func:`repro.csp.solver.solve_instances`), bit-identical to — and
    much faster than — the sequential ``batched=False`` reference loop.
    """
    from ..csp import SpikingCSPSolver, make_instance
    from ..csp.solver import solve_instances

    params = dict(scenario_params or {})
    # reprolint: disable-next-line=RL002 -- instance-identity seeds (frozen corpus)
    instances = [make_instance(scenario, seed=seed + i, **params) for i in range(count)]
    if batched:
        results = solve_instances(
            instances,
            backend=backend,
            seeds=[solver_seed] * count,
            max_steps=max_steps,
            check_interval=check_interval,
        )
    else:
        results = [
            SpikingCSPSolver(graph, backend=backend, seed=solver_seed).solve(
                clamps, max_steps=max_steps, check_interval=check_interval
            )
            for graph, clamps in instances
        ]
    solved = sum(1 for r in results if r.solved)
    return {
        "scenario": scenario,
        "num_instances": count,
        "num_neurons": instances[0][0].num_neurons if instances else 0,
        "solved": solved,
        "solve_rate": solved / count if count else 0.0,
        "mean_steps": float(np.mean([r.steps for r in results])) if results else 0.0,
        "results": results,
    }


def csp_portfolio_solve_rate(
    *,
    scenario: str = "coloring",
    count: int = 8,
    max_steps: int = 2000,
    check_interval: int = 10,
    seed: int = 0,
    backend: str = "fixed",
    portfolio=None,
    config=None,
    scenario_params: Optional[Dict[str, object]] = None,
    compare_fixed: bool = True,
) -> Dict[str, object]:
    """Restart-portfolio solve-rate experiment on one hard instance pool.

    Runs :func:`repro.csp.portfolio.solve_instances_portfolio` over
    ``count`` deterministic instances (generated from ``seed + index``)
    and, with ``compare_fixed`` (default), the fixed-seed
    :func:`repro.csp.solver.solve_instances` baseline over the *same*
    pool at the *same* global step budget — the restart portfolio's
    contractual claim is a solve rate at least as high for measurably
    fewer total neuron updates, which
    ``benchmarks/bench_csp_solver.py`` gates.

    Both engines draw their per-instance first-attempt seeds from the
    same ``SeedSequence`` scheme, so the baseline is the exact engine the
    portfolio layers restarts onto.
    """
    from ..csp import PortfolioConfig, make_instance
    from ..csp.portfolio import solve_instances_portfolio
    from ..csp.solver import solve_instances
    from ..runtime.sweep import derive_task_seed

    params = dict(scenario_params or {})
    pcfg = portfolio if portfolio is not None else PortfolioConfig()
    # reprolint: disable-next-line=RL002 -- instance-identity seeds (frozen corpus)
    instances = [make_instance(scenario, seed=seed + i, **params) for i in range(count)]
    seeds = [derive_task_seed(pcfg.seed, i) for i in range(count)]
    portfolio_results = solve_instances_portfolio(
        instances,
        config=config,
        portfolio=pcfg,
        backend=backend,
        seeds=seeds,
        max_steps=max_steps,
        check_interval=check_interval,
    )
    summary: Dict[str, object] = {
        "scenario": scenario,
        "num_instances": count,
        "num_neurons": instances[0][0].num_neurons if instances else 0,
        "max_steps": max_steps,
        "solve_rate": (
            sum(r.solved for r in portfolio_results) / count if count else 0.0
        ),
        "total_attempts": int(sum(r.attempts for r in portfolio_results)),
        "neuron_updates": int(sum(r.neuron_updates for r in portfolio_results)),
        "results": portfolio_results,
    }
    if compare_fixed:
        fixed_results = solve_instances(
            instances,
            config=config,
            backend=backend,
            seeds=seeds,
            max_steps=max_steps,
            check_interval=check_interval,
        )
        summary["fixed_solve_rate"] = (
            sum(r.solved for r in fixed_results) / count if count else 0.0
        )
        summary["fixed_neuron_updates"] = int(sum(r.neuron_updates for r in fixed_results))
        summary["fixed_results"] = fixed_results
    return summary


def sweep_workload(
    name: str,
    config: object = None,
    *,
    executor: Optional[SweepExecutor] = None,
    cache: object = False,
    **overrides: object,
) -> SweepReport:
    """Run a registered sweep workload by name and return its report.

    Thin harness-facing passthrough to
    :func:`repro.runtime.registry.run_sweep_workload`, so experiment
    scripts resolve the pooled/batched workloads through the registry
    (``sweep_workload("pooled-csp", count=16)``) instead of importing
    each driver function ad hoc.
    """
    return run_sweep_workload(name, config, executor=executor, cache=cache, **overrides)
