"""Published numbers from the paper, used for side-by-side comparison.

Only the values the paper explicitly prints are recorded here; they are
never used by the models themselves (except where DESIGN.md documents a
calibration), only for the measured-vs-paper columns of the benchmark
output and EXPERIMENTS.md.
"""

from __future__ import annotations

__all__ = [
    "PAPER_TABLE2_AE_PERCENT",
    "PAPER_TABLE3_MAX10",
    "PAPER_TABLE4_AGILEX",
    "PAPER_TABLE5_8020",
    "PAPER_TABLE6_SUDOKU",
    "PAPER_TABLE7_ASIC",
    "PAPER_SPEEDUP_DUAL_CORE_8020",
    "PAPER_SPEEDUP_DUAL_CORE_SUDOKU",
    "PAPER_SOFTFLOAT_SPEEDUP",
    "PAPER_MAX_AGILEX_CORES",
]

#: Table II — approximation error in percent per divider (as printed).
#: The /6 entry is inconsistent with its own shift selection (see DESIGN.md).
PAPER_TABLE2_AE_PERCENT = {2: 0.0, 3: 0.3906, 4: 0.0, 5: 0.3906, 6: 12.1093, 7: 0.1953, 8: 0.0}

#: Table III — dual-core MAX10 utilisation.
PAPER_TABLE3_MAX10 = {
    "frequency_mhz": 30.0,
    "logic_elements": 49248,
    "logic_percent": 99.0,
    "flipflops": 28235,
    "ff_percent": 51.0,
    "bram_kb": 346.468,
    "bram_percent": 21.0,
    "multipliers": 68,
    "mult_percent": 24.0,
}

#: Table IV — Agilex-7 utilisation for 16/32/64 cores at 100 MHz.
PAPER_TABLE4_AGILEX = {
    16: {"alm": 107144, "ff": 95624, "ram_blocks": 390, "dsp": 152},
    32: {"alm": 216448, "ff": 186760, "ram_blocks": 646, "dsp": 304},
    64: {"alm": 420977, "ff": 372741, "ram_blocks": 1158, "dsp": 608},
}

#: Table V — 80-20 network performance metrics (1000 neurons, 1000 steps).
PAPER_TABLE5_8020 = {
    "single": {
        "speedup": 1.0,
        "execution_time_s": 7.870,
        "ipc": 0.5735,
        "ipc_eff": 0.6516,
        "hazard_stall_percent": 0.742,
        "cache_misses": 1306420,
        "icache_hit_rate": 99.97,
        "dcache_hit_rate": 96.54,
        "memory_intensity": 27.15,
    },
    "dual_core1": {
        "execution_time_s": 4.791,
        "ipc": 0.5317,
        "ipc_eff": 0.6637,
        "hazard_stall_percent": 5.344,
        "cache_misses": 639798,
        "icache_hit_rate": 99.97,
        "dcache_hit_rate": 97.18,
        "memory_intensity": 28.88,
    },
    "dual_core2": {
        "execution_time_s": 4.7906,
        "ipc": 0.51887,
        "ipc_eff": 0.6508,
        "hazard_stall_percent": 6.259,
        "cache_misses": 675623,
        "icache_hit_rate": 99.97,
        "dcache_hit_rate": 97.09,
        "memory_intensity": 30.12,
    },
}

#: Table VI — Sudoku solver per-timestep metrics (729 neurons).
PAPER_TABLE6_SUDOKU = {
    "single": {
        "speedup": 1.0,
        "time_per_step_ms": 2.0555,
        "ipc": 0.5304,
        "ipc_eff": 0.7564,
        "hazard_stall_percent": 5.136,
        "icache_hit_rate": 98.7230,
        "dcache_hit_rate": 99.9999,
        "memory_intensity": 21.3853,
    },
    "dual_core1": {
        "time_per_step_ms": 1.2223,
        "ipc": 0.4960,
        "ipc_eff": 0.8635,
        "hazard_stall_percent": 6.4793,
        "icache_hit_rate": 98.6848,
        "dcache_hit_rate": 100.0,
        "memory_intensity": 22.3176,
    },
    "dual_core2": {
        "time_per_step_ms": 1.2223,
        "ipc": 0.4194,
        "ipc_eff": 0.7865,
        "hazard_stall_percent": 9.1493,
        "icache_hit_rate": 98.8331,
        "dcache_hit_rate": 99.9999,
        "memory_intensity": 23.9244,
    },
}

#: Table VII — standard-cell mapping results.
PAPER_TABLE7_ASIC = {
    "FreePDK45": {
        "total_area_um2": 95654.664,
        "fetch_decode_um2": 16924.250,
        "icache_um2": 10588.662,
        "dcache_um2": 12097.414,
        "hazard_um2": 146.300,
        "alu_um2": 19873.924,
        "npu_um2": 19516.154,
        "dcu_um2": 2005.640,
        "other_um2": 11449.172,
        "total_power_mw": 49.5,
        "internal_power_mw": 25.7,
        "switching_power_mw": 21.5,
        "leakage_uw": 2.31,
        "clock_mhz": 201.5,
        "throughput_mupd_s": 67.6,
        "power_efficiency_gupd_s_w": 1.371,
        "peak_neural_gips": 3.022,
    },
    "ASAP7": {
        "total_area_um2": 6599.375,
        "fetch_decode_um2": 1116.522,
        "icache_um2": 723.941,
        "dcache_um2": 799.830,
        "hazard_um2": 7.480,
        "alu_um2": 1441.364,
        "npu_um2": 1292.196,
        "dcu_um2": 141.411,
        "other_um2": 809.584,
        "total_power_mw": 10.9,
        "internal_power_mw": 6.05,
        "switching_power_mw": 4.85,
        "leakage_uw": 6.45,
        "clock_mhz": 316.3,
        "throughput_mupd_s": 105.4,
        "power_efficiency_gupd_s_w": 9.67,
        "peak_neural_gips": 4.74,
    },
}

#: §VI-B / §VI-C headline speedups.
PAPER_SPEEDUP_DUAL_CORE_8020 = 1.643
PAPER_SPEEDUP_DUAL_CORE_SUDOKU = 1.682
PAPER_SOFTFLOAT_SPEEDUP = 40.0
PAPER_MAX_AGILEX_CORES = 192
