"""Evaluation puzzle set for the Sudoku SNN solver.

The paper evaluates on the "Top 100 difficult Sudoku" list hosted at
``magictour.free.fr/top100``, which is not redistributable here.  As the
substitute (see DESIGN.md) this module *generates* a deterministic set of
uniquely-solvable puzzles of controlled difficulty: complete grids are
produced by a randomised backtracking fill and clues are removed (in a
symmetric-free random order) while the puzzle remains uniquely solvable,
down to a target clue count.  Lower clue counts give harder instances;
the default evaluation set targets 24-28 clues, which exercises the same
WTA search behaviour as the original list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .board import BacktrackingSolver, SudokuBoard

__all__ = ["PuzzleGenerator", "GeneratedPuzzle", "generate_puzzle_set", "EXAMPLE_PUZZLE"]

#: A moderately easy hand-checked puzzle used by the quickstart example and
#: the unit tests (36 clues, unique solution by construction of the tests).
EXAMPLE_PUZZLE = (
    "530070000"
    "600195000"
    "098000060"
    "800060003"
    "400803001"
    "700020006"
    "060000280"
    "000419005"
    "000080079"
)


@dataclass
class GeneratedPuzzle:
    """A generated puzzle together with its unique solution."""

    puzzle: SudokuBoard
    solution: SudokuBoard
    seed: int

    @property
    def num_clues(self) -> int:
        return self.puzzle.num_clues

    def difficulty_proxy(self) -> int:
        """Search nodes a backtracking solver needs (larger = harder)."""
        solver = BacktrackingSolver()
        solver.solve(self.puzzle)
        return solver.nodes_visited


class PuzzleGenerator:
    """Deterministic generator of uniquely-solvable Sudoku puzzles."""

    def __init__(self, seed: int = 100) -> None:
        self.seed = seed

    # ------------------------------------------------------------------ #
    def complete_grid(self, *, seed: Optional[int] = None) -> SudokuBoard:
        """Produce a random complete (solved) grid."""
        rng = np.random.default_rng(self.seed if seed is None else seed)
        solver = BacktrackingSolver(rng=rng)
        solution = solver.solve(SudokuBoard.empty())
        assert solution is not None  # an empty grid is always satisfiable
        return solution

    def generate(self, *, seed: Optional[int] = None, target_clues: int = 28, max_removals: int = 200) -> GeneratedPuzzle:
        """Generate one puzzle by clue removal under a uniqueness constraint.

        Parameters
        ----------
        seed:
            Seed for this instance (defaults to the generator seed).
        target_clues:
            Stop removing once the clue count reaches this value (the
            uniqueness constraint may stop removal earlier).
        max_removals:
            Safety bound on removal attempts.
        """
        actual_seed = self.seed if seed is None else seed
        rng = np.random.default_rng(actual_seed)
        solution = self.complete_grid(seed=actual_seed)
        puzzle = solution.copy()
        checker = BacktrackingSolver()

        positions = [(r, c) for r in range(9) for c in range(9)]
        rng.shuffle(positions)
        attempts = 0
        for row, col in positions:
            if puzzle.num_clues <= target_clues or attempts >= max_removals:
                break
            attempts += 1
            saved = int(puzzle.cells[row, col])
            if saved == 0:
                continue
            puzzle.cells[row, col] = 0
            if not checker.has_unique_solution(puzzle):
                puzzle.cells[row, col] = saved
        return GeneratedPuzzle(puzzle=puzzle, solution=solution, seed=actual_seed)


def generate_puzzle_set(
    count: int = 100, *, base_seed: int = 1000, target_clues: int = 28
) -> List[GeneratedPuzzle]:
    """Generate the evaluation set substituting the paper's "Top 100" list.

    Each puzzle uses a distinct deterministic seed so the set is stable
    across runs and machines.
    """
    generator = PuzzleGenerator()
    return [
        # reprolint: disable-next-line=RL002 -- puzzle-identity seeds (frozen corpus)
        generator.generate(seed=base_seed + i, target_clues=target_clues)
        for i in range(count)
    ]
