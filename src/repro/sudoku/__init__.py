"""Sudoku-as-SNN application of the IzhiRISC-V reproduction.

Board utilities, puzzle generation (the substitute for the paper's
"Top 100" list), the 729-neuron Winner-Takes-All network and the spiking
solver, plus a classical backtracking solver used as reference.
"""

from .board import BacktrackingSolver, SudokuBoard
from .puzzles import EXAMPLE_PUZZLE, GeneratedPuzzle, PuzzleGenerator, generate_puzzle_set
from .solver import SNNSudokuSolver, SolveResult
from .wta import (
    NUM_NEURONS,
    WTAConfig,
    WTAStatistics,
    build_wta_synapses,
    conflicting_neurons,
    connectivity_statistics,
    neuron_coordinates,
    neuron_index,
)

__all__ = [
    "BacktrackingSolver",
    "SudokuBoard",
    "EXAMPLE_PUZZLE",
    "GeneratedPuzzle",
    "PuzzleGenerator",
    "generate_puzzle_set",
    "SNNSudokuSolver",
    "SolveResult",
    "NUM_NEURONS",
    "WTAConfig",
    "WTAStatistics",
    "build_wta_synapses",
    "conflicting_neurons",
    "connectivity_statistics",
    "neuron_coordinates",
    "neuron_index",
]
