"""Sudoku board representation, validation and a reference backtracking solver.

The SNN Sudoku solver (paper §VI-C) needs three conventional ingredients
around it: a board representation, a validity checker used to decide when
the network has converged to a legal solution, and a classical solver used
both to verify puzzle uniqueness when generating the evaluation set and as
the non-neuromorphic reference baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["SudokuBoard", "BacktrackingSolver"]

GRID = 9
BOX = 3


@dataclass
class SudokuBoard:
    """A 9x9 Sudoku grid; 0 denotes an empty cell."""

    cells: np.ndarray

    def __post_init__(self) -> None:
        cells = np.asarray(self.cells, dtype=np.int64)
        if cells.shape != (GRID, GRID):
            raise ValueError(f"a Sudoku board must be 9x9, got {cells.shape}")
        if cells.min() < 0 or cells.max() > 9:
            raise ValueError("cell values must be within 0..9")
        self.cells = cells

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "SudokuBoard":
        return cls(np.zeros((GRID, GRID), dtype=np.int64))

    @classmethod
    def from_string(cls, text: str) -> "SudokuBoard":
        """Parse an 81-character puzzle string (``0`` or ``.`` for blanks)."""
        digits = [ch for ch in text if ch.isdigit() or ch == "."]
        if len(digits) != GRID * GRID:
            raise ValueError(f"expected 81 cells, got {len(digits)}")
        values = [0 if ch == "." else int(ch) for ch in digits]
        return cls(np.asarray(values, dtype=np.int64).reshape(GRID, GRID))

    def to_string(self) -> str:
        """Serialise to an 81-character string with ``.`` for blanks."""
        return "".join("." if v == 0 else str(int(v)) for v in self.cells.ravel())

    def copy(self) -> "SudokuBoard":
        return SudokuBoard(self.cells.copy())

    def pretty(self) -> str:
        """Human-readable rendering with box separators."""
        lines = []
        for r in range(GRID):
            if r % BOX == 0 and r:
                lines.append("------+-------+------")
            row = []
            for c in range(GRID):
                if c % BOX == 0 and c:
                    row.append("|")
                v = int(self.cells[r, c])
                row.append(str(v) if v else ".")
            lines.append(" ".join(row))
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def num_clues(self) -> int:
        """Number of filled cells."""
        return int(np.count_nonzero(self.cells))

    def is_complete(self) -> bool:
        """All 81 cells filled (validity not implied)."""
        return bool(np.all(self.cells > 0))

    def clue_positions(self) -> List[Tuple[int, int, int]]:
        """List of ``(row, col, digit)`` for every filled cell."""
        rows, cols = np.nonzero(self.cells)
        return [(int(r), int(c), int(self.cells[r, c])) for r, c in zip(rows, cols)]

    def candidates(self, row: int, col: int) -> List[int]:
        """Digits legal in ``(row, col)`` given the current grid."""
        if self.cells[row, col]:
            return [int(self.cells[row, col])]
        used = set(self.cells[row, :]) | set(self.cells[:, col])
        br, bc = BOX * (row // BOX), BOX * (col // BOX)
        used |= set(self.cells[br : br + BOX, bc : bc + BOX].ravel())
        return [d for d in range(1, 10) if d not in used]

    def is_valid(self) -> bool:
        """No duplicated digit within any row, column or 3x3 box."""
        for axis_cells in self._units():
            filled = axis_cells[axis_cells > 0]
            if len(np.unique(filled)) != len(filled):
                return False
        return True

    def is_solved(self) -> bool:
        """Complete and valid."""
        return self.is_complete() and self.is_valid()

    def conflicts(self) -> int:
        """Number of constraint units containing at least one duplicate."""
        count = 0
        for unit in self._units():
            filled = unit[unit > 0]
            count += int(len(filled) - len(np.unique(filled)))
        return count

    def respects_clues(self, clues: "SudokuBoard") -> bool:
        """Every original clue is preserved in this board."""
        mask = clues.cells > 0
        return bool(np.all(self.cells[mask] == clues.cells[mask]))

    def _units(self) -> Iterator[np.ndarray]:
        for r in range(GRID):
            yield self.cells[r, :]
        for c in range(GRID):
            yield self.cells[:, c]
        for br in range(0, GRID, BOX):
            for bc in range(0, GRID, BOX):
                yield self.cells[br : br + BOX, bc : bc + BOX].ravel()


class BacktrackingSolver:
    """Classical depth-first Sudoku solver with candidate ordering.

    Used to (a) generate puzzles with a unique solution, (b) verify that
    the SNN solver's answer matches the true solution, and (c) serve as
    the conventional-algorithm baseline in the examples.
    """

    def __init__(self, *, rng: Optional[np.random.Generator] = None) -> None:
        self.rng = rng
        self.nodes_visited = 0

    # ------------------------------------------------------------------ #
    def solve(self, board: SudokuBoard) -> Optional[SudokuBoard]:
        """Return one solution, or ``None`` if the puzzle is unsatisfiable."""
        self.nodes_visited = 0
        solutions = self._search(board.copy(), limit=1)
        return solutions[0] if solutions else None

    def count_solutions(self, board: SudokuBoard, *, limit: int = 2) -> int:
        """Count solutions up to ``limit`` (2 suffices for uniqueness tests)."""
        self.nodes_visited = 0
        return len(self._search(board.copy(), limit=limit))

    def has_unique_solution(self, board: SudokuBoard) -> bool:
        """``True`` when exactly one solution exists."""
        return self.count_solutions(board, limit=2) == 1

    # ------------------------------------------------------------------ #
    def _search(self, board: SudokuBoard, *, limit: int) -> List[SudokuBoard]:
        solutions: List[SudokuBoard] = []
        self._recurse(board, solutions, limit)
        return solutions

    def _recurse(self, board: SudokuBoard, solutions: List[SudokuBoard], limit: int) -> None:
        if len(solutions) >= limit:
            return
        self.nodes_visited += 1
        target: Optional[Tuple[int, int, List[int]]] = None
        # Most-constrained-cell heuristic.
        for r in range(GRID):
            for c in range(GRID):
                if board.cells[r, c] == 0:
                    cands = board.candidates(r, c)
                    if target is None or len(cands) < len(target[2]):
                        target = (r, c, cands)
                        if len(cands) <= 1:
                            break
            if target is not None and len(target[2]) <= 1:
                break
        if target is None:
            solutions.append(board.copy())
            return
        row, col, cands = target
        if self.rng is not None:
            cands = list(cands)
            self.rng.shuffle(cands)
        for digit in cands:
            board.cells[row, col] = digit
            self._recurse(board, solutions, limit)
            board.cells[row, col] = 0
            if len(solutions) >= limit:
                return
