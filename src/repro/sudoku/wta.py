"""Winner-Takes-All network construction for the SNN Sudoku solver.

The paper's solver (§VI-C, Fig. 4) maps every cell of the 9x9 board to an
array of nine Izhikevich neurons — one per candidate digit — for a total
of 729 neurons.  When a digit-neuron spikes it *inhibits*:

* the same digit in every other cell of its row,
* the same digit in every other cell of its column,
* the same digit in the other cells of its 3x3 box, and
* every other digit of its own cell (the "multi-level" WTA).

Clue cells receive a strong constant excitatory drive so their digit wins
immediately; free cells receive a weak noisy drive so the network explores
candidate assignments, with a small self-excitation term providing the
persistence that lets a tentative winner hold its cell until it is
inhibited by a conflicting, more strongly supported digit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..snn.synapse import SparseSynapses

__all__ = ["WTAConfig", "neuron_index", "neuron_coordinates", "conflicting_neurons", "build_wta_synapses", "WTAStatistics", "connectivity_statistics"]

GRID = 9
BOX = 3
NUM_NEURONS = GRID * GRID * GRID  # 729


@dataclass(frozen=True)
class WTAConfig:
    """Weights and drive levels of the WTA Sudoku network.

    The defaults were tuned on the fixed-point (Q7.8 / Q15.16) datapath
    with the membrane pin enabled, mirroring the paper's observation that
    pinning the voltage at the reset potential was needed for convergence.
    """

    #: Inhibitory weight applied to every conflicting neuron on a spike.
    inhibition_weight: float = -30.0
    #: Self-excitation applied to the spiking neuron itself (persistence).
    #: The default of 0 gives pure noise-driven sampling, which converged
    #: most reliably on the fixed-point datapath.
    self_excitation: float = 0.0
    #: Constant drive of clue-digit neurons.
    clue_drive: float = 10.0
    #: Constant bias of free-cell candidate neurons.
    free_bias: float = 3.0
    #: Standard deviation of the exploration noise on free cells.
    noise_sigma: float = 4.0
    #: DCU decay selector for the synaptic current (tau ≈ a few ms).
    tau_select: int = 2
    #: Izhikevich parameters of every neuron (fast-spiking-like).
    a: float = 0.1
    b: float = 0.2
    c: float = -65.0
    d: float = 2.0
    #: Sliding window (in 1 ms steps) over which spike counts are decoded.
    decode_window: int = 20
    #: Period (in steps) of the exploration-noise annealing cycle; within
    #: each period the noise amplitude ramps down from its maximum to a
    #: small residual, letting the network alternately explore and settle.
    anneal_period: int = 200
    #: Fraction of the noise amplitude retained at the end of a cycle.
    anneal_floor: float = 0.25


def neuron_index(row: int, col: int, digit: int) -> int:
    """Flat neuron index of ``(row, col, digit)`` with digit in 1..9."""
    if not (0 <= row < GRID and 0 <= col < GRID and 1 <= digit <= GRID):
        raise ValueError(f"invalid neuron coordinates ({row}, {col}, {digit})")
    return row * GRID * GRID + col * GRID + (digit - 1)


def neuron_coordinates(index: int) -> Tuple[int, int, int]:
    """Inverse of :func:`neuron_index`: returns ``(row, col, digit)``."""
    if not 0 <= index < NUM_NEURONS:
        raise ValueError(f"neuron index {index} out of range")
    row, rest = divmod(index, GRID * GRID)
    col, digit0 = divmod(rest, GRID)
    return row, col, digit0 + 1


def conflicting_neurons(row: int, col: int, digit: int) -> List[int]:
    """All neurons inhibited by a spike of ``(row, col, digit)`` (Fig. 4)."""
    targets = set()
    # Same digit elsewhere in the row and column.
    for c in range(GRID):
        if c != col:
            targets.add(neuron_index(row, c, digit))
    for r in range(GRID):
        if r != row:
            targets.add(neuron_index(r, col, digit))
    # Same digit elsewhere in the 3x3 box.
    br, bc = BOX * (row // BOX), BOX * (col // BOX)
    for r in range(br, br + BOX):
        for c in range(bc, bc + BOX):
            if (r, c) != (row, col):
                targets.add(neuron_index(r, c, digit))
    # Other digits of the same cell.
    for d in range(1, GRID + 1):
        if d != digit:
            targets.add(neuron_index(row, col, d))
    return sorted(targets)


def build_wta_synapses(config: WTAConfig | None = None) -> SparseSynapses:
    """Build the 729-neuron inhibition/self-excitation connectivity.

    Delegates to the generic constraint-graph builder
    (:meth:`repro.csp.graph.ConstraintGraph.build_synapses`) on the shared
    Sudoku graph — the resulting matrix is identical (structure and
    values, including the explicit self-excitation diagonal) to the
    historical hand-rolled construction.
    """
    cfg = config if config is not None else WTAConfig()
    from ..csp.scenarios.sudoku import shared_sudoku_graph

    return shared_sudoku_graph().build_synapses(
        inhibition_weight=cfg.inhibition_weight, self_excitation=cfg.self_excitation
    )


@dataclass
class WTAStatistics:
    """Structural statistics of the WTA graph (regenerates Fig. 4's counts)."""

    num_neurons: int
    num_inhibitory_edges: int
    num_self_edges: int
    inhibitory_out_degree: int
    #: Breakdown of one neuron's inhibitory fan-out by constraint type.
    row_targets: int
    column_targets: int
    box_only_targets: int
    cell_targets: int


def connectivity_statistics(config: WTAConfig | None = None) -> WTAStatistics:
    """Compute the per-neuron inhibition structure described by Fig. 4.

    Every neuron inhibits 8 row peers + 8 column peers + 4 box-only peers
    (the box cells not already counted in its row/column) + 8 other digits
    of its own cell = 28 conflicting neurons.
    """
    synapses = build_wta_synapses(config)
    row, col, digit = 0, 0, 1
    targets = conflicting_neurons(row, col, digit)
    row_targets = col_targets = box_only = cell_targets = 0
    for t in targets:
        tr, tc, td = neuron_coordinates(t)
        if (tr, tc) == (row, col):
            cell_targets += 1
        elif td == digit and tr == row:
            row_targets += 1
        elif td == digit and tc == col:
            col_targets += 1
        else:
            box_only += 1
    return WTAStatistics(
        num_neurons=NUM_NEURONS,
        num_inhibitory_edges=synapses.num_synapses - NUM_NEURONS,
        num_self_edges=NUM_NEURONS,
        inhibitory_out_degree=len(targets),
        row_targets=row_targets,
        column_targets=col_targets,
        box_only_targets=box_only,
        cell_targets=cell_targets,
    )
