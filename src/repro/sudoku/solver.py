"""SNN Sudoku solver: a thin adapter over the generic ``repro.csp`` engine.

The paper's solver (§VI-C) runs the 729-neuron Winner-Takes-All network on
the bit-exact fixed-point population (the same arithmetic as the
``nmpn``/``nmdec`` instructions, including the *pin* behaviour the paper
added specifically for this use case) and decodes the board state from the
spike activity.  Since the WTA machinery generalises to any finite-domain
constraint problem, the construction now lives in :mod:`repro.csp`:

* the 9x9 board maps to the shared Sudoku
  :class:`~repro.csp.graph.ConstraintGraph`
  (:func:`repro.csp.scenarios.sudoku.sudoku_graph`);
* clue cells map to unary clamps;
* the run itself is :class:`~repro.csp.solver.SpikingCSPSolver` with the
  board-shaped :class:`WTAConfig` translated to a
  :class:`~repro.csp.config.CSPConfig`.

The adapter is **bit-identical** to the pre-refactor solver: same noise
streams, same synapse matrix, same decode and stop conditions, hence the
same boards, spike counts and step counts (locked down by
``tests/csp/test_sudoku_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..csp.config import CSPConfig
from ..csp.scenarios.sudoku import clamps_from_cells, shared_sudoku_graph
from ..csp.solver import CSPSolveResult, SpikingCSPSolver, decode_assignment
from ..snn.network import SNNNetwork
from .board import BacktrackingSolver, SudokuBoard
from .wta import GRID, WTAConfig

__all__ = ["SolveResult", "SNNSudokuSolver"]


@dataclass
class SolveResult:
    """Outcome of one SNN solving run."""

    solved: bool
    steps: int
    board: SudokuBoard
    #: Total number of spikes emitted during the run.
    total_spikes: int
    #: Number of neuron updates performed (neurons x sub-steps x steps).
    neuron_updates: int
    #: True when the answer also matches the reference backtracking solution.
    matches_reference: Optional[bool] = None


def _csp_config(config: WTAConfig) -> CSPConfig:
    """Translate the board-shaped WTA parameters to the generic config."""
    return CSPConfig(
        inhibition_weight=config.inhibition_weight,
        self_excitation=config.self_excitation,
        clamp_drive=config.clue_drive,
        free_bias=config.free_bias,
        noise_sigma=config.noise_sigma,
        tau_select=config.tau_select,
        a=config.a,
        b=config.b,
        c=config.c,
        d=config.d,
        decode_window=config.decode_window,
        anneal_period=config.anneal_period,
        anneal_floor=config.anneal_floor,
    )


class SNNSudokuSolver:
    """Solve Sudoku puzzles with the 729-neuron WTA spiking network.

    Parameters
    ----------
    config:
        WTA weights and drive levels.
    backend:
        ``"fixed"`` (default) runs on the NPU fixed-point datapath with the
        membrane pin enabled — the configuration the paper converged with;
        ``"float64"`` runs the double-precision reference dynamics.
    seed:
        Seed of the exploration-noise stream.
    """

    def __init__(
        self,
        config: Optional[WTAConfig] = None,
        *,
        backend: str = "fixed",
        seed: int = 7,
    ) -> None:
        if backend not in ("fixed", "float64"):
            raise ValueError(f"unknown backend {backend!r}")
        self.config = config if config is not None else WTAConfig()
        self.backend = backend
        self.seed = seed
        self._csp = SpikingCSPSolver(
            shared_sudoku_graph(), _csp_config(self.config), backend=backend, seed=seed
        )
        self.synapses = self._csp.synapses

    # ------------------------------------------------------------------ #
    # Network assembly (kept for the runtime backends)
    # ------------------------------------------------------------------ #
    def _drive_vector(self, puzzle: SudokuBoard) -> np.ndarray:
        """Constant per-neuron drive: strong for clue digits, bias otherwise."""
        return self._csp.graph.drive_vector(
            clamps_from_cells(puzzle.cells),
            clamp_drive=self.config.clue_drive,
            free_bias=self.config.free_bias,
        )

    def _build_network(self, puzzle: SudokuBoard) -> SNNNetwork:
        return self._csp.build_network(clamps_from_cells(puzzle.cells))

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    @staticmethod
    def decode(
        window_counts: np.ndarray,
        last_spike_step: np.ndarray,
        puzzle: SudokuBoard,
    ) -> SudokuBoard:
        """Decode the board from recent spike activity.

        Within each cell the digit with the most spikes in the sliding
        window wins; ties are broken by the most recent spike.  Cells whose
        candidates have not spiked recently stay empty; clue cells are
        always taken from the puzzle.
        """
        values, _ = decode_assignment(
            shared_sudoku_graph(),
            window_counts,
            last_spike_step,
            clamps_from_cells(puzzle.cells),
        )
        return SudokuBoard(values.reshape(GRID, GRID))

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def _to_result(
        self,
        csp_result: CSPSolveResult,
        puzzle: SudokuBoard,
        verify_against_reference: bool,
    ) -> SolveResult:
        board = SudokuBoard(csp_result.values.reshape(GRID, GRID))
        matches = None
        if verify_against_reference:
            reference = BacktrackingSolver().solve(puzzle)
            matches = reference is not None and bool(np.all(reference.cells == board.cells))
        return SolveResult(
            solved=csp_result.solved,
            steps=csp_result.steps,
            board=board,
            total_spikes=csp_result.total_spikes,
            neuron_updates=csp_result.neuron_updates,
            matches_reference=matches,
        )

    def solve(
        self,
        puzzle: SudokuBoard,
        *,
        max_steps: int = 3000,
        check_interval: int = 10,
        verify_against_reference: bool = False,
    ) -> SolveResult:
        """Run the network until the decoded board is a valid solution.

        Parameters
        ----------
        puzzle:
            The clue board (0 = empty cell).
        max_steps:
            Upper bound on 1 ms network steps.
        check_interval:
            How often (in steps) the decoded board is tested for validity.
        verify_against_reference:
            Also compare the SNN answer against the backtracking solver's
            solution (only meaningful for uniquely-solvable puzzles).
        """
        if not puzzle.is_valid():
            raise ValueError("puzzle contains conflicting clues")
        csp_result = self._csp.solve(
            clamps_from_cells(puzzle.cells),
            max_steps=max_steps,
            check_interval=check_interval,
        )
        return self._to_result(csp_result, puzzle, verify_against_reference)

    def solve_batch(
        self,
        puzzles: List[SudokuBoard],
        *,
        max_steps: int = 3000,
        check_interval: int = 10,
        verify_against_reference: bool = False,
    ) -> List[SolveResult]:
        """Solve ``B`` puzzles at once on the vectorised batch engine.

        All puzzle networks are stacked into one exact-mode
        :class:`~repro.runtime.batch.BatchedNetwork` (they share the WTA
        connectivity and differ only in drive and noise): the inhibitory
        weights are exact Q15.16 values, so every 1 ms step propagates
        spikes for the whole batch through the integer CSR kernel and
        draws all noise from one compiled ``(B, 729)`` provider, while
        each result stays bit-identical to a sequential :meth:`solve`
        call on the same puzzle — including the per-puzzle noise streams,
        decode windows and step counts.  Replicas that solve early are
        dropped from the live batch (their result recorded) while the
        rest keeps running; the run stops as soon as every replica has
        solved or ``max_steps`` is reached.
        """
        for puzzle in puzzles:
            if not puzzle.is_valid():
                raise ValueError("puzzle contains conflicting clues")
        csp_results = self._csp.solve_batch(
            [clamps_from_cells(p.cells) for p in puzzles],
            max_steps=max_steps,
            check_interval=check_interval,
        )
        return [
            self._to_result(csp_result, puzzle, verify_against_reference)
            for csp_result, puzzle in zip(csp_results, puzzles)
        ]

    def solve_many(
        self, puzzles: List[SudokuBoard], *, max_steps: int = 3000
    ) -> List[SolveResult]:
        """Solve a list of puzzles (the Top-100-style sweep).

        Thin wrapper over :meth:`solve_batch`, which advances all puzzles
        together on the batched runtime while producing results
        bit-identical to sequential :meth:`solve` calls.
        """
        return self.solve_batch(puzzles, max_steps=max_steps)
