"""SNN Sudoku solver driving the WTA network on the NPU fixed-point datapath.

The solver runs the 729-neuron Winner-Takes-All network built by
:mod:`repro.sudoku.wta` on the bit-exact fixed-point population (the same
arithmetic as the ``nmpn``/``nmdec`` instructions, including the *pin*
behaviour the paper added specifically for this use case) and decodes the
board state from the spike activity: within each cell the digit whose
neuron spiked most recently is the cell's current assignment.  The run
stops as soon as the decoded board is a valid, clue-respecting solution.

Free cells receive a weak noisy drive so the network performs a stochastic
search over candidate assignments; conflicting assignments suppress each
other through the inhibitory WTA connections until a consistent
configuration — a solution — remains stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..snn.fixed_izhikevich import FixedPointPopulation
from ..snn.izhikevich import IzhikevichPopulation
from ..snn.network import SNNNetwork
from .board import BacktrackingSolver, SudokuBoard
from .wta import GRID, NUM_NEURONS, WTAConfig, build_wta_synapses, neuron_index

__all__ = ["SolveResult", "SNNSudokuSolver"]


@dataclass
class SolveResult:
    """Outcome of one SNN solving run."""

    solved: bool
    steps: int
    board: SudokuBoard
    #: Total number of spikes emitted during the run.
    total_spikes: int
    #: Number of neuron updates performed (neurons x sub-steps x steps).
    neuron_updates: int
    #: True when the answer also matches the reference backtracking solution.
    matches_reference: Optional[bool] = None


class SNNSudokuSolver:
    """Solve Sudoku puzzles with the 729-neuron WTA spiking network.

    Parameters
    ----------
    config:
        WTA weights and drive levels.
    backend:
        ``"fixed"`` (default) runs on the NPU fixed-point datapath with the
        membrane pin enabled — the configuration the paper converged with;
        ``"float64"`` runs the double-precision reference dynamics.
    seed:
        Seed of the exploration-noise stream.
    """

    def __init__(
        self,
        config: Optional[WTAConfig] = None,
        *,
        backend: str = "fixed",
        seed: int = 7,
    ) -> None:
        if backend not in ("fixed", "float64"):
            raise ValueError(f"unknown backend {backend!r}")
        self.config = config if config is not None else WTAConfig()
        self.backend = backend
        self.seed = seed
        self.synapses = build_wta_synapses(self.config)

    # ------------------------------------------------------------------ #
    # Network assembly
    # ------------------------------------------------------------------ #
    def _drive_vector(self, puzzle: SudokuBoard) -> np.ndarray:
        """Constant per-neuron drive: strong for clue digits, bias otherwise."""
        cfg = self.config
        drive = np.full(NUM_NEURONS, cfg.free_bias, dtype=np.float64)
        for row, col, digit in puzzle.clue_positions():
            # The clue digit is driven hard; its cell-mates are silenced.
            for d in range(1, GRID + 1):
                drive[neuron_index(row, col, d)] = 0.0
            drive[neuron_index(row, col, digit)] = cfg.clue_drive
        return drive

    def _build_network(self, puzzle: SudokuBoard) -> SNNNetwork:
        cfg = self.config
        a = np.full(NUM_NEURONS, cfg.a)
        b = np.full(NUM_NEURONS, cfg.b)
        c = np.full(NUM_NEURONS, cfg.c)
        d = np.full(NUM_NEURONS, cfg.d)
        if self.backend == "fixed":
            population = FixedPointPopulation.from_float_parameters(
                a, b, c, d, h_shift=1, pin_voltage=True
            )
        else:
            population = IzhikevichPopulation.from_parameters(a, b, c, d)
        rng = np.random.default_rng(self.seed)
        drive = self._drive_vector(puzzle)
        free_mask = (drive > 0.0) & (drive != cfg.clue_drive)

        def external(step: int) -> np.ndarray:
            # Annealed exploration noise: each cycle ramps the amplitude
            # from noise_sigma down to anneal_floor * noise_sigma so the
            # network alternates between exploring and settling.
            phase = (step % cfg.anneal_period) / max(cfg.anneal_period, 1)
            amplitude = cfg.noise_sigma * (1.0 - (1.0 - cfg.anneal_floor) * phase)
            noise = amplitude * rng.standard_normal(NUM_NEURONS)
            # Clue cells and silenced cell-mates get no exploration noise.
            return drive + noise * free_mask

        return SNNNetwork(
            population=population,
            synapses=self.synapses,
            external_input=external,
            current_mode="decay",
            tau_select=cfg.tau_select,
        )

    # ------------------------------------------------------------------ #
    # Decoding
    # ------------------------------------------------------------------ #
    @staticmethod
    def decode(
        window_counts: np.ndarray,
        last_spike_step: np.ndarray,
        puzzle: SudokuBoard,
    ) -> SudokuBoard:
        """Decode the board from recent spike activity.

        Within each cell the digit with the most spikes in the sliding
        window wins; ties are broken by the most recent spike.  Cells whose
        candidates have not spiked recently stay empty; clue cells are
        always taken from the puzzle.
        """
        grid = np.zeros((GRID, GRID), dtype=np.int64)
        counts = window_counts.reshape(GRID, GRID, GRID).astype(np.float64)
        recency = last_spike_step.reshape(GRID, GRID, GRID).astype(np.float64)
        # Combine: window count dominates, recency (scaled below 1) breaks ties.
        score = counts + recency / (recency.max() + 1.0) if recency.max() > 0 else counts
        decided = counts.max(axis=2) > 0
        winners = score.argmax(axis=2) + 1
        grid[decided] = winners[decided]
        clue_mask = puzzle.cells > 0
        grid[clue_mask] = puzzle.cells[clue_mask]
        return SudokuBoard(grid)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        puzzle: SudokuBoard,
        *,
        max_steps: int = 3000,
        check_interval: int = 10,
        verify_against_reference: bool = False,
    ) -> SolveResult:
        """Run the network until the decoded board is a valid solution.

        Parameters
        ----------
        puzzle:
            The clue board (0 = empty cell).
        max_steps:
            Upper bound on 1 ms network steps.
        check_interval:
            How often (in steps) the decoded board is tested for validity.
        verify_against_reference:
            Also compare the SNN answer against the backtracking solver's
            solution (only meaningful for uniquely-solvable puzzles).
        """
        if not puzzle.is_valid():
            raise ValueError("puzzle contains conflicting clues")
        cfg = self.config
        network = self._build_network(puzzle)
        last_spike_step = np.full(NUM_NEURONS, -1, dtype=np.int64)
        window = max(1, cfg.decode_window)
        history = np.zeros((window, NUM_NEURONS), dtype=bool)
        window_counts = np.zeros(NUM_NEURONS, dtype=np.int64)
        total_spikes = 0
        solved = False
        decoded = puzzle.copy()
        step = 0
        substeps = getattr(network.population, "substeps_per_ms", 1)
        for step in range(1, max_steps + 1):
            fired = network.step(step)
            slot = step % window
            window_counts -= history[slot]
            history[slot] = fired
            window_counts += fired
            if fired.any():
                last_spike_step[fired] = step
                total_spikes += int(fired.sum())
            if step % check_interval == 0:
                decoded = self.decode(window_counts, last_spike_step, puzzle)
                if decoded.is_solved() and decoded.respects_clues(puzzle):
                    solved = True
                    break
        if not solved:
            decoded = self.decode(window_counts, last_spike_step, puzzle)
            solved = decoded.is_solved() and decoded.respects_clues(puzzle)
        matches = None
        if verify_against_reference:
            reference = BacktrackingSolver().solve(puzzle)
            matches = reference is not None and bool(np.all(reference.cells == decoded.cells))
        return SolveResult(
            solved=solved,
            steps=step,
            board=decoded,
            total_spikes=total_spikes,
            neuron_updates=step * NUM_NEURONS * substeps,
            matches_reference=matches,
        )

    def solve_batch(
        self,
        puzzles: List[SudokuBoard],
        *,
        max_steps: int = 3000,
        check_interval: int = 10,
        verify_against_reference: bool = False,
    ) -> List[SolveResult]:
        """Solve ``B`` puzzles at once on the vectorised batch engine.

        All puzzle networks are stacked into one
        :class:`~repro.runtime.batch.BatchedNetwork` (they share the WTA
        connectivity and differ only in drive and noise), so every 1 ms
        step advances the whole batch in fused ``(B, 729)`` updates.  The
        batch runs in the engine's *exact* mode, making each result
        bit-identical to a sequential :meth:`solve` call on the same
        puzzle — including the per-puzzle noise streams, decode windows
        and step counts.  Replicas that solve early are frozen (their
        result recorded) while the rest of the batch keeps running; the
        run stops as soon as every replica has solved or ``max_steps`` is
        reached.
        """
        from ..runtime.batch import BatchedNetwork

        if not puzzles:
            return []
        for puzzle in puzzles:
            if not puzzle.is_valid():
                raise ValueError("puzzle contains conflicting clues")
        cfg = self.config
        networks = [self._build_network(p) for p in puzzles]
        batch = BatchedNetwork.from_networks(networks, synapse_mode="exact")
        num_puzzles = len(puzzles)
        substeps = getattr(networks[0].population, "substeps_per_ms", 1)

        window = max(1, cfg.decode_window)
        history = np.zeros((window, num_puzzles, NUM_NEURONS), dtype=bool)
        window_counts = np.zeros((num_puzzles, NUM_NEURONS), dtype=np.int64)
        last_spike_step = np.full((num_puzzles, NUM_NEURONS), -1, dtype=np.int64)
        total_spikes = np.zeros(num_puzzles, dtype=np.int64)
        solved = np.zeros(num_puzzles, dtype=bool)
        final_steps = np.full(num_puzzles, 0, dtype=np.int64)
        boards: List[SudokuBoard] = [p.copy() for p in puzzles]
        active = np.ones(num_puzzles, dtype=bool)

        step = 0
        for step in range(1, max_steps + 1):
            fired = batch.step(step)
            slot = step % window
            window_counts -= history[slot]
            history[slot] = fired
            window_counts += fired
            # Freeze the statistics of already-solved replicas so each
            # result matches the sequential solve that stopped there.
            active_fired = fired & active[:, None]
            if active_fired.any():
                last_spike_step[active_fired] = step
                total_spikes += active_fired.sum(axis=1)
            if step % check_interval == 0:
                for b in np.flatnonzero(active):
                    decoded = self.decode(window_counts[b], last_spike_step[b], puzzles[b])
                    if decoded.is_solved() and decoded.respects_clues(puzzles[b]):
                        solved[b] = True
                        final_steps[b] = step
                        boards[b] = decoded
                        active[b] = False
                if not active.any():
                    break
        for b in np.flatnonzero(active):
            decoded = self.decode(window_counts[b], last_spike_step[b], puzzles[b])
            solved[b] = decoded.is_solved() and decoded.respects_clues(puzzles[b])
            final_steps[b] = step
            boards[b] = decoded

        results: List[SolveResult] = []
        for b in range(num_puzzles):
            matches = None
            if verify_against_reference:
                reference = BacktrackingSolver().solve(puzzles[b])
                matches = reference is not None and bool(
                    np.all(reference.cells == boards[b].cells)
                )
            results.append(
                SolveResult(
                    solved=bool(solved[b]),
                    steps=int(final_steps[b]),
                    board=boards[b],
                    total_spikes=int(total_spikes[b]),
                    neuron_updates=int(final_steps[b]) * NUM_NEURONS * substeps,
                    matches_reference=matches,
                )
            )
        return results

    def solve_many(
        self, puzzles: List[SudokuBoard], *, max_steps: int = 3000
    ) -> List[SolveResult]:
        """Solve a list of puzzles (the Top-100-style sweep).

        Thin wrapper over :meth:`solve_batch`, which advances all puzzles
        together on the batched runtime while producing results
        bit-identical to sequential :meth:`solve` calls.
        """
        return self.solve_batch(puzzles, max_steps=max_steps)
