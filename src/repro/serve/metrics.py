"""Serving metrics: request accounting, latency percentiles, occupancy.

The :class:`MetricsRecorder` is the single source of truth for the
:class:`~repro.serve.service.SolveService` request ledger.  Every
request moves through exactly one terminal state, so the counters obey
a conservation law the test suite pins down:

``served + cancelled + shed + in_flight == submitted``

where ``served`` covers every request that left the service with a
result (solved, unsolved or deadline timeout), ``cancelled`` counts
client-side cancellations, ``shed`` counts typed admission rejections
and ``in_flight`` is whatever is still queued or running.

Latencies are recorded twice per request: in *clock units* (whatever
clock the service was built with — wall time by default, a
deterministic step-derived clock in tests and benchmarks) and in
*scheduler steps* (global batch steps between submission and
completion).  The step-based percentiles are exactly reproducible for a
seeded workload, so CI can gate p99 latency without wall-clock
flakiness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Sequence

__all__ = ["MetricsRecorder", "MetricsSnapshot", "nearest_rank_percentile"]


def nearest_rank_percentile(values: Sequence[float], fraction: float) -> float:
    """The nearest-rank percentile of ``values`` (0 for an empty sample).

    ``fraction`` is in ``[0, 1]``; the nearest-rank definition returns
    the smallest sample value with at least ``fraction`` of the sample
    at or below it — always an actual sample point, never an
    interpolation, so percentiles of integer step counts stay integers.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("percentile fraction must be within [0, 1]")
    if not values:
        return 0.0
    ordered = sorted(values)
    # ceil(len * fraction), with a round() guard so exact multiples do
    # not drift up a rank through float error (0.5 of 4 must rank 2).
    rank = max(1, math.ceil(round(len(ordered) * fraction, 9)))
    return float(ordered[min(rank, len(ordered)) - 1])


@dataclass(frozen=True)
class MetricsSnapshot:
    """A point-in-time view of the service ledger (plain numbers only)."""

    #: Requests presented to ``submit`` (before any admission decision).
    submitted: int
    #: Requests accepted into the service (``submitted - shed``).
    admitted: int
    #: Requests rejected with :class:`~repro.serve.service.LoadShedError`.
    shed: int
    #: Requests that left the service with a result (any status below).
    served: int
    solved: int
    unsolved: int
    timeouts: int
    #: Requests abandoned by their client before completion.
    cancelled: int
    #: Served straight from the result cache / in-memory memo.
    cache_hits: int
    #: Joined an identical in-flight request instead of a fresh slot.
    coalesced: int
    #: Requests currently queued (not yet in the batch).
    queue_depth: int
    #: Batch rows currently live.
    running: int
    #: Requests inside the service: ``admitted - served - cancelled``.
    in_flight: int
    #: Global scheduler steps advanced so far.
    total_steps: int
    #: Mean live rows per step over the run, as a fraction of capacity.
    occupancy: float
    #: Completed solves per clock second (cache hits excluded).
    solves_per_second: float
    #: Latency percentiles in clock units (submission to completion).
    latency_p50: float
    latency_p99: float
    #: Latency percentiles in scheduler steps (deterministic).
    latency_steps_p50: float
    latency_steps_p99: float
    #: Clock time elapsed since the service started.
    elapsed: float
    #: Engine checkpoints written (crash-safe snapshots of the batch).
    checkpoints: int = 0
    #: Successful state restores performed at startup (0 or 1).
    restores: int = 0
    #: Live batch rows resurrected from the restored checkpoint.
    restored_rows: int = 0
    #: Admissions re-enqueued from the write-ahead journal at startup.
    replayed: int = 0
    #: Snapshots that failed validation and were skipped during restore.
    checkpoint_failures: int = 0

    def as_dict(self) -> Mapping[str, float]:
        """The snapshot as a JSON-ready mapping (benchmark emission)."""
        return dict(self.__dict__)


class MetricsRecorder:
    """Mutable counters behind the service's :class:`MetricsSnapshot`."""

    def __init__(self) -> None:
        self.submitted = 0
        self.shed = 0
        self.solved = 0
        self.unsolved = 0
        self.timeouts = 0
        self.cancelled = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.total_steps = 0
        self.occupancy_rows = 0
        self.latencies: List[float] = []
        self.step_latencies: List[int] = []
        self.started_at: float = 0.0
        self.checkpoints = 0
        self.restores = 0
        self.restored_rows = 0
        self.replayed = 0
        self.checkpoint_failures = 0

    # ------------------------------------------------------------------ #
    # Event hooks (called by the service)
    # ------------------------------------------------------------------ #
    def record_submitted(self) -> None:
        self.submitted += 1

    def record_shed(self) -> None:
        self.shed += 1

    def record_cancelled(self) -> None:
        self.cancelled += 1

    def record_step(self, live_rows: int) -> None:
        self.total_steps += 1
        self.occupancy_rows += live_rows

    def record_served(self, status: str, latency: float, step_latency: int) -> None:
        """Book one terminally served request (any non-cancel status)."""
        if status == "solved":
            self.solved += 1
        elif status == "unsolved":
            self.unsolved += 1
        elif status == "timeout":
            self.timeouts += 1
        else:  # pragma: no cover - defensive; cancels use record_cancelled
            raise ValueError(f"unknown serve status {status!r}")
        self.latencies.append(float(latency))
        self.step_latencies.append(int(step_latency))

    def record_cache_hit(self) -> None:
        self.cache_hits += 1

    def record_checkpoint(self) -> None:
        self.checkpoints += 1

    def record_restore(self, *, rows: int, replayed: int, failures: int) -> None:
        """Book one successful startup recovery."""
        self.restores += 1
        self.restored_rows += int(rows)
        self.replayed += int(replayed)
        self.checkpoint_failures += int(failures)

    def record_coalesced(self) -> None:
        self.coalesced += 1

    # ------------------------------------------------------------------ #
    @property
    def served(self) -> int:
        return self.solved + self.unsolved + self.timeouts

    def snapshot(
        self, *, queue_depth: int, running: int, capacity: int, now: float
    ) -> MetricsSnapshot:
        admitted = self.submitted - self.shed
        elapsed = max(0.0, now - self.started_at)
        return MetricsSnapshot(
            submitted=self.submitted,
            admitted=admitted,
            shed=self.shed,
            served=self.served,
            solved=self.solved,
            unsolved=self.unsolved,
            timeouts=self.timeouts,
            cancelled=self.cancelled,
            cache_hits=self.cache_hits,
            coalesced=self.coalesced,
            queue_depth=queue_depth,
            running=running,
            in_flight=admitted - self.served - self.cancelled,
            total_steps=self.total_steps,
            occupancy=(
                self.occupancy_rows / (self.total_steps * capacity)
                if self.total_steps and capacity
                else 0.0
            ),
            solves_per_second=self.solved / elapsed if elapsed > 0 else 0.0,
            latency_p50=nearest_rank_percentile(self.latencies, 0.50),
            latency_p99=nearest_rank_percentile(self.latencies, 0.99),
            latency_steps_p50=nearest_rank_percentile(self.step_latencies, 0.50),
            latency_steps_p99=nearest_rank_percentile(self.step_latencies, 0.99),
            elapsed=elapsed,
            checkpoints=self.checkpoints,
            restores=self.restores,
            restored_rows=self.restored_rows,
            replayed=self.replayed,
            checkpoint_failures=self.checkpoint_failures,
        )
