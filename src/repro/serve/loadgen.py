"""Synthetic open-loop load for the continuous-batching solve service.

An *open-loop* generator decides arrival times in advance (a Poisson
process per client over the scheduler's step clock) and submits each
request at its scheduled step whether or not earlier requests have
completed — the load model under which continuous batching earns its
keep, since a closed loop would never queue deeper than its client
count.  Arrival schedules are derived from the spec seed alone, and the
service's :meth:`~repro.serve.service.SolveService.wait_for_step` clock
makes them reproducible: the same spec against the same service
parameters yields the same admissions, the same shed set and the same
per-request results.

Client-side resilience: with a ``retry_budget``, a request shed with
:class:`~repro.serve.service.LoadShedError` backs off exponentially with
deterministic seeded jitter (in scheduler steps, so retried runs stay
reproducible) and resubmits, up to the budget or the per-request retry
deadline.  Retry counts are surfaced through the ``stats`` mapping and
the load-sweep report.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..csp.graph import ConstraintGraph
from ..csp.scenarios import make_instance
from ..runtime.sweep import derive_task_seed
from .service import LoadShedError, ServeResult, SolveService

__all__ = ["OpenLoopLoad", "build_instance_pool", "run_open_loop", "run_open_loop_sync"]

#: Mixed into the spec seed for the retry-jitter streams, so backoff
#: jitter never correlates with arrival schedules or instance picks.
_RETRY_SEED_SALT = 0x52455452  # "RETR"


@dataclass(frozen=True)
class OpenLoopLoad:
    """A seeded open-loop workload against one :class:`SolveService`.

    ``unique_instances`` bounds the instance pool: with fewer unique
    instances than total requests, repeats exercise the dedup layer
    (in-flight coalescing plus the result memo/cache).  Inter-arrival
    gaps are exponential with mean ``mean_interarrival_steps`` in
    scheduler steps, quantised to whole steps.

    ``retry_budget`` resubmissions are attempted after a load shed,
    spaced ``min(retry_cap_steps, retry_base_steps * 2**attempt)``
    scheduler steps apart with seeded jitter in ``[0.5, 1.5)``; a retry
    is abandoned once ``retry_deadline_steps`` steps have passed since
    the request's scheduled arrival (mirroring the service-side request
    ``deadline``, which is enforced in clock units).
    """

    num_clients: int = 4
    requests_per_client: int = 8
    mean_interarrival_steps: float = 40.0
    scenario: str = "coloring"
    scenario_params: Mapping[str, Any] = field(default_factory=dict)
    unique_instances: int = 16
    seed: int = 0
    max_steps: int = 1500
    deadline: Optional[float] = None
    #: Resubmissions allowed per request after a load shed (0 = off).
    retry_budget: int = 0
    retry_base_steps: float = 8.0
    retry_cap_steps: float = 128.0
    #: Give up retrying once this many steps have passed since arrival.
    retry_deadline_steps: Optional[float] = None

    @property
    def total_requests(self) -> int:
        return self.num_clients * self.requests_per_client


def build_instance_pool(spec: OpenLoopLoad) -> List[Tuple[ConstraintGraph, Dict[str, int]]]:
    """The spec's deterministic pool of distinct instances."""
    return [
        # reprolint: disable-next-line=RL002 -- instance-identity seeds; pool is the replay key
        make_instance(spec.scenario, seed=spec.seed + i, **dict(spec.scenario_params))
        for i in range(max(1, spec.unique_instances))
    ]


def arrival_schedule(spec: OpenLoopLoad, client: int) -> List[Tuple[int, int]]:
    """One client's ``(arrival_step, pool_index)`` schedule, seed-derived."""
    rng = np.random.default_rng(derive_task_seed(spec.seed, client))
    gaps = rng.exponential(spec.mean_interarrival_steps, size=spec.requests_per_client)
    arrivals = np.maximum(1, np.ceil(np.cumsum(gaps))).astype(np.int64)
    pool = max(1, spec.unique_instances)
    picks = rng.integers(0, pool, size=spec.requests_per_client)
    return [(int(step), int(pick)) for step, pick in zip(arrivals, picks)]


def new_load_stats() -> Dict[str, int]:
    """A zeroed client-side resilience ledger (see :func:`run_open_loop`)."""
    return {"retries": 0, "shed": 0, "recovered_by_retry": 0}


async def run_open_loop(
    service: SolveService,
    spec: OpenLoopLoad,
    *,
    stats: Optional[Dict[str, int]] = None,
) -> List[Tuple[int, int, Optional[ServeResult]]]:
    """Drive ``spec`` against a running service.

    Returns one ``(client, pool_index, result)`` row per request in a
    deterministic order (by client, then by that client's schedule);
    requests shed past the retry budget carry ``None``.  ``stats``
    (optionally a caller-provided dict, updated in place) collects the
    client-side ledger: ``retries`` (resubmissions sent), ``shed``
    (requests that ultimately gave up) and ``recovered_by_retry``
    (requests that succeeded on a resubmission).
    """
    pool = build_instance_pool(spec)
    ledger = stats if stats is not None else new_load_stats()
    for key in new_load_stats():
        ledger.setdefault(key, 0)

    async def one_request(ordinal: int, client: int, arrival: int, pick: int
                          ) -> Optional[ServeResult]:
        await service.wait_for_step(arrival)
        graph, clamps = pool[pick]
        jitter = np.random.default_rng(
            derive_task_seed(spec.seed ^ _RETRY_SEED_SALT, ordinal)
        )
        attempt = 0
        while True:
            try:
                result = await service.submit(
                    graph,
                    clamps,
                    client=f"client-{client}",
                    max_steps=spec.max_steps,
                    deadline=spec.deadline,
                )
                if attempt:
                    ledger["recovered_by_retry"] += 1
                return result
            except LoadShedError:
                if attempt >= spec.retry_budget:
                    ledger["shed"] += 1
                    return None
                backoff = min(
                    spec.retry_cap_steps, spec.retry_base_steps * (2.0**attempt)
                )
                delay = max(1, int(round(backoff * (0.5 + jitter.random()))))
                target = service.step + delay
                if (
                    spec.retry_deadline_steps is not None
                    and target - arrival > spec.retry_deadline_steps
                ):
                    ledger["shed"] += 1
                    return None
                attempt += 1
                ledger["retries"] += 1
                await service.wait_for_step(target)

    tasks: List[Tuple[int, int, "asyncio.Task[Optional[ServeResult]]"]] = []
    ordinal = 0
    for client in range(spec.num_clients):
        for arrival, pick in arrival_schedule(spec, client):
            tasks.append(
                (client, pick, asyncio.ensure_future(one_request(ordinal, client, arrival, pick)))
            )
            ordinal += 1
    results = await asyncio.gather(*(task for _, _, task in tasks))
    return [(client, pick, result) for (client, pick, _), result in zip(tasks, results)]


def run_open_loop_sync(
    spec: OpenLoopLoad, **service_kwargs: Any
) -> Tuple[List[Tuple[int, int, Optional[ServeResult]]], "Any", Dict[str, int]]:
    """Run ``spec`` on a fresh service; returns (rows, metrics, stats)."""

    async def _run():
        stats = new_load_stats()
        service = SolveService(**service_kwargs)
        async with service:
            rows = await run_open_loop(service, spec, stats=stats)
            await service.stop(drain=True)
            return rows, service.metrics(), stats

    return asyncio.run(_run())
