"""Synthetic open-loop load for the continuous-batching solve service.

An *open-loop* generator decides arrival times in advance (a Poisson
process per client over the scheduler's step clock) and submits each
request at its scheduled step whether or not earlier requests have
completed — the load model under which continuous batching earns its
keep, since a closed loop would never queue deeper than its client
count.  Arrival schedules are derived from the spec seed alone, and the
service's :meth:`~repro.serve.service.SolveService.wait_for_step` clock
makes them reproducible: the same spec against the same service
parameters yields the same admissions, the same shed set and the same
per-request results.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..csp.graph import ConstraintGraph
from ..csp.scenarios import make_instance
from ..runtime.sweep import derive_task_seed
from .service import LoadShedError, ServeResult, SolveService

__all__ = ["OpenLoopLoad", "build_instance_pool", "run_open_loop", "run_open_loop_sync"]


@dataclass(frozen=True)
class OpenLoopLoad:
    """A seeded open-loop workload against one :class:`SolveService`.

    ``unique_instances`` bounds the instance pool: with fewer unique
    instances than total requests, repeats exercise the dedup layer
    (in-flight coalescing plus the result memo/cache).  Inter-arrival
    gaps are exponential with mean ``mean_interarrival_steps`` in
    scheduler steps, quantised to whole steps.
    """

    num_clients: int = 4
    requests_per_client: int = 8
    mean_interarrival_steps: float = 40.0
    scenario: str = "coloring"
    scenario_params: Mapping[str, Any] = field(default_factory=dict)
    unique_instances: int = 16
    seed: int = 0
    max_steps: int = 1500
    deadline: Optional[float] = None

    @property
    def total_requests(self) -> int:
        return self.num_clients * self.requests_per_client


def build_instance_pool(spec: OpenLoopLoad) -> List[Tuple[ConstraintGraph, Dict[str, int]]]:
    """The spec's deterministic pool of distinct instances."""
    return [
        make_instance(spec.scenario, seed=spec.seed + i, **dict(spec.scenario_params))
        for i in range(max(1, spec.unique_instances))
    ]


def arrival_schedule(spec: OpenLoopLoad, client: int) -> List[Tuple[int, int]]:
    """One client's ``(arrival_step, pool_index)`` schedule, seed-derived."""
    rng = np.random.default_rng(derive_task_seed(spec.seed, client))
    gaps = rng.exponential(spec.mean_interarrival_steps, size=spec.requests_per_client)
    arrivals = np.maximum(1, np.ceil(np.cumsum(gaps))).astype(np.int64)
    pool = max(1, spec.unique_instances)
    picks = rng.integers(0, pool, size=spec.requests_per_client)
    return [(int(step), int(pick)) for step, pick in zip(arrivals, picks)]


async def run_open_loop(
    service: SolveService, spec: OpenLoopLoad
) -> List[Tuple[int, int, Optional[ServeResult]]]:
    """Drive ``spec`` against a running service.

    Returns one ``(client, pool_index, result)`` row per request in a
    deterministic order (by client, then by that client's schedule);
    shed requests carry ``None``.
    """
    pool = build_instance_pool(spec)

    async def one_request(client: int, arrival: int, pick: int) -> Optional[ServeResult]:
        await service.wait_for_step(arrival)
        graph, clamps = pool[pick]
        try:
            return await service.submit(
                graph,
                clamps,
                client=f"client-{client}",
                max_steps=spec.max_steps,
                deadline=spec.deadline,
            )
        except LoadShedError:
            return None

    tasks: List[Tuple[int, int, "asyncio.Task[Optional[ServeResult]]"]] = []
    for client in range(spec.num_clients):
        for arrival, pick in arrival_schedule(spec, client):
            tasks.append((client, pick, asyncio.ensure_future(one_request(client, arrival, pick))))
    results = await asyncio.gather(*(task for _, _, task in tasks))
    return [(client, pick, result) for (client, pick, _), result in zip(tasks, results)]


def run_open_loop_sync(
    spec: OpenLoopLoad, **service_kwargs: Any
) -> Tuple[List[Tuple[int, int, Optional[ServeResult]]], "Any"]:
    """Run ``spec`` on a fresh service; returns (rows, final metrics)."""

    async def _run():
        service = SolveService(**service_kwargs)
        async with service:
            rows = await run_open_loop(service, spec)
            await service.stop(drain=True)
            return rows, service.metrics()

    return asyncio.run(_run())
