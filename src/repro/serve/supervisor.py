"""Supervised serving: respawn a crashed solve service, lose no request.

:class:`ServeSupervisor` runs a :class:`~repro.serve.service.SolveService`
in a child process and brokers requests to it over a pipe.  When the
child dies — ``kill -9``, an injected :class:`~repro.runtime.checkpoint.FaultPlan`
crash, anything — the supervisor notices the broken pipe, respawns the
service with exponential backoff and resubmits every request still
pending.  The respawned service recovers its state (checkpoint restore
plus write-ahead journal replay, see :meth:`SolveService._recover`), and
because request seeds are content-derived, the results delivered for the
resubmitted requests are **bit-identical** to what an uninterrupted
service would have produced — the property the differential chaos suite
(``tests/serve/test_recovery.py``) pins down.

The fault plan is handed to the *first* child incarnation only: a
restored service resumes at a step below the plan's crash step, so
re-arming it would crash-loop the supervisor instead of testing one
recovery.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from typing import Any, Dict, List, Optional

from .service import ServeResult, SolveService

__all__ = ["ServeSupervisor", "SupervisorError"]


class SupervisorError(RuntimeError):
    """The supervised service could not be (re)started or has given up."""


def _service_main(conn: Any, service_kwargs: Dict[str, Any]) -> None:
    """Child-process entry point: one service, one command pipe."""
    import asyncio

    async def main() -> None:
        service = SolveService(**service_kwargs)
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()

        async def handle(rid: int, request: Dict[str, Any]) -> None:
            try:
                result = await service.submit(
                    request["graph"],
                    request["clamps"],
                    client=request.get("client", "default"),
                    seed=request.get("seed"),
                    max_steps=request.get("max_steps"),
                    deadline=request.get("deadline"),
                )
                conn.send(("result", rid, result))
            except BaseException as exc:  # typed rejections travel as strings
                try:
                    conn.send(("error", rid, f"{type(exc).__name__}: {exc}"))
                except OSError:
                    pass

        async def reader() -> None:
            while True:
                try:
                    message = await loop.run_in_executor(None, conn.recv)
                except (EOFError, OSError):
                    break  # the supervisor went away
                if message is None or message[0] == "stop":
                    break
                if message[0] == "submit":
                    _, rid, request = message
                    asyncio.ensure_future(handle(rid, request))
                elif message[0] == "metrics":
                    conn.send(("metrics", message[1], service.metrics()))
            stopping.set()

        async with service:
            reader_task = asyncio.ensure_future(reader())
            await stopping.wait()
        await asyncio.gather(reader_task, return_exceptions=True)
        try:
            conn.send(("stopped",))
        except OSError:
            pass

    asyncio.run(main())


class ServeSupervisor:
    """Keep one recoverable solve service alive across crashes.

    Parameters
    ----------
    service_kwargs:
        Constructor arguments for the child's :class:`SolveService`.
        Must be picklable (the child is spawned); pass ``checkpoint_dir``
        and ``journal_path`` here to make the service recoverable —
        without them a respawn starts cold and resubmitted requests are
        simply re-solved (still bit-identical, just slower).
    fault:
        Optional :class:`~repro.runtime.checkpoint.FaultPlan`, armed in
        the **first** child incarnation only.
    max_restarts:
        Respawns tolerated before pending requests fail with
        :class:`SupervisorError`.
    backoff_base / backoff_cap:
        Respawn delay: ``min(cap, base * 2**restarts)`` seconds.
    """

    def __init__(
        self,
        *,
        service_kwargs: Optional[Dict[str, Any]] = None,
        fault: Optional[Any] = None,
        max_restarts: int = 5,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        self._service_kwargs = dict(service_kwargs or {})
        self._fault = fault
        self._max_restarts = int(max_restarts)
        self._backoff_base = float(backoff_base)
        self._backoff_cap = float(backoff_cap)
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.RLock()
        self._process = None
        self._conn = None
        self._listener: Optional[threading.Thread] = None
        self._pending: Dict[int, Dict[str, Any]] = {}
        self._results: Dict[int, Any] = {}
        self._events: Dict[int, threading.Event] = {}
        self._rid = 0
        self._stopped = threading.Event()
        self.restarts = 0
        self.backoffs: List[float] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        with self._lock:
            if self._process is not None:
                return
            self._spawn(first=True)

    def _spawn(self, *, first: bool) -> None:
        kwargs = dict(self._service_kwargs)
        if first and self._fault is not None:
            kwargs["fault"] = self._fault
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_service_main, args=(child_conn, kwargs), daemon=True
        )
        process.start()
        child_conn.close()
        self._process = process
        self._conn = parent_conn
        self._listener = threading.Thread(target=self._listen, args=(parent_conn,), daemon=True)
        self._listener.start()

    def _listen(self, conn: Any) -> None:
        """Drain child messages; a broken pipe means the child died."""
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind in ("result", "error", "metrics"):
                _, rid, payload = message
                with self._lock:
                    self._results[rid] = (kind, payload)
                    event = self._events.get(rid)
                    self._pending.pop(rid, None)
                if event is not None:
                    event.set()
            elif kind == "stopped":
                break
        if not self._stopped.is_set():
            self._on_child_death(conn)

    def _on_child_death(self, conn: Any) -> None:
        """Respawn with exponential backoff and resubmit pending work."""
        with self._lock:
            if self._conn is not conn:  # a newer incarnation took over
                return
            process = self._process
            self._process = None
            self._conn = None
        if process is not None:
            process.join(timeout=5.0)
        while True:
            with self._lock:
                if self._stopped.is_set():
                    return
                if self.restarts >= self._max_restarts:
                    self._fail_pending(
                        SupervisorError(
                            f"service died {self.restarts + 1} times; giving up"
                        )
                    )
                    return
                delay = min(self._backoff_cap, self._backoff_base * (2**self.restarts))
                self.restarts += 1
                self.backoffs.append(delay)
            time.sleep(delay)
            try:
                with self._lock:
                    if self._stopped.is_set():
                        return
                    self._spawn(first=False)
                    pending = list(self._pending.items())
                    conn = self._conn
                for rid, request in pending:
                    conn.send(("submit", rid, request))
                return
            except (OSError, ValueError):
                continue  # the fresh child died immediately; back off again

    def _fail_pending(self, error: Exception) -> None:
        for rid in list(self._pending):
            self._pending.pop(rid, None)
            self._results[rid] = ("error", f"{type(error).__name__}: {error}")
            event = self._events.get(rid)
            if event is not None:
                event.set()

    def kill(self) -> int:
        """``kill -9`` the child (the chaos suites' crash lever)."""
        with self._lock:
            process = self._process
        if process is None or process.pid is None:
            raise SupervisorError("no live child process to kill")
        pid = process.pid
        os.kill(pid, signal.SIGKILL)
        return pid

    @property
    def child_pid(self) -> Optional[int]:
        with self._lock:
            return None if self._process is None else self._process.pid

    def stop(self) -> None:
        """Graceful shutdown: drain the child, then reap it."""
        self._stopped.set()
        with self._lock:
            conn = self._conn
            process = self._process
            listener = self._listener
            self._conn = None
            self._process = None
        if conn is not None:
            try:
                conn.send(("stop",))
            except OSError:
                pass
        if process is not None:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        if conn is not None:
            conn.close()
        if listener is not None and listener is not threading.current_thread():
            listener.join(timeout=5.0)

    def __enter__(self) -> "ServeSupervisor":
        self.start()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Requests
    # ------------------------------------------------------------------ #
    def submit(
        self,
        graph: Any,
        clamps: Any = (),
        *,
        client: str = "default",
        seed: Optional[int] = None,
        max_steps: Optional[int] = None,
        deadline: Optional[float] = None,
        timeout: float = 120.0,
    ) -> ServeResult:
        """Solve one instance through the supervised service (blocking).

        Survives child crashes transparently: if the service dies before
        answering, the request is resubmitted to the respawned (and
        state-recovered) incarnation.  Raises :class:`SupervisorError`
        when the restart budget is exhausted or ``timeout`` (wall
        seconds) passes, and re-raises the service's typed rejections
        (e.g. ``LoadShedError``) as :class:`SupervisorError` with the
        original message.
        """
        request = {
            "graph": graph,
            "clamps": clamps,
            "client": client,
            "seed": seed,
            "max_steps": max_steps,
            "deadline": deadline,
        }
        event = threading.Event()
        with self._lock:
            if self._stopped.is_set():
                raise SupervisorError("supervisor is stopped")
            if self._process is None:
                self.start()
            self._rid += 1
            rid = self._rid
            self._pending[rid] = request
            self._events[rid] = event
            conn = self._conn
        try:
            if conn is not None:
                try:
                    conn.send(("submit", rid, request))
                except OSError:
                    pass  # child just died; the respawn resubmits
            if not event.wait(timeout):
                raise SupervisorError(f"request {rid} timed out after {timeout}s")
            with self._lock:
                kind, payload = self._results.pop(rid)
            if kind == "error":
                raise SupervisorError(str(payload))
            return payload
        finally:
            with self._lock:
                self._pending.pop(rid, None)
                self._events.pop(rid, None)
                self._results.pop(rid, None)

    def metrics(self):
        """The child's current :class:`MetricsSnapshot` (blocking)."""
        event = threading.Event()
        with self._lock:
            if self._conn is None:
                raise SupervisorError("no live child process")
            self._rid += 1
            rid = self._rid
            self._events[rid] = event
            self._conn.send(("metrics", rid))
        try:
            if not event.wait(30.0):
                raise SupervisorError("metrics request timed out")
            with self._lock:
                kind, payload = self._results.pop(rid)
            if kind == "error":
                raise SupervisorError(str(payload))
            return payload
        finally:
            with self._lock:
                self._events.pop(rid, None)
                self._results.pop(rid, None)
