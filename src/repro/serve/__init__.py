"""Continuous-batching solve service over the batched exact runtime.

``repro.serve`` turns the offline batched CSP engines into an online
service: :class:`SolveService` keeps one always-hot fused batch and
streams requests from many concurrent asyncio clients through it,
refilling freed rows mid-run exactly the way the restart portfolio
does — so every served result is bit-identical to the standalone
solver run with the same seed and budget.  See ``docs/SERVING.md``.
"""

from .journal import AdmissionJournal, JournalCorruptError, JournalError
from .loadgen import OpenLoopLoad, build_instance_pool, run_open_loop, run_open_loop_sync
from .metrics import MetricsRecorder, MetricsSnapshot, nearest_rank_percentile
from .service import (
    IncompatibleInstanceError,
    LoadShedError,
    ServeResult,
    ServeStatus,
    ServiceClosedError,
    SolveService,
    derive_request_seed,
)
from .supervisor import ServeSupervisor, SupervisorError

__all__ = [
    "AdmissionJournal",
    "IncompatibleInstanceError",
    "JournalCorruptError",
    "JournalError",
    "LoadShedError",
    "MetricsRecorder",
    "MetricsSnapshot",
    "OpenLoopLoad",
    "ServeResult",
    "ServeStatus",
    "ServeSupervisor",
    "ServiceClosedError",
    "SolveService",
    "SupervisorError",
    "build_instance_pool",
    "derive_request_seed",
    "nearest_rank_percentile",
    "run_open_loop",
    "run_open_loop_sync",
]
