"""Write-ahead admission journal for the recoverable solve service.

Before a new request enters the admission queue, :class:`SolveService`
appends one ``admit`` record — the request's content key plus everything
needed to rebuild its ticket (graph, resolved clamps, derived seed, step
budget, client) — and fsyncs.  When the ticket completes, a ``done``
record retires the key.  After a crash, replaying the journal recovers
every admitted-but-unfinished request: combined with the periodic engine
checkpoints (:mod:`repro.runtime.checkpoint`) this is what lets a
supervisor-respawned service finish the work a killed process was
holding, bit-identically (the request seed is content-derived, so a
re-solve of a replayed admission is the same solve).

Record format: ``u32`` payload length, 32-byte SHA-256 of the payload,
pickled payload dict, preceded once by an 8-byte file magic.  A crash
can tear the *tail* record (the write was mid-flight); replay tolerates
exactly that — the torn tail is counted, reported and truncated away on
``repair=True`` — while corruption anywhere else raises the typed
:class:`JournalCorruptError` (a damaged journal must fail loudly, not
serve half a history).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:
    from ..runtime.checkpoint import FaultPlan

__all__ = ["AdmissionJournal", "JournalCorruptError", "JournalError"]

JOURNAL_MAGIC = b"RPROJNL1"

_LEN = struct.Struct("<I")
_SHA_BYTES = 32


class JournalError(RuntimeError):
    """Base of the journal's typed failures."""


class JournalCorruptError(JournalError):
    """The journal body (not its torn tail) fails validation."""


class AdmissionJournal:
    """Append-only, checksummed, fsynced admission log.

    ``fault`` takes a :class:`~repro.runtime.checkpoint.FaultPlan`;
    when its ``truncate_journal_at`` ordinal is reached the freshly
    appended record is chopped mid-payload, simulating a crash during
    the append for the chaos suites.
    """

    def __init__(self, path: Union[str, Path], *, fault: Optional["FaultPlan"] = None) -> None:
        self.path = Path(path)
        self._fault = fault
        self._handle = None
        self.appends = 0

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def _open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = open(self.path, "ab")
            if fresh:
                self._handle.write(JOURNAL_MAGIC)
                self._handle.flush()
                os.fsync(self._handle.fileno())
        return self._handle

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (flush + fsync before returning)."""
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        data = _LEN.pack(len(blob)) + hashlib.sha256(blob).digest() + blob
        handle = self._open()
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
        self.appends += 1
        if self._fault is not None and self._fault.next_journal_truncation():
            # Chop the tail of the record just written: the torn-append
            # crash artifact, deterministically injected.
            handle.flush()
            size = self.path.stat().st_size
            handle.truncate(size - max(1, len(blob) // 2))
            handle.flush()
            os.fsync(handle.fileno())

    def admit(
        self,
        *,
        key: str,
        client: str,
        graph: Any,
        clamps: Any,
        seed: int,
        max_steps: int,
    ) -> None:
        self.append(
            {
                "kind": "admit",
                "key": key,
                "client": client,
                "graph": graph,
                "clamps": clamps,
                "seed": int(seed),
                "max_steps": int(max_steps),
            }
        )

    def done(self, key: str) -> None:
        self.append({"kind": "done", "key": key})

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def replay(self, *, repair: bool = False) -> Tuple[List[Dict[str, Any]], bool]:
        """Read back every intact record.

        Returns ``(records, tail_torn)``.  A truncated or checksum-failed
        *final* record is the expected artifact of a crash mid-append:
        it is dropped, reported through ``tail_torn`` and — with
        ``repair=True`` — truncated off the file so subsequent appends
        land on a clean tail.  A bad file magic or a corrupt record
        *followed by more data* is not a crash artifact and raises
        :class:`JournalCorruptError`.
        """
        if not self.path.exists():
            return [], False
        data = self.path.read_bytes()
        if not data:
            return [], False
        if not data.startswith(JOURNAL_MAGIC):
            raise JournalCorruptError(f"{self.path} is not an admission journal (bad magic)")
        records: List[Dict[str, Any]] = []
        offset = len(JOURNAL_MAGIC)
        good_end = offset
        torn = False
        while offset < len(data):
            reason: Optional[str] = None
            head_end = offset + _LEN.size + _SHA_BYTES
            if head_end > len(data):
                reason = "truncated record header"
            else:
                (length,) = _LEN.unpack(data[offset : offset + _LEN.size])
                digest = data[offset + _LEN.size : head_end]
                end = head_end + length
                if end > len(data):
                    reason = "truncated record payload"
                elif hashlib.sha256(data[head_end:end]).digest() != digest:
                    reason = "record checksum mismatch"
            if reason is not None:
                torn = True
                break  # candidate torn tail; everything before it is good
            records.append(pickle.loads(data[head_end:end]))
            offset = end
            good_end = offset
        if torn and good_end < len(data):
            mid_file = False
            # Distinguish "torn tail" from "corruption mid-file": if the
            # bytes past the last good record parse as a valid record at
            # *some* later point we cannot trust the file at all.
            probe = good_end
            head_end = probe + _LEN.size + _SHA_BYTES
            if head_end <= len(data):
                (length,) = _LEN.unpack(data[probe : probe + _LEN.size])
                end = head_end + length
                if end < len(data):
                    mid_file = True
            if mid_file:
                raise JournalCorruptError(
                    f"{self.path}: corrupt record at offset {good_end} with data beyond it"
                )
            if repair:
                self.close()
                with open(self.path, "r+b") as handle:
                    handle.truncate(good_end)
                    handle.flush()
                    os.fsync(handle.fileno())
        return records, torn
