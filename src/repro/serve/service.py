"""Continuous-batching solve service over the exact-mode batched runtime.

:class:`SolveService` accepts CSP instances from many concurrent asyncio
clients and keeps them solving inside **one always-hot fused batch**:
admitted requests are stacked into a live
:class:`~repro.runtime.batch.BatchedNetwork` (integer CSR propagation,
compiled batched drives), and whenever a row finishes — solved, out of
its per-request step budget, past its deadline or abandoned by its
client — the freed slot is refilled from the admission queue through
``BatchedNetwork.retain`` / ``extend``, exactly the mechanics of
:func:`repro.csp.portfolio.solve_instances_portfolio`.

**Bit-exactness contract.**  Every served solve is bit-identical to the
standalone run ``SpikingCSPSolver(graph, config, seed=request_seed)
.solve(clamps, max_steps=budget, check_interval=check_interval)`` — and
therefore to the same request's row in an offline
:func:`repro.csp.solver.solve_instances` call with the same derived
seeds.  The service guarantees this the same way the portfolio engine
does: each row keeps a *local* step counter (``global step - admission
offset``) that drives its anneal phase (``step_offset`` stamped into
the row's :class:`~repro.runtime.drives.AnnealedNoiseSpec`), its
sliding-window decode slots and its recency bookkeeping, so neither the
arrival order, the interleaving with other clients, nor mid-run
retain/extend of neighbouring rows can perturb a request's trajectory.
The differential suite (``tests/serve/test_offline_equivalence.py``)
pins the contract.

**Scheduling.**  Admission is FIFO per client with round-robin
fairness across clients.  A bounded admission queue sheds load with a
typed :class:`LoadShedError` at submit time.  Deadlines (in clock
units) are enforced at admission and at decode checkpoints; expiry
yields a typed ``timeout`` result rather than an exception.  Client
cancellation (``asyncio`` task cancellation while awaiting ``submit``)
frees the request's batch slot at the next scheduler round without
touching surviving rows' streams.

**Dedup.**  Requests are content-addressed: the cache key hashes the
graph structure (:meth:`~repro.csp.graph.ConstraintGraph.cache_token`),
resolved clamps, solver config, backend, budget, check interval and
seed through :func:`repro.runtime.cache.derive_cache_key`.  Identical
in-flight requests coalesce onto one batch row; completed results are
memoised (and, with a :class:`~repro.runtime.cache.RunResultCache`
attached, persisted) so repeats are served without re-solving.  The
default request seed is itself derived from the content key, so a
repeat instance maps to the same seed — and the same answer —
regardless of arrival order.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:
    from pathlib import Path

    from ..runtime.checkpoint import FaultPlan

import numpy as np

from ..csp.config import CSPConfig
from ..csp.graph import ClampsLike, ConstraintGraph
from ..csp.solver import CSP_SLOT_DECODER, CSPSolveResult, SpikingCSPSolver, _empty_result
from ..runtime.cache import RunResultCache, derive_cache_key
from ..runtime.slots import SlotAdmission, SlotCheckpoint, SlotDecision, SlotEngine, SlotRow
from ..runtime.sweep import derive_task_seed
from .metrics import MetricsRecorder, MetricsSnapshot

__all__ = [
    "IncompatibleInstanceError",
    "LoadShedError",
    "ServePolicy",
    "ServeResult",
    "ServeStatus",
    "ServiceClosedError",
    "SolveService",
    "derive_request_seed",
]


class ServeError(Exception):
    """Base of the service's typed rejections."""


class LoadShedError(ServeError):
    """Admission rejected: the queue is at its configured limit."""

    def __init__(self, *, client: str, queue_depth: int, queue_limit: int) -> None:
        super().__init__(
            f"admission queue full ({queue_depth}/{queue_limit}); "
            f"request from client {client!r} shed"
        )
        self.client = client
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit


class IncompatibleInstanceError(ServeError):
    """The instance cannot join the live batch (neuron count mismatch)."""


class ServiceClosedError(ServeError):
    """The service has been stopped and accepts no new submissions."""


class ServeStatus(Enum):
    """Terminal state of one served request."""

    SOLVED = "solved"
    UNSOLVED = "unsolved"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one :meth:`SolveService.submit` call."""

    status: ServeStatus
    client: str
    #: Content-addressed request key (``None`` for uncacheable requests).
    key: Optional[str]
    #: Noise seed the solve ran (or would run) under.
    seed: int
    #: Per-request step budget.
    max_steps: int
    #: The solve outcome; ``None`` for timeouts resolved before a decode
    #: and for service-side cancellations.
    result: Optional[CSPSolveResult]
    #: Served from the memo / result cache without touching the batch.
    from_cache: bool
    #: Joined an identical in-flight request's batch row.
    coalesced: bool
    submitted_step: int
    finished_step: int
    #: Clock-units latency from submission to completion.
    latency: float

    @property
    def solved(self) -> bool:
        return self.status is ServeStatus.SOLVED

    @property
    def steps_in_service(self) -> int:
        """Scheduler steps between submission and completion."""
        return self.finished_step - self.submitted_step


def derive_request_seed(service_seed: int, key: str) -> int:
    """Deterministic noise seed of a request, derived from its content key.

    Mixes the service's root seed with the first 128 bits of the request
    key through :class:`numpy.random.SeedSequence`, so a repeat of the
    same instance maps to the same seed (and, the solver being
    deterministic, the same answer) regardless of arrival order — the
    property the dedup layer and the differential suite rely on.
    """
    sequence = np.random.SeedSequence([int(service_seed), int(key[:32], 16)])
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


@dataclass
class _Waiter:
    """One client awaiting a ticket's outcome."""

    future: "asyncio.Future[ServeResult]"
    client: str
    submitted_step: int
    submitted_at: float
    #: Absolute expiry in clock units (``None`` = no deadline).
    deadline: Optional[float]
    coalesced: bool = False
    cancelled: bool = False


@dataclass
class _Ticket:
    """One admission unit: an instance plus everyone waiting on it."""

    key: Optional[str]
    graph_digest: Optional[str]
    graph: ConstraintGraph
    clamps: list
    seed: int
    max_steps: int
    waiters: List[_Waiter] = field(default_factory=list)
    #: ``queued`` -> ``running`` -> ``done``; ``dead`` = abandoned while queued.
    state: str = "queued"
    #: Resurrected from a checkpoint / journal replay.  Recovered
    #: tickets start with no waiters (their clients died with the old
    #: process) but must run to completion anyway: their results land in
    #: the memo / cache, where the supervisor's resubmissions find them.
    recovered: bool = False


class ServePolicy:
    """Slot policy of the serve scheduler.

    The continuous-batching mechanics live in the shared
    :class:`~repro.runtime.slots.SlotEngine`; this policy is the serve
    layer's checkpoint brain — decode-and-finish, deadline expiry,
    abandoned-ticket cleanup and queue-driven refilling — all of which
    stays on the :class:`SolveService` (admission fairness, dedup and
    metrics are service concerns, not engine concerns).
    """

    def __init__(self, service: "SolveService") -> None:
        self._service = service

    def initial_admissions(self, engine: SlotEngine) -> List[SlotAdmission]:
        return self._service._take_admissions(self._service._capacity)

    def on_checkpoint(self, checkpoint: SlotCheckpoint) -> SlotDecision:
        return self._service._checkpoint_decision(checkpoint)


class SolveService:
    """Continuous-batching CSP solve service (see the module docstring).

    Parameters
    ----------
    capacity:
        Batch rows kept hot (the paper-scale default is 32).
    queue_limit:
        Maximum queued (not yet admitted) requests before submissions
        are shed with :class:`LoadShedError`; ``None`` = unbounded.
    config / backend / check_interval:
        Solver parameters shared by every admitted request (a fused
        batch needs one decode window and check cadence).
    default_max_steps:
        Per-request step budget when ``submit`` does not give one.
    seed:
        Root of the derived per-request seeds (:func:`derive_request_seed`).
    cache:
        Optional :class:`~repro.runtime.cache.RunResultCache` persisting
        results across service instances; corrupt or wrong-typed entries
        are treated as misses.
    memoize:
        Keep an in-memory result memo for repeat requests (LRU-bounded).
    clock:
        ``"monotonic"`` (wall time), ``"steps"`` (deterministic:
        ``global step * step_seconds`` — what the fault-injection and
        metrics tests use), or any zero-argument callable.
    yield_steps:
        Scheduler steps advanced between asyncio yields (defaults to
        ``check_interval``): the granularity at which new submissions,
        cancellations and step-waiters are noticed.
    checkpoint_dir / checkpoint_every:
        With a directory set, the live engine state (plus every running
        ticket's identity) is snapshotted crash-safely every
        ``checkpoint_every`` steps — default ``10 * check_interval`` —
        through :class:`~repro.runtime.checkpoint.CheckpointStore`.
    journal_path:
        Write-ahead admission journal (:class:`~repro.serve.journal.AdmissionJournal`):
        every content-keyed admission is durable before it is queued,
        every completion is retired with a ``done`` record.
    fault:
        A :class:`~repro.runtime.checkpoint.FaultPlan` injecting
        deterministic crashes / torn writes for the chaos suites.
    recover:
        On construction, restore the newest readable checkpoint and
        re-enqueue unfinished journaled admissions (default).  Recovered
        work re-runs under its content-derived seed, so results are
        bit-identical to the uninterrupted run; the supervisor
        (:mod:`repro.serve.supervisor`) collects them by resubmission.
    """

    def __init__(
        self,
        *,
        capacity: int = 32,
        queue_limit: Optional[int] = None,
        config: Optional[CSPConfig] = None,
        backend: str = "fixed",
        check_interval: int = 10,
        default_max_steps: int = 3000,
        seed: int = 0,
        cache: Optional[RunResultCache] = None,
        memoize: bool = True,
        memo_limit: int = 4096,
        clock: Union[str, Callable[[], float]] = "monotonic",
        step_seconds: float = 1e-3,
        yield_steps: Optional[int] = None,
        synapse_cache_size: int = 64,
        checkpoint_dir: Union[str, "Path", None] = None,
        checkpoint_every: Optional[int] = None,
        journal_path: Union[str, "Path", None] = None,
        fault: Optional["FaultPlan"] = None,
        recover: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if queue_limit is not None and queue_limit < 1:
            raise ValueError("queue_limit must be positive (or None for unbounded)")
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        self._capacity = int(capacity)
        self._queue_limit = None if queue_limit is None else int(queue_limit)
        self._config = config if config is not None else CSPConfig()
        self._backend = backend
        self._check_interval = int(check_interval)
        self._default_max_steps = int(default_max_steps)
        self._seed = int(seed)
        self._cache = cache
        self._memoize = memoize
        self._memo_limit = int(memo_limit)
        self._yield_steps = int(yield_steps) if yield_steps is not None else self._check_interval
        self._synapse_cache_size = int(synapse_cache_size)
        if clock == "monotonic":
            # reprolint: disable-next-line=RL002 -- injectable-clock seam (SolveService(clock=...))
            self._clock: Callable[[], float] = time.monotonic
        elif clock == "steps":
            self._clock = lambda: self._step * float(step_seconds)
        elif callable(clock):
            self._clock = clock
        else:
            raise ValueError(f"unknown clock {clock!r}")

        # Admission state.
        self._queues: Dict[str, Deque[_Ticket]] = {}
        self._rr: Deque[str] = deque()
        self._queued = 0
        self._inflight: Dict[str, _Ticket] = {}

        # Batch state: the shared continuous-batching engine plus the
        # serve policy adapter (checkpoints route back through
        # :meth:`_checkpoint_decision`).
        self._num_neurons: Optional[int] = None
        self._engine = SlotEngine(
            decoder=CSP_SLOT_DECODER,
            window=max(1, self._config.decode_window),
            check_interval=self._check_interval,
            extendable=True,
        )
        self._policy = ServePolicy(self)

        # Dedup / sharing caches.
        self._memo: "OrderedDict[str, CSPSolveResult]" = OrderedDict()
        self._synapses: "OrderedDict[str, object]" = OrderedDict()

        # Scheduler plumbing.
        self._task: Optional["asyncio.Task[None]"] = None
        self._wake = asyncio.Event()
        self._step_heap: List[Tuple[int, int, "asyncio.Future[int]"]] = []
        self._wait_seq = itertools.count()
        self._closed = False
        self._draining = False
        self._started = False

        self._metrics = MetricsRecorder()

        # Durability plumbing: periodic engine checkpoints plus a
        # write-ahead admission journal (both optional, both fed by the
        # same deterministic FaultPlan in the chaos suites).
        if checkpoint_every is not None and int(checkpoint_every) < 1:
            raise ValueError("checkpoint_every must be positive")
        self._fault = fault
        self._ckpt_every = (
            int(checkpoint_every) if checkpoint_every is not None else 10 * self._check_interval
        )
        self._ckpt_store = None
        if checkpoint_dir is not None:
            from ..runtime.checkpoint import CheckpointStore

            self._ckpt_store = CheckpointStore(checkpoint_dir, kind="serve", fault=fault)
        self._journal = None
        if journal_path is not None:
            from .journal import AdmissionJournal

            self._journal = AdmissionJournal(journal_path, fault=fault)
        if recover and (self._ckpt_store is not None or self._journal is not None):
            self._recover()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        graph: ConstraintGraph,
        clamps: ClampsLike = (),
        *,
        client: str = "default",
        seed: Optional[int] = None,
        max_steps: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> ServeResult:
        """Solve one instance through the live batch; awaits the outcome.

        Raises :class:`LoadShedError` when the admission queue is full,
        :class:`IncompatibleInstanceError` when the graph's neuron count
        differs from the live batch's, and ``ValueError`` on
        inconsistent clamps.  Cancelling the awaiting task abandons the
        request: its batch slot is freed at the next scheduler round.
        """
        if self._closed:
            raise ServiceClosedError("service is stopped")
        self._ensure_started()
        resolved = graph.resolve_clamps(clamps)
        if not graph.clamps_consistent(resolved):
            raise ValueError("clamps violate a constraint edge")
        budget = self._default_max_steps if max_steps is None else int(max_steps)

        if budget <= 0:
            # Mirrors the batch engines' max_steps<=0 guard: the
            # zero-step decode (clamps only), served immediately.
            self._metrics.record_submitted()
            result = _empty_result(graph, resolved)
            status = ServeStatus.SOLVED if result.solved else ServeStatus.UNSOLVED
            self._metrics.record_served(status.value, 0.0, 0)
            return ServeResult(
                status=status,
                client=client,
                key=None,
                seed=self._seed,
                max_steps=budget,
                result=result,
                from_cache=False,
                coalesced=False,
                submitted_step=self._step,
                finished_step=self._step,
                latency=0.0,
            )

        if self._num_neurons is None:
            self._num_neurons = graph.num_neurons
        elif graph.num_neurons != self._num_neurons:
            raise IncompatibleInstanceError(
                f"instance has {graph.num_neurons} neurons; the live batch "
                f"is configured for {self._num_neurons}"
            )
        self._metrics.record_submitted()

        key, graph_digest = self._request_key(graph, resolved, seed, budget)
        if seed is not None:
            request_seed = int(seed)
        elif key is not None:
            request_seed = derive_request_seed(self._seed, key)
        else:  # pragma: no cover - requests are built from tokenisable parts
            request_seed = derive_task_seed(self._seed, self._metrics.submitted - 1)

        cached = self._lookup_cached(key)
        if cached is not None:
            self._metrics.record_cache_hit()
            status = ServeStatus.SOLVED if cached.solved else ServeStatus.UNSOLVED
            self._metrics.record_served(status.value, 0.0, 0)
            return ServeResult(
                status=status,
                client=client,
                key=key,
                seed=request_seed,
                max_steps=budget,
                result=cached,
                from_cache=True,
                coalesced=False,
                submitted_step=self._step,
                finished_step=self._step,
                latency=0.0,
            )

        now = self._now()
        waiter = _Waiter(
            future=asyncio.get_running_loop().create_future(),
            client=client,
            submitted_step=self._step,
            submitted_at=now,
            deadline=(now + float(deadline)) if deadline is not None else None,
        )
        ticket = self._inflight.get(key) if key is not None else None
        if ticket is not None and ticket.state in ("queued", "running"):
            # Identical request already in flight: share its batch row.
            waiter.coalesced = True
            ticket.waiters.append(waiter)
            self._metrics.record_coalesced()
        else:
            if self._queue_limit is not None and self._queued >= self._queue_limit:
                self._metrics.record_shed()
                raise LoadShedError(
                    client=client, queue_depth=self._queued, queue_limit=self._queue_limit
                )
            ticket = _Ticket(
                key=key,
                graph_digest=graph_digest,
                graph=graph,
                clamps=resolved,
                seed=request_seed,
                max_steps=budget,
                waiters=[waiter],
            )
            if key is not None:
                self._inflight[key] = ticket
                if self._journal is not None:
                    # Write-ahead: the admission is durable before the
                    # client can observe it as accepted.
                    self._journal.admit(
                        key=key,
                        client=client,
                        graph=graph,
                        clamps=resolved,
                        seed=request_seed,
                        max_steps=budget,
                    )
            self._enqueue(client, ticket)
        self._wake.set()
        try:
            return await waiter.future
        except asyncio.CancelledError:
            self._abandon(waiter, ticket)
            raise

    async def submit_many(
        self,
        instances: Sequence[Tuple[ConstraintGraph, ClampsLike]],
        *,
        client: str = "default",
        seeds: Optional[Sequence[int]] = None,
        max_steps: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> List[ServeResult]:
        """Submit a batch of instances concurrently; results in order.

        An empty instance list returns ``[]`` without touching the
        service (mirroring ``solve_instances([]) == []``).
        """
        if not instances:
            return []
        if seeds is not None and len(seeds) != len(instances):
            raise ValueError("seeds must match the number of instances")
        return list(
            await asyncio.gather(
                *(
                    self.submit(
                        graph,
                        clamps,
                        client=client,
                        seed=None if seeds is None else int(seeds[i]),
                        max_steps=max_steps,
                        deadline=deadline,
                    )
                    for i, (graph, clamps) in enumerate(instances)
                )
            )
        )

    async def wait_for_step(self, step: int) -> int:
        """Resolve once the scheduler's global step counter reaches ``step``.

        The deterministic time base of open-loop load generators: when
        the service is idle, the step counter fast-forwards to the next
        awaited step, so arrival schedules never deadlock on an empty
        batch.  Returns the step count at release.
        """
        if self._step >= int(step) or self._closed:
            return self._step
        self._ensure_started()
        future: "asyncio.Future[int]" = asyncio.get_running_loop().create_future()
        heapq.heappush(self._step_heap, (int(step), next(self._wait_seq), future))
        self._wake.set()
        return await future

    def metrics(self) -> MetricsSnapshot:
        """A point-in-time snapshot of the request ledger."""
        return self._metrics.snapshot(
            queue_depth=self._queued,
            running=self._engine.num_rows,
            capacity=self._capacity,
            now=self._now(),
        )

    @property
    def _step(self) -> int:
        """The engine's global step count (the service's time base)."""
        return self._engine.global_step

    @property
    def step(self) -> int:
        """Global scheduler steps advanced so far."""
        return self._engine.global_step

    @property
    def capacity(self) -> int:
        return self._capacity

    async def stop(self, *, drain: bool = True) -> None:
        """Stop the scheduler.

        ``drain=True`` (default) finishes every queued and running
        request first; ``drain=False`` aborts outstanding requests,
        resolving their waiters with ``ServeStatus.CANCELLED``.
        """
        self._closed = True
        task, self._task = self._task, None
        if task is None or task.done():
            self._abort_outstanding()
            if self._journal is not None:
                self._journal.close()
            return
        if drain:
            self._draining = True
            self._wake.set()
            await task
        else:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._abort_outstanding()
        if self._journal is not None:
            self._journal.close()

    async def __aenter__(self) -> "SolveService":
        self._ensure_started()
        return self

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        await self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # Request identity and caching
    # ------------------------------------------------------------------ #
    def _request_key(
        self,
        graph: ConstraintGraph,
        resolved: Sequence[Tuple[int, int, int]],
        seed: Optional[int],
        budget: int,
    ) -> Tuple[Optional[str], Optional[str]]:
        """Content key of the request plus the graph-structure digest."""
        graph_digest = derive_cache_key("serve-graph", graph)
        payload = {
            "graph": graph,
            "clamps": [list(map(int, triple)) for triple in resolved],
            "config": self._config,
            "backend": self._backend,
            "max_steps": int(budget),
            "check_interval": self._check_interval,
            "seed": None if seed is None else int(seed),
            "seed_root": self._seed if seed is None else None,
        }
        return derive_cache_key("serve", payload), graph_digest

    def _lookup_cached(self, key: Optional[str]) -> Optional[CSPSolveResult]:
        if key is None:
            return None
        if self._memoize and key in self._memo:
            self._memo.move_to_end(key)
            return self._memo[key]
        if self._cache is not None:
            # Wrong-typed entries are as unusable as truncated ones:
            # ``expect`` makes the cache treat both as misses.
            entry = self._cache.get(key, expect=CSPSolveResult)
            if entry is not None:
                self._remember(key, entry)
                return entry
        return None

    def _remember(self, key: str, result: CSPSolveResult) -> None:
        if not self._memoize:
            return
        self._memo[key] = result
        self._memo.move_to_end(key)
        while len(self._memo) > self._memo_limit:
            self._memo.popitem(last=False)

    def _store(self, key: Optional[str], result: CSPSolveResult) -> None:
        if key is None:
            return
        self._remember(key, result)
        if self._cache is not None:
            self._cache.put(key, result)

    # ------------------------------------------------------------------ #
    # Admission plumbing
    # ------------------------------------------------------------------ #
    def _enqueue(self, client: str, ticket: _Ticket) -> None:
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = deque()
            self._rr.append(client)
        queue.append(ticket)
        self._queued += 1

    def _next_ticket(self) -> Optional[_Ticket]:
        """Pop the next queued ticket, round-robin across clients."""
        for _ in range(len(self._rr)):
            client = self._rr.popleft()
            queue = self._queues.get(client)
            while queue and queue[0].state == "dead":
                queue.popleft()
            if queue:
                ticket = queue.popleft()
                self._queued -= 1
                if queue:
                    self._rr.append(client)
                else:
                    del self._queues[client]
                return ticket
            if queue is not None:
                del self._queues[client]
        return None

    def _abandon(self, waiter: _Waiter, ticket: _Ticket) -> None:
        """A client's await was cancelled: book and schedule the cleanup."""
        if waiter.future.done() and not waiter.future.cancelled():
            return  # resolved before the client went away; already booked
        waiter.cancelled = True
        self._metrics.record_cancelled()
        if not self._has_live_waiters(ticket):
            if ticket.state == "queued":
                ticket.state = "dead"
                self._queued -= 1
                if ticket.key is not None:
                    self._inflight.pop(ticket.key, None)
            elif ticket.state == "running":
                # The scheduler frees the batch slot at its next round.
                self._wake.set()

    @staticmethod
    def _has_live_waiters(ticket: _Ticket) -> bool:
        if ticket.recovered and ticket.state in ("queued", "running"):
            # No client of *this* process awaits a recovered ticket, but
            # its result is owed to the crashed process's clients (the
            # supervisor resubmits them); it always runs to completion.
            return True
        return any(not w.cancelled and not w.future.done() for w in ticket.waiters)

    def _expire_waiters(self, ticket: _Ticket, now: float) -> None:
        """Resolve waiters whose deadline has passed with a typed timeout."""
        for waiter in ticket.waiters:
            if waiter.cancelled or waiter.future.done() or waiter.deadline is None:
                continue
            if now >= waiter.deadline:
                self._resolve_waiter(waiter, ticket, ServeStatus.TIMEOUT, None)

    def _resolve_waiter(
        self,
        waiter: _Waiter,
        ticket: _Ticket,
        status: ServeStatus,
        result: Optional[CSPSolveResult],
        *,
        from_cache: bool = False,
    ) -> None:
        if waiter.future.done():
            return
        latency = self._now() - waiter.submitted_at
        waiter.future.set_result(
            ServeResult(
                status=status,
                client=waiter.client,
                key=ticket.key,
                seed=ticket.seed,
                max_steps=ticket.max_steps,
                result=result,
                from_cache=from_cache,
                coalesced=waiter.coalesced,
                submitted_step=waiter.submitted_step,
                finished_step=self._step,
                latency=latency,
            )
        )
        if status is ServeStatus.CANCELLED:
            self._metrics.record_cancelled()
        else:
            self._metrics.record_served(status.value, latency, self._step - waiter.submitted_step)

    def _finish_ticket(self, ticket: _Ticket, result: CSPSolveResult) -> None:
        """A row completed with a result: resolve, memoise, release."""
        ticket.state = "done"
        if ticket.key is not None:
            self._inflight.pop(ticket.key, None)
            # Unsolved outcomes are cached too: the solver is
            # deterministic, so "unsolved within this budget under this
            # seed" is the request's true answer.
            self._store(ticket.key, result)
            if self._journal is not None:
                self._journal.done(ticket.key)
        status = ServeStatus.SOLVED if result.solved else ServeStatus.UNSOLVED
        for waiter in ticket.waiters:
            self._resolve_waiter(waiter, ticket, status, result)

    def _drop_ticket(self, ticket: _Ticket) -> None:
        """Release a ticket whose waiters are all gone (cancel/timeout)."""
        ticket.state = "done"
        if ticket.key is not None:
            self._inflight.pop(ticket.key, None)

    # ------------------------------------------------------------------ #
    # Durability: checkpoints, write-ahead journal, startup recovery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ticket_descriptor(ticket: _Ticket) -> dict:
        """The picklable identity of one live ticket (no waiters/futures)."""
        return {
            "key": ticket.key,
            "graph_digest": ticket.graph_digest,
            "graph": ticket.graph,
            "clamps": ticket.clamps,
            "seed": ticket.seed,
            "max_steps": ticket.max_steps,
        }

    def _save_checkpoint(self) -> None:
        """Snapshot the live engine plus every running ticket's identity."""
        payloads = [self._ticket_descriptor(row.payload) for row in self._engine.rows]
        self._ckpt_store.save(
            self._step,
            {
                "num_neurons": self._num_neurons,
                "engine": self._engine.export_state(payloads=payloads),
            },
        )
        self._metrics.record_checkpoint()

    def _recover(self) -> None:
        """Resurrect state from the newest checkpoint plus the journal.

        Corrupt or torn snapshots are skipped (typed failures collected
        by the store and counted in the metrics) in favour of the next
        older good one; journaled admissions that neither finished
        (``done`` record), survived into the restored batch, nor already
        sit in the result cache are re-enqueued as recovered tickets.
        Recovered work re-runs under its original content-derived seed,
        so every result is bit-identical to the uninterrupted run's.
        """
        records = []
        done_keys = set()
        if self._journal is not None:
            records, _torn = self._journal.replay(repair=True)
            done_keys = {r["key"] for r in records if r["kind"] == "done"}
        restored = None
        failures = 0
        if self._ckpt_store is not None:
            restored = self._ckpt_store.load_latest()
            failures = len(self._ckpt_store.failures)
        restored_rows = 0
        if restored is not None:
            _, payload = restored
            self._num_neurons = payload["num_neurons"]
            tickets: List[_Ticket] = []
            networks = []
            for row_state in payload["engine"]["rows"]:
                desc = row_state["payload"]
                ticket = _Ticket(
                    key=desc["key"],
                    graph_digest=desc["graph_digest"],
                    graph=desc["graph"],
                    clamps=desc["clamps"],
                    seed=desc["seed"],
                    max_steps=desc["max_steps"],
                    state="running",
                    recovered=True,
                )
                tickets.append(ticket)
                networks.append(self._build_network(ticket))
            self._engine.restore_state(payload["engine"], networks)
            for row, ticket in zip(self._engine.rows, tickets):
                row.payload = ticket
                if ticket.key is not None:
                    self._inflight[ticket.key] = ticket
            restored_rows = len(tickets)
        replayed = 0
        for record in records:
            if record.get("kind") != "admit":
                continue
            key = record["key"]
            if key in done_keys or key in self._inflight:
                continue
            if self._lookup_cached(key) is not None:
                continue
            graph = record["graph"]
            ticket = _Ticket(
                key=key,
                graph_digest=derive_cache_key("serve-graph", graph),
                graph=graph,
                clamps=record["clamps"],
                seed=record["seed"],
                max_steps=record["max_steps"],
                recovered=True,
            )
            self._inflight[key] = ticket
            self._enqueue(record["client"], ticket)
            if self._num_neurons is None:
                self._num_neurons = graph.num_neurons
            replayed += 1
        if restored is not None or replayed:
            self._metrics.record_restore(rows=restored_rows, replayed=replayed, failures=failures)
        elif failures:
            self._metrics.checkpoint_failures += failures

    # ------------------------------------------------------------------ #
    # Batch-row construction (the bit-exactness-critical path)
    # ------------------------------------------------------------------ #
    def _build_network(self, ticket: _Ticket) -> SpikingCSPSolver:
        """A fresh solver network for one admission.

        Graphs with identical structure share one synapse build (keyed
        by the structural digest, LRU-bounded), which also keeps the
        batch engine on its shared-matrix fast path for repeat
        instances.  Shared connectivity never changes results — the
        matrix values are a pure function of the structure and the
        service-wide config.  The admission offset (the bit-exactness
        mechanism) is stamped by :meth:`SlotEngine.recompose`.
        """
        synapses = None
        if ticket.graph_digest is not None:
            synapses = self._synapses.get(ticket.graph_digest)
        solver = SpikingCSPSolver(
            ticket.graph,
            self._config,
            backend=self._backend,
            seed=ticket.seed,
            synapses=synapses,
        )
        if ticket.graph_digest is not None:
            self._synapses[ticket.graph_digest] = solver.synapses
            self._synapses.move_to_end(ticket.graph_digest)
            while len(self._synapses) > self._synapse_cache_size:
                self._synapses.popitem(last=False)
        return solver.build_network(ticket.clamps)

    def _take_admissions(self, count: int) -> List[SlotAdmission]:
        """Admit up to ``count`` queued tickets as fresh batch rows."""
        if count <= 0 or not self._queued:
            return []
        now = self._now()
        taken: List[SlotAdmission] = []
        while len(taken) < count:
            ticket = self._next_ticket()
            if ticket is None:
                break
            self._expire_waiters(ticket, now)
            if not self._has_live_waiters(ticket):
                self._drop_ticket(ticket)
                continue
            ticket.state = "running"
            network = self._build_network(ticket)
            row = SlotRow(
                graph=ticket.graph,
                clamps=ticket.clamps,
                budget=ticket.max_steps,
                payload=ticket,
            )
            taken.append((row, network))
        return taken

    # ------------------------------------------------------------------ #
    # The scheduler
    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        return float(self._clock())

    def _ensure_started(self) -> None:
        if self._closed:
            raise ServiceClosedError("service is stopped")
        if self._task is None or self._task.done():
            if not self._started:
                self._started = True
                self._metrics.started_at = self._now()
            self._task = asyncio.get_running_loop().create_task(self._run())

    def _release_step_waiters(self) -> None:
        while self._step_heap and self._step_heap[0][0] <= self._step:
            _, _, future = heapq.heappop(self._step_heap)
            if not future.done():
                future.set_result(self._step)

    def _flush_step_waiters(self) -> None:
        while self._step_heap:
            _, _, future = heapq.heappop(self._step_heap)
            if not future.done():
                future.set_result(self._step)

    def _prune_cancelled_rows(self) -> None:
        """Free batch slots of rows every client has abandoned."""
        rows = self._engine.rows
        if not rows:
            return
        keep = [i for i, row in enumerate(rows) if self._has_live_waiters(row.payload)]
        if len(keep) == len(rows):
            return
        kept = set(keep)
        for i, row in enumerate(rows):
            if i not in kept:
                self._drop_ticket(row.payload)
        self._engine.recompose(keep, [])

    def _admit(self) -> None:
        refills = self._take_admissions(self._capacity - self._engine.num_rows)
        if refills:
            self._engine.admit(refills)

    async def _run(self) -> None:
        while True:
            self._release_step_waiters()
            self._prune_cancelled_rows()
            self._admit()
            if not self._engine.num_rows:
                if self._queued:
                    continue  # a fresh admission round will pick them up
                if self._draining:
                    break
                if self._step_heap:
                    # Idle with clients waiting on future steps: fast-
                    # forward the step clock (open-loop arrival times
                    # pass whether or not the batch is busy).
                    self._engine.fast_forward(self._step_heap[0][0])
                    continue
                self._wake.clear()
                if self._queued or self._step_heap or self._draining:
                    continue  # a submit landed between the checks
                await self._wake.wait()
                continue
            for _ in range(self._yield_steps):
                self._advance_step()
                if not self._engine.num_rows:
                    break
            await asyncio.sleep(0)
        self._flush_step_waiters()

    def _advance_step(self) -> None:
        """One engine step plus the serve-side checkpoint dispatch.

        The stepping, local counters and sliding windows are the shared
        :class:`SlotEngine`'s — which is what makes every served row
        bit-identical to its standalone solve; the checkpoint decision
        (finish, expire, refill) is :class:`ServePolicy`'s.
        """
        checkpoint = self._engine.step()
        self._metrics.record_step(self._engine.num_rows)
        if checkpoint is not None:
            decision = self._policy.on_checkpoint(checkpoint)
            self._engine.recompose(decision.keep, decision.admissions)
        if self._ckpt_store is not None and self._step % self._ckpt_every == 0:
            self._save_checkpoint()
        if self._fault is not None and self._fault.should_crash(self._step):
            import os

            from ..runtime.checkpoint import FaultPlan

            os._exit(FaultPlan.CRASH_EXIT_CODE)

    def _checkpoint_decision(self, checkpoint: SlotCheckpoint) -> SlotDecision:
        """Decide which rows finish, expire or survive one checkpoint."""
        now = self._now()
        local = checkpoint.local
        keep: List[int] = []
        for row, live in enumerate(self._engine.rows):
            ticket = live.payload
            if not checkpoint.at_check[row]:
                keep.append(row)
                continue
            decode = self._engine.decode_row(row)
            if decode.solved or checkpoint.at_budget[row]:
                result = CSPSolveResult(
                    solved=decode.solved,
                    steps=int(local[row]),
                    values=decode.values,
                    decided=decode.decided,
                    total_spikes=int(self._engine.row_spikes[row]),
                    neuron_updates=int(local[row]) * int(self._engine.updates_per_step),
                    attempts=1,
                    attempt_steps=(int(local[row]),),
                )
                self._finish_ticket(ticket, result)
                continue
            self._expire_waiters(ticket, now)
            if self._has_live_waiters(ticket):
                keep.append(row)
            else:
                self._drop_ticket(ticket)
        refills = self._take_admissions(self._capacity - len(keep))
        return SlotDecision(keep=keep, admissions=refills)

    def _abort_outstanding(self) -> None:
        """Resolve every outstanding waiter with ``CANCELLED`` (abort path)."""
        tickets: List[_Ticket] = [row.payload for row in self._engine.rows]
        for queue in self._queues.values():
            tickets.extend(t for t in queue if t.state == "queued")
        for ticket in tickets:
            for waiter in ticket.waiters:
                self._resolve_waiter(waiter, ticket, ServeStatus.CANCELLED, None)
            self._drop_ticket(ticket)
        self._engine.recompose([], [])
        self._queues.clear()
        self._rr.clear()
        self._queued = 0
        self._inflight.clear()
        self._flush_step_waiters()
