"""Signed fixed-point (Q-format) arithmetic used by the IzhiRISC-V NPU/DCU.

Public API
----------
* :class:`~repro.fixedpoint.qformat.QFormat` and the concrete formats
  :data:`Q7_8`, :data:`Q4_11`, :data:`Q15_16` used by the paper.
* Vectorised raw-payload arithmetic (:func:`fx_add`, :func:`fx_mul`, ...).
* VU-word packing helpers (:func:`pack_vu`, :func:`unpack_vu`).
"""

from .qformat import Overflow, Q4_11, Q7_8, Q15_16, Q16_16, QFormat, Rounding
from .ops import (
    align,
    fx_add,
    fx_compare,
    fx_mul,
    fx_neg,
    fx_shift_left,
    fx_shift_right,
    fx_sub,
    requantize,
)
from .vuword import pack_vu, pack_vu_float, unpack_vu, unpack_vu_float

__all__ = [
    "QFormat",
    "Rounding",
    "Overflow",
    "Q7_8",
    "Q4_11",
    "Q15_16",
    "Q16_16",
    "align",
    "requantize",
    "fx_add",
    "fx_sub",
    "fx_mul",
    "fx_neg",
    "fx_shift_left",
    "fx_shift_right",
    "fx_compare",
    "pack_vu",
    "unpack_vu",
    "pack_vu_float",
    "unpack_vu_float",
]
