"""Signed Q-format fixed-point number specifications.

The IzhiRISC-V NPU and DCU operate on signed fixed-point values.  The paper
(Table I) fixes the following formats:

=============  ==========  =====================================
Quantity       Format      Storage
=============  ==========  =====================================
``v``, ``u``   Q7.8        16-bit halves of the packed VU word
``c``          Q7.8        low half of ``rs2`` in ``nmldl``
``a``, ``b``   Q4.11       halves of ``rs1``/``rs2`` in ``nmldl``
``d``          Q4.11       high half of ``rs2`` in ``nmldl``
``Isyn``       Q15.16      32-bit register operand
=============  ==========  =====================================

A signed ``Qm.n`` value occupies ``1 + m + n`` bits (sign + integer +
fraction) and represents the real number ``raw / 2**n`` where ``raw`` is the
two's-complement integer payload.  This module provides :class:`QFormat`,
which performs quantisation, saturation, wrapping and float conversion, plus
the concrete format singletons used throughout the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Union

import numpy as np

__all__ = [
    "Rounding",
    "Overflow",
    "QFormat",
    "Q7_8",
    "Q4_11",
    "Q15_16",
    "Q16_16",
]

ArrayLike = Union[int, float, np.ndarray]


class Rounding(Enum):
    """Rounding mode applied when quantising a real value to a Q-format."""

    #: Round toward negative infinity (``floor``); matches a plain
    #: arithmetic right shift, which is what the RTL uses when narrowing.
    FLOOR = "floor"
    #: Round to nearest, ties away from zero.
    NEAREST = "nearest"
    #: Round toward zero (truncate the magnitude).
    TRUNCATE = "truncate"


class Overflow(Enum):
    """Behaviour when a value exceeds the representable range."""

    #: Clamp to the most positive / most negative representable value.
    SATURATE = "saturate"
    #: Two's-complement wrap-around (discard the upper bits).
    WRAP = "wrap"


@dataclass(frozen=True)
class QFormat:
    """A signed fixed-point format ``Qm.n``.

    Parameters
    ----------
    int_bits:
        Number of integer bits ``m`` (excluding the sign bit).
    frac_bits:
        Number of fractional bits ``n``.

    Notes
    -----
    The raw (stored) representation is a two's-complement integer of
    ``1 + int_bits + frac_bits`` bits.  All conversion helpers accept both
    Python scalars and NumPy arrays and are fully vectorised.
    """

    int_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.int_bits < 0 or self.frac_bits < 0:
            raise ValueError("Q-format bit counts must be non-negative")
        if self.total_bits > 64:
            raise ValueError("Q-formats wider than 64 bits are not supported")

    # ------------------------------------------------------------------ #
    # Static properties of the format
    # ------------------------------------------------------------------ #
    @property
    def total_bits(self) -> int:
        """Total storage width in bits (sign + integer + fraction)."""
        return 1 + self.int_bits + self.frac_bits

    @property
    def scale(self) -> int:
        """Scaling factor ``2**frac_bits`` between raw and real values."""
        return 1 << self.frac_bits

    @property
    def raw_min(self) -> int:
        """Smallest representable raw integer (most negative)."""
        return -(1 << (self.total_bits - 1))

    @property
    def raw_max(self) -> int:
        """Largest representable raw integer (most positive)."""
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.raw_min / self.scale

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.raw_max / self.scale

    @property
    def resolution(self) -> float:
        """Quantisation step (one least-significant bit) as a real value."""
        return 1.0 / self.scale

    @property
    def name(self) -> str:
        """Canonical ``Qm.n`` name of the format."""
        return f"Q{self.int_bits}.{self.frac_bits}"

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def from_float(
        self,
        value: ArrayLike,
        *,
        rounding: Rounding = Rounding.NEAREST,
        overflow: Overflow = Overflow.SATURATE,
    ) -> ArrayLike:
        """Quantise real value(s) to the raw integer representation.

        Parameters
        ----------
        value:
            Scalar or array of real values.
        rounding:
            Rounding mode used for the fractional quantisation.
        overflow:
            Saturate (default) or wrap values outside the representable
            range.

        Returns
        -------
        int or numpy.ndarray
            Raw two's-complement integer payload(s), dtype ``int64`` for
            arrays.
        """
        scaled = np.asarray(value, dtype=np.float64) * self.scale
        if rounding is Rounding.NEAREST:
            raw = np.where(scaled >= 0, np.floor(scaled + 0.5), np.ceil(scaled - 0.5))
        elif rounding is Rounding.FLOOR:
            raw = np.floor(scaled)
        elif rounding is Rounding.TRUNCATE:
            raw = np.trunc(scaled)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown rounding mode {rounding!r}")
        raw = raw.astype(np.int64)
        raw = self.handle_overflow(raw, overflow)
        if np.isscalar(value) or np.ndim(value) == 0:
            return int(raw)
        return raw

    def to_float(self, raw: ArrayLike) -> ArrayLike:
        """Convert raw integer payload(s) back to real value(s)."""
        result = np.asarray(raw, dtype=np.int64).astype(np.float64) / self.scale
        if np.isscalar(raw) or np.ndim(raw) == 0:
            return float(result)
        return result

    def handle_overflow(self, raw: ArrayLike, overflow: Overflow = Overflow.SATURATE) -> ArrayLike:
        """Apply the overflow policy to raw integer payload(s)."""
        arr = np.asarray(raw, dtype=np.int64)
        if overflow is Overflow.SATURATE:
            out = np.clip(arr, self.raw_min, self.raw_max)
        elif overflow is Overflow.WRAP:
            out = self.wrap(arr)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown overflow mode {overflow!r}")
        if np.isscalar(raw) or np.ndim(raw) == 0:
            return int(out)
        return out

    def wrap(self, raw: ArrayLike) -> ArrayLike:
        """Two's-complement wrap of arbitrary integers into this format."""
        arr = np.asarray(raw, dtype=np.int64)
        mask = (1 << self.total_bits) - 1
        wrapped = arr & mask
        sign_bit = 1 << (self.total_bits - 1)
        out = np.where(wrapped & sign_bit, wrapped - (1 << self.total_bits), wrapped)
        if np.isscalar(raw) or np.ndim(raw) == 0:
            return int(out)
        return out

    def saturate(self, raw: ArrayLike) -> ArrayLike:
        """Clamp raw integer payload(s) to the representable range."""
        return self.handle_overflow(raw, Overflow.SATURATE)

    def is_representable(self, value: float) -> bool:
        """Return ``True`` if ``value`` lies within the format's range."""
        return self.min_value <= value <= self.max_value

    # ------------------------------------------------------------------ #
    # Format-to-format conversion
    # ------------------------------------------------------------------ #
    def convert_raw(
        self,
        raw: ArrayLike,
        target: "QFormat",
        *,
        rounding: Rounding = Rounding.FLOOR,
        overflow: Overflow = Overflow.SATURATE,
    ) -> ArrayLike:
        """Re-quantise raw payload(s) in this format into ``target``.

        Shifting right (losing fractional bits) applies ``rounding``;
        shifting left is exact.  The result is range-checked according to
        ``overflow``.
        """
        arr = np.asarray(raw, dtype=np.int64)
        shift = target.frac_bits - self.frac_bits
        if shift >= 0:
            out = arr << shift
        else:
            down = -shift
            if rounding is Rounding.FLOOR:
                out = arr >> down
            elif rounding is Rounding.NEAREST:
                out = (arr + (1 << (down - 1))) >> down
            elif rounding is Rounding.TRUNCATE:
                out = np.where(arr >= 0, arr >> down, -((-arr) >> down))
            else:  # pragma: no cover - enum is exhaustive
                raise ValueError(f"unknown rounding mode {rounding!r}")
        out = target.handle_overflow(out, overflow)
        if np.isscalar(raw) or np.ndim(raw) == 0:
            return int(out)
        return out

    # ------------------------------------------------------------------ #
    # Unsigned bit-pattern helpers (for packing into machine words)
    # ------------------------------------------------------------------ #
    def to_unsigned(self, raw: ArrayLike) -> ArrayLike:
        """Return the raw payload as an unsigned bit pattern of ``total_bits``."""
        arr = np.asarray(raw, dtype=np.int64)
        mask = (1 << self.total_bits) - 1
        out = arr & mask
        if np.isscalar(raw) or np.ndim(raw) == 0:
            return int(out)
        return out

    def from_unsigned(self, bits: ArrayLike) -> ArrayLike:
        """Interpret an unsigned bit pattern as a signed raw payload."""
        return self.wrap(bits)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: 16-bit format used for the membrane potential ``v``, the recovery
#: variable ``u`` and the reset parameter ``c``.
Q7_8 = QFormat(7, 8)

#: 16-bit format used for the Izhikevich parameters ``a``, ``b`` and ``d``.
Q4_11 = QFormat(4, 11)

#: 32-bit format used for the synaptic current ``Isyn``.
Q15_16 = QFormat(15, 16)

#: 33-bit-range alias kept for accumulator headroom experiments.
Q16_16 = QFormat(16, 16)
