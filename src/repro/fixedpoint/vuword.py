"""Packing of the neuron state into the 32-bit VU word.

The ``nmpn`` instruction exchanges the neuron state with software as a
single 32-bit word holding the membrane potential ``v`` in the upper 16
bits and the recovery variable ``u`` in the lower 16 bits, both in Q7.8
(paper Table I).  These helpers convert between the packed machine-word
view and (raw, raw) / (float, float) pairs, for scalars and arrays alike.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from .qformat import Q7_8

__all__ = [
    "pack_vu",
    "unpack_vu",
    "pack_vu_float",
    "unpack_vu_float",
]

ArrayLike = Union[int, np.ndarray]

_MASK16 = 0xFFFF
_MASK32 = 0xFFFFFFFF


# reprolint: exact-int -- bit-level VU word packing
def pack_vu(v_raw: ArrayLike, u_raw: ArrayLike) -> ArrayLike:
    """Pack raw Q7.8 payloads ``v`` and ``u`` into an unsigned 32-bit word."""
    v_bits = np.asarray(Q7_8.to_unsigned(v_raw), dtype=np.int64)
    u_bits = np.asarray(Q7_8.to_unsigned(u_raw), dtype=np.int64)
    word = ((v_bits << 16) | u_bits) & _MASK32
    if np.ndim(v_raw) == 0 and np.ndim(u_raw) == 0:
        return int(word)
    return word


# reprolint: exact-int -- bit-level VU word unpacking
def unpack_vu(word: ArrayLike) -> Tuple[ArrayLike, ArrayLike]:
    """Unpack a 32-bit VU word into signed raw Q7.8 payloads ``(v, u)``."""
    w = np.asarray(word, dtype=np.int64) & _MASK32
    v_raw = Q7_8.from_unsigned((w >> 16) & _MASK16)
    u_raw = Q7_8.from_unsigned(w & _MASK16)
    if np.ndim(word) == 0:
        return int(v_raw), int(u_raw)
    return v_raw, u_raw


def pack_vu_float(v: ArrayLike, u: ArrayLike) -> ArrayLike:
    """Pack real-valued ``v`` and ``u`` (quantised to Q7.8) into a VU word."""
    return pack_vu(Q7_8.from_float(v), Q7_8.from_float(u))


def unpack_vu_float(word: ArrayLike) -> Tuple[ArrayLike, ArrayLike]:
    """Unpack a VU word into real-valued ``(v, u)``."""
    v_raw, u_raw = unpack_vu(word)
    return Q7_8.to_float(v_raw), Q7_8.to_float(u_raw)
