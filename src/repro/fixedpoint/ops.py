"""Vectorised arithmetic on raw fixed-point payloads.

The NPU performs the Izhikevich update with a *variable-width accumulator*
("the calculations ... are done with a variable size of the accumulator,
because different operands use different fixed-point formats", paper §V-B)
and only narrows back to Q7.8 at the end.  These helpers mirror that style:
every operation takes raw integer payloads together with their formats,
performs the exact integer computation in 64-bit arithmetic and returns the
result in an explicit output format.

All functions accept scalars or NumPy arrays and broadcast like NumPy.
"""

# reprolint: exact-int-file -- every op here is exact 64-bit integer arithmetic
from __future__ import annotations

from typing import Union

import numpy as np

from .qformat import Overflow, QFormat, Rounding

__all__ = [
    "align",
    "fx_add",
    "fx_sub",
    "fx_mul",
    "fx_neg",
    "fx_shift_right",
    "fx_shift_left",
    "fx_compare",
    "requantize",
]

ArrayLike = Union[int, np.ndarray]


def _as_i64(x: ArrayLike) -> np.ndarray:
    return np.asarray(x, dtype=np.int64)


def _maybe_scalar(result: np.ndarray, *inputs: ArrayLike) -> ArrayLike:
    if all(np.ndim(i) == 0 for i in inputs):
        return int(result)
    return result


def align(raw: ArrayLike, fmt: QFormat, frac_bits: int) -> ArrayLike:
    """Shift a raw payload so that it has ``frac_bits`` fractional bits.

    Left shifts are exact; right shifts use an arithmetic (floor) shift,
    matching the hardware's narrowing behaviour.
    """
    arr = _as_i64(raw)
    shift = frac_bits - fmt.frac_bits
    out = arr << shift if shift >= 0 else arr >> (-shift)
    return _maybe_scalar(out, raw)


def requantize(
    raw: ArrayLike,
    src: QFormat,
    dst: QFormat,
    *,
    rounding: Rounding = Rounding.FLOOR,
    overflow: Overflow = Overflow.SATURATE,
) -> ArrayLike:
    """Convert a raw payload from ``src`` format to ``dst`` format."""
    return src.convert_raw(raw, dst, rounding=rounding, overflow=overflow)


def fx_add(
    a: ArrayLike,
    a_fmt: QFormat,
    b: ArrayLike,
    b_fmt: QFormat,
    out_fmt: QFormat,
    *,
    rounding: Rounding = Rounding.FLOOR,
    overflow: Overflow = Overflow.SATURATE,
) -> ArrayLike:
    """Fixed-point addition ``a + b`` with explicit output format."""
    frac = max(a_fmt.frac_bits, b_fmt.frac_bits)
    wide = _as_i64(align(a, a_fmt, frac)) + _as_i64(align(b, b_fmt, frac))
    out = QFormat(62 - frac, frac).convert_raw(wide, out_fmt, rounding=rounding, overflow=overflow)
    return _maybe_scalar(np.asarray(out), a, b)


def fx_sub(
    a: ArrayLike,
    a_fmt: QFormat,
    b: ArrayLike,
    b_fmt: QFormat,
    out_fmt: QFormat,
    *,
    rounding: Rounding = Rounding.FLOOR,
    overflow: Overflow = Overflow.SATURATE,
) -> ArrayLike:
    """Fixed-point subtraction ``a - b`` with explicit output format."""
    frac = max(a_fmt.frac_bits, b_fmt.frac_bits)
    wide = _as_i64(align(a, a_fmt, frac)) - _as_i64(align(b, b_fmt, frac))
    out = QFormat(62 - frac, frac).convert_raw(wide, out_fmt, rounding=rounding, overflow=overflow)
    return _maybe_scalar(np.asarray(out), a, b)


def fx_mul(
    a: ArrayLike,
    a_fmt: QFormat,
    b: ArrayLike,
    b_fmt: QFormat,
    out_fmt: QFormat,
    *,
    rounding: Rounding = Rounding.FLOOR,
    overflow: Overflow = Overflow.SATURATE,
) -> ArrayLike:
    """Fixed-point multiplication ``a * b`` with explicit output format.

    The exact product has ``a_fmt.frac_bits + b_fmt.frac_bits`` fractional
    bits; it is narrowed to ``out_fmt`` with the requested rounding.
    """
    prod = _as_i64(a) * _as_i64(b)
    prod_frac = a_fmt.frac_bits + b_fmt.frac_bits
    wide_fmt = QFormat(62 - prod_frac, prod_frac)
    out = wide_fmt.convert_raw(prod, out_fmt, rounding=rounding, overflow=overflow)
    return _maybe_scalar(np.asarray(out), a, b)


def fx_neg(a: ArrayLike, fmt: QFormat, *, overflow: Overflow = Overflow.SATURATE) -> ArrayLike:
    """Fixed-point negation, saturating ``-raw_min`` by default."""
    out = fmt.handle_overflow(-_as_i64(a), overflow)
    return _maybe_scalar(np.asarray(out), a)


def fx_shift_right(a: ArrayLike, shift: int) -> ArrayLike:
    """Arithmetic right shift of the raw payload (format preserved)."""
    if shift < 0:
        raise ValueError("shift amount must be non-negative")
    out = _as_i64(a) >> shift
    return _maybe_scalar(out, a)


def fx_shift_left(a: ArrayLike, shift: int, fmt: QFormat, *, overflow: Overflow = Overflow.SATURATE) -> ArrayLike:
    """Left shift of the raw payload, range-checked in ``fmt``."""
    if shift < 0:
        raise ValueError("shift amount must be non-negative")
    out = fmt.handle_overflow(_as_i64(a) << shift, overflow)
    return _maybe_scalar(np.asarray(out), a)


def fx_compare(a: ArrayLike, a_fmt: QFormat, b: ArrayLike, b_fmt: QFormat) -> ArrayLike:
    """Three-way comparison of fixed-point values (-1, 0, +1)."""
    frac = max(a_fmt.frac_bits, b_fmt.frac_bits)
    av = _as_i64(align(a, a_fmt, frac))
    bv = _as_i64(align(b, b_fmt, frac))
    out = np.sign(av - bv).astype(np.int64)
    return _maybe_scalar(out, a, b)
