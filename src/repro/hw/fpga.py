"""FPGA resource model for IzhiRISC-V multi-core systems (Tables III & IV).

The paper reports post-synthesis utilisation of the dual-core system on a
low-end Intel MAX10 (10M50) and of 16/32/64-core systems on an Intel
Agilex-7 M-series device, and extrapolates that roughly 192 cores fit on
the Agilex part.  Synthesising RTL is outside the scope of a Python
reproduction (see DESIGN.md), so this module provides a *calibrated linear
resource model*: per-core coefficients plus a fixed system overhead
(interconnect, GHRD shell), fitted to the paper's published numbers, with
the device capacities implied by the published utilisation percentages.

The model lets the benchmarks regenerate the two tables, answer "how many
cores fit" questions (the 192-core claim) and explore what-if scenarios
(e.g. resource cost of dropping the DCU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = [
    "FPGADevice",
    "CoreResources",
    "ResourceReport",
    "FPGAResourceModel",
    "MAX10_DEVICE",
    "AGILEX7_DEVICE",
    "MAX10_CORE",
    "AGILEX7_CORE",
    "max10_dual_core_report",
    "agilex_scaling_reports",
]


@dataclass(frozen=True)
class FPGADevice:
    """Capacity of one FPGA device, in the units its vendor reports."""

    name: str
    #: Logic capacity (logic elements for MAX10, ALMs for Agilex-7).
    logic: int
    logic_unit: str
    flipflops: int
    #: Block memory capacity (Kbit for MAX10, M20K blocks for Agilex-7).
    memory: float
    memory_unit: str
    #: Hard multipliers (9-bit multipliers for MAX10, DSP blocks for Agilex).
    dsp: int
    dsp_unit: str
    max_clock_mhz: float


@dataclass(frozen=True)
class CoreResources:
    """Per-core resource coefficients plus fixed system overhead."""

    logic_per_core: float
    ff_per_core: float
    memory_per_core: float
    dsp_per_core: float
    logic_overhead: float = 0.0
    ff_overhead: float = 0.0
    memory_overhead: float = 0.0
    dsp_overhead: float = 0.0
    clock_mhz: float = 100.0


@dataclass
class ResourceReport:
    """Estimated utilisation of an ``num_cores`` system on one device."""

    device: FPGADevice
    num_cores: int
    clock_mhz: float
    logic: float
    flipflops: float
    memory: float
    dsp: float

    def percent(self, used: float, capacity: float) -> float:
        return 100.0 * used / capacity if capacity else 0.0

    @property
    def logic_percent(self) -> float:
        return self.percent(self.logic, self.device.logic)

    @property
    def ff_percent(self) -> float:
        return self.percent(self.flipflops, self.device.flipflops)

    @property
    def memory_percent(self) -> float:
        return self.percent(self.memory, self.device.memory)

    @property
    def dsp_percent(self) -> float:
        return self.percent(self.dsp, self.device.dsp)

    @property
    def fits(self) -> bool:
        """All resource classes are within the device capacity."""
        return all(p <= 100.0 for p in (self.logic_percent, self.ff_percent, self.memory_percent, self.dsp_percent))

    def as_rows(self) -> Dict[str, str]:
        """Format the report like the paper's tables (count + percent)."""
        return {
            "Frequency": f"{self.clock_mhz:.0f} MHz",
            self.device.logic_unit: f"{self.logic:.0f} ({self.logic_percent:.0f}%)",
            "FF": f"{self.flipflops:.0f} ({self.ff_percent:.0f}%)",
            self.device.memory_unit: f"{self.memory:.1f} ({self.memory_percent:.0f}%)",
            self.device.dsp_unit: f"{self.dsp:.0f} ({self.dsp_percent:.0f}%)",
        }


class FPGAResourceModel:
    """Linear scaling model ``resource(n) = overhead + n * per_core``."""

    def __init__(self, device: FPGADevice, core: CoreResources) -> None:
        self.device = device
        self.core = core

    def estimate(self, num_cores: int, *, clock_mhz: float | None = None) -> ResourceReport:
        """Estimate utilisation for ``num_cores`` cores."""
        if num_cores < 1:
            raise ValueError("at least one core is required")
        c = self.core
        return ResourceReport(
            device=self.device,
            num_cores=num_cores,
            clock_mhz=clock_mhz if clock_mhz is not None else c.clock_mhz,
            logic=c.logic_overhead + num_cores * c.logic_per_core,
            flipflops=c.ff_overhead + num_cores * c.ff_per_core,
            memory=c.memory_overhead + num_cores * c.memory_per_core,
            dsp=c.dsp_overhead + num_cores * c.dsp_per_core,
        )

    def max_cores(self, *, utilisation_limit: float = 1.0) -> int:
        """Largest core count that fits within ``utilisation_limit`` of the device.

        This is the calculation behind the paper's "up to 192 cores on the
        Agilex-7, assuming linear scaling" estimate.
        """
        n = 1
        while True:
            report = self.estimate(n + 1)
            if (
                report.logic > utilisation_limit * self.device.logic
                or report.flipflops > utilisation_limit * self.device.flipflops
                or report.memory > utilisation_limit * self.device.memory
                or report.dsp > utilisation_limit * self.device.dsp
            ):
                return n
            n += 1
            if n > 100_000:  # pragma: no cover - defensive bound
                return n


# ---------------------------------------------------------------------- #
# Calibration against the paper's published numbers
# ---------------------------------------------------------------------- #

#: Intel MAX10 10M50DAF484C7G (TerasIC DE10-Lite).  Capacities are implied
#: by the utilisation percentages of paper Table III.
MAX10_DEVICE = FPGADevice(
    name="Intel MAX10 10M50DAF484C7G",
    logic=49_760,
    logic_unit="Logic elements",
    flipflops=55_360,
    memory=1_650.0,
    memory_unit="BRAM [Kb]",
    dsp=288,
    dsp_unit="Embedded Mult. (9b)",
    max_clock_mhz=30.0,
)

#: Per-core coefficients of the dual-core MAX10 system (Table III / 2).
MAX10_CORE = CoreResources(
    logic_per_core=24_624.0,
    ff_per_core=14_117.5,
    memory_per_core=173.234,
    dsp_per_core=34.0,
    clock_mhz=30.0,
)

#: Intel Agilex-7 M-series AGM039 (capacities implied by Table IV).
AGILEX7_DEVICE = FPGADevice(
    name="Intel Agilex-7 AGMF039R47A1E2VR0",
    logic=1_330_000,
    logic_unit="ALM",
    flipflops=5_320_000,
    memory=20_000.0,
    memory_unit="RAM blocks",
    dsp=12_656,
    dsp_unit="DSP",
    max_clock_mhz=100.0,
)

#: Per-core coefficients fitted to the 16/32/64-core rows of Table IV
#: (least-squares slope with a fixed shell overhead from the GHRD design).
AGILEX7_CORE = CoreResources(
    logic_per_core=6_538.0,
    ff_per_core=5_773.0,
    memory_per_core=16.0,
    dsp_per_core=9.5,
    logic_overhead=2_500.0,
    ff_overhead=3_200.0,
    memory_overhead=134.0,
    dsp_overhead=0.0,
    clock_mhz=100.0,
)


def max10_dual_core_report() -> ResourceReport:
    """Regenerate paper Table III (dual-core IzhiRISC-V on MAX10)."""
    return FPGAResourceModel(MAX10_DEVICE, MAX10_CORE).estimate(2, clock_mhz=30.0)


def agilex_scaling_reports(core_counts: List[int] = (16, 32, 64)) -> List[ResourceReport]:
    """Regenerate paper Table IV (16/32/64-core IzhiRISC-V on Agilex-7)."""
    model = FPGAResourceModel(AGILEX7_DEVICE, AGILEX7_CORE)
    return [model.estimate(n, clock_mhz=100.0) for n in core_counts]
