"""Floorplan block breakdown and ASCII rendering (paper Fig. 5).

The paper's Figure 5 shows the placed-and-routed core on FreePDK45 and
ASAP7 with the pipeline blocks highlighted; the quantitative content is
the relative area of each block (NPU ≈ 20 % of the core, DCU < 2 %).  This
module renders that breakdown as a proportional ASCII treemap so the
figure can be regenerated without an EDA flow.
"""

from __future__ import annotations

from typing import Dict, List

from .asic import AsicReport

__all__ = ["block_fractions", "render_floorplan", "floorplan_summary"]


def block_fractions(report: AsicReport) -> Dict[str, float]:
    """Per-block area fraction of the core (sums to 1)."""
    return {b.name: b.fraction for b in report.blocks}


def render_floorplan(report: AsicReport, *, width: int = 60, height: int = 18) -> str:
    """Render the core floorplan as a proportional ASCII strip layout.

    Blocks are laid out as horizontal bands whose heights are proportional
    to their area share; each band is labelled with the block name and its
    percentage, mirroring the information content of Fig. 5.
    """
    lines: List[str] = []
    title = f"{report.technology.name}: {report.total_area_um2:,.0f} um^2 core"
    lines.append(title)
    lines.append("+" + "-" * (width - 2) + "+")
    blocks = sorted(report.blocks, key=lambda b: b.area_um2, reverse=True)
    remaining_rows = height
    for i, block in enumerate(blocks):
        rows = max(1, round(block.fraction * height)) if i < len(blocks) - 1 else max(1, remaining_rows)
        rows = min(rows, remaining_rows) or 1
        remaining_rows -= rows
        label = f" {block.name}  {100.0 * block.fraction:.1f}%  ({block.area_um2:,.0f} um^2)"
        for r in range(rows):
            content = label if r == rows // 2 else ""
            lines.append("|" + content.ljust(width - 2)[: width - 2] + "|")
        if i < len(blocks) - 1:
            lines.append("+" + "-" * (width - 2) + "+")
    lines.append("+" + "-" * (width - 2) + "+")
    return "\n".join(lines)


def floorplan_summary(report: AsicReport) -> Dict[str, float]:
    """Headline claims of Fig. 5 in numeric form."""
    fractions = block_fractions(report)
    return {
        "npu_fraction": fractions["NPU"],
        "dcu_fraction": fractions["DCU"],
        "cache_fraction": fractions["Instruction Cache"] + fractions["Data Cache"],
        "alu_fraction": fractions["ALU"],
        "total_area_um2": report.total_area_um2,
    }
