"""Hardware cost models: FPGA resources and standard-cell mapping.

Calibrated models regenerating paper Tables III, IV, VII and Figure 5
without an RTL/EDA flow (see DESIGN.md for the substitution rationale).
"""

from .asic import (
    ASAP7,
    AsicModel,
    AsicReport,
    BlockComplexity,
    FREEPDK45,
    IZHIRISCV_BLOCKS,
    TechnologyNode,
    standard_cell_reports,
)
from .floorplan import block_fractions, floorplan_summary, render_floorplan
from .fpga import (
    AGILEX7_CORE,
    AGILEX7_DEVICE,
    CoreResources,
    FPGADevice,
    FPGAResourceModel,
    MAX10_CORE,
    MAX10_DEVICE,
    ResourceReport,
    agilex_scaling_reports,
    max10_dual_core_report,
)

__all__ = [
    "ASAP7",
    "AsicModel",
    "AsicReport",
    "BlockComplexity",
    "FREEPDK45",
    "IZHIRISCV_BLOCKS",
    "TechnologyNode",
    "standard_cell_reports",
    "block_fractions",
    "floorplan_summary",
    "render_floorplan",
    "AGILEX7_CORE",
    "AGILEX7_DEVICE",
    "CoreResources",
    "FPGADevice",
    "FPGAResourceModel",
    "MAX10_CORE",
    "MAX10_DEVICE",
    "ResourceReport",
    "agilex_scaling_reports",
    "max10_dual_core_report",
]
