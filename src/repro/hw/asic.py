"""Standard-cell (ASIC) area / power / frequency model (Table VII, Fig. 5).

The paper maps one IzhiRISC-V core to the FreePDK45 (45 nm) and ASAP7
(7 nm) standard-cell libraries with OpenROAD and reports per-block area,
power breakdown, achievable clock and derived throughput metrics.  Running
OpenROAD is outside the scope of the Python reproduction; instead the core
is described technology-independently as per-block *gate-equivalent*
complexity, and each technology is described by per-gate area, per-gate
switching energy, leakage and achievable clock.  The constants are
calibrated so the FreePDK45 column reproduces the paper's absolute
numbers; the ASAP7 column then follows from the technology parameters,
which is exactly the kind of scaling argument the paper makes.

Derived metrics use the paper's definitions:

* throughput [updates/s] = clock / cycles-per-update,
* power efficiency [updates/s/W] = throughput / total power,
* peak neural IPS = clock x 15 (the equivalent base-ISA operation count
  of one ``nmpn`` v/u update).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = [
    "TechnologyNode",
    "BlockComplexity",
    "BlockReport",
    "AsicReport",
    "AsicModel",
    "FREEPDK45",
    "ASAP7",
    "IZHIRISCV_BLOCKS",
    "standard_cell_reports",
]

#: Equivalent base-ISA operations of one NPU neuron update (paper §II-C).
NEURAL_OPS_PER_UPDATE = 15


@dataclass(frozen=True)
class TechnologyNode:
    """Technology-dependent constants of one standard-cell library."""

    name: str
    feature_nm: float
    #: Area of one gate equivalent (NAND2-ish) including routing overhead.
    gate_area_um2: float
    #: Achievable clock of the IzhiRISC-V critical path (NPU MAC chain).
    clock_mhz: float
    #: Dynamic energy per gate per toggle at nominal voltage [fJ].
    switching_energy_fj: float
    #: Average toggle activity of the core.
    activity: float
    #: Leakage power per gate [nW].
    leakage_nw_per_gate: float
    #: Ratio of internal (cell-internal) to switching (net) power.
    internal_to_switching: float


@dataclass(frozen=True)
class BlockComplexity:
    """Technology-independent complexity of one pipeline block."""

    name: str
    gate_equivalents: float


@dataclass
class BlockReport:
    """Area of one block in one technology."""

    name: str
    area_um2: float
    fraction: float


@dataclass
class AsicReport:
    """Full standard-cell mapping report for one technology (Table VII)."""

    technology: TechnologyNode
    blocks: List[BlockReport]
    total_area_um2: float
    internal_power_mw: float
    switching_power_mw: float
    leakage_power_uw: float
    clock_mhz: float
    throughput_mupd_s: float
    power_efficiency_gupd_s_w: float
    peak_neural_gips: float

    @property
    def total_power_mw(self) -> float:
        return self.internal_power_mw + self.switching_power_mw + self.leakage_power_uw * 1e-3

    def block_area(self, name: str) -> float:
        for b in self.blocks:
            if b.name == name:
                return b.area_um2
        raise KeyError(name)

    def block_fraction(self, name: str) -> float:
        for b in self.blocks:
            if b.name == name:
                return b.fraction
        raise KeyError(name)

    def as_rows(self) -> Dict[str, float]:
        rows = {"Total area [um2]": self.total_area_um2}
        for b in self.blocks:
            rows[f"{b.name} [um2]"] = b.area_um2
        rows.update(
            {
                "Total power [mW]": self.total_power_mw,
                "Internal [mW]": self.internal_power_mw,
                "Switching [mW]": self.switching_power_mw,
                "Leakage [uW]": self.leakage_power_uw,
                "Clock [MHz]": self.clock_mhz,
                "Throughput [MUpd/s]": self.throughput_mupd_s,
                "Power efficiency [GUpd/s/W]": self.power_efficiency_gupd_s_w,
                "Peak neural IPS [GInstr/s]": self.peak_neural_gips,
            }
        )
        return rows


#: Per-block gate-equivalent complexity of one IzhiRISC-V core, calibrated
#: so the FreePDK45 area column of Table VII is reproduced with the
#: FreePDK45 per-gate area below (1 GE ≈ 0.80 um² in FreePDK45).
IZHIRISCV_BLOCKS: List[BlockComplexity] = [
    BlockComplexity("Fetch/Decode", 21_155.0),
    BlockComplexity("Instruction Cache", 13_236.0),
    BlockComplexity("Data Cache", 15_122.0),
    BlockComplexity("Hazard Unit", 183.0),
    BlockComplexity("ALU", 24_842.0),
    BlockComplexity("NPU", 24_395.0),
    BlockComplexity("DCU", 2_507.0),
    BlockComplexity("Other", 14_311.0),
]

#: FreePDK45 educational 45 nm library.  Per-gate area and switching energy
#: are calibrated so the total area / power of Table VII's FreePDK45 column
#: are reproduced from the block complexities above.
FREEPDK45 = TechnologyNode(
    name="FreePDK45",
    feature_nm=45.0,
    gate_area_um2=0.8264,
    clock_mhz=201.5,
    switching_energy_fj=7.68,
    activity=0.12,
    leakage_nw_per_gate=0.01996,
    internal_to_switching=1.195,
)

#: ASAP7 predictive 7 nm library (same calibration approach).
ASAP7 = TechnologyNode(
    name="ASAP7",
    feature_nm=7.0,
    gate_area_um2=0.05702,
    clock_mhz=316.3,
    switching_energy_fj=1.104,
    activity=0.12,
    leakage_nw_per_gate=0.0557,
    internal_to_switching=1.247,
)


class AsicModel:
    """Maps the block complexities onto a technology node."""

    def __init__(
        self,
        blocks: List[BlockComplexity] | None = None,
        *,
        cycles_per_update: float = 3.0,
    ) -> None:
        self.blocks = list(blocks) if blocks is not None else list(IZHIRISCV_BLOCKS)
        #: Average core cycles per retired neuron update, including the
        #: surrounding loads/stores (calibrated from the cycle simulator).
        self.cycles_per_update = cycles_per_update

    @property
    def total_gate_equivalents(self) -> float:
        return sum(b.gate_equivalents for b in self.blocks)

    def report(self, tech: TechnologyNode) -> AsicReport:
        """Produce the Table VII column for one technology."""
        total_ge = self.total_gate_equivalents
        block_reports = [
            BlockReport(
                name=b.name,
                area_um2=b.gate_equivalents * tech.gate_area_um2,
                fraction=b.gate_equivalents / total_ge,
            )
            for b in self.blocks
        ]
        total_area = total_ge * tech.gate_area_um2

        # Dynamic power: activity * gates * energy/toggle * clock.
        toggles_per_s = tech.clock_mhz * 1e6
        switching_w = tech.activity * total_ge * tech.switching_energy_fj * 1e-15 * toggles_per_s
        internal_w = switching_w * tech.internal_to_switching
        leakage_w = total_ge * tech.leakage_nw_per_gate * 1e-9

        throughput = tech.clock_mhz * 1e6 / self.cycles_per_update
        total_power_w = switching_w + internal_w + leakage_w
        return AsicReport(
            technology=tech,
            blocks=block_reports,
            total_area_um2=total_area,
            internal_power_mw=internal_w * 1e3,
            switching_power_mw=switching_w * 1e3,
            leakage_power_uw=leakage_w * 1e6,
            clock_mhz=tech.clock_mhz,
            throughput_mupd_s=throughput / 1e6,
            power_efficiency_gupd_s_w=throughput / total_power_w / 1e9,
            peak_neural_gips=tech.clock_mhz * 1e6 * NEURAL_OPS_PER_UPDATE / 1e9,
        )

    def npu_area_fraction(self) -> float:
        """Fraction of the core occupied by the NPU (paper: ≈ 20 %)."""
        npu = next(b for b in self.blocks if b.name == "NPU")
        return npu.gate_equivalents / self.total_gate_equivalents

    def dcu_area_fraction(self) -> float:
        """Fraction of the core occupied by the DCU (paper: < 2 %)."""
        dcu = next(b for b in self.blocks if b.name == "DCU")
        return dcu.gate_equivalents / self.total_gate_equivalents


def standard_cell_reports(*, cycles_per_update: float = 3.0) -> Dict[str, AsicReport]:
    """Regenerate both Table VII columns."""
    model = AsicModel(cycles_per_update=cycles_per_update)
    return {tech.name: model.report(tech) for tech in (FREEPDK45, ASAP7)}
