"""IzhiRISC-V reproduction library.

A Python reproduction of *"IzhiRISC-V — a RISC-V-based Processor with
Custom ISA Extension for Spiking Neuron Networks Processing with
Izhikevich Neurons"* (Szczerek & Podobas, SC 2025).

Subpackages
-----------
``repro.fixedpoint``
    Signed Q-format arithmetic (Q7.8 / Q4.11 / Q15.16) and VU-word packing.
``repro.isa``
    RV32IM + custom-0 neuromorphic instruction encodings, assembler and
    disassembler.
``repro.sim``
    Bit-accurate NPU/DCU models, functional ISS, cycle-level 3-stage
    pipeline with caches, shared bus and multi-core system.
``repro.snn``
    Spiking-neural-network substrate: double-precision and fixed-point
    Izhikevich models, the 80-20 cortical network and analysis tools.
``repro.sudoku``
    The Winner-Takes-All SNN Sudoku solver and puzzle utilities.
``repro.codegen``
    RISC-V program generators for the evaluation kernels (extension,
    base-ISA fixed point and soft-float baselines).
``repro.hw``
    FPGA and standard-cell resource/power/frequency models.
``repro.harness``
    Experiment drivers that regenerate every table and figure of the paper.
``repro.runtime``
    Batched multi-network runtime: the ``SimBackend`` registry over the
    four execution paths, the vectorised ``(B, N)`` batch engine and the
    process-pool ``SweepExecutor`` (see ``docs/RUNTIME.md``).
``repro.csp``
    Generic spiking constraint solver: WTA domain encoding, scenario
    generators and the restart-portfolio engine (see ``docs/CSP.md``).
``repro.serve``
    Continuous-batching asyncio solve service streaming many clients'
    instances through one always-hot fused batch (see ``docs/SERVING.md``).
"""

__version__ = "0.2.0"

__all__ = ["__version__"]
