"""Shared continuous-batching slot engine over :class:`BatchedNetwork`.

Three subsystems grew the same bit-exactness-critical slot lifecycle
independently: the batched constraint solver
(:func:`repro.csp.solver._run_batch`), the restart-portfolio engine
(:func:`repro.csp.portfolio.solve_instances_portfolio`) and the solve
service (:class:`repro.serve.SolveService`).  Each hand-rolled the
global step loop over one exact-mode fused batch, the per-row *local*
step counters, the sliding-window decode bookkeeping and the
retain-then-extend batch recomposition.  :class:`SlotEngine` owns that
machinery once; what remains per subsystem is a :class:`SlotPolicy` —
the *scheduling* decision of which rows retire and which admissions
refill the freed slots at each decode checkpoint.

The engine's invariants (every consumer inherits them):

* **Local step counters.**  Each :class:`SlotRow` records the global
  step count at admission (``offset``); its *local* step —
  ``global step - offset`` — drives its anneal phase (``step_offset``
  stamped into the row's drive spec at admission), its sliding-window
  slot and its spike-recency bookkeeping.  A row stacked into a
  half-finished batch therefore replays exactly the trajectory of a
  fresh standalone run.
* **Retain before extend.**  Batch recomposition always drops retired
  rows (:meth:`BatchedNetwork.retain`) *before* stacking admissions
  (:meth:`BatchedNetwork.extend`), with the ``extend([])`` /
  nothing-survives edge cases guarded in one place
  (:meth:`SlotEngine.recompose`): surviving rows' network state and
  noise streams are untouched by their neighbours' departures and
  arrivals.  Direct ``retain``/``extend`` calls outside
  ``repro/runtime/`` are forbidden (reprolint rule RL001,
  ``docs/LINTING.md``).
* **Checkpoint cadence.**  Rows are decoded when their local step hits
  the check interval or their local budget — the union mask over rows
  decides when a checkpoint fires, so mixed-offset batches check each
  row on its own standalone schedule.
* **Zero-step runs.**  ``max_steps <= 0`` never allocates a batch; the
  canonical zero-step window (:meth:`SlotEngine.empty_window`) decodes
  clamps only, identically across the solver, portfolio and serve
  layers.

The engine is deliberately ignorant of constraint graphs: rows carry
``graph`` / ``clamps`` opaquely and decoding is delegated to an injected
:class:`SlotDecoder` (the CSP layers pass
``repro.csp.solver.CSP_SLOT_DECODER``), which keeps ``repro.runtime``
below ``repro.csp`` in the layering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .batch import BatchedNetwork
from .drives import PortfolioAnnealedDrive, annealed_specs, compile_batched_external

__all__ = [
    "OneShotPolicy",
    "SlotCheckpoint",
    "SlotDecision",
    "SlotDecode",
    "SlotDecoder",
    "SlotEngine",
    "SlotOutcome",
    "SlotPolicy",
    "SlotRow",
]


@dataclass(frozen=True)
class SlotDecode:
    """One row's decoded assignment at a checkpoint."""

    values: np.ndarray
    decided: np.ndarray
    #: The decoded assignment satisfies the row's instance.
    solved: bool


@dataclass
class SlotRow:
    """One live batch row: an instance run with a local step budget.

    ``graph`` and ``clamps`` are opaque to the engine — they are handed
    to the injected :class:`SlotDecoder` verbatim.  ``payload`` is
    policy-owned context (an entry index, a portfolio attempt, a serve
    ticket); the engine never looks at it.
    """

    graph: Any
    clamps: Any
    #: Local step budget: the row retires no later than its budget-th
    #: local step (the ``at_budget`` checkpoint mask).
    budget: int
    payload: Any = None
    #: Global steps completed when the row was admitted (its local step
    #: 0).  Assigned by the engine at admission.
    offset: int = 0


#: An admission: the row descriptor plus its freshly built network.
SlotAdmission = Tuple[SlotRow, Any]


@dataclass
class SlotDecision:
    """A policy's verdict at one checkpoint.

    ``keep`` lists the surviving row indices in strictly increasing
    order; every other live row retires.  ``admissions`` are stacked
    into the freed capacity.  ``stop`` ends a :meth:`SlotEngine.run`
    loop after this recomposition (the portfolio's all-instances-solved
    early exit).
    """

    keep: List[int]
    admissions: List[SlotAdmission] = field(default_factory=list)
    stop: bool = False


@dataclass
class SlotOutcome:
    """A retired row's bookkeeping snapshot (recorded by policies)."""

    row: SlotRow
    #: Local steps completed when the row retired.
    local_steps: int
    #: Spikes the row emitted over its lifetime.
    spikes: int
    decode: SlotDecode


class SlotDecoder(Protocol):
    """Decodes one row's assignment from its sliding-window state."""

    def decode(
        self, row: SlotRow, window_counts: np.ndarray, last_spike: np.ndarray
    ) -> SlotDecode:  # pragma: no cover - interface
        ...


class SlotPolicy(Protocol):
    """Scheduling policy driven by :meth:`SlotEngine.run`.

    The engine owns the mechanics (stepping, windows, recomposition);
    the policy owns the decisions (retire / admit / stop).  Incremental
    consumers (the serve scheduler) skip :meth:`initial_admissions` and
    feed checkpoints to :meth:`on_checkpoint` themselves.
    """

    def initial_admissions(self, engine: "SlotEngine") -> List[SlotAdmission]:
        """The first wave of rows (called once, before the first step)."""
        ...  # pragma: no cover - interface

    def on_checkpoint(self, checkpoint: "SlotCheckpoint") -> SlotDecision:
        """Decide retirements and admissions at a decode checkpoint."""
        ...  # pragma: no cover - interface


@dataclass
class SlotCheckpoint:
    """Engine state handed to a policy when any row hits a check point."""

    engine: "SlotEngine"
    #: Global step count (the step just executed).
    step: int
    #: Per-row local step counts (1-based), ``step - offset``.
    local: np.ndarray
    #: Rows at a decode point (check-interval multiple or budget).
    at_check: np.ndarray
    #: Rows whose local budget is exhausted.
    at_budget: np.ndarray

    @property
    def rows(self) -> List[SlotRow]:
        return self.engine.rows

    def decode(self, row: int) -> SlotDecode:
        """Decode one row's current window (see :meth:`SlotEngine.decode_row`)."""
        return self.engine.decode_row(row)


class SlotEngine:
    """The continuous-batching core shared by solve / portfolio / serve.

    Parameters
    ----------
    decoder:
        Decodes a row's sliding window into an assignment
        (:class:`SlotDecoder`); the engine itself is graph-agnostic.
    window:
        Sliding decode window length in steps (``CSPConfig.decode_window``).
    check_interval:
        Local-step cadence of decode checkpoints.
    extendable:
        ``True`` (portfolio/serve) builds batches on
        :class:`~repro.runtime.drives.PortfolioAnnealedDrive` so freed
        slots can be refilled mid-run; ``False`` (one-shot solver
        batches) compiles the drives with
        :func:`~repro.runtime.drives.compile_batched_external`, keeping
        the per-replica fallback for uncompilable providers.
    synapse_mode:
        Forwarded to :meth:`BatchedNetwork.from_networks`; the solve
        engines run ``"exact"``.
    """

    def __init__(
        self,
        *,
        decoder: SlotDecoder,
        window: int,
        check_interval: int,
        extendable: bool = True,
        synapse_mode: str = "exact",
    ) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        if check_interval < 1:
            raise ValueError("check_interval must be positive")
        self._decoder = decoder
        self._window = int(window)
        self._check_interval = int(check_interval)
        self._extendable = bool(extendable)
        self._synapse_mode = synapse_mode

        self._rows: List[SlotRow] = []
        self._batch: Optional[BatchedNetwork] = None
        self._step = 0
        self._num_neurons: Optional[int] = None
        self._updates_per_step: Optional[int] = None
        self._history: Optional[np.ndarray] = None
        self._window_counts: Optional[np.ndarray] = None
        self._last_spike: Optional[np.ndarray] = None
        self._row_spikes = np.zeros(0, dtype=np.int64)
        self._offsets = np.zeros(0, dtype=np.int64)
        self._budgets = np.zeros(0, dtype=np.int64)
        self._row_index = np.zeros(0, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Introspection (read-only views for policies and trailing decodes)
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> List[SlotRow]:
        return self._rows

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    @property
    def global_step(self) -> int:
        """Global steps advanced so far (also the live batch's step index)."""
        return self._step

    @property
    def num_neurons(self) -> Optional[int]:
        return self._num_neurons

    @property
    def updates_per_step(self) -> Optional[int]:
        """Neuron updates per global step per row (neurons x sub-steps)."""
        return self._updates_per_step

    @property
    def row_spikes(self) -> np.ndarray:
        """Per-row lifetime spike counts (parallel to :attr:`rows`)."""
        return self._row_spikes

    def local_steps(self) -> np.ndarray:
        """Per-row local step counts completed so far."""
        return self._step - self._offsets

    def decode_row(self, row: int) -> SlotDecode:
        """Decode one live row's current sliding window."""
        return self._decoder.decode(
            self._rows[row], self._window_counts[row], self._last_spike[row]
        )

    # ------------------------------------------------------------------ #
    # Zero-step canonicalisation
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty_window(num_neurons: int) -> Tuple[np.ndarray, np.ndarray]:
        """The canonical zero-step window: no spikes, no recency.

        Decoding it yields the clamps-only assignment — what the step
        loop produces when the budget is exhausted before the first
        step.  The single source of the ``max_steps <= 0`` semantics for
        the solver, portfolio and serve layers (their historical
        per-layer copies drifted-by-construction; see
        ``repro.csp.solver._empty_result``).
        """
        return (
            np.zeros(num_neurons, dtype=np.int64),
            np.full(num_neurons, -1, dtype=np.int64),
        )

    # ------------------------------------------------------------------ #
    # Admission / retirement (the retain-before-extend owner)
    # ------------------------------------------------------------------ #
    def fast_forward(self, step: int) -> None:
        """Advance the global step clock while no rows are live.

        The serve scheduler uses this to let open-loop arrival schedules
        pass wall-clock-free through idle periods.  Refusing to skip a
        live batch keeps the step index consumed by drive providers
        contiguous.
        """
        if self._rows:
            raise RuntimeError("cannot fast-forward a live batch")
        if int(step) > self._step:
            self._step = int(step)

    def admit(self, admissions: Sequence[SlotAdmission]) -> None:
        """Stack admissions into the live batch, keeping every current row."""
        self.recompose(list(range(len(self._rows))), admissions)

    def recompose(self, keep: Sequence[int], admissions: Sequence[SlotAdmission]) -> None:
        """Apply one retire/admit decision to the live batch.

        ``keep`` lists surviving row indices in strictly increasing
        order.  The canonical composition order — retain survivors, then
        extend with admissions, rebuilding from scratch when nothing
        survives — together with the degenerate-shape guards
        (``extend([])`` no-op, empty recomposition) lives here and only
        here.  Admitted rows are stamped with the current global step:
        ``row.offset`` and their drive spec's ``step_offset`` both become
        ``global_step``, so each new row's local phase sequence replays a
        standalone run's.
        """
        keep = list(keep)
        admissions = list(admissions)
        if len(keep) == len(self._rows) and not admissions:
            return
        new_rows = [self._rows[i] for i in keep]
        new_nets = []
        for row, network in admissions:
            row.offset = self._step
            spec = getattr(network.external_input, "drive_spec", None)
            if spec is not None:
                spec.step_offset = self._step
            new_rows.append(row)
            new_nets.append(network)
        if not new_rows:
            # Nothing survives and nothing arrives: tear the batch down.
            self._rows = []
            self._batch = None
            self._reset_arrays()
            return
        if self._num_neurons is None:
            self._num_neurons = int(new_nets[0].size)
        if self._updates_per_step is None and new_nets:
            substeps = getattr(new_nets[0].population, "substeps_per_ms", 1)
            self._updates_per_step = int(self._num_neurons) * int(substeps)
        self._ensure_arrays()
        if keep and self._batch is not None:
            if len(keep) < len(self._rows):
                self._batch.retain(keep)
            if new_nets:  # the extend([]) guard, centralised
                self._batch.extend(new_nets)
        else:
            self._batch = self._build_batch(new_nets)
        pad = (len(new_nets), int(self._num_neurons))
        self._history = np.concatenate(
            [self._history[:, keep], np.zeros((self._window,) + pad, dtype=bool)], axis=1
        )
        self._window_counts = np.concatenate(
            [self._window_counts[keep], np.zeros(pad, dtype=np.int64)]
        )
        self._last_spike = np.concatenate(
            [self._last_spike[keep], np.full(pad, -1, dtype=np.int64)]
        )
        self._row_spikes = np.concatenate(
            [self._row_spikes[keep], np.zeros(len(new_nets), dtype=np.int64)]
        )
        self._rows = new_rows
        self._offsets = np.asarray([r.offset for r in self._rows], dtype=np.int64)
        self._budgets = np.asarray([r.budget for r in self._rows], dtype=np.int64)
        self._row_index = np.arange(len(self._rows), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Checkpointing (repro.runtime.checkpoint)
    # ------------------------------------------------------------------ #
    def _config_descriptor(self) -> dict:
        return {
            "window": int(self._window),
            "check_interval": int(self._check_interval),
            "extendable": bool(self._extendable),
            "synapse_mode": self._synapse_mode,
        }

    def export_state(self, *, payloads: Optional[Sequence[Any]] = None) -> dict:
        """A picklable snapshot of the engine between two steps.

        Captures the global step clock, every live row's descriptor
        (graph, clamps, budget, admission offset), the sliding-window /
        recency / spike bookkeeping, the batched network state and the
        compiled drive state (noise cursors included) — everything
        :meth:`restore_state` needs to continue bit-identically.

        ``payloads`` substitutes a serialisable token per row for
        ``row.payload`` (the serve scheduler's payloads hold asyncio
        futures, which must never reach a pickle); by default the
        payloads are stored as-is (the one-shot solver uses plain ints).

        Engines running per-replica external providers (an uncompilable
        drive mix) are not checkpointable: the closures' RNG state
        cannot be exported, so this raises ``RuntimeError`` rather than
        silently snapshotting half the state.
        """
        if payloads is not None and len(payloads) != len(self._rows):
            raise ValueError("payload tokens must match the live row count")
        drive_state = None
        batch_state = None
        if self._batch is not None:
            provider = self._batch._batched_external
            exporter = getattr(provider, "export_state", None)
            if exporter is None:
                raise RuntimeError(
                    "cannot checkpoint a batch running per-replica external "
                    "providers (the closures' RNG state is not exportable)"
                )
            batch_state = self._batch.export_state()
            drive_state = exporter()
        rows = []
        for i, row in enumerate(self._rows):
            rows.append(
                {
                    "graph": row.graph,
                    "clamps": row.clamps,
                    "budget": int(row.budget),
                    "offset": int(row.offset),
                    "payload": payloads[i] if payloads is not None else row.payload,
                }
            )
        return {
            "config": self._config_descriptor(),
            "step": int(self._step),
            "num_neurons": self._num_neurons,
            "updates_per_step": self._updates_per_step,
            "rows": rows,
            "history": None if self._history is None else self._history.copy(),
            "window_counts": None if self._window_counts is None else self._window_counts.copy(),
            "last_spike": None if self._last_spike is None else self._last_spike.copy(),
            "row_spikes": self._row_spikes.copy(),
            "batch": batch_state,
            "drive": drive_state,
        }

    def restore_state(self, state: dict, networks: Sequence[Any]) -> None:
        """Rebuild the engine from a snapshot; continues bit-identically.

        ``networks`` must hold one freshly built network per snapshot
        row, in row order, built from the same (graph, clamps, seed,
        config) the original rows were — live networks hold unpicklable
        closures, so the snapshot stores only their state arrays and the
        caller re-derives the structure.  The fresh networks' state and
        drive streams are then overwritten wholesale with the snapshot's,
        which is what makes the restored engine's next step bit-identical
        to the uninterrupted run's.

        Restoring onto an engine with live rows, or with a mismatched
        window/check-interval configuration, raises before mutating.
        """
        if self._rows:
            raise RuntimeError("cannot restore into an engine with live rows")
        config = dict(state["config"])
        if config != self._config_descriptor():
            raise ValueError(
                f"checkpoint engine configuration {config} does not match "
                f"the live engine {self._config_descriptor()}"
            )
        row_states = list(state["rows"])
        networks = list(networks)
        if len(networks) != len(row_states):
            raise ValueError(
                f"restore got {len(networks)} networks for {len(row_states)} snapshot rows"
            )
        self._step = int(state["step"])
        self._num_neurons = state["num_neurons"]
        self._updates_per_step = state["updates_per_step"]
        self._rows = [
            SlotRow(
                graph=rs["graph"],
                clamps=rs["clamps"],
                budget=int(rs["budget"]),
                payload=rs["payload"],
                offset=int(rs["offset"]),
            )
            for rs in row_states
        ]
        if not self._rows:
            self._batch = None
            self._reset_arrays()
            return
        self._batch = self._build_batch(networks)
        self._batch.restore_state(state["batch"])
        provider = self._batch._batched_external
        if provider is not None:
            provider.restore_state(state["drive"])
        self._history = np.array(state["history"], dtype=bool, copy=True)
        self._window_counts = np.array(state["window_counts"], dtype=np.int64, copy=True)
        self._last_spike = np.array(state["last_spike"], dtype=np.int64, copy=True)
        self._row_spikes = np.array(state["row_spikes"], dtype=np.int64, copy=True)
        expected = (len(self._rows), int(self._num_neurons))
        if (
            self._history.shape != (self._window,) + expected
            or self._window_counts.shape != expected
            or self._last_spike.shape != expected
            or self._row_spikes.shape != (len(self._rows),)
        ):
            raise ValueError("checkpoint bookkeeping arrays disagree with the row set")
        self._offsets = np.asarray([r.offset for r in self._rows], dtype=np.int64)
        self._budgets = np.asarray([r.budget for r in self._rows], dtype=np.int64)
        self._row_index = np.arange(len(self._rows), dtype=np.int64)

    def _build_batch(self, networks: Sequence[Any]) -> BatchedNetwork:
        if self._extendable:
            provider = PortfolioAnnealedDrive(annealed_specs(networks))
        else:
            provider = compile_batched_external(networks)
        return BatchedNetwork.from_networks(
            networks, synapse_mode=self._synapse_mode, batched_external=provider
        )

    def _reset_arrays(self) -> None:
        if self._num_neurons is None:
            self._history = None
            self._window_counts = None
            self._last_spike = None
        else:
            n = int(self._num_neurons)
            self._history = np.zeros((self._window, 0, n), dtype=bool)
            self._window_counts = np.zeros((0, n), dtype=np.int64)
            self._last_spike = np.full((0, n), -1, dtype=np.int64)
        self._row_spikes = np.zeros(0, dtype=np.int64)
        self._offsets = np.zeros(0, dtype=np.int64)
        self._budgets = np.zeros(0, dtype=np.int64)
        self._row_index = np.zeros(0, dtype=np.int64)

    def _ensure_arrays(self) -> None:
        if self._history is None:
            self._reset_arrays()

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def step(self) -> Optional[SlotCheckpoint]:
        """Advance every live row by one global step.

        Updates the per-row sliding windows, recency and spike totals on
        *local* step coordinates, then returns a :class:`SlotCheckpoint`
        when any row reaches a decode point (check-interval multiple of
        its local step, or its local budget) — ``None`` otherwise.
        """
        if self._batch is None:
            raise RuntimeError("no live rows to step")
        self._step += 1
        fired = self._batch.step(self._step)
        local = self._step - self._offsets  # per-row local step (1-based)
        slot = local % self._window
        self._window_counts -= self._history[slot, self._row_index]
        self._history[slot, self._row_index] = fired
        self._window_counts += fired
        if fired.any():
            rows, cols = np.nonzero(fired)
            self._last_spike[rows, cols] = local[rows]
            self._row_spikes += fired.sum(axis=1)
        at_budget = local >= self._budgets
        at_check = (local % self._check_interval == 0) | at_budget
        if not at_check.any():
            return None
        return SlotCheckpoint(
            engine=self, step=self._step, local=local, at_check=at_check, at_budget=at_budget
        )

    def run(self, policy: SlotPolicy, *, max_steps: int) -> None:
        """Closed-loop drive: admit the policy's first wave, step to done.

        The loop ends when every row has retired, the global step budget
        is exhausted, or the policy's decision says ``stop``.  Rows
        still live at exit are *not* decoded — callers snapshot them
        through :meth:`decode_row` / :meth:`local_steps` (the trailing
        decode each engine historically performed).  ``max_steps <= 0``
        returns immediately without admitting anything — the zero-step
        guard, centralised: no batch is ever allocated and callers
        decode the canonical :meth:`empty_window`.
        """
        if max_steps <= 0:
            return
        self.recompose(list(range(len(self._rows))), policy.initial_admissions(self))
        while self._rows and self._step < max_steps:
            checkpoint = self.step()
            if checkpoint is None:
                continue
            decision = policy.on_checkpoint(checkpoint)
            self.recompose(decision.keep, decision.admissions)
            if decision.stop:
                break


class OneShotPolicy:
    """Run every admitted row to solution or budget; never refill.

    The policy behind :meth:`SpikingCSPSolver.solve_batch` /
    :func:`repro.csp.solver.solve_instances`: one attempt per instance,
    rows retiring as they solve (batch shrinking) or exhaust their
    budget, outcomes recorded in retirement order in :attr:`outcomes`.
    With every budget equal to the run's ``max_steps``, all rows retire
    inside :meth:`SlotEngine.run` and no trailing decode is needed.
    """

    def __init__(self, admissions: Sequence[SlotAdmission]) -> None:
        self._admissions = list(admissions)
        self.outcomes: List[SlotOutcome] = []

    def initial_admissions(self, engine: SlotEngine) -> List[SlotAdmission]:
        admissions, self._admissions = self._admissions, []
        return admissions

    def on_checkpoint(self, checkpoint: SlotCheckpoint) -> SlotDecision:
        engine = checkpoint.engine
        keep: List[int] = []
        for i, row in enumerate(engine.rows):
            if not checkpoint.at_check[i]:
                keep.append(i)
                continue
            decode = engine.decode_row(i)
            if decode.solved or checkpoint.at_budget[i]:
                self.outcomes.append(
                    SlotOutcome(
                        row=row,
                        local_steps=int(checkpoint.local[i]),
                        spikes=int(engine.row_spikes[i]),
                        decode=decode,
                    )
                )
            else:
                keep.append(i)
        return SlotDecision(keep=keep)
