"""Typed sweep-workload registry: ``name -> config -> SweepReport``.

The four pooled/batched sweep drivers in :mod:`repro.runtime.workloads`
(`pooled_sudoku_sweep`, `pooled_csp_sweep`, `csp_portfolio_sweep`,
`serve_load_sweep`) historically had to be imported ad hoc, each with
its own keyword plumbing.  This module registers them behind one entry
point consumed by the harness and the benchmarks::

    from repro.runtime import run_sweep_workload

    report = run_sweep_workload("pooled-csp", count=16, scenario="latin",
                                scenario_params={"n": 4})
    print(report.summary["solve_rate"], report.worker_utilisation())

Every workload declares a frozen **config dataclass** (defaults match
the underlying driver), so configurations are typed, introspectable and
hashable-by-content; unknown overrides fail at construction instead of
silently disappearing into ``**kwargs``.  Every invocation returns a
:class:`~repro.runtime.sweep.SweepReport` whose ``summary`` field holds
the driver's classic summary dict — fabric-executed workloads carry real
per-task timing/steal/lease counters, while batched/served workloads
(which run on the slot engine, not the fabric) get a synthesized report
with one record per instance.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Type, Union

from .cache import RunResultCache, resolve_cache
from .sweep import SweepExecutor, SweepReport, SweepTaskRecord, derive_task_seed
from . import workloads as _workloads

__all__ = [
    "CSPPortfolioSweepConfig",
    "PooledCSPSweepConfig",
    "PooledSudokuSweepConfig",
    "ServeLoadSweepConfig",
    "WorkloadEntry",
    "register_sweep_workload",
    "run_sweep_workload",
    "sweep_workload_config",
    "sweep_workloads",
]


# ---------------------------------------------------------------------- #
# Typed configurations (defaults mirror the underlying drivers)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class PooledSudokuSweepConfig:
    """Configuration of the ``pooled-sudoku`` fabric workload."""

    count: int = 8
    base_seed: int = 1000
    target_clues: int = 30
    max_steps: int = 6000
    check_interval: int = 10
    solver_seed: int = 7
    mix_seeds: bool = True
    chunk_size: Optional[int] = None
    lease_timeout: float = 60.0


@dataclass(frozen=True)
class PooledCSPSweepConfig:
    """Configuration of the ``pooled-csp`` fabric workload."""

    scenario: str = "coloring"
    count: int = 8
    base_seed: int = 0
    solver_seed: int = 7
    backend: str = "fixed"
    max_steps: int = 3000
    check_interval: int = 10
    scenario_params: Mapping[str, Any] = field(default_factory=dict)
    chunk_size: Optional[int] = None
    lease_timeout: float = 60.0


@dataclass(frozen=True)
class CSPPortfolioSweepConfig:
    """Configuration of the ``csp-portfolio`` batched workload."""

    scenario: str = "coloring"
    count: int = 8
    base_seed: int = 0
    backend: str = "fixed"
    max_steps: int = 3000
    check_interval: int = 10
    slots: Optional[int] = None
    scenario_params: Mapping[str, Any] = field(default_factory=dict)
    #: Optional ``repro.csp.PortfolioConfig`` / ``CSPConfig`` objects.
    portfolio: Any = None
    config: Any = None


@dataclass(frozen=True)
class ServeLoadSweepConfig:
    """Configuration of the ``serve-load`` open-loop service workload."""

    capacity: int = 32
    queue_limit: Optional[int] = None
    num_clients: int = 8
    requests_per_client: int = 8
    mean_interarrival_steps: float = 40.0
    scenario: str = "coloring"
    scenario_params: Mapping[str, Any] = field(default_factory=dict)
    unique_instances: int = 24
    seed: int = 0
    max_steps: int = 1500
    deadline: Optional[float] = None
    backend: str = "fixed"
    check_interval: int = 10
    #: Optional ``repro.csp.CSPConfig`` for the served solves.
    config: Any = None


CachePolicy = Union[None, bool, str, Path, RunResultCache]
Runner = Callable[[Any, Optional[SweepExecutor], CachePolicy], SweepReport]


@dataclass(frozen=True)
class WorkloadEntry:
    """One registered sweep workload."""

    name: str
    config_type: Type[Any]
    runner: Runner
    description: str


_REGISTRY: Dict[str, WorkloadEntry] = {}


def register_sweep_workload(
    name: str,
    config_type: Type[Any],
    runner: Runner,
    description: str,
    *,
    replace: bool = False,
) -> WorkloadEntry:
    """Register a workload under ``name`` (same idiom as the backend registry)."""
    if name in _REGISTRY and not replace:
        raise ValueError(f"sweep workload {name!r} is already registered")
    entry = WorkloadEntry(name, config_type, runner, description)
    _REGISTRY[name] = entry
    return entry


def sweep_workloads() -> List[str]:
    """Sorted names of all registered sweep workloads."""
    return sorted(_REGISTRY)


def sweep_workload_config(name: str, **overrides: Any) -> Any:
    """Build the typed config of workload ``name`` (unknown keys raise)."""
    entry = _entry(name)
    return entry.config_type(**overrides)


def _entry(name: str) -> WorkloadEntry:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sweep_workloads())
        raise KeyError(f"unknown sweep workload {name!r}; registered: {known}") from None


def run_sweep_workload(
    name: str,
    config: Any = None,
    *,
    executor: Optional[SweepExecutor] = None,
    cache: CachePolicy = False,
    **overrides: Any,
) -> SweepReport:
    """Run the registered workload ``name`` and return its :class:`SweepReport`.

    ``config`` is the workload's typed config dataclass (or ``None`` for
    the defaults); keyword ``overrides`` are applied on top via
    :func:`dataclasses.replace`, so a typo'd parameter fails loudly.
    ``executor`` selects serial vs fabric execution for the pooled
    workloads (batched/served workloads run on the slot engine and
    ignore it); ``cache`` is the resume/dedup store policy.
    """
    entry = _entry(name)
    if config is None:
        config = entry.config_type(**overrides)
    else:
        if not isinstance(config, entry.config_type):
            raise TypeError(
                f"workload {name!r} expects a {entry.config_type.__name__}, "
                f"got {type(config).__name__}"
            )
        if overrides:
            config = dataclasses.replace(config, **overrides)
    return entry.runner(config, executor, cache)


def _synthesize_report(
    mode: str,
    summary: Mapping[str, Any],
    results: List[Any],
    seeds: List[int],
    elapsed: float,
) -> SweepReport:
    """Wrap a slot-engine workload's summary in the uniform report shape."""
    records = [
        SweepTaskRecord(index=i, seed=seed, worker=-1, duration=0.0, cached=False, attempts=1)
        for i, seed in enumerate(seeds)
    ]
    return SweepReport(
        results=results,
        records=records,
        mode=mode,
        num_workers=1,
        elapsed=elapsed,
        summary=summary,
    )


# ---------------------------------------------------------------------- #
# Built-in workloads
# ---------------------------------------------------------------------- #
def _run_pooled_sudoku(
    config: PooledSudokuSweepConfig,
    executor: Optional[SweepExecutor],
    cache: CachePolicy,
) -> SweepReport:
    return _workloads.pooled_sudoku_sweep(
        config.count,
        base_seed=config.base_seed,
        target_clues=config.target_clues,
        max_steps=config.max_steps,
        check_interval=config.check_interval,
        solver_seed=config.solver_seed,
        mix_seeds=config.mix_seeds,
        executor=executor,
        cache=cache,
        chunk_size=config.chunk_size,
        lease_timeout=config.lease_timeout,
        return_report=True,
    )


def _run_pooled_csp(
    config: PooledCSPSweepConfig,
    executor: Optional[SweepExecutor],
    cache: CachePolicy,
) -> SweepReport:
    return _workloads.pooled_csp_sweep(
        config.scenario,
        config.count,
        base_seed=config.base_seed,
        solver_seed=config.solver_seed,
        backend=config.backend,
        max_steps=config.max_steps,
        check_interval=config.check_interval,
        scenario_params=dict(config.scenario_params),
        executor=executor,
        cache=cache,
        chunk_size=config.chunk_size,
        lease_timeout=config.lease_timeout,
        return_report=True,
    )


def _run_csp_portfolio(
    config: CSPPortfolioSweepConfig,
    executor: Optional[SweepExecutor],
    cache: CachePolicy,
) -> SweepReport:
    started = time.perf_counter()
    summary = _workloads.csp_portfolio_sweep(
        config.scenario,
        config.count,
        base_seed=config.base_seed,
        portfolio=config.portfolio,
        config=config.config,
        backend=config.backend,
        max_steps=config.max_steps,
        check_interval=config.check_interval,
        slots=config.slots,
        scenario_params=dict(config.scenario_params),
    )
    return _synthesize_report(
        "batched",
        summary,
        list(summary["results"]),
        # reprolint: disable-next-line=RL002 -- record labels mirror the instance seeds
        [config.base_seed + i for i in range(config.count)],
        time.perf_counter() - started,
    )


def _run_serve_load(
    config: ServeLoadSweepConfig,
    executor: Optional[SweepExecutor],
    cache: CachePolicy,
) -> SweepReport:
    started = time.perf_counter()
    summary = _workloads.serve_load_sweep(
        capacity=config.capacity,
        queue_limit=config.queue_limit,
        num_clients=config.num_clients,
        requests_per_client=config.requests_per_client,
        mean_interarrival_steps=config.mean_interarrival_steps,
        scenario=config.scenario,
        scenario_params=dict(config.scenario_params),
        unique_instances=config.unique_instances,
        seed=config.seed,
        max_steps=config.max_steps,
        deadline=config.deadline,
        config=config.config,
        backend=config.backend,
        check_interval=config.check_interval,
        cache=resolve_cache(cache),
    )
    return _synthesize_report(
        "serve",
        summary,
        list(summary["rows"]),
        [derive_task_seed(config.seed, i) for i in range(len(summary["rows"]))],
        time.perf_counter() - started,
    )


register_sweep_workload(
    "pooled-sudoku",
    PooledSudokuSweepConfig,
    _run_pooled_sudoku,
    "one SNN Sudoku solver run per generated puzzle, over the sweep fabric",
)
register_sweep_workload(
    "pooled-csp",
    PooledCSPSweepConfig,
    _run_pooled_csp,
    "one spiking CSP solver run per generated instance, over the sweep fabric",
)
register_sweep_workload(
    "csp-portfolio",
    CSPPortfolioSweepConfig,
    _run_csp_portfolio,
    "restart-portfolio pool solve on one saturated exact-mode batch",
)
register_sweep_workload(
    "serve-load",
    ServeLoadSweepConfig,
    _run_serve_load,
    "seeded open-loop client load through the continuous-batching solve service",
)
