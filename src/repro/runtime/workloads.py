"""High-level sweep drivers built on the batch engine and sweep executor.

Two sweep families cover the paper's evaluation workloads:

* :func:`eighty_twenty_seed_sweep` — run the 80-20 cortical network for a
  list of seeds.  With ``batched=True`` (default) the replicas are
  stacked into one :class:`~repro.runtime.batch.BatchedNetwork` and
  advanced in fused ``(B, N)`` updates; with ``batched=False`` the same
  networks are run through the sequential ``SNNNetwork`` loop (the
  baseline the batched-runtime benchmark measures against).
* :func:`pooled_sudoku_sweep` — solve a generated puzzle set by fanning
  one solver run per puzzle out over the
  :class:`~repro.runtime.sweep.SweepExecutor` work-stealing fabric.
  (The vectorised alternative, which runs all puzzles as one batched
  network, is :meth:`repro.sudoku.solver.SNNSudokuSolver.solve_batch`.)

All four pooled/batched sweep drivers here (``pooled_sudoku_sweep``,
``pooled_csp_sweep``, ``csp_portfolio_sweep``, ``serve_load_sweep``) are
also registered in :mod:`repro.runtime.registry` behind one typed
``name -> config -> SweepReport`` entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..snn.analysis import SpikeRaster, rhythm_summary
from ..snn.eighty_twenty import EightyTwentyConfig
from ..snn.network import SNNNetwork
from .batch import BatchedNetwork
from .backends import RunRequest, RunResult, eighty_twenty_config, get_backend, run_on_backend
from .cache import RunResultCache
from .drives import compile_batched_external
from .sweep import SweepExecutor, SweepReport, SweepSpec, SweepTask, derive_task_seed

__all__ = [
    "SeedSweepResult",
    "build_eighty_twenty_replicas",
    "batched_thalamic_provider",
    "csp_portfolio_sweep",
    "eighty_twenty_seed_sweep",
    "pooled_sudoku_sweep",
    "pooled_csp_sweep",
    "run_many_on_backend",
    "serve_load_sweep",
]


@dataclass
class SeedSweepResult:
    """Rasters plus per-replica rhythm summaries of one seed sweep."""

    seeds: List[int]
    rasters: List[SpikeRaster]
    summaries: List[Dict[str, Any]]
    backend: str
    batched: bool

    @property
    def mean_rate_hz(self) -> float:
        """Mean firing rate across all replicas."""
        if not self.rasters:
            return 0.0
        return float(np.mean([r.mean_rate_hz() for r in self.rasters]))


def build_eighty_twenty_replicas(
    seeds: Sequence[int],
    *,
    backend: str = "fixed",
    num_neurons: Optional[int] = None,
    current_mode: str = "recompute",
    h_shift: int = 1,
) -> List[SNNNetwork]:
    """One freshly built 80-20 network per seed (ready for stacking).

    Every network draws its parameters, weights and thalamic-noise stream
    from its own seeded generator, exactly as a sequential
    :func:`repro.snn.eighty_twenty.run_eighty_twenty` call would.
    """
    sim_backend = get_backend(backend)
    if not sim_backend.supports_batching:
        raise ValueError(f"backend {backend!r} is not a network-level backend")
    from .backends import RunRequest

    return [
        sim_backend.build_network(
            RunRequest(
                workload="eighty-twenty",
                num_neurons=num_neurons,
                seed=int(seed),
                options={"current_mode": current_mode, "h_shift": h_shift},
            )
        )
        for seed in seeds
    ]


def batched_thalamic_provider(
    configs: Sequence[EightyTwentyConfig], *, seed: int = 0
) -> Callable[[int], np.ndarray]:
    """Fully-vectorised thalamic noise for a batch of 80-20 replicas.

    Draws the whole ``(B, N)`` input in one generator call per step and
    scales the excitatory/inhibitory columns, instead of two draws plus a
    concatenation per replica.  The noise is statistically identical to
    the per-replica streams but comes from a single batch generator, so
    runs using this provider are *not* bit-comparable with sequential
    per-replica runs — use per-replica providers (the default) for
    equivalence checks.
    """
    profiles = {
        (c.num_excitatory, c.num_inhibitory, c.thalamic_excitatory, c.thalamic_inhibitory)
        for c in configs
    }
    if len(profiles) != 1:
        raise ValueError(
            "all replicas must share the excitatory/inhibitory split and thalamic scales"
        )
    num_exc, num_inh, _, _ = next(iter(profiles))
    scale = np.concatenate(
        [
            np.full(num_exc, configs[0].thalamic_excitatory),
            np.full(num_inh, configs[0].thalamic_inhibitory),
        ]
    )
    rng = np.random.default_rng(seed)
    batch = len(configs)

    def provider(step: int) -> np.ndarray:
        return rng.standard_normal((batch, num_exc + num_inh)) * scale

    return provider


def eighty_twenty_seed_sweep(
    seeds: Sequence[int],
    *,
    num_steps: int = 1000,
    backend: str = "fixed",
    num_neurons: Optional[int] = None,
    current_mode: str = "recompute",
    batched: bool = True,
    fused: bool = False,
    noise_seed: Optional[int] = None,
) -> SeedSweepResult:
    """Run the 80-20 network once per seed and summarise every raster.

    Parameters
    ----------
    batched:
        ``True`` stacks the replicas into a :class:`BatchedNetwork`;
        ``False`` runs the identical sequential loop (baseline).
    fused:
        With ``batched=True``, additionally vectorise the synaptic
        propagation and the thalamic noise across the batch (the
        high-throughput mode; see :mod:`repro.runtime.batch` for the
        exactness trade-off).
    noise_seed:
        Seed of the batch noise generator in fused mode (defaults to the
        first sweep seed).
    """
    seeds = [int(s) for s in seeds]
    networks = build_eighty_twenty_replicas(
        seeds, backend=backend, num_neurons=num_neurons, current_mode=current_mode
    )
    if not batched:
        rasters = [net.run(num_steps) for net in networks]
    elif fused:
        configs = [eighty_twenty_config(num_neurons, seed) for seed in seeds]
        provider = batched_thalamic_provider(
            configs, seed=noise_seed if noise_seed is not None else seeds[0]
        )
        batch = BatchedNetwork.from_networks(
            networks, synapse_mode="fused", batched_external=provider
        )
        rasters = batch.run(num_steps)
    else:
        # The per-replica thalamic closures compile into one bit-exact
        # vectorised provider (per-replica streams pregenerated in
        # chunks), so the exact sweep stays bit-identical to the
        # sequential loop while skipping B Python calls per step.
        batch = BatchedNetwork.from_networks(
            networks,
            synapse_mode="exact",
            batched_external=compile_batched_external(networks),
        )
        rasters = batch.run(num_steps)
    summaries = []
    for seed, raster in zip(seeds, rasters):
        summary = rhythm_summary(raster)
        summary["seed"] = seed
        summary["backend"] = backend
        summaries.append(summary)
    return SeedSweepResult(
        seeds=seeds, rasters=rasters, summaries=summaries, backend=backend, batched=batched
    )


# ---------------------------------------------------------------------- #
# Generic backend fan-out (ISA/cycle-level sweeps with result caching)
# ---------------------------------------------------------------------- #
def _run_request_task(task: SweepTask) -> RunResult:
    """Module-level task function (picklable for the process pool)."""
    params = task.params
    return run_on_backend(params["backend"], params["request"], cache=params["cache"])


def run_many_on_backend(
    name: str,
    requests: Sequence[RunRequest],
    *,
    executor: Optional[SweepExecutor] = None,
    cache: Optional[RunResultCache] = None,
) -> List[RunResult]:
    """Run many independent requests on one backend, results in order.

    ISA- and cycle-level backends cannot be stacked into NumPy batches,
    so the requests fan out over a
    :class:`~repro.runtime.sweep.SweepExecutor` (serial by default,
    work-stealing process-parallel when an executor with
    ``mode="process"`` is passed).  With ``cache`` set, each run goes
    through :class:`~repro.runtime.cache.RunResultCache` — repeated
    sweeps, and sweeps sharing requests, skip recomputation entirely
    (the on-disk store is shared between pool workers).
    """
    executor = executor if executor is not None else SweepExecutor(mode="serial")
    param_sets = [{"backend": name, "request": request, "cache": cache} for request in requests]
    spec = SweepSpec(fn=_run_request_task, param_sets=param_sets)
    return executor.execute(spec).results


# ---------------------------------------------------------------------- #
# Pooled Sudoku sweep (process-parallel, one solver run per puzzle)
# ---------------------------------------------------------------------- #
def _solve_one_sudoku(task: SweepTask) -> Dict[str, Any]:
    """Module-level task function (picklable for the process pool)."""
    from ..sudoku import SNNSudokuSolver
    from ..sudoku.puzzles import PuzzleGenerator

    params = task.params
    generated = PuzzleGenerator().generate(
        seed=int(params["puzzle_seed"]), target_clues=int(params["target_clues"])
    )
    solver = SNNSudokuSolver(seed=int(params.get("solver_seed", 7)))
    result = solver.solve(
        generated.puzzle,
        max_steps=int(params["max_steps"]),
        check_interval=int(params.get("check_interval", 10)),
    )
    return {
        "puzzle_seed": int(params["puzzle_seed"]),
        "num_clues": generated.num_clues,
        "solved": result.solved,
        "steps": result.steps,
        "total_spikes": result.total_spikes,
    }


def pooled_sudoku_sweep(
    count: int,
    *,
    base_seed: int = 1000,
    target_clues: int = 30,
    max_steps: int = 6000,
    check_interval: int = 10,
    solver_seed: int = 7,
    mix_seeds: bool = True,
    executor: Optional[SweepExecutor] = None,
    cache: Union[None, bool, str, Path, RunResultCache] = False,
    chunk_size: Optional[int] = None,
    lease_timeout: float = 60.0,
    return_report: bool = False,
) -> Union[Dict[str, Any], SweepReport]:
    """Solve ``count`` generated puzzles, optionally over the sweep fabric.

    With ``mix_seeds`` (the default) each task derives its puzzle seed
    from ``(base_seed, index)`` through :func:`~repro.runtime.sweep.derive_task_seed`
    ``SeedSequence`` spawning — the well-mixed scheme
    :mod:`repro.runtime.sweep` recommends.  ``mix_seeds=False`` restores
    the legacy ``base_seed + index`` scheme (the correlated-seed pattern
    the sweep module's docstring warns against, kept only to reproduce
    historical tables; it also matches
    :func:`repro.sudoku.puzzles.generate_puzzle_set`).  Either way
    results are deterministic and identical between serial and process
    execution.  ``solver_seed`` selects the solver's exploration-noise
    stream for every task (it used to be hard-wired to the solver
    default, making noise-seed sensitivity studies impossible through
    this entry point).

    ``cache`` / ``chunk_size`` / ``lease_timeout`` configure the
    :class:`~repro.runtime.sweep.SweepSpec` (resume store, lease
    granularity); ``return_report=True`` returns the full
    :class:`~repro.runtime.sweep.SweepReport` (summary attached) instead
    of the summary dict — the form the workload registry uses.
    """
    executor = executor if executor is not None else SweepExecutor(mode="serial")
    param_sets = [
        {
            # reprolint: disable-next-line=RL002 -- documented mix_seeds=False legacy opt-out
            "puzzle_seed": derive_task_seed(base_seed, i) if mix_seeds else base_seed + i,
            "target_clues": target_clues,
            "max_steps": max_steps,
            "check_interval": check_interval,
            "solver_seed": solver_seed,
        }
        for i in range(count)
    ]
    report = executor.execute(
        SweepSpec(
            fn=_solve_one_sudoku,
            param_sets=param_sets,
            base_seed=base_seed,
            cache=cache,
            chunk_size=chunk_size,
            lease_timeout=lease_timeout,
        )
    )
    results = report.results
    solved = sum(1 for r in results if r["solved"])
    report.summary = {
        "num_puzzles": count,
        "solved": solved,
        "solve_rate": solved / count if count else 0.0,
        "mean_steps": float(np.mean([r["steps"] for r in results])) if results else 0.0,
        "results": results,
    }
    return report if return_report else report.summary


# ---------------------------------------------------------------------- #
# Pooled constraint-solver sweep (one spiking CSP run per instance)
# ---------------------------------------------------------------------- #
def _solve_one_csp(task: SweepTask) -> Dict[str, Any]:
    """Module-level task function (picklable for the process pool)."""
    from ..csp import SpikingCSPSolver
    from ..csp.scenarios import make_instance

    params = task.params
    graph, clamps = make_instance(
        str(params["scenario"]),
        seed=int(params["instance_seed"]),
        **dict(params.get("scenario_params") or {}),
    )
    solver = SpikingCSPSolver(
        graph,
        backend=str(params.get("backend", "fixed")),
        seed=int(params.get("solver_seed", 7)),
    )
    result = solver.solve(
        clamps,
        max_steps=int(params["max_steps"]),
        check_interval=int(params.get("check_interval", 10)),
    )
    return {
        "scenario": str(params["scenario"]),
        "instance_seed": int(params["instance_seed"]),
        "num_neurons": graph.num_neurons,
        "solved": result.solved,
        "steps": result.steps,
        "total_spikes": result.total_spikes,
    }


def pooled_csp_sweep(
    scenario: str,
    count: int,
    *,
    base_seed: int = 0,
    solver_seed: int = 7,
    backend: str = "fixed",
    max_steps: int = 3000,
    check_interval: int = 10,
    scenario_params: Optional[Dict[str, Any]] = None,
    executor: Optional[SweepExecutor] = None,
    cache: Union[None, bool, str, Path, RunResultCache] = False,
    chunk_size: Optional[int] = None,
    lease_timeout: float = 60.0,
    return_report: bool = False,
) -> Union[Dict[str, Any], SweepReport]:
    """Solve ``count`` generated CSP instances, optionally over the fabric.

    Each task derives its instance from ``base_seed + index`` through the
    deterministic scenario generators (:mod:`repro.csp.scenarios`), so
    results are identical between serial and process execution — and
    identical across lease reassignments, since a task is a pure
    function of its parameters and seed.  The vectorised alternative,
    which stacks all instances into one batched network, is
    :func:`repro.csp.solver.solve_instances` (used by the harness
    solve-rate experiment).  ``cache`` enables crash-tolerant resume
    through :class:`~repro.runtime.cache.RunResultCache`;
    ``return_report=True`` returns the :class:`SweepReport` (summary
    attached) instead of the summary dict.
    """
    executor = executor if executor is not None else SweepExecutor(mode="serial")
    param_sets = [
        {
            "scenario": scenario,
            "instance_seed": base_seed + i,  # reprolint: disable=RL002 -- instance identity
            "solver_seed": solver_seed,
            "backend": backend,
            "max_steps": max_steps,
            "check_interval": check_interval,
            "scenario_params": dict(scenario_params or {}),
        }
        for i in range(count)
    ]
    report = executor.execute(
        SweepSpec(
            fn=_solve_one_csp,
            param_sets=param_sets,
            base_seed=base_seed,
            cache=cache,
            chunk_size=chunk_size,
            lease_timeout=lease_timeout,
        )
    )
    results = report.results
    solved = sum(1 for r in results if r["solved"])
    report.summary = {
        "scenario": scenario,
        "num_instances": count,
        "solved": solved,
        "solve_rate": solved / count if count else 0.0,
        "mean_steps": float(np.mean([r["steps"] for r in results])) if results else 0.0,
        "results": results,
    }
    return report if return_report else report.summary


# ---------------------------------------------------------------------- #
# Restart-portfolio constraint-solver sweep (one saturated batch)
# ---------------------------------------------------------------------- #
def csp_portfolio_sweep(
    scenario: str,
    count: int,
    *,
    base_seed: int = 0,
    portfolio: Optional[Any] = None,
    config: Optional[Any] = None,
    backend: str = "fixed",
    max_steps: int = 3000,
    check_interval: int = 10,
    slots: Optional[int] = None,
    scenario_params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Solve ``count`` generated instances with a restart portfolio.

    The batched counterpart of :func:`pooled_csp_sweep` for hard instance
    pools: all instances advance as one exact-mode batch and freed batch
    slots are refilled with restart attempts of still-unsolved instances
    (:func:`repro.csp.portfolio.solve_instances_portfolio`), so the fused
    engine stays saturated for the whole global step budget.  Instances
    derive deterministically from ``base_seed + index`` through the
    scenario generators, exactly as :func:`pooled_csp_sweep` does.

    Returns the usual sweep summary plus portfolio accounting:
    ``total_attempts`` and ``total_neuron_updates`` summed over every
    attempt of every instance.
    """
    from ..csp.portfolio import solve_instances_portfolio
    from ..csp.scenarios import make_instance

    instances = [
        # reprolint: disable-next-line=RL002 -- instance-identity seeds (frozen corpus)
        make_instance(scenario, seed=base_seed + i, **dict(scenario_params or {}))
        for i in range(count)
    ]
    results = solve_instances_portfolio(
        instances,
        config=config,
        portfolio=portfolio,
        backend=backend,
        max_steps=max_steps,
        check_interval=check_interval,
        slots=slots,
    )
    solved = sum(1 for r in results if r.solved)
    return {
        "scenario": scenario,
        "num_instances": count,
        "solved": solved,
        "solve_rate": solved / count if count else 0.0,
        "mean_steps": float(np.mean([r.steps for r in results])) if results else 0.0,
        "total_attempts": int(sum(r.attempts for r in results)),
        "total_neuron_updates": int(sum(r.neuron_updates for r in results)),
        "results": results,
    }


def serve_load_sweep(
    *,
    capacity: int = 32,
    queue_limit: Optional[int] = None,
    num_clients: int = 8,
    requests_per_client: int = 8,
    mean_interarrival_steps: float = 40.0,
    scenario: str = "coloring",
    scenario_params: Optional[Dict[str, Any]] = None,
    unique_instances: int = 24,
    seed: int = 0,
    max_steps: int = 1500,
    deadline: Optional[float] = None,
    retry_budget: int = 0,
    retry_base_steps: float = 8.0,
    retry_cap_steps: float = 128.0,
    retry_deadline_steps: Optional[float] = None,
    config: Optional[Any] = None,
    backend: str = "fixed",
    check_interval: int = 10,
    cache: Optional[RunResultCache] = None,
) -> Dict[str, Any]:
    """Drive a seeded open-loop workload through a :class:`SolveService`.

    The online counterpart of :func:`csp_portfolio_sweep`: instead of
    handing the engine the whole instance pool up front, ``num_clients``
    synthetic clients submit requests on a Poisson arrival schedule and
    the continuous-batching service streams them through one always-hot
    exact-mode batch (:mod:`repro.serve`).  The service runs on its
    deterministic step clock, so the summary — including shed counts and
    latency percentiles — is exactly reproducible for a given seed.

    With a ``retry_budget``, clients that get shed back off with seeded
    jittered exponential delays and resubmit (see
    :class:`~repro.serve.loadgen.OpenLoopLoad`); the client-side retry
    ledger is reported alongside the service metrics.

    Returns the served rows (``(client, pool_index, ServeResult-or-None)``)
    plus the final :class:`~repro.serve.metrics.MetricsSnapshot` fields.
    """
    from ..serve import OpenLoopLoad, run_open_loop_sync

    spec = OpenLoopLoad(
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        mean_interarrival_steps=mean_interarrival_steps,
        scenario=scenario,
        scenario_params=dict(scenario_params or {}),
        unique_instances=unique_instances,
        seed=seed,
        max_steps=max_steps,
        deadline=deadline,
        retry_budget=retry_budget,
        retry_base_steps=retry_base_steps,
        retry_cap_steps=retry_cap_steps,
        retry_deadline_steps=retry_deadline_steps,
    )
    rows, metrics, load_stats = run_open_loop_sync(
        spec,
        capacity=capacity,
        queue_limit=queue_limit,
        config=config,
        backend=backend,
        check_interval=check_interval,
        seed=seed,
        cache=cache,
        clock="steps",
        default_max_steps=max_steps,
    )
    served = [result for _, _, result in rows if result is not None]
    solved = sum(1 for r in served if r.solved)
    return {
        "scenario": scenario,
        "capacity": capacity,
        "num_requests": spec.total_requests,
        "served": len(served),
        "solved": solved,
        "solve_rate": solved / len(served) if served else 0.0,
        "retry_budget": retry_budget,
        "retries": load_stats["retries"],
        "recovered_by_retry": load_stats["recovered_by_retry"],
        "shed_after_retries": load_stats["shed"],
        "rows": rows,
        "metrics": metrics.as_dict(),
    }
