"""Batched multi-network runtime for the IzhiRISC-V reproduction.

This package makes *batches* of independent simulations the unit of work
(see ``docs/RUNTIME.md`` for worked examples):

:mod:`repro.runtime.backends`
    :class:`SimBackend` protocol plus a registry unifying the four
    execution paths — float64 reference, fixed-point NPU datapath,
    functional ISA simulator and cycle-accurate core — behind one
    ``RunRequest -> RunResult`` interface.
:mod:`repro.runtime.batch`
    :class:`BatchedNetwork`, the vectorised batch engine stacking ``B``
    networks into ``(B, N)`` state arrays advanced by fused updates;
    bit-exact with the sequential engine in its default mode.
:mod:`repro.runtime.cache`
    :class:`RunResultCache`, a content-addressed on-disk cache serving
    repeated backend runs without recomputation (keyed by backend name,
    request and a fingerprint of the ``repro`` sources).
:mod:`repro.runtime.checkpoint`
    Crash-safe snapshots: versioned, checksummed, atomically written
    checkpoint files plus a pruning :class:`CheckpointStore` and the
    deterministic :class:`FaultPlan` used by the chaos suites; paired
    with the ``export_state``/``restore_state`` hooks on
    :class:`BatchedNetwork`, the compiled drives and :class:`SlotEngine`
    so a restored solve continues bit-identically.
:mod:`repro.runtime.drives`
    Drive compilation: per-replica external-input closures compiled into
    one vectorised ``(B, N)`` provider with bit-identical per-replica
    noise streams (pregenerated in chunks), feeding the batch engine.
:mod:`repro.runtime.slots`
    :class:`SlotEngine`, the continuous-batching core shared by the
    one-shot solver batches, the restart portfolio and the solve
    service: the global step loop, per-row local step counters,
    sliding-window decode bookkeeping and retain-before-extend batch
    recomposition, with refill behaviour delegated to a pluggable
    :class:`SlotPolicy`.
:mod:`repro.runtime.sweep`
    :class:`SweepExecutor`, the work-stealing sweep fabric: workers pull
    chunked task leases from a shared queue (leases expire and are
    reassigned when a worker dies or stalls), completed tasks land in
    the :class:`RunResultCache` for crash-tolerant resume, and every
    sweep is described by a typed :class:`SweepSpec` and answered with a
    :class:`SweepReport` (with a warned serial fallback when the task
    function cannot be pickled).
:mod:`repro.runtime.workloads`
    Sweep drivers for the paper's workloads: batched 80-20 seed sweeps
    plus pooled Sudoku and constraint-solver (``repro.csp``) solve-rate
    sweeps.
:mod:`repro.runtime.registry`
    The typed workload registry: ``run_sweep_workload(name, config)``
    resolves the four pooled/batched sweep drivers behind one
    ``name -> typed config -> SweepReport`` entry point.
"""

from .backends import (
    RunRequest,
    RunResult,
    SimBackend,
    available_backends,
    eighty_twenty_config,
    get_backend,
    register_backend,
    run_on_backend,
)
from .batch import BatchedNetwork, BatchIncompatibleError
from .cache import RunResultCache, code_fingerprint, default_cache
from .checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointStore,
    CheckpointVersionError,
    FaultPlan,
    read_checkpoint,
    write_checkpoint,
)
from .drives import (
    AnnealedNoiseSpec,
    CompiledAnnealedDrive,
    CompiledDrive,
    CompiledScaledDrive,
    PortfolioAnnealedDrive,
    ScaledNoiseSpec,
    compile_batched_external,
)
from .slots import (
    OneShotPolicy,
    SlotCheckpoint,
    SlotDecision,
    SlotDecode,
    SlotDecoder,
    SlotEngine,
    SlotOutcome,
    SlotPolicy,
    SlotRow,
)
from .sweep import (
    SweepExecutor,
    SweepReport,
    SweepSpec,
    SweepTask,
    SweepTaskRecord,
    derive_task_seed,
    sweep_task_key,
)
from .workloads import (
    SeedSweepResult,
    batched_thalamic_provider,
    build_eighty_twenty_replicas,
    csp_portfolio_sweep,
    eighty_twenty_seed_sweep,
    pooled_csp_sweep,
    pooled_sudoku_sweep,
    run_many_on_backend,
    serve_load_sweep,
)
from .registry import (
    CSPPortfolioSweepConfig,
    PooledCSPSweepConfig,
    PooledSudokuSweepConfig,
    ServeLoadSweepConfig,
    WorkloadEntry,
    register_sweep_workload,
    run_sweep_workload,
    sweep_workload_config,
    sweep_workloads,
)

__all__ = [
    "RunRequest",
    "RunResult",
    "SimBackend",
    "available_backends",
    "eighty_twenty_config",
    "get_backend",
    "register_backend",
    "run_on_backend",
    "BatchedNetwork",
    "BatchIncompatibleError",
    "RunResultCache",
    "code_fingerprint",
    "default_cache",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointStore",
    "CheckpointVersionError",
    "FaultPlan",
    "read_checkpoint",
    "write_checkpoint",
    "AnnealedNoiseSpec",
    "CompiledAnnealedDrive",
    "CompiledDrive",
    "CompiledScaledDrive",
    "PortfolioAnnealedDrive",
    "ScaledNoiseSpec",
    "compile_batched_external",
    "OneShotPolicy",
    "SlotCheckpoint",
    "SlotDecision",
    "SlotDecode",
    "SlotDecoder",
    "SlotEngine",
    "SlotOutcome",
    "SlotPolicy",
    "SlotRow",
    "SweepExecutor",
    "SweepReport",
    "SweepSpec",
    "SweepTask",
    "SweepTaskRecord",
    "derive_task_seed",
    "sweep_task_key",
    "SeedSweepResult",
    "batched_thalamic_provider",
    "build_eighty_twenty_replicas",
    "csp_portfolio_sweep",
    "eighty_twenty_seed_sweep",
    "pooled_csp_sweep",
    "pooled_sudoku_sweep",
    "run_many_on_backend",
    "serve_load_sweep",
    "CSPPortfolioSweepConfig",
    "PooledCSPSweepConfig",
    "PooledSudokuSweepConfig",
    "ServeLoadSweepConfig",
    "WorkloadEntry",
    "register_sweep_workload",
    "run_sweep_workload",
    "sweep_workload_config",
    "sweep_workloads",
]
