"""Crash-safe checkpointing for the batched solve state.

The sweep fabric survives worker loss because every *finished* task is
content-addressed in the :class:`~repro.runtime.cache.RunResultCache`;
nothing, however, protected the *in-flight* state of a long solve — the
always-hot batch of the serve tier, or a large ``solve_instances`` call
— from the process dying mid-run.  This module adds that layer:

* :func:`write_checkpoint` / :func:`read_checkpoint` — one snapshot
  file, **versioned** (magic + format version), **checksummed**
  (SHA-256 over the payload, verified on read) and **atomically
  written** (temp file in the target directory + ``fsync`` +
  ``os.replace``), so a crash mid-write can never leave a half-written
  file under the final name;
* :class:`CheckpointStore` — a directory of rotating step-stamped
  snapshots with :meth:`CheckpointStore.load_latest` falling back past
  corrupt or torn snapshots (counted, typed) to the newest good one;
* typed failures — :class:`CheckpointCorruptError` (bad magic,
  truncation, checksum mismatch) and :class:`CheckpointVersionError`
  (format from a different code era) are loud, never silent ``None``;
* :class:`FaultPlan` — a deterministic fault-injection schedule (crash
  at a step, tear the Nth checkpoint write, corrupt the Nth payload,
  truncate the journal after the Nth record) threaded through the
  checkpoint writer, the serve journal, the service and the
  supervisor, so the chaos suites are seeded and reproducible.

What goes *into* a snapshot is defined by the state-export hooks of the
batched runtime — :meth:`BatchedNetwork.export_state`,
:meth:`PortfolioAnnealedDrive.export_state` (RNG stream cursors
included) and :meth:`SlotEngine.export_state` — whose restore
counterparts overwrite a freshly rebuilt engine wholesale.  The
contract, pinned by ``tests/runtime/test_checkpoint.py``: a solve
restored from a snapshot continues **bit-identically** to one that was
never interrupted.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Tuple, Union

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointStore",
    "CheckpointVersionError",
    "FaultPlan",
    "read_checkpoint",
    "write_checkpoint",
]

#: First bytes of every checkpoint file; anything else is not a checkpoint.
CHECKPOINT_MAGIC = b"RPROCKPT"
#: Bumped whenever the on-disk layout or the payload schema changes.
CHECKPOINT_VERSION = 1

# Fixed-size header following the magic: format version (u32), length of
# the kind string (u16).  The kind string, the 32-byte payload SHA-256
# and the payload length (u64) follow, then the pickled payload.
_HEAD = struct.Struct("<IH")
_LEN = struct.Struct("<Q")
_SHA_BYTES = 32


class CheckpointError(RuntimeError):
    """Base of the typed checkpoint failures."""


class CheckpointCorruptError(CheckpointError):
    """The file is not a complete, intact checkpoint.

    Raised for a bad magic, a truncated header or payload (torn write)
    and a payload whose SHA-256 does not match the header — the three
    shapes a crash or bit-rot can leave behind.
    """


class CheckpointVersionError(CheckpointError):
    """The checkpoint was written by an incompatible format version."""


@dataclass
class FaultPlan:
    """A deterministic schedule of injected faults.

    All ordinals are 1-based occurrence counts *within one process*:
    ``torn_write_at=2`` tears the second checkpoint write, whoever
    issues it.  The plan carries its own occurrence counters, so one
    instance must be threaded through every layer that should share the
    schedule (checkpoint store, journal, service).  ``seed`` picks the
    corrupted byte position, keeping runs reproducible.

    ``crash_at_step`` is honoured by the serve scheduler
    (:meth:`repro.serve.SolveService._advance_step`): the process calls
    ``os._exit`` — indistinguishable from ``kill -9`` — the first time
    the global step clock reaches the value.  The supervisor hands the
    plan only to the *first* child incarnation, so a respawned service
    replays the journal instead of re-crashing forever.
    """

    crash_at_step: Optional[int] = None
    #: Tear the Nth checkpoint write: the file ends mid-payload.
    torn_write_at: Optional[int] = None
    #: Corrupt the Nth checkpoint write: one payload byte is flipped.
    corrupt_at: Optional[int] = None
    #: Truncate the journal mid-record after the Nth appended record.
    truncate_journal_at: Optional[int] = None
    seed: int = 0
    checkpoint_writes: int = field(default=0, init=False)
    journal_appends: int = field(default=0, init=False)

    #: Exit code of an injected crash (documents itself in waitpid logs).
    CRASH_EXIT_CODE = 86

    def next_checkpoint_fault(self) -> Optional[str]:
        """The fault to apply to the checkpoint write now being issued."""
        self.checkpoint_writes += 1
        if self.torn_write_at is not None and self.checkpoint_writes == self.torn_write_at:
            return "torn"
        if self.corrupt_at is not None and self.checkpoint_writes == self.corrupt_at:
            return "corrupt"
        return None

    def next_journal_truncation(self) -> bool:
        """Whether to truncate the journal after the record just appended."""
        self.journal_appends += 1
        return (
            self.truncate_journal_at is not None
            and self.journal_appends == self.truncate_journal_at
        )

    def should_crash(self, step: int) -> bool:
        return self.crash_at_step is not None and int(step) >= int(self.crash_at_step)

    def corrupt_offset(self, length: int) -> int:
        """Deterministic byte position to flip when corrupting a payload."""
        return (int(self.seed) + self.checkpoint_writes * 7919) % max(1, int(length))


def _fsync_dir(path: Path) -> None:
    """Flush the directory entry so the rename survives power loss too."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def write_checkpoint(
    path: Union[str, Path],
    payload: Any,
    *,
    kind: str = "state",
    fault: Optional[FaultPlan] = None,
) -> Path:
    """Atomically write one versioned, checksummed snapshot file.

    The payload is pickled, hashed, and written to a temporary file in
    the target directory, fsynced, then renamed over ``path`` — a crash
    at any point leaves either the previous file or the complete new
    one, never a torn hybrid (the torn/corrupt *fault injections*
    simulate exactly the failure modes this discipline rules out, so
    the reader's defences stay honest).
    """
    path = Path(path)
    kind_bytes = kind.encode("utf-8")
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(data).digest()
    mode = fault.next_checkpoint_fault() if fault is not None else None
    if mode == "corrupt" and data:
        flip = fault.corrupt_offset(len(data))
        data = data[:flip] + bytes([data[flip] ^ 0xFF]) + data[flip + 1 :]
    blob = (
        CHECKPOINT_MAGIC
        + _HEAD.pack(CHECKPOINT_VERSION, len(kind_bytes))
        + kind_bytes
        + digest
        + _LEN.pack(len(data))
        + data
    )
    if mode == "torn":
        blob = blob[: len(blob) - max(1, len(data) // 2)]
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)
    return path


def read_checkpoint(path: Union[str, Path], *, kind: Optional[str] = None) -> Any:
    """Read and verify one snapshot file; returns the unpickled payload.

    Raises :class:`CheckpointCorruptError` on a bad magic, truncation or
    checksum mismatch, :class:`CheckpointVersionError` on a format from
    a different code era, and :class:`CheckpointError` when ``kind``
    is given and does not match the file's.  ``FileNotFoundError``
    passes through (absence is the caller's decision, not corruption).
    """
    path = Path(path)
    blob = path.read_bytes()
    if not blob.startswith(CHECKPOINT_MAGIC):
        raise CheckpointCorruptError(f"{path}: not a checkpoint (bad magic)")
    offset = len(CHECKPOINT_MAGIC)
    if len(blob) < offset + _HEAD.size:
        raise CheckpointCorruptError(f"{path}: truncated header")
    version, kind_len = _HEAD.unpack_from(blob, offset)
    if version != CHECKPOINT_VERSION:
        raise CheckpointVersionError(
            f"{path}: format version {version}, this code reads {CHECKPOINT_VERSION}"
        )
    offset += _HEAD.size
    if len(blob) < offset + kind_len + _SHA_BYTES + _LEN.size:
        raise CheckpointCorruptError(f"{path}: truncated header")
    file_kind = blob[offset : offset + kind_len].decode("utf-8", errors="replace")
    offset += kind_len
    digest = blob[offset : offset + _SHA_BYTES]
    offset += _SHA_BYTES
    (length,) = _LEN.unpack_from(blob, offset)
    offset += _LEN.size
    data = blob[offset : offset + length]
    if len(data) != length:
        raise CheckpointCorruptError(
            f"{path}: truncated payload ({len(data)} of {length} bytes) — torn write"
        )
    if hashlib.sha256(data).digest() != digest:
        raise CheckpointCorruptError(f"{path}: payload checksum mismatch")
    if kind is not None and file_kind != kind:
        raise CheckpointError(f"{path}: checkpoint kind {file_kind!r}, expected {kind!r}")
    try:
        return pickle.loads(data)
    except Exception as exc:  # pragma: no cover - sha-verified payloads unpickle
        raise CheckpointCorruptError(f"{path}: payload does not unpickle: {exc}") from exc


class CheckpointStore:
    """A directory of rotating, step-stamped snapshots of one solve.

    ``save(step, payload)`` writes ``ckpt-<step>.ckpt`` and prunes all
    but the newest ``keep`` snapshots; ``load_latest()`` walks the
    snapshots newest-first, *skipping* (and recording) any that fail
    verification, so a torn or corrupted final snapshot degrades to the
    previous good one instead of killing recovery.  Skipped snapshots
    are kept in :attr:`failures` — recovery is expected to surface the
    count (the serve metrics do) rather than hide it.
    """

    SUFFIX = ".ckpt"

    def __init__(
        self,
        root: Union[str, Path],
        *,
        kind: str = "state",
        keep: int = 2,
        fault: Optional[FaultPlan] = None,
    ) -> None:
        if keep < 1:
            raise ValueError("keep must be positive")
        self.root = Path(root)
        self.kind = kind
        self.keep = int(keep)
        self.fault = fault
        #: ``(path, error)`` of snapshots skipped by :meth:`load_latest`.
        self.failures: List[Tuple[Path, CheckpointError]] = []
        self.saves = 0

    def _path(self, step: int) -> Path:
        return self.root / f"ckpt-{int(step):012d}{self.SUFFIX}"

    def steps(self) -> List[int]:
        """Step stamps of the snapshots on disk, ascending."""
        if not self.root.is_dir():
            return []
        out = []
        for path in self.root.glob(f"ckpt-*{self.SUFFIX}"):
            stem = path.name[len("ckpt-") : -len(self.SUFFIX)]
            if stem.isdigit():
                out.append(int(stem))
        return sorted(out)

    def save(self, step: int, payload: Any) -> Path:
        path = write_checkpoint(self._path(step), payload, kind=self.kind, fault=self.fault)
        self.saves += 1
        steps = self.steps()
        for stale in steps[: max(0, len(steps) - self.keep)]:
            try:
                self._path(stale).unlink()
            except OSError:  # pragma: no cover - concurrent prune
                pass
        return path

    def load_latest(self) -> Optional[Tuple[int, Any]]:
        """The newest verifiable snapshot as ``(step, payload)``.

        Returns ``None`` when no snapshot verifies; every skipped
        snapshot lands in :attr:`failures` with its typed error.
        """
        for step in reversed(self.steps()):
            path = self._path(step)
            try:
                return step, read_checkpoint(path, kind=self.kind)
            except FileNotFoundError:  # pragma: no cover - concurrent prune
                continue
            except CheckpointError as exc:
                self.failures.append((path, exc))
        return None

    def clear(self) -> None:
        for step in self.steps():
            try:
                self._path(step).unlink()
            except OSError:  # pragma: no cover - concurrent clear
                pass
