"""Compiled batched external-input providers (drive compilation).

The exact-mode batch engine historically evaluated one external-input
closure per replica per step — ``B`` Python calls, ``B`` small RNG draws
and ``B`` temporary arrays every millisecond.  This module *compiles*
those per-replica closures into a single ``(B, N)`` vectorised provider
that is **bit-identical** to calling the closures one by one:

* every replica keeps its own independent noise stream (a clone of the
  generator its closure would have consumed), so results remain
  bit-comparable with sequential runs;
* the streams are pregenerated in chunks of :data:`DEFAULT_CHUNK_STEPS`
  network steps with one ``standard_normal`` call per replica per chunk.
  NumPy's ``Generator.standard_normal`` fills output arrays sequentially
  from the underlying bit stream, so a ``(chunk, N)`` draw yields exactly
  the same values as ``chunk`` successive ``(N,)`` draws (locked down in
  ``tests/runtime/test_drives.py``);
* the per-step arithmetic (anneal amplitude, mask, drive offset, scale)
  runs as a handful of fused elementwise ``(B, N)`` operations matching
  the closure expressions term for term.

Closures advertise their compilability by carrying a ``drive_spec``
attribute (an :class:`AnnealedNoiseSpec`, attached by
:meth:`repro.csp.solver.SpikingCSPSolver.build_network`); the 80-20
workload's ``EightyTwentyNetwork.thalamic_input`` bound method is
recognised structurally.  :func:`compile_batched_external` returns
``None`` when any provider cannot be compiled, in which case the batch
engine falls back to the per-replica loop.

Compiled providers support :meth:`~CompiledDrive.retain` (drop replicas)
so the batched constraint solver can shrink the active set together with
the network state, and declare ``batch_shape`` so
:class:`~repro.runtime.batch.BatchedNetwork` validates the output shape
once at construction instead of every step.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import numpy as np

from ..snn.eighty_twenty import EightyTwentyNetwork
from ..snn.network import SNNNetwork

__all__ = [
    "DEFAULT_CHUNK_STEPS",
    "AnnealedNoiseSpec",
    "ScaledNoiseSpec",
    "CompiledDrive",
    "CompiledAnnealedDrive",
    "CompiledScaledDrive",
    "PortfolioAnnealedDrive",
    "annealed_specs",
    "compile_batched_external",
]

#: Network steps of noise pregenerated per replica per generator call.
DEFAULT_CHUNK_STEPS = 32


@dataclass
class AnnealedNoiseSpec:
    """Declarative form of the constraint solver's annealed-noise closure.

    ``drive + amplitude(step) * standard_normal(N) * free_mask`` with
    ``amplitude(step) = noise_sigma * (1 - (1 - anneal_floor) * phase)``
    and ``phase = (step % anneal_period) / max(anneal_period, 1)``.
    """

    drive: np.ndarray
    free_mask: np.ndarray
    rng: np.random.Generator
    noise_sigma: float
    anneal_period: int
    anneal_floor: float
    #: Global step count already completed when this replica's run starts.
    #: The replica's *local* step — the one driving its anneal phase — is
    #: ``step - step_offset``.  Always 0 for ordinary batches; the
    #: restart-portfolio engine (:mod:`repro.csp.portfolio`) sets it so a
    #: replica stacked in mid-run sees the same phase sequence a fresh
    #: standalone solve would.
    step_offset: int = 0


@dataclass
class ScaledNoiseSpec:
    """Declarative form of a per-neuron-scaled noise drive (80-20 thalamic)."""

    scale: np.ndarray
    rng: np.random.Generator


def _clone_rng(rng: np.random.Generator) -> np.random.Generator:
    """Snapshot a generator so the compiled drive never perturbs the source."""
    return copy.deepcopy(rng)


class _ChunkedNormals:
    """Per-replica standard-normal streams, pregenerated in step chunks.

    Each replica's stream is bit-identical to successive per-step
    ``standard_normal(num_values)`` draws from (a clone of) its generator.
    """

    def __init__(
        self, rngs: Sequence[np.random.Generator], num_values: int, chunk_steps: int
    ) -> None:
        if chunk_steps < 1:
            raise ValueError("chunk_steps must be positive")
        self._rngs = [_clone_rng(rng) for rng in rngs]
        self._chunk_steps = chunk_steps
        self._buffer = np.empty((len(self._rngs), chunk_steps, num_values), dtype=np.float64)
        self._row = chunk_steps  # force a refill on the first call

    def next_rows(self) -> np.ndarray:
        """The next ``(B, num_values)`` slab of every replica's stream."""
        if self._row == self._chunk_steps:
            for b, rng in enumerate(self._rngs):
                rng.standard_normal(out=self._buffer[b])
            self._row = 0
        rows = self._buffer[:, self._row, :]
        self._row += 1
        return rows

    def retain(self, keep: Sequence[int]) -> None:
        keep = list(keep)
        self._rngs = [self._rngs[i] for i in keep]
        self._buffer = np.ascontiguousarray(self._buffer[keep])

    def extend(self, rngs: Sequence[np.random.Generator]) -> None:
        """Append fresh per-replica streams, joining the chunk mid-flight.

        Each appended stream stays bit-identical to successive per-step
        draws from (a clone of) its generator: the new rows' remaining
        slots of the current chunk are filled with the stream's *first*
        draws, so the next :meth:`next_rows` calls consume them in order
        and the next refill continues each stream where it left off.
        """
        if not rngs:
            return
        clones = [_clone_rng(rng) for rng in rngs]
        num_values = self._buffer.shape[2]
        add = np.empty((len(clones), self._chunk_steps, num_values), dtype=np.float64)
        remaining = self._chunk_steps - self._row
        if remaining > 0:
            for b, rng in enumerate(clones):
                rng.standard_normal(out=add[b, self._row :])
        self._rngs.extend(clones)
        self._buffer = np.concatenate([self._buffer, add])

    # ------------------------------------------------------------------ #
    # Checkpointing (repro.runtime.checkpoint)
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """A picklable snapshot of every stream: generators, buffer, cursor.

        ``numpy.random.Generator`` pickles its full bit-generator state,
        so restoring the snapshot resumes each replica's stream at
        exactly the draw it would have produced next — the property the
        checkpoint/restore bit-identity contract rests on.
        """
        return {
            "rngs": copy.deepcopy(self._rngs),
            "buffer": self._buffer.copy(),
            "row": int(self._row),
            "chunk_steps": int(self._chunk_steps),
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite the streams wholesale with an exported snapshot."""
        if int(state["chunk_steps"]) != self._chunk_steps:
            raise ValueError(
                f"checkpoint chunk_steps {state['chunk_steps']} differs from "
                f"the live configuration {self._chunk_steps}"
            )
        buffer = np.asarray(state["buffer"], dtype=np.float64)
        rngs = list(state["rngs"])
        if buffer.ndim != 3 or buffer.shape[0] != len(rngs):
            raise ValueError("checkpoint noise buffer does not match its generator list")
        if buffer.shape[1] != self._chunk_steps or buffer.shape[2] != self._buffer.shape[2]:
            raise ValueError(
                f"checkpoint noise buffer shape {buffer.shape} does not match "
                f"the live stream width {self._buffer.shape[1:]}"
            )
        row = int(state["row"])
        if not 0 <= row <= self._chunk_steps:
            raise ValueError(f"checkpoint chunk cursor {row} out of range")
        self._rngs = [_clone_rng(rng) for rng in rngs]
        self._buffer = buffer.copy()
        self._row = row


class CompiledDrive:
    """Base of the compiled providers: shape contract plus retain plumbing."""

    batch_shape: tuple

    def __call__(self, step: int) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def retain(self, keep: Sequence[int]) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class CompiledAnnealedDrive(CompiledDrive):
    """All replicas' annealed-noise drives as one vectorised provider."""

    def __init__(
        self, specs: Sequence[AnnealedNoiseSpec], *, chunk_steps: int = DEFAULT_CHUNK_STEPS
    ) -> None:
        if not specs:
            raise ValueError("cannot compile zero drives")
        params = {(s.noise_sigma, s.anneal_period, s.anneal_floor) for s in specs}
        if len(params) != 1:
            raise ValueError("all replicas must share the anneal configuration")
        self._sigma, self._period, self._floor = next(iter(params))
        self._drives = np.stack([np.asarray(s.drive, dtype=np.float64) for s in specs])
        self._masks = np.stack([np.asarray(s.free_mask, dtype=bool) for s in specs])
        num_values = self._drives.shape[1]
        self._normals = _ChunkedNormals([s.rng for s in specs], num_values, chunk_steps)
        self._noise = np.empty_like(self._drives)
        self._out = np.empty_like(self._drives)
        self.batch_shape = self._drives.shape

    def __call__(self, step: int) -> np.ndarray:
        # Identical term order to the per-replica closure: amplitude is
        # computed in Python-float arithmetic, then scalar-multiplied
        # into the noise, masked, and offset by the constant drive.
        phase = (step % self._period) / max(self._period, 1)
        amplitude = self._sigma * (1.0 - (1.0 - self._floor) * phase)
        normals = self._normals.next_rows()
        np.multiply(normals, amplitude, out=self._noise)
        self._noise *= self._masks
        np.add(self._drives, self._noise, out=self._out)
        return self._out

    def retain(self, keep: Sequence[int]) -> None:
        keep = list(keep)
        self._drives = np.ascontiguousarray(self._drives[keep])
        self._masks = np.ascontiguousarray(self._masks[keep])
        self._normals.retain(keep)
        self._noise = np.empty_like(self._drives)
        self._out = np.empty_like(self._drives)
        self.batch_shape = self._drives.shape

    # ------------------------------------------------------------------ #
    # Checkpointing (repro.runtime.checkpoint)
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """A picklable snapshot of the drives, masks and noise streams."""
        return {
            "drives": self._drives.copy(),
            "masks": self._masks.copy(),
            "params": (float(self._sigma), int(self._period), float(self._floor)),
            "normals": self._normals.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite the provider wholesale with an exported snapshot."""
        sigma, period, floor = state["params"]
        if (float(sigma), int(period), float(floor)) != (
            self._sigma,
            self._period,
            self._floor,
        ):
            raise ValueError("checkpoint anneal configuration differs from the live batch")
        drives = np.asarray(state["drives"], dtype=np.float64)
        masks = np.asarray(state["masks"], dtype=bool)
        if drives.shape != self._drives.shape or masks.shape != self._masks.shape:
            raise ValueError(
                f"checkpoint drive shape {drives.shape} does not match the "
                f"live batch {self._drives.shape}"
            )
        self._drives = drives.copy()
        self._masks = masks.copy()
        self._normals.restore_state(state["normals"])
        self._noise = np.empty_like(self._drives)
        self._out = np.empty_like(self._drives)
        self.batch_shape = self._drives.shape


class PortfolioAnnealedDrive(CompiledDrive):
    """Annealed-noise drives with per-replica anneal params and step offsets.

    The restart-portfolio engine stacks attempts that *started at
    different global steps* (and may run diversified anneal
    configurations) into one live batch.  This provider generalises
    :class:`CompiledAnnealedDrive` to per-row ``noise_sigma`` /
    ``anneal_period`` / ``anneal_floor`` vectors plus a per-row
    ``step_offset``: row ``b`` sees the amplitude a fresh standalone
    solve would see at its local step ``step - offset_b``.  The per-row
    amplitude arithmetic evaluates the exact closure expression
    elementwise in float64, so every row stays bit-identical to its
    sequential counterpart (and, with all offsets 0 and uniform params,
    to :class:`CompiledAnnealedDrive`).

    Unlike the compiled drives, this provider also supports
    :meth:`extend`: freshly built replica networks (whose
    ``external_input`` closures carry :class:`AnnealedNoiseSpec`, offset
    included) are stacked onto the live rows, joining the pregenerated
    noise chunk mid-flight.
    """

    def __init__(
        self, specs: Sequence[AnnealedNoiseSpec], *, chunk_steps: int = DEFAULT_CHUNK_STEPS
    ) -> None:
        if not specs:
            raise ValueError("cannot compile zero drives")
        self._chunk_steps = chunk_steps
        self._drives = np.stack([np.asarray(s.drive, dtype=np.float64) for s in specs])
        self._masks = np.stack([np.asarray(s.free_mask, dtype=bool) for s in specs])
        self._sigma = np.asarray([s.noise_sigma for s in specs], dtype=np.float64)
        self._period = np.asarray([s.anneal_period for s in specs], dtype=np.int64)
        self._floor = np.asarray([s.anneal_floor for s in specs], dtype=np.float64)
        self._offsets = np.asarray([s.step_offset for s in specs], dtype=np.int64)
        num_values = self._drives.shape[1]
        self._normals = _ChunkedNormals([s.rng for s in specs], num_values, chunk_steps)
        self._alloc()

    def _alloc(self) -> None:
        self._noise = np.empty_like(self._drives)
        self._out = np.empty_like(self._drives)
        self.batch_shape = self._drives.shape
        # max(period, 1) of the closure, vectorised once per composition.
        self._period_div = np.maximum(self._period, 1).astype(np.float64)

    def __call__(self, step: int) -> np.ndarray:
        # Per-row local phase; identical term order to the per-replica
        # closure, evaluated elementwise (IEEE float64 either way).
        local = step - self._offsets
        phase = (local % self._period) / self._period_div
        amplitude = self._sigma * (1.0 - (1.0 - self._floor) * phase)
        normals = self._normals.next_rows()
        np.multiply(normals, amplitude[:, None], out=self._noise)
        self._noise *= self._masks
        np.add(self._drives, self._noise, out=self._out)
        return self._out

    def retain(self, keep: Sequence[int]) -> None:
        keep = list(keep)
        self._drives = np.ascontiguousarray(self._drives[keep])
        self._masks = np.ascontiguousarray(self._masks[keep])
        self._sigma = self._sigma[keep]
        self._period = self._period[keep]
        self._floor = self._floor[keep]
        self._offsets = self._offsets[keep]
        self._normals.retain(keep)
        self._alloc()

    def extend(self, networks: Sequence[SNNNetwork]) -> None:
        """Stack the (fresh) networks' annealed-noise specs onto the batch."""
        if not networks:
            return
        specs = annealed_specs(networks)
        for spec in specs:
            if np.asarray(spec.drive).shape != self._drives.shape[1:]:
                raise ValueError("stacked-in drive width differs from the live batch")
        self._drives = np.concatenate(
            [self._drives, np.stack([np.asarray(s.drive, dtype=np.float64) for s in specs])]
        )
        self._masks = np.concatenate(
            [self._masks, np.stack([np.asarray(s.free_mask, dtype=bool) for s in specs])]
        )
        self._sigma = np.concatenate(
            [self._sigma, np.asarray([s.noise_sigma for s in specs], dtype=np.float64)]
        )
        self._period = np.concatenate(
            [self._period, np.asarray([s.anneal_period for s in specs], dtype=np.int64)]
        )
        self._floor = np.concatenate(
            [self._floor, np.asarray([s.anneal_floor for s in specs], dtype=np.float64)]
        )
        self._offsets = np.concatenate(
            [self._offsets, np.asarray([s.step_offset for s in specs], dtype=np.int64)]
        )
        self._normals.extend([s.rng for s in specs])
        self._alloc()

    # ------------------------------------------------------------------ #
    # Checkpointing (repro.runtime.checkpoint)
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """A picklable snapshot: per-row anneal params, offsets, streams."""
        return {
            "drives": self._drives.copy(),
            "masks": self._masks.copy(),
            "sigma": self._sigma.copy(),
            "period": self._period.copy(),
            "floor": self._floor.copy(),
            "offsets": self._offsets.copy(),
            "normals": self._normals.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite the provider wholesale with an exported snapshot.

        The restore path rebuilds the batch from *fresh* networks (the
        closures of a live one do not pickle) and then stamps this saved
        state over it, so the drive amplitudes, per-row offsets and
        noise cursors continue exactly where the snapshot left them.
        """
        drives = np.asarray(state["drives"], dtype=np.float64)
        if drives.ndim != 2 or drives.shape[1] != self._drives.shape[1]:
            raise ValueError(
                f"checkpoint drive width {drives.shape} does not match the "
                f"live batch width {self._drives.shape[1]}"
            )
        rows = drives.shape[0]
        masks = np.asarray(state["masks"], dtype=bool)
        sigma = np.asarray(state["sigma"], dtype=np.float64)
        period = np.asarray(state["period"], dtype=np.int64)
        floor = np.asarray(state["floor"], dtype=np.float64)
        offsets = np.asarray(state["offsets"], dtype=np.int64)
        if masks.shape != drives.shape or any(
            arr.shape != (rows,) for arr in (sigma, period, floor, offsets)
        ):
            raise ValueError("checkpoint drive state arrays disagree on the row count")
        self._drives = drives.copy()
        self._masks = masks.copy()
        self._sigma = sigma.copy()
        self._period = period.copy()
        self._floor = floor.copy()
        self._offsets = offsets.copy()
        self._normals.restore_state(state["normals"])
        if len(self._normals._rngs) != rows:
            raise ValueError("checkpoint noise streams disagree with the drive row count")
        self._alloc()


class CompiledScaledDrive(CompiledDrive):
    """All replicas' scaled-noise (thalamic) drives as one provider."""

    def __init__(
        self, specs: Sequence[ScaledNoiseSpec], *, chunk_steps: int = DEFAULT_CHUNK_STEPS
    ) -> None:
        if not specs:
            raise ValueError("cannot compile zero drives")
        self._scales = np.stack([np.asarray(s.scale, dtype=np.float64) for s in specs])
        num_values = self._scales.shape[1]
        self._normals = _ChunkedNormals([s.rng for s in specs], num_values, chunk_steps)
        self._out = np.empty_like(self._scales)
        self.batch_shape = self._scales.shape

    def __call__(self, step: int) -> np.ndarray:
        normals = self._normals.next_rows()
        np.multiply(normals, self._scales, out=self._out)
        return self._out

    def retain(self, keep: Sequence[int]) -> None:
        keep = list(keep)
        self._scales = np.ascontiguousarray(self._scales[keep])
        self._normals.retain(keep)
        self._out = np.empty_like(self._scales)
        self.batch_shape = self._scales.shape


def _spec_of(network: SNNNetwork) -> Optional[Any]:
    """The drive spec of a network's external provider, or ``None``."""
    provider = network.external_input
    if provider is None:
        return None
    spec = getattr(provider, "drive_spec", None)
    if spec is not None:
        return spec
    # The 80-20 thalamic input is a bound method of the network
    # definition; recognise it structurally and lift its config + live
    # generator into a spec (the generator is cloned at compile time).
    owner = getattr(provider, "__self__", None)
    if (
        isinstance(owner, EightyTwentyNetwork)
        and getattr(provider, "__func__", None) is EightyTwentyNetwork.thalamic_input
    ):
        cfg = owner.config
        scale = np.concatenate(
            [
                np.full(cfg.num_excitatory, cfg.thalamic_excitatory, dtype=np.float64),
                np.full(cfg.num_inhibitory, cfg.thalamic_inhibitory, dtype=np.float64),
            ]
        )
        return ScaledNoiseSpec(scale=scale, rng=owner.rng)
    return None


def annealed_specs(networks: Sequence[SNNNetwork]) -> List[AnnealedNoiseSpec]:
    """The networks' annealed-noise drive specs, validated.

    The contract for stacking networks into a
    :class:`PortfolioAnnealedDrive` batch (the portfolio and serve
    engines build every row through
    ``SpikingCSPSolver.build_network``, which attaches the spec): each
    network's external provider must carry an
    :class:`AnnealedNoiseSpec`, otherwise ``ValueError`` is raised.
    """
    specs: List[AnnealedNoiseSpec] = []
    for network in networks:
        spec = _spec_of(network)
        if not isinstance(spec, AnnealedNoiseSpec):
            raise ValueError(
                "can only stack in networks whose external input carries an annealed-noise spec"
            )
        specs.append(spec)
    return specs


def compile_batched_external(
    networks: Sequence[SNNNetwork], *, chunk_steps: int = DEFAULT_CHUNK_STEPS
) -> Optional[CompiledDrive]:
    """Compile the networks' per-replica input closures into one provider.

    Returns a :class:`CompiledDrive` producing ``(B, N)`` arrays
    bit-identical to the per-replica closure outputs, or ``None`` when
    any closure is unrecognised (opaque callables, mixed drive families,
    heterogeneous anneal configurations) — callers then fall back to the
    per-replica loop, which handles every provider.
    """
    specs: List[object] = []
    for network in networks:
        spec = _spec_of(network)
        if spec is None:
            return None
        specs.append(spec)
    # Replicas sharing one generator object would interleave a single
    # stream when run per replica; independent clones cannot reproduce
    # that, so such batches are not compilable.
    if len({id(s.rng) for s in specs}) != len(specs):
        return None
    if all(isinstance(s, AnnealedNoiseSpec) for s in specs):
        params = {(s.noise_sigma, s.anneal_period, s.anneal_floor) for s in specs}
        widths = {s.drive.shape for s in specs}
        if len(params) != 1 or len(widths) != 1:
            return None
        return CompiledAnnealedDrive(specs, chunk_steps=chunk_steps)
    if all(isinstance(s, ScaledNoiseSpec) for s in specs):
        if len({s.scale.shape for s in specs}) != 1:
            return None
        return CompiledScaledDrive(specs, chunk_steps=chunk_steps)
    return None
