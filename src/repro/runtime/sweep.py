"""Work-stealing sweep fabric with crash-tolerant, cache-backed resume.

Network-level workloads batch well (see :mod:`repro.runtime.batch`), but
ISA-level runs — functional simulation, cycle-accurate timing — and
whole solver runs execute one instruction (or one network) at a time and
cannot be stacked into NumPy arrays.  :class:`SweepExecutor` fans those
runs out over a multi-process **work-stealing scheduler** instead, while
keeping results **deterministic and order-stable**:

* every task receives a seed derived from ``(base_seed, task index)``
  through :func:`numpy.random.SeedSequence` spawning (or an explicit
  per-task seed from :attr:`SweepSpec.seeds`), so the assignment of
  seeds to tasks never depends on scheduling, worker count, lease
  reassignment or execution mode;
* results are returned in task order regardless of completion order;
* ``mode="serial"`` runs the same tasks inline (no pool), byte-for-byte
  reproducing the process-pool results — the default for test suites and
  the fallback when a task function cannot be pickled.

Scheduling model (``mode="process"``)
-------------------------------------

Tasks are grouped into **chunked leases**.  Workers *pull* chunks from a
shared queue instead of receiving one up-front static partition, so an
idle worker naturally steals work a slower sibling would otherwise sit
on.  Each pulled chunk becomes a lease with a deadline
(:attr:`SweepSpec.lease_timeout`, refreshed on every completed task);
when a worker **dies** (``kill -9``, OOM, segfault) or **stalls** past
the deadline, the lease's unfinished tasks are re-enqueued as a fresh
chunk and a replacement worker is spawned.  Because a task's result is a
pure function of ``(fn, params, seed)``, reassignment never changes the
sweep's results — late duplicates from a stalled-but-alive worker are
accepted first-wins and counted, never double-applied.

Crash-tolerant resume
---------------------

With a cache configured (:attr:`SweepSpec.cache`), every completed task
lands in a :class:`~repro.runtime.cache.RunResultCache` keyed by
:func:`~repro.runtime.cache.derive_cache_key` over
``("sweep", fn identity, task params, task seed)``.  Re-running the same
spec after a crash of the *whole sweep* (or an overlapping sweep sharing
task points) serves the finished tasks from the store and recomputes
only the remainder — bit-identical to the uninterrupted run, because the
key covers the code fingerprint and the full task identity.

Task functions must be module-level callables (picklable) accepting a
single :class:`SweepTask` argument.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from .cache import RunResultCache, derive_cache_key, resolve_cache

__all__ = [
    "SweepSpec",
    "SweepTask",
    "SweepReport",
    "SweepTaskRecord",
    "SweepExecutor",
    "derive_task_seed",
    "sweep_task_key",
]


def derive_task_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-mixed seed for task ``index`` of a sweep.

    Uses :class:`numpy.random.SeedSequence` spawn keys, so neighbouring
    indices yield statistically independent streams (unlike
    ``base_seed + index``, which produces correlated generators for some
    RNGs) while remaining stable across platforms and processes.
    """
    sequence = np.random.SeedSequence(base_seed, spawn_key=(index,))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


@dataclass(frozen=True)
class SweepTask:
    """One unit of work in a sweep.

    Attributes
    ----------
    index:
        Position of the task in the sweep (also the result position).
    seed:
        Per-task seed: derived from ``(base_seed, index)`` for parameter
        sweeps, or the explicit value for seed sweeps.
    params:
        Task parameters from the :class:`SweepSpec`.
    """

    index: int
    seed: int
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepSpec:
    """Complete, typed description of one sweep.

    Exactly one of ``param_sets`` / ``seeds`` must be given: a parameter
    sweep derives per-task seeds from ``(base_seed, index)``, a seed
    sweep uses the given seeds verbatim (in ``task.seed`` only — the
    historical duplication into ``task.params["seed"]`` is gone).

    Parameters
    ----------
    fn:
        Module-level task callable (``SweepTask -> result``).
    param_sets:
        One mapping per task, merged over ``extra``.
    seeds:
        Explicit per-task seeds (one task per seed).
    extra:
        Parameters merged into every task.
    base_seed:
        Root of the per-task seed derivation for parameter sweeps.
    chunk_size:
        Tasks per lease; ``None`` picks ``max(1, n // (4 * workers))``
        so the tail of the sweep still load-balances.
    lease_timeout:
        Seconds a lease may go without progress before its unfinished
        tasks are re-enqueued (and its worker presumed stalled).
    cache:
        Resume/dedup store: ``None`` honours ``REPRO_RUN_CACHE``,
        ``True``/``False`` force the default on-disk cache on/off, a
        :class:`RunResultCache` or a directory path selects an explicit
        store.  Completed tasks are keyed with
        :func:`sweep_task_key`; re-runs and overlapping sweeps skip
        them.
    """

    fn: Callable[[SweepTask], Any] = None  # type: ignore[assignment]
    param_sets: Optional[Sequence[Mapping[str, Any]]] = None
    seeds: Optional[Sequence[int]] = None
    extra: Mapping[str, Any] = field(default_factory=dict)
    base_seed: int = 0
    chunk_size: Optional[int] = None
    lease_timeout: float = 60.0
    cache: Union[None, bool, str, Path, RunResultCache] = False

    def __post_init__(self) -> None:
        if self.fn is None or not callable(self.fn):
            raise TypeError("SweepSpec.fn must be a callable taking a SweepTask")
        if (self.param_sets is None) == (self.seeds is None):
            raise ValueError("exactly one of SweepSpec.param_sets / SweepSpec.seeds is required")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("SweepSpec.chunk_size must be >= 1")
        if self.lease_timeout <= 0:
            raise ValueError("SweepSpec.lease_timeout must be positive")

    def tasks(self) -> List[SweepTask]:
        """Materialise the task list with deterministic per-task seeds."""
        base = dict(self.extra)
        if self.param_sets is not None:
            return [
                SweepTask(
                    index=i,
                    seed=derive_task_seed(self.base_seed, i),
                    params={**base, **dict(params)},
                )
                for i, params in enumerate(self.param_sets)
            ]
        return [
            SweepTask(index=i, seed=int(seed), params=dict(base))
            for i, seed in enumerate(self.seeds or ())
        ]


@dataclass(frozen=True)
class SweepTaskRecord:
    """Per-task accounting row of a :class:`SweepReport`.

    ``worker`` is ``-1`` for tasks executed inline (serial mode, the
    pickle fallback, or the parent's last-resort drain).  ``attempts``
    counts dispatches including lease reassignments; ``cached`` marks
    results served from the resume store without recomputation.
    """

    index: int
    seed: int
    worker: int
    duration: float
    cached: bool
    attempts: int


@dataclass
class SweepReport:
    """Results plus scheduling/caching accounting of one executed sweep.

    ``results`` is in task order — the exact list the deprecated
    :meth:`SweepExecutor.run` used to return.  The counters expose the
    fabric's behaviour: ``steals`` (chunks pulled by a worker other than
    its round-robin owner), ``lease_expiries`` / ``worker_deaths`` (both
    re-enqueue unfinished leases; their sum is the lease-retry count),
    ``duplicates`` (late results from stalled-but-reassigned leases,
    dropped first-wins) and the ``cache_*`` resume counters.
    """

    results: List[Any]
    records: List[SweepTaskRecord]
    mode: str
    num_workers: int
    elapsed: float
    chunk_size: int = 1
    cache_hits: int = 0
    cache_stores: int = 0
    cache_uncacheable: int = 0
    steals: int = 0
    lease_expiries: int = 0
    worker_deaths: int = 0
    duplicates: int = 0
    pickle_fallback: bool = False
    worker_busy: Dict[int, float] = field(default_factory=dict)
    #: Workload-level summary attached by the registry entry point
    #: (:func:`repro.runtime.registry.run_sweep_workload`).
    summary: Optional[Mapping[str, Any]] = None

    @property
    def lease_retries(self) -> int:
        """Total lease reassignments (expiries plus worker deaths)."""
        return self.lease_expiries + self.worker_deaths

    def worker_utilisation(self) -> Dict[int, float]:
        """Busy fraction of the sweep wall clock, per worker id."""
        if self.elapsed <= 0:
            return {w: 0.0 for w in self.worker_busy}
        return {w: busy / self.elapsed for w, busy in sorted(self.worker_busy.items())}

    def bench_record(self) -> Dict[str, Any]:
        """JSON-able summary row for BENCH history tracking."""
        durations = [r.duration for r in self.records]
        return {
            "tasks": len(self.records),
            "mode": self.mode,
            "workers": self.num_workers,
            "chunk_size": self.chunk_size,
            "elapsed_seconds": self.elapsed,
            "mean_task_seconds": float(np.mean(durations)) if durations else 0.0,
            "cache_hits": self.cache_hits,
            "cache_stores": self.cache_stores,
            "cache_uncacheable": self.cache_uncacheable,
            "steals": self.steals,
            "lease_expiries": self.lease_expiries,
            "worker_deaths": self.worker_deaths,
            "lease_retries": self.lease_retries,
            "duplicates": self.duplicates,
            "pickle_fallback": self.pickle_fallback,
            "worker_utilisation": {str(k): v for k, v in self.worker_utilisation().items()},
        }

    def bench_view(self, bench_dir: Union[str, Path, None] = None) -> Dict[str, Any]:
        """This report's record plus every ``BENCH_*.json`` it sits beside.

        The consolidated view the nightly job tracks over time: the
        sweep record next to the repo's other benchmark result files
        (``bench_dir`` defaults to ``benchmarks/`` at the repo root when
        it exists), so one artifact carries the whole perf trajectory.
        """
        import json

        view: Dict[str, Any] = {"sweep": self.bench_record(), "bench": {}}
        if bench_dir is None:
            candidate = Path(__file__).resolve().parents[3] / "benchmarks"
            bench_dir = candidate if candidate.is_dir() else None
        if bench_dir is None:
            return view
        for path in sorted(Path(bench_dir).glob("BENCH_*.json")):
            try:
                with open(path) as fh:
                    view["bench"][path.name] = json.load(fh)
            except (OSError, ValueError):
                continue
        return view


# ---------------------------------------------------------------------- #
# Cache keying
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _CachedTaskResult:
    """Envelope stored in the resume cache (disambiguates ``None`` results)."""

    value: Any


def _callable_token(fn: Callable[..., Any]) -> Optional[str]:
    """Stable identity of a module-level task function, or ``None``."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname or "<lambda>" in qualname:
        return None
    return f"{module}.{qualname}"


def sweep_task_key(fn: Callable[[SweepTask], Any], task: SweepTask) -> Optional[str]:
    """Content-addressed resume key of one ``(fn, task)`` pair.

    ``None`` when the function has no stable identity (lambdas,
    closures) or the params contain an object without a canonical form —
    such tasks always recompute and are counted as ``cache_uncacheable``.
    The task *index* is deliberately excluded so overlapping sweeps that
    share a ``(params, seed)`` point dedupe regardless of position.
    """
    token = _callable_token(fn)
    if token is None:
        return None
    return derive_cache_key(
        "sweep", {"fn": token, "seed": task.seed, "params": dict(task.params)}
    )


# ---------------------------------------------------------------------- #
# Worker process
# ---------------------------------------------------------------------- #
def _put_msg(out_queue: Any, msg: tuple) -> None:
    # The result channel is a SimpleQueue on purpose: its put() writes
    # synchronously in the calling thread, so a worker that dies inside a
    # task fn can never lose an already-sent lease/result message the way
    # a feeder-thread Queue would.
    out_queue.put(pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL))


def _poll_get(result_queue: Any, timeout: float) -> Any:
    """Non-blocking-ish read from a ``SimpleQueue``; ``None`` on timeout."""
    try:
        if result_queue._reader.poll(timeout):
            return result_queue.get()
    except (OSError, EOFError):
        pass
    return None


def _run_task_once(
    fn: Callable[[SweepTask], Any], task: SweepTask, cache: Optional[RunResultCache]
) -> tuple:
    """Execute (or cache-serve) one task.

    Returns ``(value, cached, stored, uncacheable, duration)``.
    """
    key = sweep_task_key(fn, task) if cache is not None else None
    uncacheable = cache is not None and key is None
    started = time.perf_counter()
    if key is not None:
        hit = cache.get(key, expect=_CachedTaskResult)
        if hit is not None:
            return hit.value, True, False, False, time.perf_counter() - started
    value = fn(task)
    stored = False
    if key is not None:
        cache.put(key, _CachedTaskResult(value))
        stored = True
    return value, False, stored, uncacheable, time.perf_counter() - started


def _fabric_worker(
    worker_id: int,
    fn_blob: bytes,
    task_queue: Any,
    result_queue: Any,
    cache_root: Optional[str],
) -> None:
    """Pull chunk leases until poisoned; one result message per task."""
    fn = pickle.loads(fn_blob)
    cache = RunResultCache(cache_root) if cache_root else None
    while True:
        blob = task_queue.get()
        if blob is None:
            break
        chunk_id, tasks = pickle.loads(blob)
        _put_msg(result_queue, ("lease", chunk_id, worker_id))
        for task in tasks:
            try:
                value, cached, stored, uncacheable, duration = _run_task_once(fn, task, cache)
            except BaseException as exc:  # noqa: BLE001 - forwarded to the parent
                try:
                    payload = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
                except Exception:
                    payload = None
                _put_msg(
                    result_queue,
                    ("error", chunk_id, worker_id, task.index, payload, repr(exc)),
                )
                break
            msg = ("result", chunk_id, worker_id, task.index, value, cached, stored, uncacheable, duration)
            try:
                _put_msg(result_queue, msg)
            except Exception as exc:  # result itself not picklable
                _put_msg(
                    result_queue,
                    (
                        "error",
                        chunk_id,
                        worker_id,
                        task.index,
                        None,
                        f"task result cannot be pickled back to the parent: {exc!r}",
                    ),
                )
                break
        _put_msg(result_queue, ("chunk_done", chunk_id, worker_id))


@dataclass
class _Lease:
    worker: int
    deadline: float


class SweepExecutor:
    """Execute a :class:`SweepSpec` inline or over the work-stealing fabric.

    Parameters
    ----------
    mode:
        ``"serial"`` (default) executes tasks inline in submission order;
        ``"process"`` runs the multi-process work-stealing scheduler.
    max_workers:
        Worker count for process mode; defaults to ``os.cpu_count()``
        capped at the number of tasks.
    """

    #: A task re-dispatched more than this many times aborts the sweep
    #: (e.g. a task body that reliably kills its worker).
    MAX_TASK_ATTEMPTS = 4

    def __init__(self, *, mode: str = "serial", max_workers: Optional[int] = None) -> None:
        if mode not in ("serial", "process"):
            raise ValueError(f"unknown executor mode {mode!r}")
        self.mode = mode
        self.max_workers = max_workers
        self._pickle_fallback_warned = False

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @staticmethod
    def make_tasks(
        param_sets: Sequence[Mapping[str, Any]], *, base_seed: int = 0
    ) -> List[SweepTask]:
        """Materialise a parameter sweep's task list (see :meth:`SweepSpec.tasks`)."""
        return [
            SweepTask(index=i, seed=derive_task_seed(base_seed, i), params=dict(params))
            for i, params in enumerate(param_sets)
        ]

    def execute(self, spec: SweepSpec) -> SweepReport:
        """Execute every task of ``spec``; the report's results are in task order."""
        tasks = spec.tasks()
        cache = resolve_cache(spec.cache)
        if not tasks:
            return SweepReport(results=[], records=[], mode="serial", num_workers=0, elapsed=0.0)
        if self.mode == "serial" or len(tasks) == 1:
            return self._execute_serial(spec.fn, tasks, cache)
        # Pre-flight the pool's pickling requirement cheaply: the function
        # plus the *first* task only (pickling every task up front cost
        # O(N) serialization latency before any work started).  A later
        # task that fails to pickle surfaces at chunk dispatch and is
        # executed inline instead.
        try:
            pickle.dumps(spec.fn)
            pickle.dumps(tasks[0])
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            report = self._execute_serial(spec.fn, tasks, cache, warn_fallback=exc)
            report.pickle_fallback = True
            return report
        return self._execute_fabric(spec, tasks, cache)

    # ------------------------------------------------------------------ #
    # Deprecated wrappers (pre-SweepSpec API)
    # ------------------------------------------------------------------ #
    def run(
        self,
        fn: Callable[[SweepTask], Any],
        param_sets: Sequence[Mapping[str, Any]],
        *,
        base_seed: int = 0,
    ) -> List[Any]:
        """Deprecated: use :meth:`execute` with a :class:`SweepSpec`."""
        warnings.warn(
            "SweepExecutor.run(fn, param_sets) is deprecated; use "
            "SweepExecutor.execute(SweepSpec(fn=fn, param_sets=param_sets, ...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute(SweepSpec(fn=fn, param_sets=param_sets, base_seed=base_seed)).results

    def map_seeds(
        self,
        fn: Callable[[SweepTask], Any],
        seeds: Sequence[int],
        *,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> List[Any]:
        """Deprecated: use :meth:`execute` with ``SweepSpec(seeds=...)``.

        Note the historical inconsistency is fixed: the seed now lives
        only in ``task.seed``, no longer duplicated into
        ``task.params["seed"]``.
        """
        warnings.warn(
            "SweepExecutor.map_seeds(fn, seeds) is deprecated; use "
            "SweepExecutor.execute(SweepSpec(fn=fn, seeds=seeds, extra=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute(SweepSpec(fn=fn, seeds=seeds, extra=dict(extra or {}))).results

    # ------------------------------------------------------------------ #
    # Serial execution (also the pickle fallback and the last-resort drain)
    # ------------------------------------------------------------------ #
    def _warn_fallback(self, fn: Callable[..., Any], exc: Exception) -> None:
        if self._pickle_fallback_warned:
            return
        self._pickle_fallback_warned = True
        warnings.warn(
            f"sweep task function {getattr(fn, '__qualname__', repr(fn))} (or its task "
            f"parameters) cannot be pickled for process execution ({exc}); "
            f"falling back to serial execution",
            RuntimeWarning,
            stacklevel=5,
        )

    def _execute_serial(
        self,
        fn: Callable[[SweepTask], Any],
        tasks: Sequence[SweepTask],
        cache: Optional[RunResultCache],
        *,
        warn_fallback: Optional[Exception] = None,
    ) -> SweepReport:
        if warn_fallback is not None:
            self._warn_fallback(fn, warn_fallback)
        started = time.perf_counter()
        results: List[Any] = []
        records: List[SweepTaskRecord] = []
        hits = stores = uncacheable_count = 0
        for task in tasks:
            value, cached, stored, uncacheable, duration = _run_task_once(fn, task, cache)
            results.append(value)
            records.append(
                SweepTaskRecord(
                    index=task.index,
                    seed=task.seed,
                    worker=-1,
                    duration=duration,
                    cached=cached,
                    attempts=1,
                )
            )
            hits += cached
            stores += stored
            uncacheable_count += uncacheable
        return SweepReport(
            results=results,
            records=records,
            mode="serial",
            num_workers=0,
            elapsed=time.perf_counter() - started,
            cache_hits=hits,
            cache_stores=stores,
            cache_uncacheable=uncacheable_count,
        )

    # ------------------------------------------------------------------ #
    # Work-stealing fabric
    # ------------------------------------------------------------------ #
    def _execute_fabric(
        self,
        spec: SweepSpec,
        tasks: Sequence[SweepTask],
        cache: Optional[RunResultCache],
    ) -> SweepReport:
        started = time.perf_counter()
        num_workers = self.max_workers or os.cpu_count() or 1
        num_workers = max(1, min(num_workers, len(tasks)))
        chunk_size = spec.chunk_size or max(1, len(tasks) // (4 * num_workers))

        ctx = multiprocessing.get_context()
        task_queue = ctx.Queue()
        result_queue = ctx.SimpleQueue()
        fn_blob = pickle.dumps(spec.fn, protocol=pickle.HIGHEST_PROTOCOL)
        cache_root = str(cache.root) if cache is not None else None

        completed: Dict[int, Any] = {}
        records: Dict[int, SweepTaskRecord] = {}
        attempts: Dict[int, int] = {task.index: 0 for task in tasks}
        task_by_index = {task.index: task for task in tasks}
        chunk_tasks: Dict[int, Dict[int, SweepTask]] = {}
        chunk_owner: Dict[int, int] = {}
        leases: Dict[int, _Lease] = {}
        worker_chunk: Dict[int, int] = {}
        worker_busy: Dict[int, float] = {}
        counters = {
            "cache_hits": 0,
            "cache_stores": 0,
            "cache_uncacheable": 0,
            "steals": 0,
            "lease_expiries": 0,
            "worker_deaths": 0,
            "duplicates": 0,
        }
        next_chunk_id = 0
        error: Optional[BaseException] = None

        def record_inline(task: SweepTask) -> None:
            value, cached, stored, uncacheable, duration = _run_task_once(spec.fn, task, cache)
            completed[task.index] = value
            records[task.index] = SweepTaskRecord(
                index=task.index,
                seed=task.seed,
                worker=-1,
                duration=duration,
                cached=cached,
                attempts=attempts[task.index],
            )
            counters["cache_hits"] += cached
            counters["cache_stores"] += stored
            counters["cache_uncacheable"] += uncacheable

        def dispatch(chunk: Sequence[SweepTask]) -> None:
            """Queue one lease; unpicklable chunks degrade to inline runs."""
            nonlocal next_chunk_id
            chunk = [t for t in chunk if t.index not in completed]
            if not chunk:
                return
            for task in chunk:
                attempts[task.index] += 1
                if attempts[task.index] > self.MAX_TASK_ATTEMPTS:
                    raise RuntimeError(
                        f"sweep task {task.index} was dispatched "
                        f"{attempts[task.index]} times without completing "
                        f"(workers keep dying or stalling on it)"
                    )
            chunk_id = next_chunk_id
            next_chunk_id += 1
            try:
                blob = pickle.dumps((chunk_id, list(chunk)), protocol=pickle.HIGHEST_PROTOCOL)
            except (pickle.PicklingError, AttributeError, TypeError) as exc:
                # A later task that cannot cross the process boundary:
                # run this lease inline instead of failing the sweep.
                self._warn_fallback(spec.fn, exc)
                for task in chunk:
                    record_inline(task)
                return
            chunk_tasks[chunk_id] = {t.index: t for t in chunk}
            chunk_owner[chunk_id] = chunk_id % num_workers
            task_queue.put(blob)

        workers: Dict[int, Any] = {}
        next_worker_id = 0
        respawns = 0
        max_respawns = 2 * num_workers
        interrupted: List[int] = []

        def handle_message(msg: tuple) -> None:
            """Book one worker message (shared by the run and drain loops)."""
            nonlocal error
            kind = msg[0]
            if kind == "lease":
                _, chunk_id, worker_id = msg
                if chunk_id in chunk_tasks:
                    if worker_id not in workers:
                        # Lease announcement from a worker whose death we
                        # already processed: don't let the stale message
                        # resurrect the lease — hand the chunk straight
                        # to another worker.
                        reassign(chunk_id)
                    else:
                        leases[chunk_id] = _Lease(
                            worker=worker_id,
                            deadline=time.monotonic() + spec.lease_timeout,
                        )
                        worker_chunk[worker_id] = chunk_id
                        if chunk_owner.get(chunk_id, worker_id) != worker_id:
                            counters["steals"] += 1
            elif kind == "result":
                (_, chunk_id, worker_id, index, value, cached, stored, uncacheable, duration) = msg
                lease = leases.get(chunk_id)
                if lease is not None:
                    lease.deadline = time.monotonic() + spec.lease_timeout
                worker_busy[worker_id] = worker_busy.get(worker_id, 0.0) + duration
                if index in completed:
                    counters["duplicates"] += 1
                else:
                    completed[index] = value
                    records[index] = SweepTaskRecord(
                        index=index,
                        seed=task_by_index[index].seed,
                        worker=worker_id,
                        duration=duration,
                        cached=cached,
                        attempts=attempts[index],
                    )
                    counters["cache_hits"] += cached
                    counters["cache_stores"] += stored
                    counters["cache_uncacheable"] += uncacheable
                chunk_tasks.get(chunk_id, {}).pop(index, None)
            elif kind == "chunk_done":
                _, chunk_id, worker_id = msg
                leases.pop(chunk_id, None)
                chunk_tasks.pop(chunk_id, None)
                chunk_owner.pop(chunk_id, None)
                if worker_chunk.get(worker_id) == chunk_id:
                    del worker_chunk[worker_id]
            elif kind == "error":
                _, chunk_id, worker_id, index, payload, text = msg
                if payload is not None:
                    try:
                        error = pickle.loads(payload)
                    except Exception:
                        error = RuntimeError(text)
                else:
                    error = RuntimeError(text)

        def drain_interrupted(poll: float) -> None:
            """Graceful SIGINT/SIGTERM: lose no already-computed chunk.

            Pending (unleased) chunks are pulled back off the queue and
            workers are poisoned, so each finishes at most its *current*
            task; every result still in the channel — computed before or
            during the drain, and already persisted worker-side in the
            cache — is booked before the interrupt propagates.  A re-run
            of the same spec then resumes from the cache with zero lost
            chunks.
            """
            self._drain_inline(task_queue)
            for _ in range(len(workers) + 1):
                try:
                    task_queue.put_nowait(None)
                except (OSError, ValueError):
                    break
            deadline = time.monotonic() + max(2.0, spec.lease_timeout)
            while time.monotonic() < deadline:
                blob = _poll_get(result_queue, poll)
                if blob is not None:
                    handle_message(pickle.loads(blob))
                    continue
                if not any(proc.is_alive() for proc in workers.values()):
                    break

        def spawn_worker() -> None:
            nonlocal next_worker_id
            proc = ctx.Process(
                target=_fabric_worker,
                args=(next_worker_id, fn_blob, task_queue, result_queue, cache_root),
                daemon=True,
            )
            proc.start()
            workers[next_worker_id] = proc
            next_worker_id += 1

        def reassign(chunk_id: int) -> None:
            remaining = chunk_tasks.pop(chunk_id, {})
            chunk_owner.pop(chunk_id, None)
            leases.pop(chunk_id, None)
            if remaining:
                # Deterministic reassignment order: unfinished tasks of
                # the lease, sorted by index, become one fresh chunk.
                dispatch([remaining[i] for i in sorted(remaining)])

        # Graceful-shutdown hook: a SIGINT/SIGTERM mid-sweep drains
        # in-flight lease results (flushed to the cache worker-side)
        # instead of dropping whatever sat in the channel.  Signal
        # handlers only install on the main thread; elsewhere the sweep
        # keeps the process's existing behaviour.
        previous_handlers: Dict[int, Any] = {}

        def _on_signal(signum: int, frame: Any) -> None:
            interrupted.append(signum)

        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    previous_handlers[signum] = signal.signal(signum, _on_signal)
                except (ValueError, OSError):  # pragma: no cover - exotic hosts
                    pass

        try:
            for start in range(0, len(tasks), chunk_size):
                dispatch(tasks[start : start + chunk_size])
            for _ in range(num_workers):
                spawn_worker()

            poll = max(0.02, min(0.25, spec.lease_timeout / 4.0))
            _debug = bool(os.environ.get("REPRO_SWEEP_DEBUG"))
            _last_dbg = 0.0
            while len(completed) < len(tasks):
                if interrupted:
                    drain_interrupted(poll)
                    raise KeyboardInterrupt(
                        f"sweep interrupted by signal {interrupted[0]}; "
                        f"{len(completed)}/{len(tasks)} task results retained "
                        "(cached tasks resume on re-run)"
                    )
                if _debug and time.monotonic() - _last_dbg > 1.0:
                    _last_dbg = time.monotonic()
                    print(
                        f"[fabric] done={len(completed)}/{len(tasks)} "
                        f"chunks={dict((c, sorted(t)) for c, t in chunk_tasks.items())} "
                        f"leases={leases} worker_chunk={worker_chunk} "
                        f"workers={list(workers)} counters={counters}",
                        flush=True,
                    )
                blob = _poll_get(result_queue, poll)
                if blob is not None:
                    handle_message(pickle.loads(blob))
                    if error is not None:
                        break

                now = time.monotonic()
                for chunk_id, lease in list(leases.items()):
                    if now > lease.deadline:
                        # Stalled lease: the worker may be alive but wedged
                        # (or just slow) — hand the unfinished tasks to the
                        # next idle worker; late duplicates are dropped.
                        worker_chunk.pop(lease.worker, None)
                        counters["lease_expiries"] += 1
                        reassign(chunk_id)
                for worker_id, proc in list(workers.items()):
                    if proc.is_alive():
                        continue
                    del workers[worker_id]
                    counters["worker_deaths"] += 1
                    held = worker_chunk.pop(worker_id, None)
                    if held is not None and chunk_tasks.get(held):
                        reassign(held)
                    else:
                        # The dead worker may have consumed a lease blob
                        # whose lease message never reached us: start the
                        # expiry clock on every outstanding chunk nobody
                        # currently holds, with a short grace so in-flight
                        # lease messages can still cancel it.
                        grace = now + min(spec.lease_timeout, max(0.1, 4.0 * poll))
                        for cid in chunk_tasks:
                            if cid not in leases:
                                leases[cid] = _Lease(worker=-1, deadline=grace)
                    if respawns < max_respawns:
                        respawns += 1
                        spawn_worker()
                if not workers and len(completed) < len(tasks):
                    # Every worker is gone and respawns are exhausted:
                    # finish the sweep inline rather than deadlocking.
                    self._drain_inline(task_queue)
                    for task in tasks:
                        if task.index not in completed:
                            attempts[task.index] += 1
                            record_inline(task)
        finally:
            for signum, handler in previous_handlers.items():
                try:
                    signal.signal(signum, handler)
                except (ValueError, OSError):  # pragma: no cover - exotic hosts
                    pass
            self._shutdown(workers, task_queue, result_queue)

        if error is not None:
            raise error
        return SweepReport(
            results=[completed[task.index] for task in tasks],
            records=[records[task.index] for task in tasks],
            mode="process",
            num_workers=num_workers,
            elapsed=time.perf_counter() - started,
            chunk_size=chunk_size,
            worker_busy=worker_busy,
            **counters,
        )

    @staticmethod
    def _drain_inline(task_queue: Any) -> None:
        """Empty the shared queue so joined feeder threads cannot block."""
        while True:
            try:
                task_queue.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                break

    @staticmethod
    def _shutdown(workers: Dict[int, Any], task_queue: Any, result_queue: Any) -> None:
        for _ in range(len(workers) + 1):
            try:
                task_queue.put_nowait(None)
            except (OSError, ValueError):
                break
        deadline = time.monotonic() + 2.0
        for proc in workers.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in workers.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (task_queue, result_queue):
            try:
                if hasattr(q, "cancel_join_thread"):
                    q.cancel_join_thread()
                q.close()
            except (OSError, ValueError):
                pass
