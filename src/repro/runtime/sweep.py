"""Process-pool sweep execution with deterministic per-task seeding.

Network-level workloads batch well (see :mod:`repro.runtime.batch`), but
ISA-level runs — functional simulation, cycle-accurate timing — execute
one instruction at a time and cannot be stacked into NumPy arrays.
:class:`SweepExecutor` fans those runs out over a
:mod:`concurrent.futures` process pool instead, while keeping results
**deterministic and order-stable**:

* every task receives a seed derived from ``(base_seed, task index)``
  through :func:`numpy.random.SeedSequence` spawning, so the assignment
  of seeds to tasks never depends on scheduling, worker count or
  execution mode;
* results are returned in task-submission order regardless of completion
  order;
* ``mode="serial"`` runs the same tasks inline (no pool), byte-for-byte
  reproducing the process-pool results — the default for test suites and
  the fallback when a task function cannot be pickled.

Task functions must be module-level callables (picklable) accepting a
single :class:`SweepTask` argument.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence

import numpy as np

__all__ = ["SweepTask", "SweepExecutor", "derive_task_seed"]


def derive_task_seed(base_seed: int, index: int) -> int:
    """Deterministic, well-mixed seed for task ``index`` of a sweep.

    Uses :class:`numpy.random.SeedSequence` spawn keys, so neighbouring
    indices yield statistically independent streams (unlike
    ``base_seed + index``, which produces correlated generators for some
    RNGs) while remaining stable across platforms and processes.
    """
    sequence = np.random.SeedSequence(base_seed, spawn_key=(index,))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


@dataclass(frozen=True)
class SweepTask:
    """One unit of work in a sweep.

    Attributes
    ----------
    index:
        Position of the task in the sweep (also the result position).
    seed:
        Deterministically derived per-task seed (see
        :func:`derive_task_seed`).
    params:
        Task parameters as passed to :meth:`SweepExecutor.run`.
    """

    index: int
    seed: int
    params: Mapping[str, Any] = field(default_factory=dict)


def _invoke(fn: Callable[[SweepTask], Any], task: SweepTask) -> Any:
    return fn(task)


class SweepExecutor:
    """Fan a task function out over a process pool (or run it inline).

    Parameters
    ----------
    mode:
        ``"serial"`` (default) executes tasks inline in submission order;
        ``"process"`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`.
    max_workers:
        Worker count for process mode; defaults to ``os.cpu_count()``
        capped at the number of tasks.
    """

    def __init__(self, *, mode: str = "serial", max_workers: Optional[int] = None) -> None:
        if mode not in ("serial", "process"):
            raise ValueError(f"unknown executor mode {mode!r}")
        self.mode = mode
        self.max_workers = max_workers
        self._pickle_fallback_warned = False

    # ------------------------------------------------------------------ #
    @staticmethod
    def make_tasks(
        param_sets: Sequence[Mapping[str, Any]], *, base_seed: int = 0
    ) -> List[SweepTask]:
        """Materialise the task list with deterministic per-task seeds."""
        return [
            SweepTask(index=i, seed=derive_task_seed(base_seed, i), params=dict(params))
            for i, params in enumerate(param_sets)
        ]

    def run(
        self,
        fn: Callable[[SweepTask], Any],
        param_sets: Sequence[Mapping[str, Any]],
        *,
        base_seed: int = 0,
    ) -> List[Any]:
        """Execute ``fn`` over every parameter set; results in task order.

        ``fn`` receives a :class:`SweepTask` carrying the parameter
        mapping plus the derived seed, and must be picklable for
        ``mode="process"``.
        """
        tasks = self.make_tasks(param_sets, base_seed=base_seed)
        return self._execute(fn, tasks)

    def _execute(self, fn: Callable[[SweepTask], Any], tasks: Sequence[SweepTask]) -> List[Any]:
        if not tasks:
            return []
        if self.mode == "serial" or len(tasks) == 1:
            return [fn(task) for task in tasks]
        # Pre-flight the pool's pickling requirement: the function once
        # (lambdas, closures and bound methods cannot cross a process
        # boundary), then each task, stopping at the first failure.  This
        # keeps execution errors raised by task bodies untouched — only
        # genuine serialization failures trigger the promised fallback of
        # running the whole sweep inline (with a one-time warning per
        # executor).
        try:
            pickle.dumps(fn)
            for task in tasks:
                pickle.dumps(task)
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            return self._serial_fallback(fn, tasks, exc)
        workers = self.max_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(tasks)))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_invoke, fn, task) for task in tasks]
            return [future.result() for future in futures]

    def _serial_fallback(
        self, fn: Callable[[SweepTask], Any], tasks: Sequence[SweepTask], exc: Exception
    ) -> List[Any]:
        if not self._pickle_fallback_warned:
            self._pickle_fallback_warned = True
            warnings.warn(
                f"sweep task function {getattr(fn, '__qualname__', repr(fn))} (or its task "
                f"parameters) cannot be pickled for process execution ({exc}); "
                f"falling back to serial execution",
                RuntimeWarning,
                stacklevel=4,
            )
        return [fn(task) for task in tasks]

    def map_seeds(
        self,
        fn: Callable[[SweepTask], Any],
        seeds: Sequence[int],
        *,
        extra: Optional[Mapping[str, Any]] = None,
    ) -> List[Any]:
        """Convenience wrapper: one task per explicit seed value.

        Unlike :meth:`run`, the *given* seeds are used verbatim (placed in
        ``task.params["seed"]`` and ``task.seed``); ``extra`` parameters
        are merged into every task.
        """
        base = dict(extra or {})
        tasks = [
            SweepTask(index=i, seed=int(seed), params={**base, "seed": int(seed)})
            for i, seed in enumerate(seeds)
        ]
        return self._execute(fn, tasks)
