"""Content-addressed on-disk cache for backend run results.

Every built-in backend is deterministic given a :class:`RunRequest`
(network construction, noise and puzzle generation are all seeded), so a
``(backend, request)`` pair fully determines the :class:`RunResult` — up
to the code that computes it.  :class:`RunResultCache` exploits that:

* the **cache key** is a SHA-256 over the backend name, a canonical
  token of the request (dataclasses, mappings, sequences, NumPy arrays
  and scalars are all reduced to a stable JSON form) and a
  **code fingerprint** hashing every ``repro`` source file, so editing
  the simulator invalidates all prior entries instead of serving stale
  results;
* entries are pickled ``RunResult`` objects stored under
  ``<root>/<key[:2]>/<key>.pkl`` — written atomically (temp file +
  fsync + rename) with a SHA-256 payload checksum verified on every
  read, so concurrent sweep workers may share one cache directory and a
  corrupted entry is quarantined (renamed aside, counted) instead of
  being served or silently lost;
* requests that contain objects without a stable canonical form (e.g. a
  closure in ``options``) are *bypassed*, never mis-keyed.

The cache is opt-in.  ``run_on_backend(..., cache=True)`` (or an
explicit :class:`RunResultCache` instance) enables it per call, and
setting ``REPRO_RUN_CACHE=1`` in the environment enables it for every
``run_on_backend`` call that does not say otherwise —
``REPRO_RUN_CACHE_DIR`` overrides the default location
(``~/.cache/izhirisc-repro/runs``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
import tempfile
from enum import Enum
from pathlib import Path
from typing import Any, Mapping, Optional, Union

import numpy as np

__all__ = [
    "RunResultCache",
    "UncacheableRequestError",
    "code_fingerprint",
    "default_cache",
    "derive_cache_key",
    "resolve_cache",
]

#: Environment switch enabling the default cache for all ``run_on_backend``
#: calls ("1" / "true" / "on" / "yes").
ENV_ENABLE = "REPRO_RUN_CACHE"
#: Environment override for the cache directory.
ENV_DIR = "REPRO_RUN_CACHE_DIR"

#: Bumped whenever the key derivation or the stored format changes.
_FORMAT_VERSION = 1

#: Leads every checksummed cache entry; followed by a 32-byte SHA-256 of
#: the pickled payload, then the payload itself.
_ENTRY_MAGIC = b"RPROCSH1"
_SHA_BYTES = 32


class UncacheableRequestError(TypeError):
    """A request contains an object with no stable canonical form."""


def _token(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-serialisable structure.

    Two requests produce the same token iff they describe the same run;
    anything we cannot canonicalise raises
    :class:`UncacheableRequestError` so the caller bypasses the cache
    rather than risking a collision.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    if isinstance(obj, Enum):
        return {"__enum__": f"{type(obj).__qualname__}.{obj.name}"}
    if isinstance(obj, np.generic):
        return _token(obj.item())
    if isinstance(obj, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()
        return {"__ndarray__": [str(obj.dtype), list(obj.shape), digest]}
    # Objects may declare their own canonical form through the
    # ``cache_token`` protocol (e.g. ``ConstraintGraph``, which is not a
    # dataclass and whose identity is structural).  The protocol wins
    # over the generic dataclass reduction so classes can exclude
    # incidental fields (names, caches) from their cache identity.
    token_method = getattr(obj, "cache_token", None)
    if callable(token_method) and not isinstance(obj, type):
        return {"__object__": type(obj).__qualname__, "token": _token(token_method())}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__qualname__,
            "fields": {f.name: _token(getattr(obj, f.name)) for f in dataclasses.fields(obj)},
        }
    if isinstance(obj, Mapping):
        # Keys are tokenised like values (str(1) == str("1") would
        # collide) and pairs are ordered by their serialised form, which
        # is total where tuple comparison of arbitrary tokens is not.
        items = [[_token(key), _token(value)] for key, value in obj.items()]
        items.sort(key=lambda pair: json.dumps(pair, sort_keys=True, separators=(",", ":")))
        return {"__mapping__": items}
    if isinstance(obj, (list, tuple)):
        return [_token(item) for item in obj]
    raise UncacheableRequestError(
        f"cannot derive a stable cache key from {type(obj).__qualname__!r}"
    )


def derive_cache_key(backend_name: str, request: Any) -> Optional[str]:
    """Content-addressed key of one ``(backend, request)`` pair.

    The module-level form of :meth:`RunResultCache.key_for`, usable
    without a cache instance (the serve tier derives request identities
    from it even when running cache-less).  Returns ``None`` when the
    request contains an object with no stable canonical form.
    """
    try:
        token = _token(request)
    except UncacheableRequestError:
        return None
    payload = json.dumps(
        {
            "version": _FORMAT_VERSION,
            "backend": backend_name,
            "request": token,
            "code": code_fingerprint(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (computed once per process).

    Part of every cache key: a cached result is only ever served by the
    exact code revision that produced it.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


class RunResultCache:
    """On-disk store mapping ``(backend, request, code)`` to ``RunResult``.

    Parameters
    ----------
    root:
        Cache directory.  Defaults to ``$REPRO_RUN_CACHE_DIR`` or
        ``~/.cache/izhirisc-repro/runs``.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        if root is None:
            root = os.environ.get(ENV_DIR) or Path.home() / ".cache" / "izhirisc-repro" / "runs"
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.uncacheable = 0
        self.quarantined = 0

    # ------------------------------------------------------------------ #
    # Key derivation
    # ------------------------------------------------------------------ #
    def key_for(self, backend_name: str, request: Any) -> Optional[str]:
        """Cache key for one run, or ``None`` if the request is uncacheable."""
        return derive_cache_key(backend_name, request)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------ #
    # Storage
    # ------------------------------------------------------------------ #
    def _quarantine(self, path: Path) -> None:
        """Rename a damaged entry aside (kept for post-mortems) and count it.

        Quarantined files carry a ``.quarantined`` suffix the loader
        never matches, so the slot reads as a miss and the next store
        rewrites it — but the corrupt bytes stay available for
        inspection instead of silently vanishing.
        """
        try:
            os.replace(path, path.with_name(path.name + ".quarantined"))
            self.quarantined += 1
        except OSError:
            path.unlink(missing_ok=True)

    def get(self, key: str, *, expect: Optional[type] = None) -> Optional[Any]:
        """Load a cached result (``None`` on miss or corrupt entry).

        Checksummed entries (the format :meth:`put` writes) are verified
        on every read: a payload whose SHA-256 does not match — bit rot,
        torn write, tampering — is **quarantined** (renamed aside and
        counted in :attr:`stats`) and reported as a miss.  Legacy
        un-checksummed pickles are still readable; ones that fail to
        unpickle are quarantined the same way.  With ``expect`` set, an
        entry that unpickles to a different type — e.g. a foreign pickle
        dropped into the cache directory, or an entry written by an
        incompatible tool — is unlinked and reported as a miss, never
        handed to the caller.
        """
        path = self._path(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            if data.startswith(_ENTRY_MAGIC):
                head = len(_ENTRY_MAGIC) + _SHA_BYTES
                digest = data[len(_ENTRY_MAGIC) : head]
                payload = data[head:]
                if len(digest) < _SHA_BYTES or hashlib.sha256(payload).digest() != digest:
                    raise ValueError("cache entry checksum mismatch")
                result = pickle.loads(payload)
            else:
                # Pre-checksum entry (or foreign bytes): the unpickle
                # itself is the only integrity check available.
                result = pickle.loads(data)
        except Exception:
            self._quarantine(path)
            return None
        if expect is not None and not isinstance(result, expect):
            path.unlink(missing_ok=True)
            return None
        return result

    def put(self, key: str, result: Any) -> None:
        """Store ``result`` under ``key`` (atomic, fsynced, checksummed).

        The entry is written to a temp file (magic + payload SHA-256 +
        pickled payload), fsynced and renamed into place, so a crash
        mid-store can never leave a half-written entry under the key —
        and a damaged one can never be mistaken for a result on read.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_ENTRY_MAGIC)
                fh.write(hashlib.sha256(payload).digest())
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    # ------------------------------------------------------------------ #
    # High-level interface
    # ------------------------------------------------------------------ #
    def load_or_run(self, backend: Any, request: Any) -> Any:
        """Serve ``backend.run(request)`` from the cache when possible."""
        key = self.key_for(backend.name, request)
        if key is None:
            self.uncacheable += 1
            return backend.run(request)
        cached = self.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = backend.run(request)
        self.put(key, result)
        return result

    def clear(self) -> None:
        """Delete every entry (the directory itself is recreated lazily)."""
        shutil.rmtree(self.root, ignore_errors=True)

    @property
    def stats(self) -> Mapping[str, int]:
        """Hit/miss/store/uncacheable counters for this instance."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
            "quarantined": self.quarantined,
        }


_DEFAULT: Optional[RunResultCache] = None


def default_cache() -> RunResultCache:
    """Process-wide cache instance honouring ``REPRO_RUN_CACHE_DIR``.

    The environment is re-read on every call, so setting *or unsetting*
    the directory override takes effect immediately (tests monkeypatch
    it around individual cases).
    """
    global _DEFAULT
    env_root = os.environ.get(ENV_DIR)
    expected = Path(env_root) if env_root else Path.home() / ".cache" / "izhirisc-repro" / "runs"
    if _DEFAULT is None or _DEFAULT.root != expected:
        _DEFAULT = RunResultCache(expected)
    return _DEFAULT


def resolve_cache(
    cache: Union[None, bool, str, Path, RunResultCache],
) -> Optional[RunResultCache]:
    """Resolve the ``cache`` argument of ``run_on_backend`` and the sweeps.

    ``None`` defers to the ``REPRO_RUN_CACHE`` environment switch,
    ``True``/``False`` force the default cache on/off, a string or
    :class:`~pathlib.Path` selects an explicit store directory (the form
    sweep workers receive, since a path crosses process boundaries
    cheaply), and a :class:`RunResultCache` instance is used as-is.
    """
    if cache is None:
        if os.environ.get(ENV_ENABLE, "").strip().lower() in ("1", "true", "on", "yes"):
            return default_cache()
        return None
    if cache is False:
        return None
    if cache is True:
        return default_cache()
    if isinstance(cache, (str, Path)):
        return RunResultCache(cache)
    return cache
