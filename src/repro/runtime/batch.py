"""Vectorised batch engine: advance ``B`` independent networks at once.

The sequential :class:`~repro.snn.network.SNNNetwork` drives one network
per Python loop iteration, so a seed sweep of the 80-20 workload or a
multi-puzzle Sudoku solve-rate run pays the NumPy dispatch overhead of
every small array operation ``B`` times per step.  :class:`BatchedNetwork`
stacks the state of ``B`` *compatible* networks into ``(B, N)`` arrays and
advances all of them in one fused update per step, amortising that
overhead across the whole batch.

Two operating points are supported, selected by ``synapse_mode``:

``"exact"`` (default)
    External inputs and synaptic propagation are evaluated per replica
    with the *identical* expressions the sequential engine uses, so the
    batched run is **bit-exact** with ``B`` sequential ``SNNNetwork.run``
    calls — bit-identical spike rasters for the fixed-point backend and
    bit-identical float64 trajectories for the reference backend.  Only
    the neuron/current update is fused.

``"fused"``
    Synaptic propagation is additionally vectorised across the batch
    (a gather + segmented reduction over the stacked weight matrices).
    Floating-point summation order differs from the sequential column
    reduction, so results are numerically equivalent (same distribution,
    ULP-level differences in the synaptic current) but not guaranteed
    bit-identical.  This is the high-throughput mode used by the seed
    sweep benchmarks, typically combined with a ``batched_external``
    provider that draws the whole ``(B, N)`` input in one call.

The fixed-point update is fused through :class:`_FixedBatchKernel`, a
scratch-buffer reimplementation of the integer datapath that is
bit-identical to :func:`repro.sim.npu.izhikevich_update_raw` by
construction (integer arithmetic is exact, so reassociating the adds and
reusing buffers cannot change results); ``tests/runtime`` locks the
equivalence down with randomized cross-checks.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..fixedpoint import Q7_8, Q15_16
from ..sim.npu import _COEFF_004_Q4_11, _CONST_140_ACC, _VTH_RAW
from ..snn.analysis import SpikeRaster
from ..snn.fixed_izhikevich import FixedPointPopulation, decay_current_raw
from ..snn.izhikevich import IzhikevichPopulation, euler_step
from ..snn.network import SNNNetwork
from ..snn.synapse import DenseSynapses, SparseSynapses

__all__ = ["BatchedNetwork", "BatchIncompatibleError"]

#: Signature of a batched external-input provider: ``f(step) -> (B, N)``.
BatchedInputProvider = Callable[[int], np.ndarray]

_Q7_8_MIN, _Q7_8_MAX = Q7_8.raw_min, Q7_8.raw_max
_Q15_16_MIN, _Q15_16_MAX = Q15_16.raw_min, Q15_16.raw_max
_ACC_FROM_Q7_8 = 16 - Q7_8.frac_bits  # promote Q7.8 raw to the Q?.16 accumulator
_BV_SHIFT = 11 + Q7_8.frac_bits - 16  # align b*v (Q4.11 * Q7.8) to 16 frac bits


class BatchIncompatibleError(ValueError):
    """Raised when the networks handed to the batch engine cannot be stacked."""


def _quantize_q15_16(
    values: np.ndarray, out: np.ndarray, scratch: Optional[np.ndarray] = None
) -> np.ndarray:
    """Fused ``Q15_16.from_float`` (NEAREST / SATURATE) into ``out`` (int64).

    Bit-identical to :meth:`repro.fixedpoint.QFormat.from_float` with the
    default rounding and overflow modes: round-to-nearest with ties away
    from zero is computed as ``copysign(floor(|x| + 0.5), x)``, which
    matches the reference's ``floor(x + 0.5) / ceil(x - 0.5)`` split for
    every representable input.
    """
    if scratch is None:
        scratch = np.empty_like(values)
    np.multiply(values, 65536.0, out=scratch)
    np.abs(scratch, out=scratch)
    scratch += 0.5
    np.floor(scratch, out=scratch)
    np.copysign(scratch, values, out=scratch)  # values carries the sign (scale > 0)
    np.copyto(out, scratch, casting="unsafe")
    np.maximum(out, _Q15_16_MIN, out=out)
    np.minimum(out, _Q15_16_MAX, out=out)
    return out


class _FixedBatchKernel:
    """Scratch-buffer fixed-point Izhikevich substep over ``(B, N)`` state.

    Bit-identical to :func:`repro.sim.npu.izhikevich_update_raw`; the only
    differences are preallocated temporaries and in-place NumPy ops, which
    are exact for integer arithmetic.
    """

    def __init__(
        self,
        a_raw: np.ndarray,
        b_raw: np.ndarray,
        c_raw: np.ndarray,
        d_raw: np.ndarray,
        *,
        h_shift: int,
        pin_voltage: bool,
    ) -> None:
        self.a = a_raw
        self.b = b_raw
        self.c = c_raw
        self.d_q78 = d_raw >> (11 - Q7_8.frac_bits)
        self.h_shift = h_shift
        self.pin_voltage = pin_voltage
        shape = a_raw.shape
        self._v_acc = np.empty(shape, dtype=np.int64)
        self._u_acc = np.empty(shape, dtype=np.int64)
        self._dv = np.empty(shape, dtype=np.int64)
        self._du = np.empty(shape, dtype=np.int64)
        self._u_sp = np.empty(shape, dtype=np.int64)
        self._spike = np.empty(shape, dtype=bool)

    def substep(self, v: np.ndarray, u: np.ndarray, isyn_raw: np.ndarray) -> np.ndarray:
        """Advance ``(v, u)`` in place by one NPU timestep; returns spikes."""
        v_acc, u_acc, dv, du = self._v_acc, self._u_acc, self._dv, self._du
        np.left_shift(v, _ACC_FROM_Q7_8, out=v_acc)
        np.left_shift(u, _ACC_FROM_Q7_8, out=u_acc)

        # dv = ((0.04 v^2 + 5 v + 140 - u + Isyn)) >> h
        np.multiply(v, v, out=dv)
        dv *= _COEFF_004_Q4_11
        np.right_shift(dv, 11, out=dv)
        np.multiply(v_acc, 5, out=du)  # reuse du as a temporary for 5*v_acc
        dv += du
        dv += _CONST_140_ACC
        dv -= u_acc
        dv += isyn_raw
        np.right_shift(dv, self.h_shift, out=dv)

        # du = (a (b v - u)) >> h
        np.multiply(self.b, v, out=du)
        np.right_shift(du, _BV_SHIFT, out=du)
        du -= u_acc
        du *= self.a
        np.right_shift(du, 11, out=du)
        np.right_shift(du, self.h_shift, out=du)

        v_acc += dv
        np.right_shift(v_acc, _ACC_FROM_Q7_8, out=v_acc)
        np.maximum(v_acc, _Q7_8_MIN, out=v_acc)
        np.minimum(v_acc, _Q7_8_MAX, out=v_acc)
        u_acc += du
        np.right_shift(u_acc, _ACC_FROM_Q7_8, out=u_acc)
        np.maximum(u_acc, _Q7_8_MIN, out=u_acc)
        np.minimum(u_acc, _Q7_8_MAX, out=u_acc)

        spike, u_sp = self._spike, self._u_sp
        np.greater_equal(v_acc, _VTH_RAW, out=spike)
        np.add(u_acc, self.d_q78, out=u_sp)
        np.maximum(u_sp, _Q7_8_MIN, out=u_sp)
        np.minimum(u_sp, _Q7_8_MAX, out=u_sp)

        np.copyto(v, v_acc)
        np.copyto(v, self.c, where=spike)
        np.copyto(u, u_acc)
        np.copyto(u, u_sp, where=spike)
        if self.pin_voltage:
            np.maximum(v, self.c, out=v)
        return spike


class _SynapseBatch:
    """Batched synaptic propagation over stacked connectivity."""

    def __init__(self, networks: Sequence[SNNNetwork], mode: str) -> None:
        synapses = [net.synapses for net in networks]
        kinds = {type(s) for s in synapses}
        if len(kinds) != 1:
            raise BatchIncompatibleError("all networks must use the same synapse kind")
        self.mode = mode
        self.batch_size = len(networks)
        self.size = networks[0].size
        self._synapses = synapses
        self._none = synapses[0] is None
        self._out = np.zeros((self.batch_size, self.size), dtype=np.float64)
        self._weight_rows: Optional[np.ndarray] = None
        self._shared_sparse = None
        if self._none or mode == "exact":
            return
        if isinstance(synapses[0], DenseSynapses):
            # Row (b * N + i) holds W_b[:, i]: the outgoing weights of
            # presynaptic neuron i in replica b.  One gather over the
            # firing (replica, neuron) pairs plus a segmented reduction
            # then yields every replica's synaptic current at once.
            stacked = np.stack([np.asarray(s.weights) for s in synapses])
            self._weight_rows = np.ascontiguousarray(stacked.transpose(0, 2, 1)).reshape(
                self.batch_size * self.size, self.size
            )
        elif isinstance(synapses[0], SparseSynapses):
            first = synapses[0].matrix
            if not all(s.matrix is first for s in synapses[1:]):
                raise BatchIncompatibleError(
                    "fused sparse propagation requires a shared connectivity matrix"
                )
            self._shared_sparse = first
        else:  # pragma: no cover - synapse kinds are exhaustive
            raise BatchIncompatibleError(f"unsupported synapse kind {kinds!r}")

    def propagate(self, fired: np.ndarray) -> np.ndarray:
        """Synaptic current ``(B, N)`` delivered by the firing mask ``(B, N)``."""
        out = self._out
        if self._none:
            out[:] = 0.0
            return out
        if self.mode == "exact":
            for i, syn in enumerate(self._synapses):
                out[i] = syn.propagate(fired[i])
            return out
        if self._shared_sparse is not None:
            out[:] = (self._shared_sparse @ fired.T.astype(np.float64)).T
            return out
        idx = np.flatnonzero(fired.ravel())
        out[:] = 0.0
        if idx.size:
            rows = self._weight_rows[idx]
            counts = fired.sum(axis=1)
            nonempty = counts > 0
            starts = (np.cumsum(counts) - counts)[nonempty]
            out[nonempty] = np.add.reduceat(rows, starts, axis=0)
        return out


class BatchedNetwork:
    """``B`` independent, structurally compatible networks as one unit of work.

    Build with :meth:`from_networks`; the constituent networks must share
    the population kind (all fixed-point or all float64), size, timestep
    configuration, current mode and synapse kind.  The stacked engine owns
    copies of the per-replica state, so the source networks are left
    untouched.

    Parameters
    ----------
    networks:
        The replicas to stack.
    synapse_mode:
        ``"exact"`` (bit-exact with the sequential engine) or ``"fused"``
        (fully vectorised propagation; see the module docstring).
    batched_external:
        Optional ``f(step) -> (B, N)`` provider replacing the per-replica
        ``external_input`` callables.  When given, the per-replica
        providers are ignored (and their RNG streams are not consumed).
    """

    def __init__(
        self,
        networks: Sequence[SNNNetwork],
        *,
        synapse_mode: str = "exact",
        batched_external: Optional[BatchedInputProvider] = None,
    ) -> None:
        if not networks:
            raise BatchIncompatibleError("cannot batch zero networks")
        if synapse_mode not in ("exact", "fused"):
            raise ValueError(f"unknown synapse mode {synapse_mode!r}")
        sizes = {net.size for net in networks}
        if len(sizes) != 1:
            raise BatchIncompatibleError(f"network sizes differ: {sorted(sizes)}")
        kinds = {net.is_fixed_point for net in networks}
        if len(kinds) != 1:
            raise BatchIncompatibleError("cannot mix fixed-point and float64 populations")
        modes = {(net.current_mode, net.tau_select) for net in networks}
        if len(modes) != 1:
            raise BatchIncompatibleError(f"current modes differ: {sorted(modes)}")

        self.networks = list(networks)
        self.batch_size = len(networks)
        self.size = networks[0].size
        self.synapse_mode = synapse_mode
        self.is_fixed_point = networks[0].is_fixed_point
        self.current_mode, self.tau_select = next(iter(modes))
        self._batched_external = batched_external
        self._externals = [net.external_input for net in networks]
        self._synapses = _SynapseBatch(networks, synapse_mode)

        shape = (self.batch_size, self.size)
        # Copy the full per-replica simulation state — including the
        # synaptic-current bookkeeping and last-fired masks — so stacking
        # already-stepped ("warm") networks continues exactly where each
        # sequential engine left off.
        self._last_fired = np.stack(
            [np.asarray(net._last_fired, dtype=bool) for net in networks]
        )
        self._fired = np.zeros(shape, dtype=bool)
        self._current = np.stack(
            [np.asarray(net.current_state.current, dtype=np.float64) for net in networks]
        )
        self._ext = np.zeros(shape, dtype=np.float64)
        self._isyn_raw = np.zeros(shape, dtype=np.int64)
        self._fscratch = np.zeros(shape, dtype=np.float64)

        pops = [net.population for net in networks]
        if self.is_fixed_point:
            self._init_fixed(pops)
        else:
            self._init_float(pops)

    # ------------------------------------------------------------------ #
    # Stacking
    # ------------------------------------------------------------------ #
    @classmethod
    def from_networks(
        cls,
        networks: Sequence[SNNNetwork],
        *,
        synapse_mode: str = "exact",
        batched_external: Optional[BatchedInputProvider] = None,
    ) -> "BatchedNetwork":
        """Stack a sequence of compatible :class:`SNNNetwork` instances."""
        return cls(networks, synapse_mode=synapse_mode, batched_external=batched_external)

    def _init_fixed(self, pops: Sequence[FixedPointPopulation]) -> None:
        h_shifts = {p.h_shift for p in pops}
        pins = {p.pin_voltage for p in pops}
        if len(h_shifts) != 1 or len(pins) != 1:
            raise BatchIncompatibleError("fixed-point timestep/pin configuration differs")
        self.h_shift = pops[0].h_shift
        self._substeps = pops[0].substeps_per_ms
        self.v_raw = np.stack([p.v_raw for p in pops]).astype(np.int64)
        self.u_raw = np.stack([p.u_raw for p in pops]).astype(np.int64)
        self._kernel = _FixedBatchKernel(
            np.stack([p.a_raw for p in pops]).astype(np.int64),
            np.stack([p.b_raw for p in pops]).astype(np.int64),
            np.stack([p.c_raw for p in pops]).astype(np.int64),
            np.stack([p.d_raw for p in pops]).astype(np.int64),
            h_shift=self.h_shift,
            pin_voltage=pops[0].pin_voltage,
        )

    def _init_float(self, pops: Sequence[IzhikevichPopulation]) -> None:
        substeps = {p.v_substeps for p in pops}
        if len(substeps) != 1:
            raise BatchIncompatibleError("float64 sub-step configuration differs")
        self.h_shift = 1
        self._v_substeps = pops[0].v_substeps
        self.v = np.stack([p.v for p in pops]).astype(np.float64)
        self.u = np.stack([p.u for p in pops]).astype(np.float64)
        self._params = tuple(
            np.stack([getattr(p, name) for p in pops]).astype(np.float64)
            for name in ("a", "b", "c", "d")
        )

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def _external(self, step: int) -> np.ndarray:
        if self._batched_external is not None:
            ext = np.asarray(self._batched_external(step), dtype=np.float64)
            if ext.shape != self._ext.shape:
                raise ValueError(
                    f"batched external input has shape {ext.shape}, "
                    f"expected {self._ext.shape}"
                )
            return ext
        for i, provider in enumerate(self._externals):
            if provider is None:
                self._ext[i] = 0.0
            else:
                self._ext[i] = np.asarray(provider(step), dtype=np.float64)
        return self._ext

    def _update_current(self, external: np.ndarray, synaptic: np.ndarray) -> np.ndarray:
        # Mirrors CurrentState.update elementwise (hence bit-exact).
        if self.current_mode == "recompute":
            np.add(external, synaptic, out=self._current)
        else:
            raw = _quantize_q15_16(self._current, self._isyn_raw, self._fscratch)
            raw = decay_current_raw(raw, self.tau_select, self.h_shift)
            np.divide(raw, 65536.0, out=self._current)
            self._current += external
            self._current += synaptic
        return self._current

    def _advance_population(self, current: np.ndarray) -> np.ndarray:
        fired = self._fired
        if self.is_fixed_point:
            isyn_raw = _quantize_q15_16(current, self._isyn_raw, self._fscratch)
            fired[:] = False
            for _ in range(self._substeps):
                spike = self._kernel.substep(self.v_raw, self.u_raw, isyn_raw)
                np.logical_or(fired, spike, out=fired)
            return fired
        a, b, c, d = self._params
        self.v, self.u, fired_f = euler_step(
            self.v, self.u, current, a, b, c, d, dt_ms=1.0, v_substeps=self._v_substeps
        )
        fired[:] = fired_f
        return fired

    def step(self, step_index: int) -> np.ndarray:
        """Advance every replica by one 1 ms step; returns the ``(B, N)`` mask."""
        external = self._external(step_index)
        synaptic = self._synapses.propagate(self._last_fired)
        current = self._update_current(external, synaptic)
        fired = self._advance_population(current)
        self._last_fired[:] = fired
        return self._last_fired

    def run(
        self,
        num_steps: int,
        *,
        record: bool = True,
        progress_callback: Optional[Callable[[int, np.ndarray], None]] = None,
        start_step: int = 0,
    ) -> List[SpikeRaster]:
        """Run ``num_steps`` steps; returns one :class:`SpikeRaster` per replica.

        Parameters
        ----------
        record:
            When false, spikes are not stored and empty rasters with
            correct dimensions are returned.
        progress_callback:
            Invoked as ``cb(step, fired)`` with the ``(B, N)`` mask after
            every step.
        start_step:
            Value of the first step index passed to the input providers
            (the Sudoku solver counts steps from 1).
        """
        fired_matrix = (
            np.zeros((num_steps, self.batch_size, self.size), dtype=bool) if record else None
        )
        for t in range(num_steps):
            fired = self.step(start_step + t)
            if fired_matrix is not None:
                fired_matrix[t] = fired
            if progress_callback is not None:
                progress_callback(start_step + t, fired)
        if fired_matrix is None:
            return [SpikeRaster.empty(self.size, num_steps) for _ in range(self.batch_size)]
        return [
            SpikeRaster.from_bool_matrix(fired_matrix[:, b, :]) for b in range(self.batch_size)
        ]

    def reset_currents(self) -> None:
        """Clear the synaptic-current state and the last-fired masks."""
        self._current[:] = 0.0
        self._last_fired[:] = False

    # ------------------------------------------------------------------ #
    @property
    def membrane_potentials(self) -> np.ndarray:
        """Float view of the ``(B, N)`` membrane potentials in millivolts."""
        if self.is_fixed_point:
            return self.v_raw.astype(np.float64) / Q7_8.scale
        return np.array(self.v, copy=True)
