"""Vectorised batch engine: advance ``B`` independent networks at once.

The sequential :class:`~repro.snn.network.SNNNetwork` drives one network
per Python loop iteration, so a seed sweep of the 80-20 workload or a
multi-puzzle Sudoku solve-rate run pays the NumPy dispatch overhead of
every small array operation ``B`` times per step.  :class:`BatchedNetwork`
stacks the state of ``B`` *compatible* networks into ``(B, N)`` arrays and
advances all of them in one fused update per step, amortising that
overhead across the whole batch.

Two operating points are supported, selected by ``synapse_mode``:

``"exact"`` (default)
    The batched run is **bit-exact** with ``B`` sequential
    ``SNNNetwork.run`` calls — bit-identical spike rasters for the
    fixed-point backend and bit-identical float64 trajectories for the
    reference backend.  Whenever every synaptic weight is exactly
    representable in Q15.16 (the WTA constraint networks, whose weights
    are small integers), propagation runs through the **integer CSR
    kernel**: the weights are quantised to raw ``int64`` once at stack
    time and one batched gather + segmented integer reduction delivers
    the synaptic current of all ``B`` replicas at once.  Integer adds
    commute, and the float64 column sums of such weights are exact, so
    the fused reduction is bit-identical to the sequential per-replica
    propagation *by construction* — this path is the default for every
    batch that qualifies.  Non-representable weights (e.g. the 80-20
    network's random weights) fall back to the per-replica propagation
    with the identical sequential expressions.

``"fused"``
    Synaptic propagation is vectorised across the batch even when the
    integer path does not apply (a float gather + segmented reduction
    over the stacked weight matrices).  Floating-point summation order
    then differs from the sequential column reduction, so results are
    numerically equivalent (same distribution, ULP-level differences in
    the synaptic current) but not guaranteed bit-identical.  This is the
    high-throughput mode used by the 80-20 seed-sweep benchmarks,
    typically combined with a ``batched_external`` provider.  Batches
    that qualify for the integer kernel use it here too (in which case
    fused *is* bit-exact).

On top of the propagation kernel the fixed-point step feeds the raw
integer synaptic sum straight into the Q15.16 accumulator: instead of
converting the integer sum to float, adding it to the drive current and
re-quantising, the drive current is scaled once and the raw sum added in
the integer domain (``round(base * 2^16 + S_raw)``), which is provably
bit-identical to the sequential ``quantize(base + S_raw / 2^16)`` (scaling
by a power of two commutes with float rounding) while skipping the float
round-trip through :func:`_quantize_q15_16`.  In ``"decay"`` current mode
the engine additionally carries the quantised current as raw integer
state across steps, so the per-step re-quantisation of the float current
disappears entirely.

Batches shrink: :meth:`BatchedNetwork.retain` drops replicas (e.g. solver
instances that already converged) from the live state and connectivity
views, so late steps only advance the survivors — the constraint-solver
batch loop uses this to stop paying for solved instances.  Spike
recording in :meth:`BatchedNetwork.run` goes through a preallocated
bit-packed buffer (one bit per neuron-step) instead of a ``(T, B, N)``
bool cube.

The fixed-point update is fused through :class:`_FixedBatchKernel`, a
scratch-buffer reimplementation of the integer datapath that is
bit-identical to :func:`repro.sim.npu.izhikevich_update_raw` by
construction (integer arithmetic is exact, so reassociating the adds and
reusing buffers cannot change results); ``tests/runtime`` locks the
equivalence down with randomized cross-checks.  The pure-integer regions
carrying that proof are marked ``# reprolint: exact-int`` — reprolint's
RL003 rule (``docs/LINTING.md``) fails the lint on any float literal,
true division or float cast introduced inside them.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..fixedpoint import Q7_8, Q15_16
from ..sim.dcu import SHIFT_SELECTIONS
from ..sim.npu import _COEFF_004_Q4_11, _CONST_140_ACC, _VTH_RAW
from ..snn.analysis import SpikeRaster
from ..snn.fixed_izhikevich import FixedPointPopulation, decay_current_raw
from ..snn.izhikevich import IzhikevichPopulation, euler_step
from ..snn.network import SNNNetwork
from ..snn.synapse import DenseSynapses, SparseSynapses

__all__ = ["BatchedNetwork", "BatchIncompatibleError"]

#: Signature of a batched external-input provider: ``f(step) -> (B, N)``.
BatchedInputProvider = Callable[[int], np.ndarray]

_Q7_8_MIN, _Q7_8_MAX = Q7_8.raw_min, Q7_8.raw_max
_Q15_16_MIN, _Q15_16_MAX = Q15_16.raw_min, Q15_16.raw_max
# NumPy-scalar clip bounds: saves the per-call Python-int -> dtype
# inspection inside np.clip on the hot substep path.
_Q7_8_MIN_I, _Q7_8_MAX_I = np.int64(_Q7_8_MIN), np.int64(_Q7_8_MAX)
_Q15_16_MIN_I, _Q15_16_MAX_I = np.int64(_Q15_16_MIN), np.int64(_Q15_16_MAX)

# The clip ufunc without np.clip's four Python wrapper frames — worth
# several microseconds per call on the substep hot path.  Falls back to
# the public wrapper if NumPy moves the internal namespace again.
try:  # pragma: no cover - depends on the installed NumPy
    _clip = np._core.umath.clip
except AttributeError:  # pragma: no cover
    _clip = np.clip
_ACC_FROM_Q7_8 = 16 - Q7_8.frac_bits  # promote Q7.8 raw to the Q?.16 accumulator
_BV_SHIFT = 11 + Q7_8.frac_bits - 16  # align b*v (Q4.11 * Q7.8) to 16 frac bits


class BatchIncompatibleError(ValueError):
    """Raised when the networks handed to the batch engine cannot be stacked."""


def _quantize_q15_16(
    values: np.ndarray, out: np.ndarray, scratch: Optional[np.ndarray] = None
) -> np.ndarray:
    """Fused ``Q15_16.from_float`` (NEAREST / SATURATE) into ``out`` (int64).

    Bit-identical to :meth:`repro.fixedpoint.QFormat.from_float` with the
    default rounding and overflow modes: round-to-nearest with ties away
    from zero is computed as ``copysign(floor(|x| + 0.5), x)``, which
    matches the reference's ``floor(x + 0.5) / ceil(x - 0.5)`` split for
    every representable input.
    """
    if scratch is None:
        scratch = np.empty_like(values)
    np.multiply(values, 65536.0, out=scratch)
    np.abs(scratch, out=scratch)
    scratch += 0.5
    np.floor(scratch, out=scratch)
    np.copysign(scratch, values, out=scratch)  # values carries the sign (scale > 0)
    np.copyto(out, scratch, casting="unsafe")
    np.maximum(out, _Q15_16_MIN, out=out)
    np.minimum(out, _Q15_16_MAX, out=out)
    return out


# reprolint: exact-int -- pure int64 shift network (decay path)
def _decay_raw_inplace(
    isyn_raw: np.ndarray, tau_select: int, h_shift: int, delta: np.ndarray, tmp: np.ndarray
) -> np.ndarray:
    """In-place scratch-buffer twin of :func:`decay_current_raw`.

    Same integer shift-add network (``I - (approx(I / tau) >> h)`` with
    Q15.16 saturation), minus the per-step temporaries — integer ops are
    exact, so reusing buffers cannot change the result.
    """
    shifts = SHIFT_SELECTIONS[tau_select]
    np.right_shift(isyn_raw, shifts[0], out=delta)
    for shift in shifts[1:]:
        np.right_shift(isyn_raw, shift, out=tmp)
        delta += tmp
    np.right_shift(delta, h_shift, out=delta)
    isyn_raw -= delta
    _clip(isyn_raw, _Q15_16_MIN_I, _Q15_16_MAX_I, isyn_raw)
    return isyn_raw


def _quantize_scaled_q15_16(z: np.ndarray, out: np.ndarray, scratch: np.ndarray) -> np.ndarray:
    """Quantise pre-scaled current ``z = base * 2^16 + S_raw`` into ``out``.

    Bit-identical to ``_quantize_q15_16(base + S_raw / 2^16, out)``:
    multiplying a float64 by the exact power of two ``2^16`` commutes with
    rounding, so ``fl(base + S/2^16) * 2^16 == fl(base * 2^16 + S)`` and
    the round-to-nearest-away step sees the same value either way.  This
    is what lets the integer synapse kernel feed its raw sum straight
    into the accumulator without a float round-trip.  Saturation happens
    on the float side (the bounds are exactly representable), which also
    keeps enormous inputs away from undefined float->int casts.
    """
    np.abs(z, out=scratch)
    scratch += 0.5
    np.floor(scratch, out=scratch)
    np.copysign(scratch, z, out=scratch)
    np.clip(scratch, float(_Q15_16_MIN), float(_Q15_16_MAX), out=scratch)
    np.copyto(out, scratch, casting="unsafe")
    return out


# reprolint: exact-int -- fixed-point Izhikevich substep, all-int64
class _FixedBatchKernel:
    """Scratch-buffer fixed-point Izhikevich substep over ``(B, N)`` state.

    Bit-identical to :func:`repro.sim.npu.izhikevich_update_raw`; the only
    differences are preallocated temporaries and in-place NumPy ops, which
    are exact for integer arithmetic.
    """

    def __init__(
        self,
        a_raw: np.ndarray,
        b_raw: np.ndarray,
        c_raw: np.ndarray,
        d_raw: np.ndarray,
        *,
        h_shift: int,
        pin_voltage: bool,
    ) -> None:
        self.a = a_raw
        self.b = b_raw
        self.c = c_raw
        self.d_q78 = d_raw >> (11 - Q7_8.frac_bits)
        self.h_shift = h_shift
        self.pin_voltage = pin_voltage
        self._alloc_scratch(a_raw.shape)

    def _alloc_scratch(self, shape: tuple) -> None:
        self._v_acc = np.empty(shape, dtype=np.int64)
        self._u_acc = np.empty(shape, dtype=np.int64)
        self._dv = np.empty(shape, dtype=np.int64)
        self._du = np.empty(shape, dtype=np.int64)
        self._u_sp = np.empty(shape, dtype=np.int64)
        self._spike = np.empty(shape, dtype=bool)

    def retain(self, keep: np.ndarray) -> None:
        """Drop all replica rows not listed in ``keep``."""
        self.a = self.a[keep]
        self.b = self.b[keep]
        self.c = self.c[keep]
        self.d_q78 = self.d_q78[keep]
        self._alloc_scratch(self.a.shape)

    def extend(
        self, a_raw: np.ndarray, b_raw: np.ndarray, c_raw: np.ndarray, d_raw: np.ndarray
    ) -> None:
        """Append replica rows (raw parameter arrays, one row per replica)."""
        self.a = np.concatenate([self.a, a_raw])
        self.b = np.concatenate([self.b, b_raw])
        self.c = np.concatenate([self.c, c_raw])
        self.d_q78 = np.concatenate([self.d_q78, d_raw >> (11 - Q7_8.frac_bits)])
        self._alloc_scratch(self.a.shape)

    def substep(self, v: np.ndarray, u: np.ndarray, isyn_raw: np.ndarray) -> np.ndarray:
        """Advance ``(v, u)`` in place by one NPU timestep; returns spikes."""
        v_acc, u_acc, dv, du = self._v_acc, self._u_acc, self._dv, self._du
        np.left_shift(v, _ACC_FROM_Q7_8, out=v_acc)
        np.left_shift(u, _ACC_FROM_Q7_8, out=u_acc)

        # dv = ((0.04 v^2 + 5 v + 140 - u + Isyn)) >> h
        np.multiply(v, v, out=dv)
        dv *= _COEFF_004_Q4_11
        np.right_shift(dv, 11, out=dv)
        np.multiply(v_acc, 5, out=du)  # reuse du as a temporary for 5*v_acc
        dv += du
        dv += _CONST_140_ACC
        dv -= u_acc
        dv += isyn_raw
        np.right_shift(dv, self.h_shift, out=dv)

        # du = (a (b v - u)) >> h — the two narrowing shifts (>> 11, >> h)
        # collapse into one arithmetic shift, which is bit-identical.
        np.multiply(self.b, v, out=du)
        np.right_shift(du, _BV_SHIFT, out=du)
        du -= u_acc
        du *= self.a
        np.right_shift(du, 11 + self.h_shift, out=du)

        v_acc += dv
        np.right_shift(v_acc, _ACC_FROM_Q7_8, out=v_acc)
        _clip(v_acc, _Q7_8_MIN_I, _Q7_8_MAX_I, v_acc)
        u_acc += du
        np.right_shift(u_acc, _ACC_FROM_Q7_8, out=u_acc)
        _clip(u_acc, _Q7_8_MIN_I, _Q7_8_MAX_I, u_acc)

        spike = self._spike
        np.greater_equal(v_acc, _VTH_RAW, out=spike)
        np.copyto(v, v_acc)
        np.copyto(u, u_acc)
        if spike.any():
            # Reset only when something fired; quiet substeps (the common
            # case in settled WTA phases) skip the whole spike datapath.
            u_sp = self._u_sp
            np.add(u_acc, self.d_q78, out=u_sp)
            _clip(u_sp, _Q7_8_MIN_I, _Q7_8_MAX_I, u_sp)
            np.copyto(v, self.c, where=spike)
            np.copyto(u, u_sp, where=spike)
        if self.pin_voltage:
            np.maximum(v, self.c, out=v)
        return spike


class _SynapseBatch:
    """Batched synaptic propagation over stacked connectivity.

    Three engines, picked at stack time:

    * **integer** (``self.integer``): every weight is exactly
      representable in Q15.16, so the weights live as raw ``int64`` and
      :meth:`propagate_raw` performs one batched CSR gather + segmented
      integer reduction for the whole batch.  Exact in any summation
      order, hence bit-identical to the sequential propagation.
    * **per-replica float** (``mode == "exact"`` without the integer
      path): the sequential ``Synapses.propagate`` expressions, one
      replica at a time.
    * **fused float** (``mode == "fused"`` without the integer path):
      vectorised float gather over stacked weights; reassociates sums
      (ULP-level differences, no bit guarantee).
    """

    def __init__(
        self,
        networks: Sequence[SNNNetwork],
        mode: str,
        *,
        integer_mode: Optional[bool] = None,
    ) -> None:
        synapses = [net.synapses for net in networks]
        kinds = {type(s) for s in synapses}
        if len(kinds) != 1:
            raise BatchIncompatibleError("all networks must use the same synapse kind")
        self.mode = mode
        self.batch_size = len(networks)
        self.size = networks[0].size
        self._synapses = list(synapses)
        self._none = synapses[0] is None
        self.integer = False
        self._build(integer_mode)
        if integer_mode is True and not self.integer and not self._none:
            raise BatchIncompatibleError(
                "integer propagation requires weights exactly representable in Q15.16"
            )

    def _build(self, integer_mode: Optional[bool]) -> None:
        """(Re)build the stacked structures for the current replica set."""
        batch, size = self.batch_size, self.size
        self._out = np.zeros((batch, size), dtype=np.float64)
        self._raw_out = np.zeros((batch, size), dtype=np.int64)
        self._weight_rows: Optional[np.ndarray] = None
        self._int_weight_rows: Optional[np.ndarray] = None
        self._shared_gather = None  # (indptr, indices, col_counts, data_float)
        self._flat_gather = None  # same, flattened over the (replica, pre) grid
        self._int_kind: Optional[str] = None
        self.integer = False
        if self._none:
            return
        if integer_mode is not False:
            self.integer = self._build_integer()
        if self.integer or self.mode == "exact":
            return
        first = self._synapses[0]
        if isinstance(first, DenseSynapses):
            # Row (b * N + i) holds W_b[:, i]: the outgoing weights of
            # presynaptic neuron i in replica b.  One gather over the
            # firing (replica, neuron) pairs plus a segmented reduction
            # then yields every replica's synaptic current at once.
            stacked = np.stack([np.asarray(s.weights) for s in self._synapses])
            self._weight_rows = np.ascontiguousarray(stacked.transpose(0, 2, 1)).reshape(
                batch * size, size
            )
        elif isinstance(first, SparseSynapses):
            if not all(s.matrix is first.matrix for s in self._synapses[1:]):
                raise BatchIncompatibleError(
                    "fused sparse propagation requires a shared connectivity matrix"
                )
            matrix = first.matrix
            counts = np.diff(matrix.indptr).astype(np.int64)
            self._shared_gather = (
                np.asarray(matrix.indptr, dtype=np.int64),
                np.asarray(matrix.indices, dtype=np.int64),
                counts,
                np.asarray(matrix.data, dtype=np.float64),
                self._uniform_fanout(counts),
            )
        else:  # pragma: no cover - synapse kinds are exhaustive
            raise BatchIncompatibleError(f"unsupported synapse kind {type(first)!r}")

    def _build_integer(self) -> bool:
        """Stack raw Q15.16 weights; ``False`` when quantisation would lose bits."""
        first = self._synapses[0]
        if not hasattr(first, "quantized_q15_16"):
            return False
        if isinstance(first, DenseSynapses):
            quantized = []
            for synapse in self._synapses:
                raw, lossless = synapse.quantized_q15_16()
                if not lossless:
                    return False
                quantized.append(raw)
            stacked = np.stack(quantized)  # (B, post, pre)
            self._int_weight_rows = np.ascontiguousarray(stacked.transpose(0, 2, 1)).reshape(
                self.batch_size * self.size, self.size
            )
            self._int_kind = "dense"
            return True
        if not isinstance(first, SparseSynapses):
            return False
        if all(s.matrix is first.matrix for s in self._synapses[1:]):
            raw, lossless = first.quantized_q15_16()
            if not lossless:
                return False
            matrix = first.matrix
            counts = np.diff(matrix.indptr).astype(np.int64)
            self._shared_gather = (
                np.asarray(matrix.indptr, dtype=np.int64),
                np.asarray(matrix.indices, dtype=np.int64),
                counts,
                # Raw payloads kept as float64 so the bincount reduction
                # skips a cast; every partial sum is an integer below
                # 2^53, hence exact.
                raw.astype(np.float64),
                self._uniform_fanout(counts),
            )
            self._int_kind = "shared"
            return True
        # Independent per-replica connectivity: flatten the B CSC
        # structures over one (B * N)-column grid with globally offset
        # row indices, so a single gather serves the whole batch.
        counts = []
        indices = []
        data = []
        for b, synapse in enumerate(self._synapses):
            raw, lossless = synapse.quantized_q15_16()
            if not lossless:
                return False
            matrix = synapse.matrix
            counts.append(np.diff(matrix.indptr).astype(np.int64))
            indices.append(np.asarray(matrix.indices, dtype=np.int64) + b * self.size)
            data.append(raw.astype(np.float64))
        col_counts = np.concatenate(counts)
        indptr = np.concatenate([[0], np.cumsum(col_counts)])
        self._flat_gather = (
            indptr,
            np.concatenate(indices),
            col_counts,
            np.concatenate(data),
            self._uniform_fanout(col_counts),
        )
        self._int_kind = "flat"
        return True

    # ------------------------------------------------------------------ #
    @staticmethod
    def _uniform_fanout(col_counts: np.ndarray) -> Optional[int]:
        """The constant per-column entry count, or ``None`` if it varies."""
        if col_counts.size and int(col_counts[0]) > 0 and np.all(col_counts == col_counts[0]):
            return int(col_counts[0])
        return None

    # reprolint: exact-int -- integer scatter-add (float64 weights waived in _build_integer)
    def _gather_sum(self, fired: np.ndarray, out_flat: np.ndarray) -> bool:
        """Scatter-add the fired columns' entries into ``out_flat`` (B*N).

        Returns ``False`` when nothing fired (``out_flat`` untouched).
        The accumulation runs through ``np.bincount`` with integer-valued
        float64 weights on the integer path — exact, see ``_build_integer``.
        """
        flat = np.flatnonzero(fired.ravel())
        if flat.size == 0:
            return False
        if self._flat_gather is not None:
            indptr, indices, col_counts, data, uniform = self._flat_gather
            cols = flat
            target_offset = None
        else:
            indptr, indices, col_counts, data, uniform = self._shared_gather
            cols = flat % self.size
            target_offset = (flat // self.size) * self.size
        if uniform is not None:
            # Constant fan-out (the WTA graphs): the expansion collapses
            # to one broadcast add, skipping the cumsum/repeat machinery.
            sel = (indptr[cols][:, None] + np.arange(uniform)).reshape(-1)
            targets = indices[sel]
            if target_offset is not None:
                targets = (targets.reshape(-1, uniform) + target_offset[:, None]).reshape(-1)
        else:
            cnt = col_counts[cols]
            total = int(cnt.sum())
            if total == 0:
                return False
            csum = np.cumsum(cnt)
            offsets = np.repeat(indptr[cols] - (csum - cnt), cnt)
            sel = offsets + np.arange(total)
            targets = indices[sel]
            if target_offset is not None:
                targets = targets + np.repeat(target_offset, cnt)
        sums = np.bincount(targets, weights=data[sel], minlength=out_flat.size)
        np.copyto(out_flat, sums, casting="unsafe")
        return True

    # reprolint: exact-int -- Q15.16 integer propagation path
    def propagate_raw(self, fired: np.ndarray) -> np.ndarray:
        """Raw Q15.16 synaptic current ``(B, N)`` (integer path only)."""
        out = self._raw_out
        if self._none:
            out[:] = 0
            return out
        if self._int_kind == "dense":
            idx = np.flatnonzero(fired.ravel())
            out[:] = 0
            if idx.size:
                rows = self._int_weight_rows[idx]
                counts = fired.sum(axis=1)
                nonempty = counts > 0
                starts = (np.cumsum(counts) - counts)[nonempty]
                out[nonempty] = np.add.reduceat(rows, starts, axis=0)
            return out
        out_flat = out.reshape(-1)
        out_flat[:] = 0
        self._gather_sum(fired, out_flat)
        return out

    def propagate(self, fired: np.ndarray) -> np.ndarray:
        """Synaptic current ``(B, N)`` delivered by the firing mask ``(B, N)``."""
        out = self._out
        if self._none:
            out[:] = 0.0
            return out
        if self.integer:
            raw = self.propagate_raw(fired)
            np.divide(raw, 65536.0, out=out)  # exact: |raw| < 2^53
            return out
        if self.mode == "exact":
            for i, syn in enumerate(self._synapses):
                out[i] = syn.propagate(fired[i])
            return out
        if self._shared_gather is not None:
            out_flat = out.reshape(-1)
            out_flat[:] = 0.0
            self._gather_sum(fired, out_flat)
            return out
        idx = np.flatnonzero(fired.ravel())
        out[:] = 0.0
        if idx.size:
            rows = self._weight_rows[idx]
            counts = fired.sum(axis=1)
            nonempty = counts > 0
            starts = (np.cumsum(counts) - counts)[nonempty]
            out[nonempty] = np.add.reduceat(rows, starts, axis=0)
        return out

    def retain(self, keep: np.ndarray) -> None:
        """Drop all replica rows not listed in ``keep``."""
        self._synapses = [self._synapses[i] for i in keep]
        self.batch_size = len(self._synapses)
        # Rebuild the stacked views for the surviving replicas.  This is
        # called at solver check intervals, not per step, so the rebuild
        # cost is amortised away; shared structures are replica-agnostic
        # and rebuild for free.
        self._build(True if self.integer else False)

    def validate_extend(self, synapses: Sequence[object]) -> None:
        """Raise if :meth:`extend` would refuse — without mutating anything.

        Checks the synapse kind and, when the integer kernel is live,
        that every new weight set quantises losslessly (the kernel must
        not silently fall back to float mid-run: the engine's current
        bookkeeping depends on which path is active).
        """
        first = self._synapses[0] if self._synapses else None
        for synapse in synapses:
            if (synapse is None) != self._none or (
                first is not None and type(synapse) is not type(first)
            ):
                raise BatchIncompatibleError("stacked-in synapse kind differs from the batch")
            if self.integer:
                raw, lossless = synapse.quantized_q15_16()
                if not lossless:
                    raise BatchIncompatibleError(
                        "integer propagation requires weights exactly representable in Q15.16"
                    )

    def extend(self, synapses: Sequence[object]) -> None:
        """Append replica synapse sets and rebuild the stacked structures."""
        self.validate_extend(synapses)
        self._synapses.extend(synapses)
        self.batch_size = len(self._synapses)
        self._build(True if self.integer else False)


class BatchedNetwork:
    """``B`` independent, structurally compatible networks as one unit of work.

    Build with :meth:`from_networks`; the constituent networks must share
    the population kind (all fixed-point or all float64), size, timestep
    configuration, current mode and synapse kind.  The stacked engine owns
    copies of the per-replica state, so the source networks are left
    untouched.

    Parameters
    ----------
    networks:
        The replicas to stack.
    synapse_mode:
        ``"exact"`` (bit-exact with the sequential engine) or ``"fused"``
        (fully vectorised propagation; see the module docstring).
    batched_external:
        Optional ``f(step) -> (B, N)`` provider replacing the per-replica
        ``external_input`` callables.  When given, the per-replica
        providers are ignored (and their RNG streams are not consumed).
        Providers exposing a ``batch_shape`` attribute (the compiled
        drives of :mod:`repro.runtime.drives`) are shape-checked once at
        construction; plain callables are checked on every call.
    integer_csr:
        ``None`` (default) auto-enables the integer propagation kernel
        whenever every weight is exactly representable in Q15.16;
        ``False`` forces the pre-integer float paths (the legacy
        behaviour, kept for benchmarking); ``True`` requires the integer
        kernel and raises :class:`BatchIncompatibleError` if the weights
        do not qualify.
    """

    def __init__(
        self,
        networks: Sequence[SNNNetwork],
        *,
        synapse_mode: str = "exact",
        batched_external: Optional[BatchedInputProvider] = None,
        integer_csr: Optional[bool] = None,
    ) -> None:
        if not networks:
            raise BatchIncompatibleError("cannot batch zero networks")
        if synapse_mode not in ("exact", "fused"):
            raise ValueError(f"unknown synapse mode {synapse_mode!r}")
        sizes = {net.size for net in networks}
        if len(sizes) != 1:
            raise BatchIncompatibleError(f"network sizes differ: {sorted(sizes)}")
        kinds = {net.is_fixed_point for net in networks}
        if len(kinds) != 1:
            raise BatchIncompatibleError("cannot mix fixed-point and float64 populations")
        modes = {(net.current_mode, net.tau_select) for net in networks}
        if len(modes) != 1:
            raise BatchIncompatibleError(f"current modes differ: {sorted(modes)}")

        self.networks = list(networks)
        self.batch_size = len(networks)
        self.size = networks[0].size
        self.synapse_mode = synapse_mode
        self.is_fixed_point = networks[0].is_fixed_point
        self.current_mode, self.tau_select = next(iter(modes))
        self._batched_external = batched_external
        self._ext_validated = False
        self._validate_external_shape()
        self._externals = [net.external_input for net in networks]
        self._synapses = _SynapseBatch(networks, synapse_mode, integer_mode=integer_csr)

        shape = (self.batch_size, self.size)
        # Copy the full per-replica simulation state — including the
        # synaptic-current bookkeeping and last-fired masks — so stacking
        # already-stepped ("warm") networks continues exactly where each
        # sequential engine left off.
        self._last_fired = np.stack(
            [np.asarray(net._last_fired, dtype=bool) for net in networks]
        )
        self._fired = np.zeros(shape, dtype=bool)
        self._current = np.stack(
            [np.asarray(net.current_state.current, dtype=np.float64) for net in networks]
        )
        self._ext = np.zeros(shape, dtype=np.float64)
        self._isyn_raw = np.zeros(shape, dtype=np.int64)
        self._fscratch = np.zeros(shape, dtype=np.float64)
        self._fscratch2 = np.zeros(shape, dtype=np.float64)
        self._iscratch = np.zeros(shape, dtype=np.int64)
        self._iscratch2 = np.zeros(shape, dtype=np.int64)
        self._v_scratch: Optional[np.ndarray] = None

        pops = [net.population for net in networks]
        if self.is_fixed_point:
            self._init_fixed(pops)
            if self.current_mode == "decay" and self._use_raw_current:
                # Carry the quantised current as raw integer state: the
                # sequential engine re-quantises its float current at the
                # top of every step, and the result is exactly the raw
                # kernel input of the previous step, so the round-trip
                # can be hoisted out of the loop entirely.
                _quantize_q15_16(self._current, self._isyn_raw, self._fscratch)
        else:
            self._init_float(pops)

    # ------------------------------------------------------------------ #
    # Stacking
    # ------------------------------------------------------------------ #
    @classmethod
    def from_networks(
        cls,
        networks: Sequence[SNNNetwork],
        *,
        synapse_mode: str = "exact",
        batched_external: Optional[BatchedInputProvider] = None,
        integer_csr: Optional[bool] = None,
    ) -> "BatchedNetwork":
        """Stack a sequence of compatible :class:`SNNNetwork` instances."""
        return cls(
            networks,
            synapse_mode=synapse_mode,
            batched_external=batched_external,
            integer_csr=integer_csr,
        )

    @property
    def integer_propagation(self) -> bool:
        """``True`` when the integer CSR/dense synapse kernel is active."""
        return self._synapses.integer

    @property
    def _use_raw_current(self) -> bool:
        """Whether the fixed-point step runs on the raw-integer current feed."""
        return self._synapses.integer or self._synapses._none

    def _validate_external_shape(self) -> None:
        provider = self._batched_external
        if provider is None:
            return
        declared = getattr(provider, "batch_shape", None)
        if declared is not None:
            expected = (self.batch_size, self.size)
            if tuple(declared) != expected:
                raise BatchIncompatibleError(
                    f"batched external provider declares shape {tuple(declared)}, "
                    f"expected {expected}"
                )
            self._ext_validated = True

    def _init_fixed(self, pops: Sequence[FixedPointPopulation]) -> None:
        h_shifts = {p.h_shift for p in pops}
        pins = {p.pin_voltage for p in pops}
        if len(h_shifts) != 1 or len(pins) != 1:
            raise BatchIncompatibleError("fixed-point timestep/pin configuration differs")
        self.h_shift = pops[0].h_shift
        self._substeps = pops[0].substeps_per_ms
        self.v_raw = np.stack([p.v_raw for p in pops]).astype(np.int64)
        self.u_raw = np.stack([p.u_raw for p in pops]).astype(np.int64)
        self._kernel = _FixedBatchKernel(
            np.stack([p.a_raw for p in pops]).astype(np.int64),
            np.stack([p.b_raw for p in pops]).astype(np.int64),
            np.stack([p.c_raw for p in pops]).astype(np.int64),
            np.stack([p.d_raw for p in pops]).astype(np.int64),
            h_shift=self.h_shift,
            pin_voltage=pops[0].pin_voltage,
        )

    def _init_float(self, pops: Sequence[IzhikevichPopulation]) -> None:
        substeps = {p.v_substeps for p in pops}
        if len(substeps) != 1:
            raise BatchIncompatibleError("float64 sub-step configuration differs")
        self.h_shift = 1
        self._v_substeps = pops[0].v_substeps
        self.v = np.stack([p.v for p in pops]).astype(np.float64)
        self.u = np.stack([p.u for p in pops]).astype(np.float64)
        self._params = tuple(
            np.stack([getattr(p, name) for p in pops]).astype(np.float64)
            for name in ("a", "b", "c", "d")
        )

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def _external(self, step: int) -> np.ndarray:
        if self._batched_external is not None:
            ext = np.asarray(self._batched_external(step), dtype=np.float64)
            # Providers declaring batch_shape were validated once at
            # construction; opaque callables keep the per-step check
            # (a wrong-shaped row would otherwise broadcast silently).
            if not self._ext_validated and ext.shape != self._ext.shape:
                raise ValueError(
                    f"batched external input has shape {ext.shape}, "
                    f"expected {self._ext.shape}"
                )
            return ext
        for i, provider in enumerate(self._externals):
            if provider is None:
                self._ext[i] = 0.0
            else:
                self._ext[i] = np.asarray(provider(step), dtype=np.float64)
        return self._ext

    def _update_current(self, external: np.ndarray, synaptic: np.ndarray) -> np.ndarray:
        # Mirrors CurrentState.update elementwise (hence bit-exact).
        if self.current_mode == "recompute":
            np.add(external, synaptic, out=self._current)
        else:
            raw = _quantize_q15_16(self._current, self._isyn_raw, self._fscratch)
            raw = decay_current_raw(raw, self.tau_select, self.h_shift)
            np.divide(raw, 65536.0, out=self._current)
            self._current += external
            self._current += synaptic
        return self._current

    def _fixed_isyn_raw(self, external: np.ndarray) -> np.ndarray:
        """Kernel input current on the raw-integer feed (no float round-trip).

        Sequential reference, per replica: ``base = decayed + external``
        (or just ``external`` in recompute mode), ``current = base + syn``
        and ``isyn_raw = quantize(current)``.  Here the synaptic term
        arrives as the exact raw integer ``S``, so the quantisation runs
        on ``base * 2^16 + S`` instead — bit-identical (see
        :func:`_quantize_scaled_q15_16`) and one float pass cheaper.
        """
        syn_raw = self._synapses.propagate_raw(self._last_fired)
        z = self._fscratch
        if self.current_mode == "decay":
            raw = _decay_raw_inplace(
                self._isyn_raw, self.tau_select, self.h_shift, self._iscratch, self._iscratch2
            )
            base = self._fscratch2
            np.divide(raw, 65536.0, out=base)  # exact
            base += external
            np.multiply(base, 65536.0, out=z)
        else:
            np.multiply(external, 65536.0, out=z)
        np.add(z, syn_raw, out=z)  # int64 -> float64 conversion is exact here
        return _quantize_scaled_q15_16(z, self._isyn_raw, self._fscratch2)

    def _advance_population(self, step_index: int) -> np.ndarray:
        external = self._external(step_index)
        fired = self._fired
        if self.is_fixed_point:
            if self._use_raw_current:
                isyn_raw = self._fixed_isyn_raw(external)
            else:
                synaptic = self._synapses.propagate(self._last_fired)
                current = self._update_current(external, synaptic)
                isyn_raw = _quantize_q15_16(current, self._isyn_raw, self._fscratch)
            fired[:] = False
            for _ in range(self._substeps):
                spike = self._kernel.substep(self.v_raw, self.u_raw, isyn_raw)
                np.logical_or(fired, spike, out=fired)
            return fired
        synaptic = self._synapses.propagate(self._last_fired)
        current = self._update_current(external, synaptic)
        a, b, c, d = self._params
        self.v, self.u, fired_f = euler_step(
            self.v, self.u, current, a, b, c, d, dt_ms=1.0, v_substeps=self._v_substeps
        )
        fired[:] = fired_f
        return fired

    def step(self, step_index: int) -> np.ndarray:
        """Advance every replica by one 1 ms step; returns the ``(B, N)`` mask."""
        fired = self._advance_population(step_index)
        # Swap instead of copy: ``fired`` is the engine-owned ``_fired``
        # buffer, fully rewritten by the next advance.
        self._last_fired, self._fired = fired, self._last_fired
        return self._last_fired

    def run(
        self,
        num_steps: int,
        *,
        record: bool = True,
        progress_callback: Optional[Callable[[int, np.ndarray], None]] = None,
        start_step: int = 0,
    ) -> List[SpikeRaster]:
        """Run ``num_steps`` steps; returns one :class:`SpikeRaster` per replica.

        Parameters
        ----------
        record:
            When true, spikes are recorded into a preallocated bit-packed
            buffer (one bit per neuron-step, 8x smaller than the
            historical bool cube) and unpacked into the returned rasters.
            When false, spikes are not stored and empty rasters with
            correct dimensions are returned.
        progress_callback:
            Invoked as ``cb(step, fired)`` with the ``(B, N)`` mask after
            every step.  Shrinking the batch (:meth:`retain`) from inside
            the callback is not supported while recording.
        start_step:
            Value of the first step index passed to the input providers
            (the Sudoku solver counts steps from 1).
        """
        batch_size = self.batch_size
        packed = (
            np.zeros((num_steps, batch_size, (self.size + 7) // 8), dtype=np.uint8)
            if record
            else None
        )
        for t in range(num_steps):
            fired = self.step(start_step + t)
            if packed is not None:
                if self.batch_size != batch_size:
                    raise RuntimeError("batch shrank mid-run while recording spikes")
                packed[t] = np.packbits(fired, axis=-1)
            if progress_callback is not None:
                progress_callback(start_step + t, fired)
        if packed is None:
            return [SpikeRaster.empty(self.size, num_steps) for _ in range(self.batch_size)]
        return [
            SpikeRaster.from_bool_matrix(
                np.unpackbits(packed[:, b, :], axis=1, count=self.size).astype(bool)
            )
            for b in range(batch_size)
        ]

    def reset_currents(self) -> None:
        """Clear the synaptic-current state and the last-fired masks."""
        self._current[:] = 0.0
        self._isyn_raw[:] = 0
        self._last_fired[:] = False

    # ------------------------------------------------------------------ #
    # Checkpointing (repro.runtime.checkpoint)
    # ------------------------------------------------------------------ #
    def _state_descriptor(self) -> dict:
        """The structural identity a snapshot must match to be restored."""
        return {
            "batch_size": int(self.batch_size),
            "size": int(self.size),
            "is_fixed_point": bool(self.is_fixed_point),
            "current_mode": self.current_mode,
            "tau_select": int(self.tau_select),
            "synapse_mode": self.synapse_mode,
            "h_shift": int(self.h_shift),
            "integer": bool(self._synapses.integer),
        }

    def export_state(self) -> dict:
        """A picklable snapshot of the full per-replica simulation state.

        Covers everything the step loop carries between steps: the
        membrane/recovery state (raw Q7.8 integers on the fixed-point
        backend), the float synaptic current, the raw Q15.16 integer
        current feed (``_isyn_raw``) and the last-fired masks, plus a
        structural descriptor so a restore onto a mismatched batch
        fails loudly.  Kernel parameters, connectivity and drive
        providers are *not* serialised — they are pure functions of the
        (graph, config) pairs the restore path rebuilds the batch from.
        """
        state = {
            "descriptor": self._state_descriptor(),
            "last_fired": self._last_fired.copy(),
            "current": self._current.copy(),
            "isyn_raw": self._isyn_raw.copy(),
        }
        if self.is_fixed_point:
            state["v_raw"] = self.v_raw.copy()
            state["u_raw"] = self.u_raw.copy()
        else:
            state["v"] = self.v.copy()
            state["u"] = self.u.copy()
        return state

    def restore_state(self, state: dict) -> None:
        """Overwrite the live per-replica state with an exported snapshot.

        The batch must have been rebuilt to the snapshot's structure
        first (same replica count, backend, current mode and synapse
        engine); any mismatch raises :class:`BatchIncompatibleError`
        before a single array is touched.
        """
        descriptor = dict(state["descriptor"])
        mine = self._state_descriptor()
        if descriptor != mine:
            diff = {
                key: (descriptor.get(key), mine.get(key))
                for key in set(descriptor) | set(mine)
                if descriptor.get(key) != mine.get(key)
            }
            raise BatchIncompatibleError(
                f"checkpoint state does not match the live batch: {diff}"
            )
        names = ["last_fired", "current", "isyn_raw"]
        names += ["v_raw", "u_raw"] if self.is_fixed_point else ["v", "u"]
        arrays = {}
        for name in names:
            target = getattr(self, name if name.startswith(("v", "u")) else f"_{name}")
            arr = np.asarray(state[name], dtype=target.dtype)
            if arr.shape != target.shape:
                raise BatchIncompatibleError(
                    f"checkpoint array {name!r} has shape {arr.shape}, "
                    f"expected {target.shape}"
                )
            arrays[name] = arr
        for name, arr in arrays.items():
            target = getattr(self, name if name.startswith(("v", "u")) else f"_{name}")
            np.copyto(target, arr)

    # ------------------------------------------------------------------ #
    # Active-set shrinking
    # ------------------------------------------------------------------ #
    def retain(self, keep: Sequence[int]) -> None:
        """Shrink the batch to the replica rows listed in ``keep``.

        ``keep`` must be strictly increasing current row indices.  All
        per-replica state (membrane, recovery, currents, last-fired
        masks, synapse stacks, external providers) is sliced down so
        subsequent steps only advance the surviving replicas; each
        survivor's trajectory is unaffected (replicas are independent).

        **Layering seam.**  Within ``src/repro`` the sanctioned caller
        is :meth:`repro.runtime.slots.SlotEngine.recompose`, which owns
        the retain-before-extend composition order and its edge guards
        for the solver, portfolio and serve layers alike; direct calls
        from outside ``repro/runtime/`` are rejected by reprolint's
        RL001 layering rule (``python -m tools.reprolint``, see
        ``docs/LINTING.md``).
        """
        keep = np.asarray(keep, dtype=np.int64)
        if keep.size == 0:
            raise BatchIncompatibleError("cannot retain an empty batch")
        if np.any(keep < 0) or np.any(keep >= self.batch_size):
            raise IndexError(f"retain indices out of range for batch of {self.batch_size}")
        if np.any(np.diff(keep) <= 0):
            raise ValueError("retain indices must be strictly increasing")
        if keep.size == self.batch_size:
            return
        # Validate everything that can refuse BEFORE mutating any state,
        # so a raise leaves the batch fully usable.
        provider_retain = None
        if self._batched_external is not None:
            provider_retain = getattr(self._batched_external, "retain", None)
            if provider_retain is None:
                raise BatchIncompatibleError(
                    "batched external provider does not support retain(); "
                    "use a compiled drive (repro.runtime.drives) or per-replica providers"
                )
        self.networks = [self.networks[i] for i in keep]
        self.batch_size = int(keep.size)
        for name in ("_last_fired", "_fired", "_current", "_ext", "_isyn_raw",
                     "_fscratch", "_fscratch2", "_iscratch", "_iscratch2"):
            setattr(self, name, np.ascontiguousarray(getattr(self, name)[keep]))
        self._v_scratch = None
        if self.is_fixed_point:
            self.v_raw = np.ascontiguousarray(self.v_raw[keep])
            self.u_raw = np.ascontiguousarray(self.u_raw[keep])
            self._kernel.retain(keep)
        else:
            self.v = np.ascontiguousarray(self.v[keep])
            self.u = np.ascontiguousarray(self.u[keep])
            self._params = tuple(np.ascontiguousarray(p[keep]) for p in self._params)
        self._synapses.retain(keep)
        self._externals = [self._externals[i] for i in keep]
        if provider_retain is not None:
            provider_retain(keep)
            self._ext_validated = False
            self._validate_external_shape()

    def extend(self, networks: Sequence[SNNNetwork]) -> None:
        """Stack additional replicas into the live batch.

        The inverse of :meth:`retain`: the given (typically freshly
        built) networks are appended as new batch rows, state copied the
        same way construction copies it, so each new replica's trajectory
        is bit-identical to running it standalone from its current state.
        Existing rows are untouched — appending rows cannot change their
        fused updates (replicas are independent).

        The networks must satisfy the same compatibility contract as
        construction (size, population kind, current mode, timestep
        configuration, synapse kind; integer-kernel batches additionally
        require losslessly quantisable weights).  When a
        ``batched_external`` provider is set it must support
        ``extend(networks)`` — the portfolio drive of
        :mod:`repro.runtime.drives` does; compiled drives without it
        refuse.

        **Layering seam.**  As with :meth:`retain`, the sanctioned
        ``src/repro`` caller is
        :meth:`repro.runtime.slots.SlotEngine.recompose` (enforced by
        reprolint rule RL001, ``docs/LINTING.md``); the slot engine uses the pair to
        refill freed batch slots with fresh admissions mid-run.
        """
        if not networks:
            return
        networks = list(networks)
        # Validate everything that can refuse BEFORE mutating any state,
        # mirroring retain(), so a raise leaves the batch fully usable.
        sizes = {net.size for net in networks}
        if sizes != {self.size}:
            raise BatchIncompatibleError(
                f"stacked-in network sizes {sorted(sizes)} differ from batch size {self.size}"
            )
        if {net.is_fixed_point for net in networks} != {self.is_fixed_point}:
            raise BatchIncompatibleError("cannot mix fixed-point and float64 populations")
        if {(net.current_mode, net.tau_select) for net in networks} != {
            (self.current_mode, self.tau_select)
        }:
            raise BatchIncompatibleError("stacked-in current modes differ from the batch")
        pops = [net.population for net in networks]
        if self.is_fixed_point:
            if {p.h_shift for p in pops} != {self.h_shift} or {
                p.pin_voltage for p in pops
            } != {self._kernel.pin_voltage}:
                raise BatchIncompatibleError("fixed-point timestep/pin configuration differs")
        else:
            if {p.v_substeps for p in pops} != {self._v_substeps}:
                raise BatchIncompatibleError("float64 sub-step configuration differs")
        provider_extend = None
        if self._batched_external is not None:
            provider_extend = getattr(self._batched_external, "extend", None)
            if provider_extend is None:
                raise BatchIncompatibleError(
                    "batched external provider does not support extend(); "
                    "use a portfolio drive (repro.runtime.drives) or per-replica providers"
                )
        self._synapses.validate_extend([net.synapses for net in networks])

        raw_decay = self.is_fixed_point and self.current_mode == "decay" and self._use_raw_current
        self._synapses.extend([net.synapses for net in networks])
        self.networks.extend(networks)
        self._externals.extend(net.external_input for net in networks)
        self.batch_size = len(self.networks)
        shape = (self.batch_size, self.size)

        add_last_fired = np.stack([np.asarray(net._last_fired, dtype=bool) for net in networks])
        add_current = np.stack(
            [np.asarray(net.current_state.current, dtype=np.float64) for net in networks]
        )
        self._last_fired = np.concatenate([self._last_fired, add_last_fired])
        self._current = np.concatenate([self._current, add_current])
        self._fired = np.zeros(shape, dtype=bool)
        self._ext = np.zeros(shape, dtype=np.float64)
        self._fscratch = np.zeros(shape, dtype=np.float64)
        self._fscratch2 = np.zeros(shape, dtype=np.float64)
        self._iscratch = np.zeros(shape, dtype=np.int64)
        self._iscratch2 = np.zeros(shape, dtype=np.int64)
        self._v_scratch = None
        add_isyn_raw = np.zeros(add_current.shape, dtype=np.int64)
        if raw_decay:
            # New rows join the raw-integer current feed exactly as
            # construction seeds it: the quantised float current.
            _quantize_q15_16(add_current, add_isyn_raw, np.empty_like(add_current))
        self._isyn_raw = np.concatenate([self._isyn_raw, add_isyn_raw])

        if self.is_fixed_point:
            self.v_raw = np.concatenate(
                [self.v_raw, np.stack([p.v_raw for p in pops]).astype(np.int64)]
            )
            self.u_raw = np.concatenate(
                [self.u_raw, np.stack([p.u_raw for p in pops]).astype(np.int64)]
            )
            self._kernel.extend(
                np.stack([p.a_raw for p in pops]).astype(np.int64),
                np.stack([p.b_raw for p in pops]).astype(np.int64),
                np.stack([p.c_raw for p in pops]).astype(np.int64),
                np.stack([p.d_raw for p in pops]).astype(np.int64),
            )
        else:
            self.v = np.concatenate([self.v, np.stack([p.v for p in pops]).astype(np.float64)])
            self.u = np.concatenate([self.u, np.stack([p.u for p in pops]).astype(np.float64)])
            self._params = tuple(
                np.concatenate([cur, np.stack([getattr(p, name) for p in pops]).astype(np.float64)])
                for cur, name in zip(self._params, ("a", "b", "c", "d"))
            )
        if provider_extend is not None:
            provider_extend(networks)
            self._ext_validated = False
            self._validate_external_shape()

    # ------------------------------------------------------------------ #
    @property
    def membrane_potentials(self) -> np.ndarray:
        """Float view of the ``(B, N)`` membrane potentials in millivolts.

        The returned array is a reused scratch buffer, overwritten by the
        next access — copy it to persist values across calls.
        """
        if self._v_scratch is None or self._v_scratch.shape != (self.batch_size, self.size):
            self._v_scratch = np.empty((self.batch_size, self.size), dtype=np.float64)
        if self.is_fixed_point:
            np.divide(self.v_raw, float(Q7_8.scale), out=self._v_scratch)
        else:
            np.copyto(self._v_scratch, self.v)
        return self._v_scratch
