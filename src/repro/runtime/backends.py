"""`SimBackend` protocol and registry unifying the four execution paths.

The reproduction simulates the same neuromorphic workloads at four levels
of fidelity, historically through four unrelated entry points:

=============  ====================================================  =============
Backend name   Implementation                                        Fidelity
=============  ====================================================  =============
``float64``    :mod:`repro.snn.izhikevich` via ``SNNNetwork``        Izhikevich's
               (double-precision Euler reference)                    MATLAB script
``fixed``      :mod:`repro.snn.fixed_izhikevich` via ``SNNNetwork``  bit-exact with
               (vectorised NPU integer datapath)                     the hardware
``functional`` :mod:`repro.sim.functional` running generated         instruction-
               RISC-V programs (:mod:`repro.codegen`)                accurate
``cycle``      :mod:`repro.sim.pipeline` 3-stage pipeline with       cycle-
               caches on top of the functional simulator             accurate
=============  ====================================================  =============

Every backend accepts the same :class:`RunRequest` (workload + size +
steps + seed) and produces a :class:`RunResult`, so harness drivers,
benchmarks and sweeps can switch fidelity by name.  Network-level
backends additionally expose :meth:`SimBackend.build_network`, which the
batch engine uses to stack replicas (``supports_batching``); ISA-level
backends return ``None`` there and are fanned out through
:class:`repro.runtime.sweep.SweepExecutor` instead.

Registering a new backend::

    from repro.runtime import SimBackend, register_backend

    class MyBackend:
        name = "my-backend"
        description = "..."
        level = "network"          # or "isa" / "cycle"
        supports_batching = False

        def run(self, request): ...
        def build_network(self, request): ...   # or return None

    register_backend(MyBackend())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Protocol, Union, runtime_checkable

import numpy as np

from ..snn.analysis import SpikeRaster
from ..snn.eighty_twenty import EightyTwentyConfig, build_eighty_twenty
from ..snn.network import SNNNetwork
from .cache import RunResultCache, resolve_cache

__all__ = [
    "RunRequest",
    "RunResult",
    "SimBackend",
    "eighty_twenty_config",
    "register_backend",
    "get_backend",
    "available_backends",
    "run_on_backend",
]

#: Workload identifiers understood by the built-in backends.
WORKLOAD_EIGHTY_TWENTY = "eighty-twenty"
WORKLOAD_SUDOKU = "sudoku"
WORKLOAD_CSP = "csp"


@dataclass(frozen=True)
class RunRequest:
    """Backend-independent description of one simulation run.

    Parameters
    ----------
    workload:
        ``"eighty-twenty"``, ``"sudoku"`` or ``"csp"``.
    num_steps:
        Simulation length in 1 ms network steps.
    num_neurons:
        Population size; ``None`` selects the workload's paper-scale
        default (1000 for the 80-20 network, 729 for Sudoku).
    seed:
        Seed for network construction and input noise.
    options:
        Backend- or workload-specific extras (e.g. ``current_mode`` for
        the network backends, ``kind`` for the code generators,
        ``puzzle`` for Sudoku runs, or ``scenario`` / ``params`` /
        ``solver_seed`` for the constraint-solver workload).
    """

    workload: str = WORKLOAD_EIGHTY_TWENTY
    num_steps: int = 100
    num_neurons: Optional[int] = None
    seed: int = 2003
    options: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class RunResult:
    """Uniform result envelope produced by every backend."""

    backend: str
    workload: str
    num_steps: int
    #: Total number of spikes emitted during the run.
    total_spikes: int
    #: Spike raster, for backends that record one (network level).
    raster: Optional[SpikeRaster] = None
    #: Backend-specific scalar metrics (IPC, instret, rates, ...).
    metrics: Dict[str, float] = field(default_factory=dict)


@runtime_checkable
class SimBackend(Protocol):
    """Uniform interface over the four execution paths.

    Attributes
    ----------
    name:
        Registry key.
    description:
        One-line human-readable summary.
    level:
        ``"network"`` (vectorised SNN engines), ``"isa"`` (functional
        simulator) or ``"cycle"`` (cycle-accurate pipeline).
    supports_batching:
        ``True`` when :meth:`build_network` yields stackable
        :class:`~repro.snn.network.SNNNetwork` instances.
    """

    name: str
    description: str
    level: str
    supports_batching: bool

    def run(self, request: RunRequest) -> RunResult:
        """Execute one run described by ``request``."""
        ...

    def build_network(self, request: RunRequest) -> Optional[SNNNetwork]:
        """Network-level backends return a fresh network; others ``None``."""
        ...


# ---------------------------------------------------------------------- #
# Network-level backends (float64 reference and fixed-point NPU datapath)
# ---------------------------------------------------------------------- #
def eighty_twenty_config(num_neurons: Optional[int], seed: int) -> EightyTwentyConfig:
    """The canonical 80/20 excitatory/inhibitory split for a scaled network.

    Single source of truth shared by the network backends and the sweep
    drivers, so a batched noise provider always scales the same columns
    the networks were built with.
    """
    if num_neurons is None:
        return EightyTwentyConfig(seed=seed)
    num_exc = int(round(0.8 * num_neurons))
    return EightyTwentyConfig(
        num_excitatory=num_exc,
        num_inhibitory=num_neurons - num_exc,
        seed=seed,
    )


class _NetworkBackend:
    """Shared implementation of the two SNN-level backends."""

    level = "network"
    supports_batching = True

    def __init__(self, name: str, description: str, snn_backend: str) -> None:
        self.name = name
        self.description = description
        self._snn_backend = snn_backend  # "float64" | "fixed"

    def build_network(self, request: RunRequest) -> SNNNetwork:
        options = dict(request.options)
        if request.workload == WORKLOAD_EIGHTY_TWENTY:
            net_def = build_eighty_twenty(eighty_twenty_config(request.num_neurons, request.seed))
            if self._snn_backend == "float64":
                return net_def.float_network()
            return net_def.fixed_network(
                h_shift=int(options.get("h_shift", 1)),
                current_mode=str(options.get("current_mode", "recompute")),
            )
        if request.workload == WORKLOAD_SUDOKU:
            from ..sudoku.board import SudokuBoard
            from ..sudoku.puzzles import PuzzleGenerator
            from ..sudoku.solver import SNNSudokuSolver

            puzzle = options.get("puzzle")
            if puzzle is None:
                puzzle = PuzzleGenerator().generate(
                    seed=request.seed,
                    target_clues=int(options.get("target_clues", 30)),
                ).puzzle
            elif not isinstance(puzzle, SudokuBoard):
                puzzle = SudokuBoard(np.asarray(puzzle))
            solver = SNNSudokuSolver(backend=self._snn_backend, seed=request.seed)
            return solver._build_network(puzzle)
        if request.workload == WORKLOAD_CSP:
            from ..csp import SpikingCSPSolver
            from ..csp.scenarios import make_instance

            scenario = str(options.get("scenario", "coloring"))
            params = dict(options.get("params", {}))
            graph, clamps = make_instance(scenario, seed=request.seed, **params)
            solver = SpikingCSPSolver(
                graph,
                backend=self._snn_backend,
                seed=int(options.get("solver_seed", request.seed)),
            )
            return solver.build_network(clamps)
        raise ValueError(f"backend {self.name!r} cannot run workload {request.workload!r}")

    def run(self, request: RunRequest) -> RunResult:
        network = self.build_network(request)
        raster = network.run(request.num_steps)
        return RunResult(
            backend=self.name,
            workload=request.workload,
            num_steps=request.num_steps,
            total_spikes=raster.num_spikes,
            raster=raster,
            metrics={"mean_rate_hz": raster.mean_rate_hz()},
        )


# ---------------------------------------------------------------------- #
# ISA-level backends (functional and cycle-accurate)
# ---------------------------------------------------------------------- #
def _build_workload(request: RunRequest) -> Any:
    from ..codegen import build_eighty_twenty_workload, build_sudoku_workload

    options = dict(request.options)
    kind = str(options.get("kind", "extension"))
    if request.workload == WORKLOAD_EIGHTY_TWENTY:
        return build_eighty_twenty_workload(
            num_neurons=request.num_neurons if request.num_neurons is not None else 64,
            num_steps=request.num_steps,
            kind=kind,
            seed=request.seed,
        )
    if request.workload == WORKLOAD_SUDOKU:
        return build_sudoku_workload(
            options.get("puzzle"),
            num_steps=request.num_steps,
            kind=kind,
            seed=request.seed,
        )
    raise ValueError(f"unknown workload {request.workload!r}")


class _FunctionalBackend:
    name = "functional"
    description = "instruction-accurate ISS executing generated RISC-V kernels"
    level = "isa"
    supports_batching = False

    def build_network(self, request: RunRequest) -> None:
        return None

    def run(self, request: RunRequest) -> RunResult:
        workload = _build_workload(request)
        fsim = workload.make_simulator()
        fsim.run()
        return RunResult(
            backend=self.name,
            workload=request.workload,
            num_steps=request.num_steps,
            total_spikes=workload.total_spikes(fsim),
            metrics={
                "instret": float(fsim.instret),
                "exit_code": float(fsim.exit_code),
            },
        )


class _CycleBackend:
    name = "cycle"
    description = "cycle-accurate 3-stage pipeline with caches on the ISS"
    level = "cycle"
    supports_batching = False

    def build_network(self, request: RunRequest) -> None:
        return None

    def run(self, request: RunRequest) -> RunResult:
        from ..sim import CoreConfig, CycleAccurateCore

        workload = _build_workload(request)
        config = request.options.get("core_config") or CoreConfig()
        core = CycleAccurateCore(workload.make_simulator(), config)
        counters = core.run()
        return RunResult(
            backend=self.name,
            workload=request.workload,
            num_steps=request.num_steps,
            total_spikes=int(counters.spikes),
            metrics={
                "cycles": float(counters.cycles),
                "instructions": float(counters.instructions),
                "ipc": float(counters.ipc),
                "ipc_eff": float(counters.ipc_eff),
                "hazard_stall_percent": float(counters.hazard_stall_percent),
                "icache_hit_rate": float(counters.icache.hit_rate),
                "dcache_hit_rate": float(counters.dcache.hit_rate),
            },
        )


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_REGISTRY: Dict[str, SimBackend] = {}


def register_backend(backend: SimBackend, *, replace: bool = False) -> SimBackend:
    """Add a backend to the registry under ``backend.name``."""
    if backend.name in _REGISTRY and not replace:
        raise ValueError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> SimBackend:
    """Look a backend up by name (raises ``KeyError`` with the known names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown backend {name!r}; registered backends: {known}") from None


def available_backends() -> List[str]:
    """Sorted names of all registered backends."""
    return sorted(_REGISTRY)


def run_on_backend(
    name: str,
    request: RunRequest,
    *,
    cache: Union[None, bool, str, Path, RunResultCache] = None,
) -> RunResult:
    """Run ``request`` on the named backend, optionally through a cache.

    Parameters
    ----------
    cache:
        ``None`` (default) honours the ``REPRO_RUN_CACHE`` environment
        switch; ``True``/``False`` force the default on-disk
        :class:`~repro.runtime.cache.RunResultCache` on/off; a string or
        path selects an explicit store directory (the picklable form the
        sweep fabric hands its pool workers); an explicit instance is
        used as-is.  A cached run is served without invoking the backend
        at all (the cache key covers backend name, the full request, and
        a fingerprint of the ``repro`` sources).
    """
    backend = get_backend(name)
    resolved = resolve_cache(cache)
    if resolved is None:
        return backend.run(request)
    return resolved.load_or_run(backend, request)


register_backend(
    _NetworkBackend("float64", "double-precision Izhikevich reference (MATLAB column)", "float64")
)
register_backend(
    _NetworkBackend("fixed", "vectorised fixed-point engine, bit-exact with the NPU", "fixed")
)
register_backend(_FunctionalBackend())
register_backend(_CycleBackend())
