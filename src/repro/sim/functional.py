"""Instruction-accurate functional simulator (ISS) for IzhiRISC-V.

Executes RV32IM plus the neuromorphic extension against a
:class:`~repro.sim.memory.Memory`, an :class:`~repro.sim.npu.NPU` and a
:class:`~repro.sim.dcu.DCU`.  The ISS is the semantic reference: the
cycle-level pipeline model (:mod:`repro.sim.pipeline`) drives it one
instruction at a time and adds timing on top, so both simulators execute
exactly the same architectural behaviour.

Program termination follows a small environment convention:

* ``ebreak`` halts immediately.
* ``ecall`` with ``a7 == 93`` halts with exit code ``a0`` (Linux-style).
* ``ecall`` with ``a7 == 64`` writes ``a2`` bytes from address ``a1``
  to the simulated stdout.
* A word store to ``MMIO_HALT`` halts with the stored value as exit code;
  a store to ``MMIO_PUTCHAR`` appends a character to the simulated stdout;
  a store to ``MMIO_PRINT_INT`` records the value in ``debug_values``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..isa.encoding import sign_extend, to_signed32, to_unsigned32
from ..isa.instructions import DecodedInstr, IllegalInstructionError, decode
from .dcu import DCU
from .memory import Memory, MemoryError32
from .npu import NMConfig, NPU

__all__ = [
    "ExecRecord",
    "SimulationError",
    "FunctionalSimulator",
    "MMIO_BASE",
    "MMIO_HALT",
    "MMIO_PUTCHAR",
    "MMIO_PRINT_INT",
    "MMIO_CYCLE_LOW",
]

MASK32 = 0xFFFFFFFF

#: Base of the memory-mapped control/status registers.
MMIO_BASE = 0xF000_0000
#: Writing any word here halts the simulation (value = exit code).
MMIO_HALT = MMIO_BASE + 0x0
#: Writing a word here emits its low byte to the simulated stdout.
MMIO_PUTCHAR = MMIO_BASE + 0x4
#: Writing a word here records the signed value in ``debug_values``.
MMIO_PRINT_INT = MMIO_BASE + 0x8
#: Reading this word returns the low 32 bits of the retired-instruction count.
MMIO_CYCLE_LOW = MMIO_BASE + 0xC


class SimulationError(Exception):
    """Raised on illegal execution conditions (bad PC, unknown CSR, ...)."""


@dataclass
class ExecRecord:
    """Per-instruction execution record consumed by the timing models."""

    pc: int
    instr: DecodedInstr
    next_pc: int
    #: Effective address of the data-memory access, if any.
    mem_address: Optional[int] = None
    #: ``True`` when the access is a write (stores and ``nmpn``).
    mem_is_write: bool = False
    #: Branch/jump outcome (``True`` when the PC was redirected).
    control_transfer: bool = False
    #: Spike flag produced by ``nmpn`` (for convenience in traces).
    spike: Optional[int] = None


class FunctionalSimulator:
    """Executes instructions one at a time with full architectural state.

    Parameters
    ----------
    fast_dispatch:
        ``True`` (default) executes through predecoded per-PC handlers
        (see :mod:`repro.sim.dispatch`); ``False`` retires every
        instruction through the legacy ``if/elif`` semantics chain.  The
        two paths are bit-identical — the flag exists for differential
        testing and baseline benchmarking.
    """

    def __init__(
        self,
        memory: Optional[Memory] = None,
        *,
        nm_config: Optional[NMConfig] = None,
        reset_pc: int = 0,
        stack_pointer: Optional[int] = 0x2000_FFF0,
        fast_dispatch: bool = True,
    ) -> None:
        self.memory = memory if memory is not None else Memory()
        self.nm_config = nm_config if nm_config is not None else NMConfig()
        self.npu = NPU(self.nm_config)
        self.dcu = DCU(self.nm_config)
        self.regs: List[int] = [0] * 32
        self.pc: int = reset_pc
        self.halted: bool = False
        self.exit_code: int = 0
        self.instret: int = 0
        self.csrs: Dict[int, int] = {}
        self.stdout = bytearray()
        self.debug_values: List[int] = []
        self.spike_count: int = 0
        #: Optional callable invoked after each retired instruction.
        self.trace_hook: Optional[Callable[["FunctionalSimulator", ExecRecord], None]] = None
        self.fast_dispatch = fast_dispatch
        self._decode_cache: Dict[int, DecodedInstr] = {}
        #: PC -> (record_handler, fast_handler); see repro.sim.dispatch.
        #: The corresponding DecodedInstr stays in ``_decode_cache``.
        self._compiled: Dict[int, Tuple[Callable[[int], ExecRecord], Callable[[int], int]]] = {}
        if stack_pointer is not None:
            self.regs[2] = to_unsigned32(stack_pointer)

    # ------------------------------------------------------------------ #
    # Register helpers
    # ------------------------------------------------------------------ #
    def read_reg(self, index: int) -> int:
        """Read register ``index`` as an unsigned 32-bit value."""
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        """Write register ``index`` (writes to x0 are discarded)."""
        if index != 0:
            self.regs[index] = value & MASK32

    def read_reg_signed(self, index: int) -> int:
        return to_signed32(self.read_reg(index))

    # ------------------------------------------------------------------ #
    # Program loading
    # ------------------------------------------------------------------ #
    def load_program(self, program, *, set_pc: bool = True) -> None:
        """Load an assembled :class:`~repro.isa.assembler.Program` image."""
        self.memory.load_program(program.words, base=program.origin)
        if set_pc:
            self.pc = program.entry_point
        self.invalidate_dispatch()

    def invalidate_dispatch(self) -> None:
        """Drop the decode cache and all predecoded handlers.

        Required after self-modifying code or after replacing ``memory``,
        ``npu`` or ``dcu`` (the compiled handlers capture those objects by
        reference); :meth:`load_program` calls it automatically.
        """
        self._decode_cache.clear()
        self._compiled.clear()

    # ------------------------------------------------------------------ #
    # Fetch / decode / execute
    # ------------------------------------------------------------------ #
    def fetch_decode(self, pc: int) -> DecodedInstr:
        """Fetch and decode the instruction at ``pc`` (with a decode cache)."""
        cached = self._decode_cache.get(pc)
        if cached is not None:
            return cached
        if pc % 4 != 0:
            raise SimulationError(f"misaligned PC {pc:#x}")
        word = self.memory.load_word(pc)
        instr = decode(word)
        self._decode_cache[pc] = instr
        return instr

    def peek_decode(self, pc: int) -> Optional[DecodedInstr]:
        """Best-effort decode for lookahead consumers (the hazard unit).

        Returns ``None`` instead of raising when ``pc`` is misaligned,
        unmapped, or holds a word that does not decode (data following
        code, halt boundaries), so speculative peeks can never abort a
        simulation that would otherwise halt cleanly.
        """
        try:
            return self.fetch_decode(pc)
        except (SimulationError, IllegalInstructionError, MemoryError32):
            return None

    def _compile_at(self, pc: int):
        from .dispatch import compile_entry

        entry = compile_entry(self, self.fetch_decode(pc))
        self._compiled[pc] = entry
        return entry

    def step(self) -> ExecRecord:
        """Execute a single instruction and return its :class:`ExecRecord`."""
        if self.halted:
            raise SimulationError("cannot step a halted simulator")
        pc = self.pc
        if self.fast_dispatch:
            entry = self._compiled.get(pc)
            if entry is None:
                entry = self._compile_at(pc)
            record = entry[0](pc)
        else:
            record = self._execute(pc, self.fetch_decode(pc))
        self.pc = record.next_pc
        self.instret += 1
        if self.trace_hook is not None:
            self.trace_hook(self, record)
        return record

    def run(self, *, max_instructions: int = 10_000_000) -> int:
        """Run until the program halts; returns the number of instructions.

        With ``fast_dispatch`` enabled and no ``trace_hook`` attached this
        executes through the record-free handler loop — the predecoded
        handlers advance the architectural state without allocating an
        :class:`ExecRecord` per instruction.

        Raises
        ------
        SimulationError
            If the instruction budget is exhausted before the program halts.
        """
        if not self.fast_dispatch or self.trace_hook is not None:
            executed = 0
            while not self.halted:
                if executed >= max_instructions:
                    raise SimulationError(
                        f"instruction budget of {max_instructions} exhausted at pc={self.pc:#x}"
                    )
                self.step()
                executed += 1
            return executed
        executed = 0
        compiled = self._compiled
        pc = self.pc
        while not self.halted:
            if executed >= max_instructions:
                raise SimulationError(
                    f"instruction budget of {max_instructions} exhausted at pc={self.pc:#x}"
                )
            entry = compiled.get(pc)
            if entry is None:
                entry = self._compile_at(pc)
            pc = entry[1](pc)
            self.pc = pc
            self.instret += 1
            executed += 1
        return executed

    # ------------------------------------------------------------------ #
    # Instruction semantics
    # ------------------------------------------------------------------ #
    def _execute(self, pc: int, instr: DecodedInstr) -> ExecRecord:
        name = instr.name
        rs1_u = self.read_reg(instr.rs1)
        rs2_u = self.read_reg(instr.rs2)
        rs1_s = to_signed32(rs1_u)
        rs2_s = to_signed32(rs2_u)
        imm = instr.imm
        next_pc = (pc + 4) & MASK32
        record = ExecRecord(pc=pc, instr=instr, next_pc=next_pc)

        # ---------------- ALU register-immediate ---------------- #
        if name == "addi":
            self.write_reg(instr.rd, rs1_u + imm)
        elif name == "slti":
            self.write_reg(instr.rd, int(rs1_s < imm))
        elif name == "sltiu":
            self.write_reg(instr.rd, int(rs1_u < to_unsigned32(imm)))
        elif name == "xori":
            self.write_reg(instr.rd, rs1_u ^ to_unsigned32(imm))
        elif name == "ori":
            self.write_reg(instr.rd, rs1_u | to_unsigned32(imm))
        elif name == "andi":
            self.write_reg(instr.rd, rs1_u & to_unsigned32(imm))
        elif name == "slli":
            self.write_reg(instr.rd, rs1_u << (imm & 0x1F))
        elif name == "srli":
            self.write_reg(instr.rd, rs1_u >> (imm & 0x1F))
        elif name == "srai":
            self.write_reg(instr.rd, rs1_s >> (imm & 0x1F))
        # ---------------- ALU register-register ---------------- #
        elif name == "add":
            self.write_reg(instr.rd, rs1_u + rs2_u)
        elif name == "sub":
            self.write_reg(instr.rd, rs1_u - rs2_u)
        elif name == "sll":
            self.write_reg(instr.rd, rs1_u << (rs2_u & 0x1F))
        elif name == "slt":
            self.write_reg(instr.rd, int(rs1_s < rs2_s))
        elif name == "sltu":
            self.write_reg(instr.rd, int(rs1_u < rs2_u))
        elif name == "xor":
            self.write_reg(instr.rd, rs1_u ^ rs2_u)
        elif name == "srl":
            self.write_reg(instr.rd, rs1_u >> (rs2_u & 0x1F))
        elif name == "sra":
            self.write_reg(instr.rd, rs1_s >> (rs2_u & 0x1F))
        elif name == "or":
            self.write_reg(instr.rd, rs1_u | rs2_u)
        elif name == "and":
            self.write_reg(instr.rd, rs1_u & rs2_u)
        # ---------------- RV32M ---------------- #
        elif name == "mul":
            self.write_reg(instr.rd, rs1_s * rs2_s)
        elif name == "mulh":
            self.write_reg(instr.rd, (rs1_s * rs2_s) >> 32)
        elif name == "mulhsu":
            self.write_reg(instr.rd, (rs1_s * rs2_u) >> 32)
        elif name == "mulhu":
            self.write_reg(instr.rd, (rs1_u * rs2_u) >> 32)
        elif name == "div":
            if rs2_s == 0:
                self.write_reg(instr.rd, MASK32)
            elif rs1_s == -(1 << 31) and rs2_s == -1:
                self.write_reg(instr.rd, rs1_s)
            else:
                self.write_reg(instr.rd, int(abs(rs1_s) // abs(rs2_s)) * (1 if (rs1_s < 0) == (rs2_s < 0) else -1))
        elif name == "divu":
            self.write_reg(instr.rd, MASK32 if rs2_u == 0 else rs1_u // rs2_u)
        elif name == "rem":
            if rs2_s == 0:
                self.write_reg(instr.rd, rs1_s)
            elif rs1_s == -(1 << 31) and rs2_s == -1:
                self.write_reg(instr.rd, 0)
            else:
                self.write_reg(instr.rd, rs1_s - (int(abs(rs1_s) // abs(rs2_s)) * (1 if (rs1_s < 0) == (rs2_s < 0) else -1)) * rs2_s)
        elif name == "remu":
            self.write_reg(instr.rd, rs1_u if rs2_u == 0 else rs1_u % rs2_u)
        # ---------------- Upper immediates ---------------- #
        elif name == "lui":
            self.write_reg(instr.rd, imm)
        elif name == "auipc":
            self.write_reg(instr.rd, pc + imm)
        # ---------------- Control transfer ---------------- #
        elif name == "jal":
            self.write_reg(instr.rd, pc + 4)
            record.next_pc = (pc + imm) & MASK32
            record.control_transfer = True
        elif name == "jalr":
            target = (rs1_u + imm) & ~1 & MASK32
            self.write_reg(instr.rd, pc + 4)
            record.next_pc = target
            record.control_transfer = True
        elif instr.is_branch:
            taken = {
                "beq": rs1_u == rs2_u,
                "bne": rs1_u != rs2_u,
                "blt": rs1_s < rs2_s,
                "bge": rs1_s >= rs2_s,
                "bltu": rs1_u < rs2_u,
                "bgeu": rs1_u >= rs2_u,
            }[name]
            if taken:
                record.next_pc = (pc + imm) & MASK32
                record.control_transfer = True
        # ---------------- Memory ---------------- #
        elif instr.is_load:
            address = (rs1_u + imm) & MASK32
            record.mem_address = address
            if address >= MMIO_BASE:
                value = self._mmio_load(address, name)
            elif name == "lw":
                value = self.memory.load_word(address)
            elif name == "lh":
                value = to_unsigned32(sign_extend(self.memory.load_half(address), 16))
            elif name == "lhu":
                value = self.memory.load_half(address)
            elif name == "lb":
                value = to_unsigned32(sign_extend(self.memory.load_byte(address), 8))
            else:  # lbu
                value = self.memory.load_byte(address)
            self.write_reg(instr.rd, value)
        elif instr.is_store:
            address = (rs1_u + imm) & MASK32
            record.mem_address = address
            record.mem_is_write = True
            if address >= MMIO_BASE:
                self._mmio_store(address, rs2_u)
            elif name == "sw":
                self.memory.store_word(address, rs2_u)
            elif name == "sh":
                self.memory.store_half(address, rs2_u)
            else:  # sb
                self.memory.store_byte(address, rs2_u)
        # ---------------- System ---------------- #
        elif name == "fence":
            pass
        elif name == "ecall":
            self._ecall()
        elif name == "ebreak":
            self.halted = True
        elif name in ("csrrw", "csrrs", "csrrc"):
            old = self.csrs.get(imm, 0)
            self.write_reg(instr.rd, old)
            if name == "csrrw":
                self.csrs[imm] = rs1_u
            elif name == "csrrs" and instr.rs1 != 0:
                self.csrs[imm] = old | rs1_u
            elif name == "csrrc" and instr.rs1 != 0:
                self.csrs[imm] = old & ~rs1_u & MASK32
        # ---------------- Neuromorphic extension ---------------- #
        elif name == "nmldl":
            self.nm_config.load_params_words(rs1_u, rs2_u)
            self.write_reg(instr.rd, 1)
        elif name == "nmldh":
            self.nm_config.load_timestep_word(rs1_u)
            self.write_reg(instr.rd, 1)
        elif name == "nmpn":
            vu_address = self.read_reg(instr.rd)
            new_vu, spike = self.npu.execute_nmpn(rs1_u, rs2_u)
            self.memory.store_word(vu_address & MASK32, new_vu)
            self.write_reg(instr.rd, spike)
            record.mem_address = vu_address & MASK32
            record.mem_is_write = True
            record.spike = spike
            self.spike_count += spike
        elif name == "nmdec":
            self.write_reg(instr.rd, self.dcu.execute_nmdec(rs1_u, rs2_u))
        else:  # pragma: no cover - decode() only produces known names
            raise SimulationError(f"unimplemented instruction {name!r} at pc={pc:#x}")

        return record

    # ------------------------------------------------------------------ #
    # Environment calls and MMIO
    # ------------------------------------------------------------------ #
    def _ecall(self) -> None:
        syscall = self.read_reg(17)  # a7
        if syscall == 93:  # exit
            self.exit_code = to_signed32(self.read_reg(10))
            self.halted = True
        elif syscall == 64:  # write(fd, buf, len)
            buf = self.read_reg(11)
            length = self.read_reg(12)
            self.stdout.extend(self.memory.read_bytes(buf, length))
        else:
            # Unknown syscalls are recorded but otherwise ignored.
            self.debug_values.append(-syscall)

    def _mmio_load(self, address: int, name: str) -> int:
        """Execute a load from the MMIO region with proper width semantics.

        Only ``MMIO_CYCLE_LOW`` is readable; narrow loads see the same
        byte lanes a hardware bus would deliver (truncation plus
        sign-extension for ``lh``/``lb``).  Loads from any other MMIO
        address raise a :class:`SimulationError` instead of falling
        through to RAM.
        """
        if address == MMIO_CYCLE_LOW:
            value = self.instret & MASK32
            if name == "lw":
                return value
            if name == "lhu":
                return value & 0xFFFF
            if name == "lh":
                half = value & 0xFFFF
                return half | 0xFFFF0000 if half & 0x8000 else half
            if name == "lbu":
                return value & 0xFF
            byte = value & 0xFF  # lb
            return byte | 0xFFFFFF00 if byte & 0x80 else byte
        raise SimulationError(f"load from unknown MMIO address {address:#x}")

    def _mmio_store(self, address: int, value: int) -> None:
        if address == MMIO_HALT:
            self.exit_code = to_signed32(value)
            self.halted = True
        elif address == MMIO_PUTCHAR:
            self.stdout.append(value & 0xFF)
        elif address == MMIO_PRINT_INT:
            self.debug_values.append(to_signed32(value))
        else:
            raise SimulationError(f"store to unknown MMIO address {address:#x}")

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def stdout_text(self) -> str:
        """Simulated stdout decoded as UTF-8 (replacement on errors)."""
        return self.stdout.decode("utf-8", errors="replace")
