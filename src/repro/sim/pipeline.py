"""Cycle-level model of the 3-stage IzhiRISC-V (DTEK-V) pipeline.

The DTEK-V core merges Fetch with Decode and Memory with Writeback,
yielding a 3-stage in-order pipeline (paper §V-A):

    IF/D  →  EX (ALU | NPU | DCU)  →  MEM+WB

with a forwarding unit feeding operands from EX and MEM+WB back to decode
and a hazard unit that inserts bubbles when forwarding cannot resolve a
dependency (load-use and ``nmpn`` spike-result dependencies).  Branches
are resolved in EX, so every taken control transfer costs one flush cycle.

The :class:`CycleAccurateCore` drives a
:class:`~repro.sim.functional.FunctionalSimulator` one instruction at a
time and layers timing on top: I-cache and D-cache models, hazard stalls,
flush bubbles, multi-cycle divide, and (optionally) a shared bus for miss
traffic.  It exposes a :meth:`step_cycle` method so that a multi-core
system can advance several cores in lockstep against a common bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .bus import SharedBus
from .cache import Cache, CacheConfig, default_dcache_config, default_icache_config
from .functional import ExecRecord, FunctionalSimulator, MMIO_BASE
from .perfcounters import PerfCounters

__all__ = ["CoreConfig", "CycleAccurateCore", "HAZARD_LOAD_USE", "HAZARD_EX_PRODUCER"]

#: Stall only when the EX-stage producer delivers its result in MEM
#: (loads and ``nmpn``); ALU results are forwarded from EX.
HAZARD_LOAD_USE = "load-use"
#: Stall whenever the EX-stage instruction writes a register the decoding
#: instruction reads (no EX→decode forwarding); this is the pessimistic
#: interpretation of the paper's hazard description.
HAZARD_EX_PRODUCER = "ex-producer"


@dataclass
class CoreConfig:
    """Microarchitectural parameters of one IzhiRISC-V core."""

    #: Core clock (the MAX10 system runs at 30 MHz, Agilex at 100 MHz).
    clock_hz: float = 30e6
    icache: CacheConfig = field(default_factory=default_icache_config)
    dcache: CacheConfig = field(default_factory=default_dcache_config)
    #: Latency of the iterative divider (RV32M div/rem).
    div_cycles: int = 16
    #: Latency of the multiplier (embedded DSP blocks → single cycle).
    mul_cycles: int = 1
    #: Latency of the NPU / DCU (single cycle by design).
    npu_cycles: int = 1
    #: Cycles lost on every taken branch / jump (branch resolved in EX).
    branch_flush_cycles: int = 1
    #: Hazard-unit policy (see module constants).
    hazard_policy: str = HAZARD_LOAD_USE
    #: Extra cycles for an uncached access (MMIO and non-cacheable regions).
    uncached_access_cycles: int = 2


class CycleAccurateCore:
    """One IzhiRISC-V core with cycle-level timing.

    Parameters
    ----------
    fsim:
        The functional simulator holding the architectural state and the
        program to execute.
    config:
        Microarchitectural parameters.
    bus:
        Optional shared bus used for cache-miss traffic (multi-core
        systems); ``None`` models a single-core system with a private
        memory port.
    core_id:
        Identifier used for bus arbitration and reporting.
    """

    def __init__(
        self,
        fsim: FunctionalSimulator,
        config: Optional[CoreConfig] = None,
        *,
        bus: Optional[SharedBus] = None,
        core_id: int = 0,
    ) -> None:
        self.fsim = fsim
        self.config = config if config is not None else CoreConfig()
        self.bus = bus
        self.core_id = core_id
        self.icache = Cache(self.config.icache, name=f"icache{core_id}")
        self.dcache = Cache(self.config.dcache, name=f"dcache{core_id}")
        self.counters = PerfCounters()
        # Pipeline latches / busy counters.
        self._fetch_busy = 0          # cycles until the current fetch completes
        self._fetch_valid = False     # a fetched (not yet issued) instruction is waiting
        self._ex_record: Optional[ExecRecord] = None
        self._ex_busy = 0
        self._mem_record: Optional[ExecRecord] = None
        self._mem_busy = 0
        self._flush_penalty = 0
        self.cycle = 0

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @property
    def halted(self) -> bool:
        """The core is done when the program halted and the pipeline drained."""
        return self.fsim.halted and self._ex_record is None and self._mem_record is None

    def _miss_duration(self, address: int, cache: Cache) -> int:
        """Stall cycles for a miss at ``address`` (region aware, bus aware)."""
        region = self.fsim.memory.region_of(address)
        if region is not None and not region.cacheable:
            duration = max(region.access_cycles, self.config.uncached_access_cycles)
        elif region is not None and region.access_cycles <= 2:
            # On-chip memories refill a line quickly.
            duration = max(region.access_cycles, 2)
        else:
            duration = cache.config.miss_penalty
        if self.bus is not None:
            duration += self.bus.request(self.core_id, self.cycle, duration)
        return duration

    def _charge_dcache(self, record: ExecRecord) -> int:
        """Return MEM-stage stall cycles for the record's memory access."""
        address = record.mem_address
        if address is None:
            return 0
        region = self.fsim.memory.region_of(address)
        if address >= MMIO_BASE or (region is not None and not region.cacheable):
            stall = self.config.uncached_access_cycles
            if self.bus is not None:
                stall += self.bus.request(self.core_id, self.cycle, stall)
            return stall
        hit = self.dcache.access(address, is_write=record.mem_is_write)
        if hit:
            return 0
        return self._miss_duration(address, self.dcache)

    def _hazard_blocks(self, producer_record: Optional[ExecRecord], next_pc: int) -> bool:
        """Decide whether decode must stall because of the EX-stage producer.

        ``producer_record`` is the instruction that occupied EX at the start
        of the cycle — its result has not yet been produced, so a consumer
        being decoded in the same cycle cannot pick it up from the
        forwarding network.
        """
        if producer_record is None:
            return False
        producer = producer_record.instr
        dest = producer.dest_register
        if dest is None:
            return False
        # The peek is speculative: next_pc may hold data (code followed by
        # a data image), sit past a halting instruction, or be unmapped.
        # peek_decode tolerates all of those instead of raising.
        consumer = self.fsim.peek_decode(next_pc)
        if consumer is None:
            return False
        if dest not in consumer.source_registers:
            return False
        if self.config.hazard_policy == HAZARD_EX_PRODUCER:
            return True
        # Load-use policy: only producers whose value appears after MEM stall.
        return producer.is_load or producer.name == "nmpn"

    def _ex_duration(self, record: ExecRecord) -> int:
        instr = record.instr
        if instr.is_div:
            return self.config.div_cycles
        if instr.is_mul:
            return self.config.mul_cycles
        if instr.is_neuromorphic:
            return self.config.npu_cycles
        return 1

    # ------------------------------------------------------------------ #
    # Cycle-by-cycle simulation
    # ------------------------------------------------------------------ #
    def step_cycle(self) -> None:
        """Advance the core by one clock cycle."""
        cfg = self.config
        self.cycle += 1
        self.counters.cycles += 1
        # The hazard unit compares against the instruction that occupies EX
        # at the *start* of the cycle (its result is not yet available).
        producer_at_cycle_start = self._ex_record

        # ---------------- MEM + WB stage ---------------- #
        if self._mem_record is not None:
            if self._mem_busy > 0:
                self._mem_busy -= 1
                self.counters.dcache_stall_cycles += 1
            if self._mem_busy == 0:
                self._retire(self._mem_record)
                self._mem_record = None

        # ---------------- EX stage ---------------- #
        if self._ex_record is not None:
            if self._ex_busy > 0:
                self._ex_busy -= 1
                if self._ex_busy > 0:
                    self.counters.multicycle_stall_cycles += 1
            if self._ex_busy == 0 and self._mem_record is None:
                self._mem_busy = self._charge_dcache(self._ex_record)
                self._mem_record = self._ex_record
                self._ex_record = None

        # ---------------- IF / D stage ---------------- #
        if self.fsim.halted:
            return
        if self._flush_penalty > 0:
            self._flush_penalty -= 1
            self.counters.branch_flush_cycles += 1
            return
        if self._fetch_busy > 0:
            self._fetch_busy -= 1
            self.counters.icache_stall_cycles += 1
            if self._fetch_busy == 0:
                self._fetch_valid = True
            return
        if not self._fetch_valid:
            # Initiate the fetch of the next instruction.
            hit = self.icache.access(self.fsim.pc)
            if not hit:
                miss_cycles = self._miss_duration(self.fsim.pc, self.icache)
                self.counters.icache_stall_cycles += 1
                if miss_cycles > 1:
                    self._fetch_busy = miss_cycles - 1
                    return
            self._fetch_valid = True
        # Issue into EX if the slot is free and no hazard blocks us.
        if self._ex_record is not None:
            return
        if self._hazard_blocks(producer_at_cycle_start, self.fsim.pc):
            self.counters.hazard_stall_cycles += 1
            return
        record = self.fsim.step()
        self._ex_record = record
        self._ex_busy = self._ex_duration(record)
        self._fetch_valid = False
        if record.control_transfer:
            self._flush_penalty = cfg.branch_flush_cycles

    def _retire(self, record: ExecRecord) -> None:
        instr = record.instr
        c = self.counters
        c.instructions += 1
        if instr.name == "nmpn":
            c.neuron_updates += 1
            c.spikes += record.spike or 0
        elif instr.name == "nmdec":
            c.decay_operations += 1
        else:
            c.regular_instructions += 1
        if record.mem_address is not None:
            c.memory_accesses += 1
            if record.mem_is_write:
                c.stores += 1
            else:
                c.loads += 1

    # ------------------------------------------------------------------ #
    # Whole-program execution
    # ------------------------------------------------------------------ #
    def run(self, *, max_cycles: int = 50_000_000) -> PerfCounters:
        """Run until the program halts (or the cycle budget is exhausted)."""
        while not self.halted:
            if self.cycle >= max_cycles:
                raise RuntimeError(f"cycle budget of {max_cycles} exhausted at pc={self.fsim.pc:#x}")
            self.step_cycle()
        self._finalize_counters()
        return self.counters

    def _finalize_counters(self) -> None:
        self.counters.icache = self.icache.stats
        self.counters.dcache = self.dcache.stats

    def snapshot_counters(self) -> PerfCounters:
        """Return the counters with cache statistics attached (non-destructive)."""
        self._finalize_counters()
        return self.counters
