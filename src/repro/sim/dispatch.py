"""Predecoded execution handlers for the functional ISS fast path.

The legacy :meth:`FunctionalSimulator._execute` retires every instruction
through a ~60-branch ``if/elif`` chain, re-deriving operand indices,
signedness conversions and the immediate on every execution.  This module
compiles each :class:`~repro.isa.instructions.DecodedInstr` **once**, at
decode time, into a pair of closures bound to the simulator instance:

``record(pc) -> ExecRecord``
    Full-fidelity execution used by :meth:`FunctionalSimulator.step`; the
    cycle-level pipeline consumes these records for its timing model.
``fast(pc) -> next_pc``
    The same architectural semantics without the :class:`ExecRecord`
    allocation, used by the trace-free :meth:`FunctionalSimulator.run`
    inner loop.

Both closures come out of one builder per opcode (registered in
``_BUILDERS``), so the two paths cannot drift apart; the builders
specialise at compile time on the decoded operand indices (skipping x0
writes, folding immediates) which is where the speedup over the legacy
chain comes from.  Bit-identical behaviour against the legacy chain is
locked down by ``tests/sim/test_dispatch.py``.

Handlers capture ``sim.regs``, ``sim.memory``, ``sim.npu`` and
``sim.dcu`` by reference.  Replacing any of those attributes after
execution started requires
:meth:`FunctionalSimulator.invalidate_dispatch` (loading a new program
does this automatically).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Tuple

from ..isa.instructions import DecodedInstr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .functional import ExecRecord, FunctionalSimulator

__all__ = ["compile_entry"]

MASK32 = 0xFFFFFFFF
_SIGN32 = 0x8000_0000
_TWO32 = 1 << 32

#: ``record(pc) -> ExecRecord`` and ``fast(pc) -> next_pc`` closure pair.
HandlerPair = Tuple[Callable[[int], "ExecRecord"], Callable[[int], int]]
Builder = Callable[["FunctionalSimulator", DecodedInstr], HandlerPair]

_BUILDERS: Dict[str, Builder] = {}


def _register(name: str) -> Callable[[Builder], Builder]:
    def add(builder: Builder) -> Builder:
        _BUILDERS[name] = builder
        return builder

    return add


def _plain_pair(instr: DecodedInstr, fast: Callable[[int], int]) -> HandlerPair:
    """Wrap a straight-line handler (no memory access, no redirect)."""
    from .functional import ExecRecord

    def record(pc: int) -> "ExecRecord":
        return ExecRecord(pc=pc, instr=instr, next_pc=fast(pc))

    return record, fast


# ---------------------------------------------------------------------- #
# ALU families (register-immediate and register-register)
# ---------------------------------------------------------------------- #
def _op_imm(op: Callable[[int, int], int]) -> Builder:
    """Register-immediate ALU family: ``rd <- op(rs1_u, imm) & MASK32``."""

    def build(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
        regs, rd, rs1, imm = sim.regs, instr.rd, instr.rs1, instr.imm
        if rd == 0:

            def fast(pc: int) -> int:
                return (pc + 4) & MASK32

        else:

            def fast(pc: int) -> int:
                regs[rd] = op(regs[rs1] if rs1 else 0, imm) & MASK32
                return (pc + 4) & MASK32

        return _plain_pair(instr, fast)

    return build


def _op_rr(op: Callable[[int, int], int]) -> Builder:
    """Register-register ALU family: ``rd <- op(rs1_u, rs2_u) & MASK32``."""

    def build(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
        regs, rd, rs1, rs2 = sim.regs, instr.rd, instr.rs1, instr.rs2
        if rd == 0:

            def fast(pc: int) -> int:
                return (pc + 4) & MASK32

        else:

            def fast(pc: int) -> int:
                regs[rd] = op(regs[rs1] if rs1 else 0, regs[rs2] if rs2 else 0) & MASK32
                return (pc + 4) & MASK32

        return _plain_pair(instr, fast)

    return build


def _s32(x: int) -> int:
    """Two's-complement reinterpretation of an unsigned 32-bit value."""
    return x - _TWO32 if x & _SIGN32 else x


def _div(a: int, b: int) -> int:
    a, b = _s32(a), _s32(b)
    if b == 0:
        return MASK32
    if a == -(1 << 31) and b == -1:
        return a
    return int(abs(a) // abs(b)) * (1 if (a < 0) == (b < 0) else -1)


def _rem(a: int, b: int) -> int:
    a, b = _s32(a), _s32(b)
    if b == 0:
        return a
    if a == -(1 << 31) and b == -1:
        return 0
    return a - (int(abs(a) // abs(b)) * (1 if (a < 0) == (b < 0) else -1)) * b


@_register("addi")
def _build_addi(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    # The single hottest opcode: fold a constant result when rs1 is x0
    # (the assembler's ``li`` expansion) and skip x0 destinations.
    regs, rd, rs1, imm = sim.regs, instr.rd, instr.rs1, instr.imm
    if rd == 0:

        def fast(pc: int) -> int:
            return (pc + 4) & MASK32

    elif rs1 == 0:
        value = imm & MASK32

        def fast(pc: int) -> int:
            regs[rd] = value
            return (pc + 4) & MASK32

    else:

        def fast(pc: int) -> int:
            regs[rd] = (regs[rs1] + imm) & MASK32
            return (pc + 4) & MASK32

    return _plain_pair(instr, fast)


_BUILDERS["slti"] = _op_imm(lambda a, imm: int(_s32(a) < imm))
_BUILDERS["sltiu"] = _op_imm(lambda a, imm: int(a < (imm & MASK32)))
_BUILDERS["xori"] = _op_imm(lambda a, imm: a ^ (imm & MASK32))
_BUILDERS["ori"] = _op_imm(lambda a, imm: a | (imm & MASK32))
_BUILDERS["andi"] = _op_imm(lambda a, imm: a & (imm & MASK32))
_BUILDERS["slli"] = _op_imm(lambda a, imm: a << (imm & 0x1F))
_BUILDERS["srli"] = _op_imm(lambda a, imm: a >> (imm & 0x1F))
_BUILDERS["srai"] = _op_imm(lambda a, imm: _s32(a) >> (imm & 0x1F))

_BUILDERS["add"] = _op_rr(lambda a, b: a + b)
_BUILDERS["sub"] = _op_rr(lambda a, b: a - b)
_BUILDERS["sll"] = _op_rr(lambda a, b: a << (b & 0x1F))
_BUILDERS["slt"] = _op_rr(lambda a, b: int(_s32(a) < _s32(b)))
_BUILDERS["sltu"] = _op_rr(lambda a, b: int(a < b))
_BUILDERS["xor"] = _op_rr(lambda a, b: a ^ b)
_BUILDERS["srl"] = _op_rr(lambda a, b: a >> (b & 0x1F))
_BUILDERS["sra"] = _op_rr(lambda a, b: _s32(a) >> (b & 0x1F))
_BUILDERS["or"] = _op_rr(lambda a, b: a | b)
_BUILDERS["and"] = _op_rr(lambda a, b: a & b)

_BUILDERS["mul"] = _op_rr(lambda a, b: _s32(a) * _s32(b))
_BUILDERS["mulh"] = _op_rr(lambda a, b: (_s32(a) * _s32(b)) >> 32)
_BUILDERS["mulhsu"] = _op_rr(lambda a, b: (_s32(a) * b) >> 32)
_BUILDERS["mulhu"] = _op_rr(lambda a, b: (a * b) >> 32)
_BUILDERS["div"] = _op_rr(_div)
_BUILDERS["divu"] = _op_rr(lambda a, b: MASK32 if b == 0 else a // b)
_BUILDERS["rem"] = _op_rr(_rem)
_BUILDERS["remu"] = _op_rr(lambda a, b: a if b == 0 else a % b)


# ---------------------------------------------------------------------- #
# Upper immediates
# ---------------------------------------------------------------------- #
@_register("lui")
def _build_lui(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    regs, rd = sim.regs, instr.rd
    value = instr.imm & MASK32

    def fast(pc: int) -> int:
        if rd:
            regs[rd] = value
        return (pc + 4) & MASK32

    return _plain_pair(instr, fast)


@_register("auipc")
def _build_auipc(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    regs, rd, imm = sim.regs, instr.rd, instr.imm

    def fast(pc: int) -> int:
        if rd:
            regs[rd] = (pc + imm) & MASK32
        return (pc + 4) & MASK32

    return _plain_pair(instr, fast)


# ---------------------------------------------------------------------- #
# Control transfer
# ---------------------------------------------------------------------- #
@_register("jal")
def _build_jal(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    from .functional import ExecRecord

    regs, rd, imm = sim.regs, instr.rd, instr.imm

    def fast(pc: int) -> int:
        if rd:
            regs[rd] = (pc + 4) & MASK32
        return (pc + imm) & MASK32

    def record(pc: int) -> "ExecRecord":
        return ExecRecord(pc=pc, instr=instr, next_pc=fast(pc), control_transfer=True)

    return record, fast


@_register("jalr")
def _build_jalr(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    from .functional import ExecRecord

    regs, rd, rs1, imm = sim.regs, instr.rd, instr.rs1, instr.imm

    def fast(pc: int) -> int:
        # The target reads rs1 before the link write (rd may equal rs1).
        target = ((regs[rs1] if rs1 else 0) + imm) & ~1 & MASK32
        if rd:
            regs[rd] = (pc + 4) & MASK32
        return target

    def record(pc: int) -> "ExecRecord":
        return ExecRecord(pc=pc, instr=instr, next_pc=fast(pc), control_transfer=True)

    return record, fast


def _branch(taken: Callable[[int, int], bool]) -> Builder:
    def build(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
        from .functional import ExecRecord

        regs, rs1, rs2, imm = sim.regs, instr.rs1, instr.rs2, instr.imm

        def fast(pc: int) -> int:
            if taken(regs[rs1] if rs1 else 0, regs[rs2] if rs2 else 0):
                return (pc + imm) & MASK32
            return (pc + 4) & MASK32

        def record(pc: int) -> "ExecRecord":
            if taken(regs[rs1] if rs1 else 0, regs[rs2] if rs2 else 0):
                return ExecRecord(
                    pc=pc, instr=instr, next_pc=(pc + imm) & MASK32, control_transfer=True
                )
            return ExecRecord(pc=pc, instr=instr, next_pc=(pc + 4) & MASK32)

        return record, fast

    return build


_BUILDERS["beq"] = _branch(lambda a, b: a == b)
_BUILDERS["bne"] = _branch(lambda a, b: a != b)
_BUILDERS["blt"] = _branch(lambda a, b: _s32(a) < _s32(b))
_BUILDERS["bge"] = _branch(lambda a, b: _s32(a) >= _s32(b))
_BUILDERS["bltu"] = _branch(lambda a, b: a < b)
_BUILDERS["bgeu"] = _branch(lambda a, b: a >= b)


# ---------------------------------------------------------------------- #
# Memory
# ---------------------------------------------------------------------- #
def _load_lw(mem, address: int) -> int:
    return mem.load_word(address)


def _load_lh(mem, address: int) -> int:
    value = mem.load_half(address)
    return value | 0xFFFF0000 if value & 0x8000 else value


def _load_lhu(mem, address: int) -> int:
    return mem.load_half(address)


def _load_lb(mem, address: int) -> int:
    value = mem.load_byte(address)
    return value | 0xFFFFFF00 if value & 0x80 else value


def _load_lbu(mem, address: int) -> int:
    return mem.load_byte(address)


def _load(load_mem: Callable[[object, int], int]) -> Builder:
    def build(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
        from .functional import MMIO_BASE, ExecRecord

        regs, rd, rs1, imm = sim.regs, instr.rd, instr.rs1, instr.imm
        mem, name = sim.memory, instr.name

        def fast(pc: int) -> int:
            address = ((regs[rs1] if rs1 else 0) + imm) & MASK32
            if address >= MMIO_BASE:
                value = sim._mmio_load(address, name)
            else:
                value = load_mem(mem, address)
            if rd:
                regs[rd] = value
            return (pc + 4) & MASK32

        def record(pc: int) -> "ExecRecord":
            address = ((regs[rs1] if rs1 else 0) + imm) & MASK32
            if address >= MMIO_BASE:
                value = sim._mmio_load(address, name)
            else:
                value = load_mem(mem, address)
            if rd:
                regs[rd] = value
            return ExecRecord(pc=pc, instr=instr, next_pc=(pc + 4) & MASK32, mem_address=address)

        return record, fast

    return build


_BUILDERS["lw"] = _load(_load_lw)
_BUILDERS["lh"] = _load(_load_lh)
_BUILDERS["lhu"] = _load(_load_lhu)
_BUILDERS["lb"] = _load(_load_lb)
_BUILDERS["lbu"] = _load(_load_lbu)


def _store(store_mem: Callable[[object, int, int], None]) -> Builder:
    def build(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
        from .functional import MMIO_BASE, ExecRecord

        regs, rs1, rs2, imm = sim.regs, instr.rs1, instr.rs2, instr.imm
        mem = sim.memory

        def fast(pc: int) -> int:
            address = ((regs[rs1] if rs1 else 0) + imm) & MASK32
            value = regs[rs2] if rs2 else 0
            if address >= MMIO_BASE:
                sim._mmio_store(address, value)
            else:
                store_mem(mem, address, value)
            return (pc + 4) & MASK32

        def record(pc: int) -> "ExecRecord":
            address = ((regs[rs1] if rs1 else 0) + imm) & MASK32
            value = regs[rs2] if rs2 else 0
            if address >= MMIO_BASE:
                sim._mmio_store(address, value)
            else:
                store_mem(mem, address, value)
            return ExecRecord(
                pc=pc,
                instr=instr,
                next_pc=(pc + 4) & MASK32,
                mem_address=address,
                mem_is_write=True,
            )

        return record, fast

    return build


_BUILDERS["sw"] = _store(lambda mem, address, value: mem.store_word(address, value))
_BUILDERS["sh"] = _store(lambda mem, address, value: mem.store_half(address, value))
_BUILDERS["sb"] = _store(lambda mem, address, value: mem.store_byte(address, value))


# ---------------------------------------------------------------------- #
# System
# ---------------------------------------------------------------------- #
@_register("fence")
def _build_fence(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    def fast(pc: int) -> int:
        return (pc + 4) & MASK32

    return _plain_pair(instr, fast)


@_register("ecall")
def _build_ecall(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    def fast(pc: int) -> int:
        sim._ecall()
        return (pc + 4) & MASK32

    return _plain_pair(instr, fast)


@_register("ebreak")
def _build_ebreak(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    def fast(pc: int) -> int:
        sim.halted = True
        return (pc + 4) & MASK32

    return _plain_pair(instr, fast)


def _csr(update: Callable[[int, int, int], int], write_when_rs1_zero: bool) -> Builder:
    """Zicsr family; ``update(old, src, csr)`` returns the new CSR value."""

    def build(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
        regs, rd, rs1, csr = sim.regs, instr.rd, instr.rs1, instr.imm
        csrs = sim.csrs
        write_csr = write_when_rs1_zero or rs1 != 0

        def fast(pc: int) -> int:
            old = csrs.get(csr, 0)
            src = regs[rs1] if rs1 else 0  # read rs1 before a possible rd write
            if rd:
                regs[rd] = old & MASK32
            if write_csr:
                csrs[csr] = update(old, src, csr)
            return (pc + 4) & MASK32

        return _plain_pair(instr, fast)

    return build


_BUILDERS["csrrw"] = _csr(lambda old, src, csr: src, True)
_BUILDERS["csrrs"] = _csr(lambda old, src, csr: old | src, False)
_BUILDERS["csrrc"] = _csr(lambda old, src, csr: old & ~src & MASK32, False)


# ---------------------------------------------------------------------- #
# Neuromorphic extension
# ---------------------------------------------------------------------- #
@_register("nmldl")
def _build_nmldl(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    regs, rd, rs1, rs2 = sim.regs, instr.rd, instr.rs1, instr.rs2
    nm_config = sim.nm_config

    def fast(pc: int) -> int:
        nm_config.load_params_words(regs[rs1] if rs1 else 0, regs[rs2] if rs2 else 0)
        if rd:
            regs[rd] = 1
        return (pc + 4) & MASK32

    return _plain_pair(instr, fast)


@_register("nmldh")
def _build_nmldh(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    regs, rd, rs1 = sim.regs, instr.rd, instr.rs1
    nm_config = sim.nm_config

    def fast(pc: int) -> int:
        nm_config.load_timestep_word(regs[rs1] if rs1 else 0)
        if rd:
            regs[rd] = 1
        return (pc + 4) & MASK32

    return _plain_pair(instr, fast)


@_register("nmpn")
def _build_nmpn(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    from .functional import ExecRecord

    regs, rd, rs1, rs2 = sim.regs, instr.rd, instr.rs1, instr.rs2
    mem, npu = sim.memory, sim.npu

    def fast(pc: int) -> int:
        vu_address = regs[rd] if rd else 0
        new_vu, spike = npu.execute_nmpn(regs[rs1] if rs1 else 0, regs[rs2] if rs2 else 0)
        mem.store_word(vu_address, new_vu)
        if rd:
            regs[rd] = spike
        sim.spike_count += spike
        return (pc + 4) & MASK32

    def record(pc: int) -> "ExecRecord":
        vu_address = regs[rd] if rd else 0
        new_vu, spike = npu.execute_nmpn(regs[rs1] if rs1 else 0, regs[rs2] if rs2 else 0)
        mem.store_word(vu_address, new_vu)
        if rd:
            regs[rd] = spike
        sim.spike_count += spike
        return ExecRecord(
            pc=pc,
            instr=instr,
            next_pc=(pc + 4) & MASK32,
            mem_address=vu_address,
            mem_is_write=True,
            spike=spike,
        )

    return record, fast


@_register("nmdec")
def _build_nmdec(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    regs, rd, rs1, rs2 = sim.regs, instr.rd, instr.rs1, instr.rs2
    dcu = sim.dcu

    def fast(pc: int) -> int:
        value = dcu.execute_nmdec(regs[rs1] if rs1 else 0, regs[rs2] if rs2 else 0)
        if rd:
            regs[rd] = value & MASK32
        return (pc + 4) & MASK32

    return _plain_pair(instr, fast)


# ---------------------------------------------------------------------- #
# Entry point
# ---------------------------------------------------------------------- #
def compile_entry(sim: "FunctionalSimulator", instr: DecodedInstr) -> HandlerPair:
    """Compile ``instr`` into a ``(record, fast)`` handler pair for ``sim``.

    Unknown mnemonics (e.g. future extensions registered without a
    builder) fall back to the legacy ``_execute`` chain, so the fast path
    can never change which instructions are executable.
    """
    builder = _BUILDERS.get(instr.name)
    if builder is None:

        def record(pc: int) -> "ExecRecord":
            return sim._execute(pc, instr)

        def fast(pc: int) -> int:
            return sim._execute(pc, instr).next_pc

        return record, fast
    return builder(sim, instr)
