"""Bit-accurate model of the neuron Decay Unit (DCU).

The DCU executes the ``nmdec`` instruction: an exponential (AMPA-receptor
style) decay of the Q15.16 synaptic current

.. math::

    I_{syn,n+1} = I_{syn,n} - \\frac{I_{syn,n}}{\\tau}\\,h

where the division by the decay constant ``tau`` is *approximated by a
shift-add network* (paper §V-B and Table II): the operand is shifted right
by factors between one and nine and a subset of the shifted values is
summed so the result approximates the desired quotient, avoiding a divider
circuit.  The multiplication by the timestep ``h`` is a further shift
(0.5 ms → ``>> 1``, 0.125 ms → ``>> 3``).

The module reproduces the shift selections of paper Table II exactly for
dividers /2 … /8 and extends the table to /1 and /9 (the ``nmdec`` tau
select ranges over 1…9).  Table II's printed error for the /6 entry
(12.1093 %) is inconsistent with its own shift selection, which yields
≈0.39 %; :func:`approximation_error` returns the recomputed value and the
Table II benchmark flags the discrepancy.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple, Union

import numpy as np

from ..fixedpoint import Q15_16
from ..isa.nm_ext import TAU_SELECT_MAX, TAU_SELECT_MIN
from .npu import NMConfig

__all__ = [
    "DCU",
    "SHIFT_SELECTIONS",
    "approx_divide",
    "approximation_error",
    "approximation_error_table",
]

ArrayLike = Union[int, np.ndarray]

#: Shift-add selections per divider (paper Table II for 2..8; /1 and /9 ours).
#: ``divider -> tuple of right-shift amounts whose sum approximates 1/divider``.
SHIFT_SELECTIONS: Dict[int, Tuple[int, ...]] = {
    1: (0,),
    2: (1,),
    3: (2, 4, 6, 8),
    4: (2,),
    5: (3, 4, 7, 8),
    6: (3, 5, 7, 9),
    7: (3, 6, 9),
    8: (3,),
    9: (4, 5, 6, 9),
}


def approx_divide(value: ArrayLike, divider: int) -> ArrayLike:
    """Approximate ``value / divider`` with the DCU's shift-add network.

    Operates on raw integer payloads using arithmetic right shifts, exactly
    as the RTL would.  ``divider`` must be in ``[1, 9]``.
    """
    if divider not in SHIFT_SELECTIONS:
        raise ValueError(f"divider {divider} outside supported range 1..9")
    arr = np.asarray(value, dtype=np.int64)
    out = np.zeros_like(arr)
    for shift in SHIFT_SELECTIONS[divider]:
        out = out + (arr >> shift)
    if np.ndim(value) == 0:
        return int(out)
    return out


def approximation_factor(divider: int) -> float:
    """Return the exact rational factor implemented by the shift selection."""
    return float(sum(2.0 ** -s for s in SHIFT_SELECTIONS[divider]))


def approximation_error(divider: int) -> float:
    """Relative approximation error in percent for ``1/divider``.

    Matches the definition of paper Eq. (7):
    ``AE = (approx - 1/d) / (1/d) * 100 %`` (absolute value).
    """
    exact = 1.0 / divider
    return abs(approximation_factor(divider) - exact) / exact * 100.0


def approximation_error_table(dividers: Iterable[int] = range(2, 9)) -> Dict[int, Dict[str, float]]:
    """Regenerate paper Table II: shift selection, approximate value and AE."""
    table = {}
    for d in dividers:
        table[d] = {
            "shifts": SHIFT_SELECTIONS[d],
            "approx_value": approximation_factor(d),
            "exact_value": 1.0 / d,
            "approx_error_percent": approximation_error(d),
        }
    return table


class DCU:
    """Single-cycle synaptic-current decay functional unit.

    Parameters
    ----------
    config:
        NM configuration registers shared with the NPU (supplies the
        timestep shift).
    """

    def __init__(self, config: NMConfig | None = None) -> None:
        self.config = config if config is not None else NMConfig()

    def decay_raw(self, isyn_raw: ArrayLike, tau_select: int) -> ArrayLike:
        """Apply one decay step to raw Q15.16 payload(s).

        Parameters
        ----------
        isyn_raw:
            Raw Q15.16 synaptic current (scalar or array).
        tau_select:
            Decay constant selector in ``[1, 9]`` (the ``rs1`` operand of
            ``nmdec``).

        Returns
        -------
        Decayed raw Q15.16 payload(s), saturated to the 32-bit range.
        """
        if not TAU_SELECT_MIN <= tau_select <= TAU_SELECT_MAX:
            raise ValueError(f"tau select {tau_select} outside [{TAU_SELECT_MIN}, {TAU_SELECT_MAX}]")
        delta = approx_divide(isyn_raw, tau_select)
        delta = np.asarray(delta, dtype=np.int64) >> self.config.h_shift
        out = Q15_16.handle_overflow(np.asarray(isyn_raw, dtype=np.int64) - delta)
        if np.ndim(isyn_raw) == 0:
            return int(out)
        return np.asarray(out, dtype=np.int64)

    def execute_nmdec(self, tau_word: int, isyn_word: int) -> int:
        """Execute ``nmdec`` on 32-bit register operands.

        Parameters
        ----------
        tau_word:
            ``rs1`` register value; only the tau selector (1..9) is used.
        isyn_word:
            ``rs2`` register value holding the Q15.16 current bit pattern.

        Returns
        -------
        The decayed Q15.16 current as an unsigned 32-bit word (``rd``).
        """
        # Scalar fast path (pure integers): arithmetic shifts on Python
        # ints match the int64 array path of decay_raw bit for bit; the
        # equivalence is pinned by tests/sim/test_dispatch.py.
        tau_select = tau_word & 0xF
        if not TAU_SELECT_MIN <= tau_select <= TAU_SELECT_MAX:
            raise ValueError(f"tau select {tau_select} outside [{TAU_SELECT_MIN}, {TAU_SELECT_MAX}]")
        isyn_raw = isyn_word & 0xFFFFFFFF
        if isyn_raw & 0x8000_0000:
            isyn_raw -= 0x1_0000_0000
        delta = 0
        for shift in SHIFT_SELECTIONS[tau_select]:
            delta += isyn_raw >> shift
        out = isyn_raw - (delta >> self.config.h_shift)
        if out < -0x8000_0000:
            out = -0x8000_0000
        elif out > 0x7FFF_FFFF:
            out = 0x7FFF_FFFF
        return out & 0xFFFFFFFF

    def decay_float(self, isyn: float, tau_select: int) -> float:
        """Apply one decay step to a real-valued current (convenience)."""
        raw = Q15_16.from_float(isyn)
        return Q15_16.to_float(self.decay_raw(raw, tau_select))

    def effective_decay_factor(self, tau_select: int) -> float:
        """Per-call multiplicative decay factor ``1 - approx(1/tau) * h``."""
        return 1.0 - approximation_factor(tau_select) * 2.0 ** -self.config.h_shift
