"""Byte-addressable sparse memory model for the IzhiRISC-V system.

The FPGA system keeps the network state in on-chip memory and fetches
instructions from off-chip SDRAM (paper §VI).  The :class:`Memory` class
stores data sparsely in 4 KiB pages so that programs may use widely
separated address regions (instruction image, neuron state, stack, MMIO)
without allocating the whole 32-bit space; the :class:`MemoryMap` helper
names those regions and carries the latency attributes used by the cache
and bus timing models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["MemoryError32", "Region", "MemoryMap", "Memory", "DEFAULT_MEMORY_MAP"]

_PAGE_BITS = 12
_PAGE_SIZE = 1 << _PAGE_BITS
_PAGE_MASK = _PAGE_SIZE - 1
_MASK32 = 0xFFFFFFFF


class MemoryError32(Exception):
    """Raised on misaligned or out-of-map memory accesses."""


@dataclass(frozen=True)
class Region:
    """A named address region with timing attributes.

    Attributes
    ----------
    name:
        Human-readable region name (``"sdram"``, ``"onchip"``, ...).
    base, size:
        Byte range ``[base, base + size)``.
    access_cycles:
        Raw access latency in core cycles seen on a cache miss / uncached
        access (1 for on-chip SRAM, tens of cycles for SDRAM).
    cacheable:
        Whether accesses to the region go through the caches.
    """

    name: str
    base: int
    size: int
    access_cycles: int = 1
    cacheable: bool = True

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class MemoryMap:
    """An ordered collection of non-overlapping :class:`Region` objects."""

    regions: List[Region] = field(default_factory=list)

    def add(self, region: Region) -> None:
        for existing in self.regions:
            if region.base < existing.end and existing.base < region.end:
                raise MemoryError32(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self.regions.append(region)
        self.regions.sort(key=lambda r: r.base)

    def find(self, address: int) -> Optional[Region]:
        """Return the region containing ``address`` or ``None``."""
        for region in self.regions:
            if region.contains(address):
                return region
        return None

    def region(self, name: str) -> Region:
        for r in self.regions:
            if r.name == name:
                return r
        raise KeyError(f"no region named {name!r}")


def DEFAULT_MEMORY_MAP() -> MemoryMap:
    """Memory map mirroring the paper's FPGA system.

    * ``sdram``  — off-chip SDRAM holding the instruction image (slow).
    * ``onchip`` — on-chip memory holding the network state (fast).
    * ``stack``  — top of on-chip memory used for the call stack.
    * ``mmio``   — a small control/status region (cycle counter, halt).
    """
    mm = MemoryMap()
    mm.add(Region("sdram", base=0x0000_0000, size=8 << 20, access_cycles=12, cacheable=True))
    mm.add(Region("onchip", base=0x1000_0000, size=4 << 20, access_cycles=1, cacheable=True))
    mm.add(Region("stack", base=0x2000_0000, size=1 << 20, access_cycles=1, cacheable=True))
    mm.add(Region("mmio", base=0xF000_0000, size=1 << 12, access_cycles=1, cacheable=False))
    return mm


class Memory:
    """Sparse little-endian byte-addressable memory."""

    def __init__(self, memory_map: Optional[MemoryMap] = None, *, strict: bool = False) -> None:
        """Create an empty memory.

        Parameters
        ----------
        memory_map:
            Optional map used to answer :meth:`region_of`.  When ``strict``
            is true, accesses outside any region raise
            :class:`MemoryError32`.
        strict:
            Enforce that all accesses fall inside a mapped region.
        """
        self.memory_map = memory_map
        self.strict = strict
        self._pages: Dict[int, bytearray] = {}

    # ------------------------------------------------------------------ #
    # Page management
    # ------------------------------------------------------------------ #
    def _page(self, address: int) -> Tuple[bytearray, int]:
        page_index = address >> _PAGE_BITS
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(_PAGE_SIZE)
            self._pages[page_index] = page
        return page, address & _PAGE_MASK

    def _check(self, address: int, size: int) -> None:
        if address < 0 or address + size > (1 << 32):
            raise MemoryError32(f"address {address:#x} outside 32-bit space")
        if self.strict and self.memory_map is not None:
            if self.memory_map.find(address) is None:
                raise MemoryError32(f"access to unmapped address {address:#x}")

    def region_of(self, address: int) -> Optional[Region]:
        """Return the region containing ``address`` (if a map is attached)."""
        if self.memory_map is None:
            return None
        return self.memory_map.find(address)

    # ------------------------------------------------------------------ #
    # Byte / halfword / word accessors (little endian)
    # ------------------------------------------------------------------ #
    def load_byte(self, address: int) -> int:
        self._check(address, 1)
        page, offset = self._page(address)
        return page[offset]

    def store_byte(self, address: int, value: int) -> None:
        self._check(address, 1)
        page, offset = self._page(address)
        page[offset] = value & 0xFF

    def load_half(self, address: int) -> int:
        if address % 2 != 0:
            raise MemoryError32(f"misaligned halfword load at {address:#x}")
        return self.load_byte(address) | (self.load_byte(address + 1) << 8)

    def store_half(self, address: int, value: int) -> None:
        if address % 2 != 0:
            raise MemoryError32(f"misaligned halfword store at {address:#x}")
        self.store_byte(address, value)
        self.store_byte(address + 1, value >> 8)

    def load_word(self, address: int) -> int:
        # Word accesses are the ISS hot path: the page lookup and the
        # bounds check are inlined (an aligned word never straddles a
        # 4 KiB page, so no byte-wise fallback is needed).
        if address & 3:
            raise MemoryError32(f"misaligned word load at {address:#x}")
        if address < 0 or address + 4 > (1 << 32):
            raise MemoryError32(f"address {address:#x} outside 32-bit space")
        if self.strict and self.memory_map is not None and self.memory_map.find(address) is None:
            raise MemoryError32(f"access to unmapped address {address:#x}")
        page = self._pages.get(address >> _PAGE_BITS)
        if page is None:
            page, _ = self._page(address)
        offset = address & _PAGE_MASK
        return int.from_bytes(page[offset : offset + 4], "little")

    def store_word(self, address: int, value: int) -> None:
        if address & 3:
            raise MemoryError32(f"misaligned word store at {address:#x}")
        if address < 0 or address + 4 > (1 << 32):
            raise MemoryError32(f"address {address:#x} outside 32-bit space")
        if self.strict and self.memory_map is not None and self.memory_map.find(address) is None:
            raise MemoryError32(f"access to unmapped address {address:#x}")
        page = self._pages.get(address >> _PAGE_BITS)
        if page is None:
            page, _ = self._page(address)
        offset = address & _PAGE_MASK
        page[offset : offset + 4] = (value & _MASK32).to_bytes(4, "little")

    # ------------------------------------------------------------------ #
    # Bulk helpers
    # ------------------------------------------------------------------ #
    def load_program(self, words: Iterable[int], *, base: int) -> None:
        """Copy a sequence of 32-bit words into memory starting at ``base``."""
        for i, word in enumerate(words):
            self.store_word(base + 4 * i, word)

    def load_bytes(self, data: bytes, *, base: int) -> None:
        """Copy raw bytes into memory starting at ``base``."""
        for i, b in enumerate(data):
            self.store_byte(base + i, b)

    def read_bytes(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        return bytes(self.load_byte(address + i) for i in range(length))

    def read_words(self, address: int, count: int) -> List[int]:
        """Read ``count`` consecutive words starting at ``address``."""
        return [self.load_word(address + 4 * i) for i in range(count)]

    @property
    def allocated_bytes(self) -> int:
        """Number of bytes of backing store currently allocated."""
        return len(self._pages) * _PAGE_SIZE
