"""Performance counters and the derived metrics reported in Tables V / VI.

The paper characterises each run by:

* speedup over the single-core configuration,
* execution time (cycles / clock frequency),
* ``IPC`` — retired instructions per cycle (Eq. 8),
* ``IPC_eff`` — *effective* IPC, where every neuron update is credited
  with the ``N_IZHop = 19`` equivalent base-ISA operations it replaces
  (Eq. 9), so values above 1 are possible,
* hazard-stall percentage,
* I-/D-cache hit rates and total cache misses,
* memory intensity (share of retired instructions that access data
  memory, in percent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .cache import CacheStats

__all__ = ["N_IZH_OPS", "PerfCounters"]

#: Equivalent number of base-ISA operations replaced by one neuron update
#: (15 for the two Izhikevich ODEs + 4 for the synaptic decay, paper §II-C).
N_IZH_OPS = 19


@dataclass
class PerfCounters:
    """Cycle-level counters gathered by the timing models."""

    cycles: int = 0
    instructions: int = 0
    #: Instructions that are *not* part of a neuron update (Eq. 9's N_reginstr).
    regular_instructions: int = 0
    #: Number of ``nmpn`` neuron updates retired.
    neuron_updates: int = 0
    #: Number of ``nmdec`` decay operations retired.
    decay_operations: int = 0
    #: Cycles lost to data-hazard stalls inserted by the hazard unit.
    hazard_stall_cycles: int = 0
    #: Cycles lost to control-flow flushes (taken branches / jumps).
    branch_flush_cycles: int = 0
    #: Cycles lost waiting for the instruction cache.
    icache_stall_cycles: int = 0
    #: Cycles lost waiting for the data cache.
    dcache_stall_cycles: int = 0
    #: Cycles lost to multi-cycle execute operations (div/rem).
    multicycle_stall_cycles: int = 0
    #: Cycles lost arbitrating for the shared bus (multi-core systems).
    bus_stall_cycles: int = 0
    #: Data-memory accesses (loads + stores + nmpn writebacks).
    memory_accesses: int = 0
    loads: int = 0
    stores: int = 0
    #: Spikes produced by nmpn instructions.
    spikes: int = 0
    icache: CacheStats = field(default_factory=CacheStats)
    dcache: CacheStats = field(default_factory=CacheStats)

    # ------------------------------------------------------------------ #
    # Derived metrics (paper Eq. 8 / Eq. 9 and Table V/VI rows)
    # ------------------------------------------------------------------ #
    @property
    def ipc(self) -> float:
        """Retired instructions per cycle (paper Eq. 8)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def ipc_eff(self) -> float:
        """Effective IPC crediting neuron updates with 19 equivalent ops (Eq. 9)."""
        if self.cycles == 0:
            return 0.0
        effective = self.regular_instructions + self.neuron_updates * N_IZH_OPS
        return effective / self.cycles

    @property
    def hazard_stall_percent(self) -> float:
        """Hazard-stall cycles as a percentage of total cycles."""
        return 100.0 * self.hazard_stall_cycles / self.cycles if self.cycles else 0.0

    @property
    def stall_cycles(self) -> int:
        """All cycles in which no instruction completed."""
        return (
            self.hazard_stall_cycles
            + self.branch_flush_cycles
            + self.icache_stall_cycles
            + self.dcache_stall_cycles
            + self.multicycle_stall_cycles
            + self.bus_stall_cycles
        )

    @property
    def total_cache_misses(self) -> int:
        """All cache misses (I + D), the "All cache misses" row of Table V."""
        return self.icache.misses + self.dcache.misses

    @property
    def memory_intensity(self) -> float:
        """Data-memory accesses per 100 retired instructions."""
        return 100.0 * self.memory_accesses / self.instructions if self.instructions else 0.0

    def execution_time_s(self, clock_hz: float) -> float:
        """Execution time in seconds at the given clock frequency."""
        return self.cycles / clock_hz

    # ------------------------------------------------------------------ #
    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Element-wise sum of two counter sets (cache stats included)."""
        merged = PerfCounters()
        for name in (
            "cycles",
            "instructions",
            "regular_instructions",
            "neuron_updates",
            "decay_operations",
            "hazard_stall_cycles",
            "branch_flush_cycles",
            "icache_stall_cycles",
            "dcache_stall_cycles",
            "multicycle_stall_cycles",
            "bus_stall_cycles",
            "memory_accesses",
            "loads",
            "stores",
            "spikes",
        ):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        merged.icache = self.icache.merge(other.icache)
        merged.dcache = self.dcache.merge(other.dcache)
        return merged

    def as_dict(self, *, clock_hz: Optional[float] = None) -> Dict[str, float]:
        """Flatten the counters and derived metrics into a plain dict."""
        out: Dict[str, float] = {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "ipc_eff": self.ipc_eff,
            "hazard_stall_percent": self.hazard_stall_percent,
            "icache_hit_rate": self.icache.hit_rate,
            "dcache_hit_rate": self.dcache.hit_rate,
            "total_cache_misses": self.total_cache_misses,
            "memory_intensity": self.memory_intensity,
            "neuron_updates": self.neuron_updates,
            "spikes": self.spikes,
        }
        if clock_hz is not None:
            out["execution_time_s"] = self.execution_time_s(clock_hz)
        return out
