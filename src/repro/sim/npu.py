r"""Bit-accurate model of the Neuron Processing Unit (NPU).

The NPU is the ALU extension that executes the ``nmpn`` instruction: a
single-cycle forward-Euler update of the two Izhikevich state variables
held in the packed VU word (paper §IV-B and §V-B).  The computation uses
signed fixed-point arithmetic with a wide internal accumulator and narrows
the results back to Q7.8:

.. math::

    v_{n+1} &= (0.04 v_n^2 + 5 v_n + 140 - u_n + I_{syn})\,h + v_n \\
    u_{n+1} &= a (b v_n - u_n)\,h + u_n

followed by the spike/reset rule ``v > V_th  ⇒  v ← c,  u ← u + d`` and,
when the *pin* bit is set, a lower cap of ``v`` at the reset potential
``c`` (the paper adds this to stabilise the Sudoku WTA network).

The model operates on raw integer payloads so that it is exactly
reproducible and can be driven either one neuron at a time (as the
instruction-set simulator does) or as vectorised NumPy arrays (as the
fixed-point network engine does).  Both paths share the same arithmetic.

Note: equation (3) in the paper contains a typo (``+ v_n`` in the ``u``
update); the recurrence implemented here uses the correct ``+ u_n`` term,
without which the model does not spike correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Union

import numpy as np

from ..fixedpoint import Q4_11, Q7_8, Q15_16
from ..fixedpoint.vuword import pack_vu, unpack_vu
from ..isa.nm_ext import (
    IzhikevichParams,
    TIMESTEP_COARSE_MS,
    TIMESTEP_FINE_MS,
    unpack_nmldh_operand,
)

__all__ = [
    "NMConfig",
    "NPU",
    "SPIKE_THRESHOLD_MV",
    "izhikevich_update_raw",
    "izhikevich_update_scalar",
]

ArrayLike = Union[int, np.ndarray]

#: Izhikevich spike threshold in millivolts (Izhikevich 2003).
SPIKE_THRESHOLD_MV = 30.0

#: Internal accumulator fractional bits (wide enough to hold Q15.16 terms).
_ACC_FRAC = 16
#: Shift applied to v*v (Q7.8 * Q7.8 -> 16 fractional bits already).
_VTH_RAW = int(SPIKE_THRESHOLD_MV * (1 << 8))  # Q7.8

# Constant coefficients of the quadratic nullcline, held in the same
# formats the configuration registers use: 0.04 in Q4.11, 5 and 140 exact.
_COEFF_004_Q4_11 = Q4_11.from_float(0.04)
_CONST_5 = 5
_CONST_140_ACC = 140 << _ACC_FRAC


@dataclass
class NMConfig:
    """The NM configuration registers (``NM REGS`` in paper Fig. 1).

    Loaded by the ``nmldl`` (parameters) and ``nmldh`` (timestep / pin)
    instructions before the NPU or DCU may operate.
    """

    #: Raw Q4.11 payloads of the Izhikevich parameters a, b, d.
    a_raw: int = 0
    b_raw: int = 0
    d_raw: int = 0
    #: Raw Q7.8 payload of the reset parameter c.
    c_raw: int = 0
    #: ``True`` selects the 0.125 ms timestep, ``False`` the 0.5 ms one.
    fine_timestep: bool = False
    #: ``True`` caps the membrane voltage at the reset potential.
    pin_voltage: bool = False
    #: Set once ``nmldl`` has executed (used for sanity checking).
    params_loaded: bool = field(default=False)
    #: Set once ``nmldh`` has executed.
    timestep_loaded: bool = field(default=False)

    # ------------------------------------------------------------------ #
    # Loading (instruction semantics)
    # ------------------------------------------------------------------ #
    def load_params_words(self, rs1: int, rs2: int) -> None:
        """Execute ``nmldl``: unpack a/b (rs1) and d/c (rs2) register words.

        The ISS executes one ``nmldl`` per neuron per timestep, so the
        16-bit two's-complement reinterpretation is done with plain
        integer arithmetic instead of the (scalar-NumPy) ``from_unsigned``
        helpers; all four formats here are 16 bits wide.
        """
        a = rs1 & 0xFFFF
        b = (rs1 >> 16) & 0xFFFF
        c = rs2 & 0xFFFF
        d = (rs2 >> 16) & 0xFFFF
        self.a_raw = a - 0x10000 if a & 0x8000 else a
        self.b_raw = b - 0x10000 if b & 0x8000 else b
        self.c_raw = c - 0x10000 if c & 0x8000 else c
        self.d_raw = d - 0x10000 if d & 0x8000 else d
        self.params_loaded = True

    def load_params(self, params: IzhikevichParams) -> None:
        """Convenience: load real-valued parameters (quantising them)."""
        self.a_raw = Q4_11.from_float(params.a)
        self.b_raw = Q4_11.from_float(params.b)
        self.c_raw = Q7_8.from_float(params.c)
        self.d_raw = Q4_11.from_float(params.d)
        self.params_loaded = True

    def load_timestep_word(self, rs1: int) -> None:
        """Execute ``nmldh``: unpack the h and pin bits."""
        self.fine_timestep, self.pin_voltage = unpack_nmldh_operand(rs1)
        self.timestep_loaded = True

    def load_timestep(self, *, fine_timestep: bool = False, pin_voltage: bool = False) -> None:
        """Convenience: set the timestep selection and pin flag directly."""
        self.fine_timestep = fine_timestep
        self.pin_voltage = pin_voltage
        self.timestep_loaded = True

    # ------------------------------------------------------------------ #
    # Derived values
    # ------------------------------------------------------------------ #
    @property
    def timestep_ms(self) -> float:
        """Selected integration timestep in milliseconds."""
        return TIMESTEP_FINE_MS if self.fine_timestep else TIMESTEP_COARSE_MS

    @property
    def h_shift(self) -> int:
        """Right-shift equivalent of multiplying by the timestep.

        The hardware replaces the multiplication by ``h`` with a bit shift
        (paper §V-B): 0.5 ms → ``>> 1``, 0.125 ms → ``>> 3``.
        """
        return 3 if self.fine_timestep else 1

    @property
    def params(self) -> IzhikevichParams:
        """Real-valued view of the loaded parameters."""
        return IzhikevichParams(
            a=Q4_11.to_float(self.a_raw),
            b=Q4_11.to_float(self.b_raw),
            c=Q7_8.to_float(self.c_raw),
            d=Q4_11.to_float(self.d_raw),
        )

    @staticmethod
    def from_words(rs1_ldl: int, rs2_ldl: int, rs1_ldh: int) -> "NMConfig":
        """Build a config as the two configuration instructions would."""
        cfg = NMConfig()
        cfg.load_params_words(rs1_ldl, rs2_ldl)
        cfg.load_timestep_word(rs1_ldh)
        return cfg


def izhikevich_update_raw(
    v_raw: ArrayLike,
    u_raw: ArrayLike,
    isyn_raw: ArrayLike,
    *,
    a_raw: ArrayLike,
    b_raw: ArrayLike,
    c_raw: ArrayLike,
    d_raw: ArrayLike,
    h_shift: int,
    pin_voltage: bool = False,
) -> Tuple[ArrayLike, ArrayLike, ArrayLike]:
    """The NPU datapath with explicit (possibly per-neuron) parameters.

    This is the reference implementation of the fixed-point Izhikevich
    Euler step, used by :meth:`NPU.update_raw` and the vectorised
    fixed-point network engine (per-neuron parameter arrays).  The
    instruction-level ``nmpn`` path goes through
    :func:`izhikevich_update_scalar`, a pure-integer twin of this
    function; randomized cross-checks in ``tests/sim/test_dispatch.py``
    pin the two bit-identical.

    All inputs are raw integer payloads (v/u/c in Q7.8, a/b/d in Q4.11,
    Isyn in Q15.16); scalars and NumPy arrays may be mixed freely.

    Returns ``(v_new_raw, u_new_raw, spike)`` with spike ∈ {0, 1}.
    """
    scalar = all(np.ndim(x) == 0 for x in (v_raw, u_raw, isyn_raw, a_raw, b_raw, c_raw, d_raw))
    v = np.asarray(v_raw, dtype=np.int64)
    u = np.asarray(u_raw, dtype=np.int64)
    isyn = np.asarray(isyn_raw, dtype=np.int64)
    a = np.asarray(a_raw, dtype=np.int64)
    b = np.asarray(b_raw, dtype=np.int64)
    c = np.asarray(c_raw, dtype=np.int64)
    d = np.asarray(d_raw, dtype=np.int64)

    # Promote the state to the wide accumulator (16 fractional bits).
    v_acc = v << (_ACC_FRAC - Q7_8.frac_bits)
    u_acc = u << (_ACC_FRAC - Q7_8.frac_bits)

    # 0.04 v^2 : v*v is exact with 16 fractional bits; the Q4.11
    # coefficient contributes 11 more which are shifted away.
    v_sq = v * v  # Q?.16
    term_quadratic = (_COEFF_004_Q4_11 * v_sq) >> Q4_11.frac_bits

    # 5 v (exact), the constant 140, -u and the synaptic current.
    dv_acc = term_quadratic + _CONST_5 * v_acc + _CONST_140_ACC - u_acc + isyn
    dv_acc = dv_acc >> h_shift

    # a (b v - u): b*v has 19 fractional bits -> align to 16.
    bv_acc = (b * v) >> (Q4_11.frac_bits + Q7_8.frac_bits - _ACC_FRAC)
    du_acc = (a * (bv_acc - u_acc)) >> Q4_11.frac_bits
    du_acc = du_acc >> h_shift

    v_new = np.asarray(Q7_8.handle_overflow((v_acc + dv_acc) >> (_ACC_FRAC - Q7_8.frac_bits)), dtype=np.int64)
    u_new = np.asarray(Q7_8.handle_overflow((u_acc + du_acc) >> (_ACC_FRAC - Q7_8.frac_bits)), dtype=np.int64)

    # Spike detection and reset.
    spike = (v_new >= _VTH_RAW).astype(np.int64)
    d_q78 = d >> (Q4_11.frac_bits - Q7_8.frac_bits)
    u_spiked = np.asarray(Q7_8.handle_overflow(u_new + d_q78), dtype=np.int64)
    v_new = np.where(spike == 1, c, v_new)
    u_new = np.where(spike == 1, u_spiked, u_new)

    # Optional pinning of the membrane voltage at the reset potential.
    if pin_voltage:
        v_new = np.maximum(v_new, c)

    if scalar:
        return int(v_new), int(u_new), int(spike)
    return v_new, u_new, spike


# Q7.8 saturation bounds used by the scalar datapath below.
_Q78_MIN = -(1 << 15)
_Q78_MAX = (1 << 15) - 1


def izhikevich_update_scalar(
    v_raw: int,
    u_raw: int,
    isyn_raw: int,
    *,
    a_raw: int,
    b_raw: int,
    c_raw: int,
    d_raw: int,
    h_shift: int,
    pin_voltage: bool = False,
) -> Tuple[int, int, int]:
    """Pure-integer twin of :func:`izhikevich_update_raw` for one neuron.

    The instruction-set simulator retires one ``nmpn`` at a time; going
    through NumPy for scalars costs an order of magnitude more than the
    arithmetic itself.  Every intermediate here fits comfortably in 64
    bits (``|v| < 2^15`` so ``0.04·v²`` stays below 2^38), so Python
    integer arithmetic — including arithmetic right shifts on negatives —
    is bit-identical to the int64 array path.  The equivalence is pinned
    by randomized cross-checks in ``tests/sim/test_dispatch.py``.
    """
    v_acc = v_raw << 8
    u_acc = u_raw << 8
    dv_acc = (
        ((_COEFF_004_Q4_11 * (v_raw * v_raw)) >> 11)
        + 5 * v_acc
        + _CONST_140_ACC
        - u_acc
        + isyn_raw
    ) >> h_shift
    bv_acc = (b_raw * v_raw) >> 3  # 11 + 8 - 16 fractional bits
    du_acc = ((a_raw * (bv_acc - u_acc)) >> 11) >> h_shift
    v_new = (v_acc + dv_acc) >> 8
    if v_new < _Q78_MIN:
        v_new = _Q78_MIN
    elif v_new > _Q78_MAX:
        v_new = _Q78_MAX
    u_new = (u_acc + du_acc) >> 8
    if u_new < _Q78_MIN:
        u_new = _Q78_MIN
    elif u_new > _Q78_MAX:
        u_new = _Q78_MAX
    if v_new >= _VTH_RAW:
        spike = 1
        u_new += d_raw >> 3  # Q4.11 -> Q7.8
        if u_new < _Q78_MIN:
            u_new = _Q78_MIN
        elif u_new > _Q78_MAX:
            u_new = _Q78_MAX
        v_new = c_raw
    else:
        spike = 0
    if pin_voltage and v_new < c_raw:
        v_new = c_raw
    return v_new, u_new, spike


class NPU:
    """Single-cycle Izhikevich-update functional unit.

    Parameters
    ----------
    config:
        The shared NM configuration registers.  The same object is usually
        shared with the :class:`~repro.sim.dcu.DCU`.
    """

    def __init__(self, config: NMConfig | None = None) -> None:
        self.config = config if config is not None else NMConfig()

    # ------------------------------------------------------------------ #
    # Raw-payload arithmetic (shared scalar/vector path)
    # ------------------------------------------------------------------ #
    def update_raw(
        self,
        v_raw: ArrayLike,
        u_raw: ArrayLike,
        isyn_raw: ArrayLike,
    ) -> Tuple[ArrayLike, ArrayLike, ArrayLike]:
        """Advance ``(v, u)`` by one NPU timestep.

        Parameters
        ----------
        v_raw, u_raw:
            Raw Q7.8 payloads (scalars or int64 arrays).
        isyn_raw:
            Raw Q15.16 synaptic current payload(s).

        Returns
        -------
        (v_new_raw, u_new_raw, spike):
            Updated raw Q7.8 payloads and the spike flag(s) (0/1).
        """
        cfg = self.config
        return izhikevich_update_raw(
            v_raw,
            u_raw,
            isyn_raw,
            a_raw=cfg.a_raw,
            b_raw=cfg.b_raw,
            c_raw=cfg.c_raw,
            d_raw=cfg.d_raw,
            h_shift=cfg.h_shift,
            pin_voltage=cfg.pin_voltage,
        )

    # ------------------------------------------------------------------ #
    # Instruction-level interface (operates on machine words)
    # ------------------------------------------------------------------ #
    def execute_nmpn(self, vu_word: int, isyn_word: int) -> Tuple[int, int]:
        """Execute ``nmpn`` on 32-bit register operands.

        Parameters
        ----------
        vu_word:
            The packed VU word read from ``rs1``.
        isyn_word:
            The Q15.16 synaptic current bit pattern read from ``rs2``.

        Returns
        -------
        (new_vu_word, spike):
            The updated VU word (to be stored at the address held in
            ``rd``) and the spike flag written back to ``rd``.
        """
        # A subclass or instance patch overriding the raw-arithmetic hook
        # must keep seeing nmpn traffic: dispatch through it instead of
        # the fast path.
        if type(self).update_raw is not NPU.update_raw or "update_raw" in self.__dict__:
            v_raw, u_raw = unpack_vu(vu_word)
            v_new, u_new, spike = self.update_raw(
                v_raw, u_raw, Q15_16.from_unsigned(isyn_word & 0xFFFFFFFF)
            )
            return pack_vu(v_new, u_new), int(spike)
        # Scalar fast path (pure integers): bit-identical to the NumPy
        # array path — see izhikevich_update_scalar.  The unpack/pack of
        # the VU word and the Q15.16 reinterpretation are inlined.
        cfg = self.config
        word = vu_word & 0xFFFFFFFF
        v_raw = (word >> 16) & 0xFFFF
        if v_raw & 0x8000:
            v_raw -= 0x10000
        u_raw = word & 0xFFFF
        if u_raw & 0x8000:
            u_raw -= 0x10000
        isyn_raw = isyn_word & 0xFFFFFFFF
        if isyn_raw & 0x8000_0000:
            isyn_raw -= 0x1_0000_0000
        v_new, u_new, spike = izhikevich_update_scalar(
            v_raw,
            u_raw,
            isyn_raw,
            a_raw=cfg.a_raw,
            b_raw=cfg.b_raw,
            c_raw=cfg.c_raw,
            d_raw=cfg.d_raw,
            h_shift=cfg.h_shift,
            pin_voltage=cfg.pin_voltage,
        )
        return ((v_new & 0xFFFF) << 16) | (u_new & 0xFFFF), spike

    # ------------------------------------------------------------------ #
    # Float convenience interface (examples, documentation, tests)
    # ------------------------------------------------------------------ #
    def update_float(self, v: float, u: float, isyn: float) -> Tuple[float, float, bool]:
        """Advance real-valued state through the fixed-point datapath."""
        v_new, u_new, spike = self.update_raw(
            Q7_8.from_float(v), Q7_8.from_float(u), Q15_16.from_float(isyn)
        )
        return Q7_8.to_float(v_new), Q7_8.to_float(u_new), bool(spike)
