"""Instruction- and data-cache models for the IzhiRISC-V core.

The DTEK-V core uses small instruction and data caches in front of the
off-chip SDRAM (paper §VI reports I-cache hit rates of ~99 % and D-cache
hit rates of 96-100 %).  The model is a set-associative, write-through,
allocate-on-read-miss cache with true-LRU replacement; the default
configurations approximate the dual-core MAX10 system (the paper does not
publish exact geometries, so they are exposed as parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["CacheConfig", "CacheStats", "Cache", "default_icache_config", "default_dcache_config"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache.

    Attributes
    ----------
    size_bytes:
        Total capacity.
    line_bytes:
        Cache-line size.
    associativity:
        Number of ways (1 = direct mapped).
    hit_cycles:
        Access latency on a hit (already overlapped with the pipeline; the
        timing models charge extra cycles only beyond this baseline).
    miss_penalty:
        Additional stall cycles on a miss (SDRAM access + line refill).
    write_allocate:
        Whether write misses allocate a line (the DTEK-V D-cache is
        write-through non-allocating by default).
    """

    size_bytes: int = 4096
    line_bytes: int = 16
    associativity: int = 1
    hit_cycles: int = 1
    miss_penalty: int = 12
    write_allocate: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError("cache size must be a multiple of line size * associativity")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    read_accesses: int = 0
    write_accesses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hit rate in percent (100.0 when the cache was never accessed)."""
        if self.accesses == 0:
            return 100.0
        return 100.0 * self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        return 100.0 - self.hit_rate

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return element-wise sums of two stats objects."""
        return CacheStats(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            read_accesses=self.read_accesses + other.read_accesses,
            write_accesses=self.write_accesses + other.write_accesses,
            evictions=self.evictions + other.evictions,
        )


class Cache:
    """A set-associative cache with LRU replacement.

    The cache stores only tags (no data) because the functional simulator
    is the architectural reference; the model's purpose is purely timing.
    """

    def __init__(self, config: Optional[CacheConfig] = None, *, name: str = "cache") -> None:
        self.config = config if config is not None else CacheConfig()
        self.name = name
        self.stats = CacheStats()
        num_sets = self.config.num_sets
        #: Per-set list of tags ordered most-recently-used first.
        self._sets: List[List[int]] = [[] for _ in range(num_sets)]
        self._offset_bits = self.config.line_bytes.bit_length() - 1
        self._index_mask = num_sets - 1

    # ------------------------------------------------------------------ #
    def _locate(self, address: int) -> tuple[int, int]:
        line = address >> self._offset_bits
        index = line & self._index_mask
        tag = line >> (self._index_mask.bit_length())
        return index, tag

    def access(self, address: int, *, is_write: bool = False) -> bool:
        """Simulate one access; returns ``True`` on a hit.

        Write misses do not allocate unless ``write_allocate`` is set
        (write-through, non-allocating policy).
        """
        self.stats.accesses += 1
        if is_write:
            self.stats.write_accesses += 1
        else:
            self.stats.read_accesses += 1
        index, tag = self._locate(address)
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if not is_write or self.config.write_allocate:
            ways.insert(0, tag)
            if len(ways) > self.config.associativity:
                ways.pop()
                self.stats.evictions += 1
        return False

    def access_cycles(self, address: int, *, is_write: bool = False) -> int:
        """Simulate one access and return the stall cycles beyond a hit."""
        hit = self.access(address, is_write=is_write)
        return 0 if hit else self.config.miss_penalty

    def flush(self) -> None:
        """Invalidate all lines (statistics are preserved)."""
        for ways in self._sets:
            ways.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    @property
    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(w) for w in self._sets)


def default_icache_config() -> CacheConfig:
    """Instruction-cache geometry approximating the MAX10 system.

    Small enough to matter, large enough to reach the ≈99.97 % hit rate the
    paper reports on the 80-20 main loop.
    """
    return CacheConfig(size_bytes=4096, line_bytes=16, associativity=1, miss_penalty=12)


def default_dcache_config() -> CacheConfig:
    """Data-cache geometry approximating the MAX10 system (write-through)."""
    return CacheConfig(size_bytes=4096, line_bytes=16, associativity=2, miss_penalty=12, write_allocate=False)
