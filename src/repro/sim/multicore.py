"""Multi-core IzhiRISC-V system model (shared-bus, lockstep simulation).

The paper's dual-core MAX10 system attaches both cores to a common Avalon
bus and statically partitions the neuron population between them
(paper §VI-A/B).  :class:`MultiCoreSystem` advances all cores in lockstep
so that cache-miss traffic contends on the shared :class:`SharedBus`, and
reports per-core and system-level performance counters.  The same class is
used for the single-core baseline (one core, no contention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .bus import BusStats, SharedBus
from .functional import FunctionalSimulator
from .perfcounters import PerfCounters
from .pipeline import CoreConfig, CycleAccurateCore

__all__ = ["SystemResult", "MultiCoreSystem"]


@dataclass
class SystemResult:
    """Outcome of one multi-core run."""

    #: Per-core performance counters, in core order.
    per_core: List[PerfCounters]
    #: Cycles until the *last* core finished (system completion time).
    system_cycles: int
    #: Aggregate of all per-core counters.
    combined: PerfCounters
    #: Shared-bus statistics (empty/zero for a single private-port core).
    bus: BusStats
    clock_hz: float

    @property
    def num_cores(self) -> int:
        return len(self.per_core)

    @property
    def execution_time_s(self) -> float:
        """System execution time in seconds."""
        return self.system_cycles / self.clock_hz

    def speedup_over(self, baseline: "SystemResult") -> float:
        """Speedup of this run relative to ``baseline`` (same clock)."""
        return baseline.system_cycles / self.system_cycles if self.system_cycles else 0.0

    def summary(self) -> Dict[str, float]:
        """System-level summary dictionary (used by the benchmark harness)."""
        return {
            "num_cores": self.num_cores,
            "system_cycles": self.system_cycles,
            "execution_time_s": self.execution_time_s,
            "ipc_mean": sum(c.ipc for c in self.per_core) / self.num_cores,
            "ipc_eff_mean": sum(c.ipc_eff for c in self.per_core) / self.num_cores,
            "hazard_stall_percent_mean": sum(c.hazard_stall_percent for c in self.per_core) / self.num_cores,
            "total_cache_misses": self.combined.total_cache_misses,
            "bus_utilization": self.bus.utilization(self.system_cycles),
        }


class MultiCoreSystem:
    """A system of ``N`` IzhiRISC-V cores sharing one bus.

    Parameters
    ----------
    simulators:
        One pre-loaded :class:`FunctionalSimulator` per core (each holds
        its own program partition and memory image).
    core_config:
        Microarchitectural parameters applied to every core.
    shared_bus:
        Whether cache-miss traffic contends on a shared bus (the MAX10
        system) or each core has a private memory port.
    """

    def __init__(
        self,
        simulators: Sequence[FunctionalSimulator],
        *,
        core_config: Optional[CoreConfig] = None,
        shared_bus: bool = True,
    ) -> None:
        if not simulators:
            raise ValueError("at least one core is required")
        self.core_config = core_config if core_config is not None else CoreConfig()
        self.bus = SharedBus() if shared_bus and len(simulators) > 1 else None
        self.cores: List[CycleAccurateCore] = [
            CycleAccurateCore(fsim, self.core_config, bus=self.bus, core_id=i)
            for i, fsim in enumerate(simulators)
        ]

    @classmethod
    def from_builder(
        cls,
        num_cores: int,
        builder: Callable[[int, int], FunctionalSimulator],
        *,
        core_config: Optional[CoreConfig] = None,
        shared_bus: bool = True,
    ) -> "MultiCoreSystem":
        """Build a system by calling ``builder(core_id, num_cores)`` per core."""
        sims = [builder(i, num_cores) for i in range(num_cores)]
        return cls(sims, core_config=core_config, shared_bus=shared_bus)

    # ------------------------------------------------------------------ #
    def run(self, *, max_cycles: int = 100_000_000) -> SystemResult:
        """Run all cores in lockstep until every program has halted."""
        cycle = 0
        active = list(self.cores)
        while active:
            if cycle >= max_cycles:
                raise RuntimeError(f"system cycle budget of {max_cycles} exhausted")
            cycle += 1
            still_active = []
            for core in active:
                core.step_cycle()
                if not core.halted:
                    still_active.append(core)
            active = still_active

        per_core = [core.snapshot_counters() for core in self.cores]
        combined = per_core[0]
        for counters in per_core[1:]:
            combined = combined.merge(counters)
        system_cycles = max(c.cycles for c in per_core)
        bus_stats = self.bus.stats if self.bus is not None else BusStats()
        return SystemResult(
            per_core=per_core,
            system_cycles=system_cycles,
            combined=combined,
            bus=bus_stats,
            clock_hz=self.core_config.clock_hz,
        )
