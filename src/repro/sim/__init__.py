"""Functional and cycle-level simulators of the IzhiRISC-V processor.

* :class:`~repro.sim.npu.NPU` / :class:`~repro.sim.dcu.DCU` — bit-accurate
  models of the neuromorphic functional units.
* :class:`~repro.sim.functional.FunctionalSimulator` — instruction-accurate
  RV32IM + extension executor.
* :class:`~repro.sim.pipeline.CycleAccurateCore` — 3-stage DTEK-V pipeline
  timing model with caches and hazard/flush accounting.
* :class:`~repro.sim.multicore.MultiCoreSystem` — shared-bus multi-core
  system used for the dual-core (and larger) experiments.
"""

from .bus import BusStats, SharedBus
from .cache import Cache, CacheConfig, CacheStats, default_dcache_config, default_icache_config
from .dcu import DCU, SHIFT_SELECTIONS, approx_divide, approximation_error, approximation_error_table
from .functional import (
    ExecRecord,
    FunctionalSimulator,
    MMIO_BASE,
    MMIO_CYCLE_LOW,
    MMIO_HALT,
    MMIO_PRINT_INT,
    MMIO_PUTCHAR,
    SimulationError,
)
from .memory import DEFAULT_MEMORY_MAP, Memory, MemoryError32, MemoryMap, Region
from .multicore import MultiCoreSystem, SystemResult
from .npu import NMConfig, NPU, SPIKE_THRESHOLD_MV, izhikevich_update_raw, izhikevich_update_scalar
from .perfcounters import N_IZH_OPS, PerfCounters
from .pipeline import HAZARD_EX_PRODUCER, HAZARD_LOAD_USE, CoreConfig, CycleAccurateCore

__all__ = [
    "BusStats",
    "SharedBus",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "default_dcache_config",
    "default_icache_config",
    "DCU",
    "SHIFT_SELECTIONS",
    "approx_divide",
    "approximation_error",
    "approximation_error_table",
    "ExecRecord",
    "FunctionalSimulator",
    "SimulationError",
    "MMIO_BASE",
    "MMIO_CYCLE_LOW",
    "MMIO_HALT",
    "MMIO_PRINT_INT",
    "MMIO_PUTCHAR",
    "DEFAULT_MEMORY_MAP",
    "Memory",
    "MemoryError32",
    "MemoryMap",
    "Region",
    "MultiCoreSystem",
    "SystemResult",
    "NMConfig",
    "NPU",
    "SPIKE_THRESHOLD_MV",
    "izhikevich_update_raw",
    "izhikevich_update_scalar",
    "N_IZH_OPS",
    "PerfCounters",
    "CoreConfig",
    "CycleAccurateCore",
    "HAZARD_LOAD_USE",
    "HAZARD_EX_PRODUCER",
]
