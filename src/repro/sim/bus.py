"""Shared-bus model for multi-core IzhiRISC-V systems.

The MAX10 dual-core system connects the cores to the off-chip SDRAM over a
common Avalon bus (paper §VI-A).  The model is a single-master-at-a-time
arbiter: a request occupies the bus for its duration and later requests
wait until the bus is free again.  Round-robin fairness is approximated by
first-come-first-served ordering, which is adequate for the two- to
four-core systems evaluated here; the paper itself notes that larger
systems would need a NoC instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["BusStats", "SharedBus"]


@dataclass
class BusStats:
    """Aggregate counters for one bus instance."""

    requests: int = 0
    busy_cycles: int = 0
    wait_cycles: int = 0
    per_master_requests: Dict[int, int] = field(default_factory=dict)

    @property
    def average_wait(self) -> float:
        """Mean arbitration wait per request in cycles."""
        return self.wait_cycles / self.requests if self.requests else 0.0

    def utilization(self, total_cycles: int) -> float:
        """Bus occupancy as a fraction of ``total_cycles``."""
        return self.busy_cycles / total_cycles if total_cycles else 0.0


class SharedBus:
    """A simple first-come-first-served shared bus.

    Parameters
    ----------
    transfer_cycles:
        Fixed per-transaction overhead added on top of the device latency
        (address phase + arbitration).
    """

    def __init__(self, *, transfer_cycles: int = 2) -> None:
        self.transfer_cycles = transfer_cycles
        self.stats = BusStats()
        self._next_free_cycle = 0

    def request(self, master_id: int, cycle: int, duration: int) -> int:
        """Issue a transaction at ``cycle`` lasting ``duration`` cycles.

        Returns the number of *additional* cycles the master must wait
        before its transaction completes, i.e. arbitration wait plus the
        bus transfer overhead (the device latency itself is part of
        ``duration`` and is charged by the caller).
        """
        total_duration = duration + self.transfer_cycles
        wait = max(0, self._next_free_cycle - cycle)
        self._next_free_cycle = cycle + wait + total_duration
        self.stats.requests += 1
        self.stats.busy_cycles += total_duration
        self.stats.wait_cycles += wait
        self.stats.per_master_requests[master_id] = self.stats.per_master_requests.get(master_id, 0) + 1
        return wait + self.transfer_cycles

    def reset(self) -> None:
        """Clear arbitration state and statistics."""
        self.stats = BusStats()
        self._next_free_cycle = 0
