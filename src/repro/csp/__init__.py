"""Generic spiking constraint-solver subsystem.

Generalises the paper's 729-neuron Winner-Takes-All Sudoku network into a
reusable constraint-satisfaction engine (see ``docs/CSP.md``):

:mod:`repro.csp.graph`
    :class:`ConstraintGraph` — variables × finite domains mapped to
    neuron arrays, pairwise conflict edges mapped to inhibitory synapses,
    unary clamps mapped to clue drives.
:mod:`repro.csp.config`
    :class:`CSPConfig` — the WTA weight / drive / decode parameter set.
:mod:`repro.csp.solver`
    :class:`SpikingCSPSolver` — annealed-noise WTA search with a
    sliding-window decoder; ``solve`` / ``solve_batch`` /
    :func:`solve_instances` run on the exact-mode batched runtime with
    early freezing of solved replicas.
:mod:`repro.csp.portfolio`
    :func:`solve_instances_portfolio` — adaptive restart portfolios:
    freed batch slots are refilled with fresh-seed restart attempts on a
    Luby (or geometric) budget schedule, keeping the fused engine
    saturated on hard instance pools.
:mod:`repro.csp.scenarios`
    Deterministic instance generators: Sudoku, graph k-coloring,
    N-queens and Latin-square completion.

``repro.sudoku.solver.SNNSudokuSolver`` is a thin adapter over this
subsystem and stays bit-identical to its pre-refactor behaviour.
"""

from .config import CSPConfig
from .graph import ConstraintGraph, CSPStatistics, Variable
from .portfolio import PortfolioConfig, derive_attempt_seed, luby, solve_instances_portfolio
from .solver import CSPSolveResult, SpikingCSPSolver, decode_assignment, solve_instances
from .scenarios import available_scenarios, make_instance

__all__ = [
    "CSPConfig",
    "ConstraintGraph",
    "CSPStatistics",
    "Variable",
    "CSPSolveResult",
    "SpikingCSPSolver",
    "PortfolioConfig",
    "derive_attempt_seed",
    "luby",
    "solve_instances_portfolio",
    "decode_assignment",
    "solve_instances",
    "available_scenarios",
    "make_instance",
]
