"""Spiking constraint solver: annealed WTA search on the NPU datapath.

:class:`SpikingCSPSolver` generalises the paper's SNN Sudoku solver
(§VI-C) to any :class:`~repro.csp.graph.ConstraintGraph`: each candidate
``(variable, value)`` neuron receives a weak noisy drive, clamped values a
strong constant drive, and conflicting candidates suppress each other
through inhibitory synapses until a consistent assignment — a solution —
remains stable.  The board state is decoded from a sliding window of
spike counts with recency tie-breaking.

The numerical machinery is *identical* to the Sudoku solver's: the same
fixed-point population configuration (membrane pin, ``h_shift``), the
same annealed-noise expression, the same decode and the same batch loop —
``repro.sudoku.solver.SNNSudokuSolver`` is a thin adapter over this
module and remains bit-identical to its pre-refactor behaviour.

Batched solving comes in two shapes:

* :meth:`SpikingCSPSolver.solve_batch` — many clamp sets on **one** graph
  (the Sudoku many-puzzles case);
* :func:`solve_instances` — many independent instances whose graphs may
  differ (e.g. a sweep of random coloring instances), as long as their
  neuron counts match.

Both stack the replicas into one exact-mode
:class:`~repro.runtime.batch.BatchedNetwork` riding the integer CSR
synapse kernel and a compiled batched drive provider, and *shrink* the
batch as replicas solve (dropping converged instances from the live
state) — every result stays bit-identical to a sequential :meth:`solve`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..snn.fixed_izhikevich import FixedPointPopulation
from ..snn.izhikevich import IzhikevichPopulation
from ..snn.network import SNNNetwork
from .config import CSPConfig
from .graph import ClampsLike, ConstraintGraph

__all__ = ["CSPSolveResult", "SpikingCSPSolver", "decode_assignment", "solve_instances"]


@dataclass
class CSPSolveResult:
    """Outcome of one spiking constraint-solver run.

    A plain ``solve`` is a single attempt; the restart-portfolio engine
    (:mod:`repro.csp.portfolio`) may launch several attempts per instance
    under fresh noise seeds, in which case ``steps`` / ``values`` /
    ``decided`` describe the *winning* (or, unsolved, the last) attempt
    while ``total_spikes`` / ``neuron_updates`` / ``attempt_steps``
    account for the work of every attempt.
    """

    solved: bool
    steps: int
    #: Per-variable assigned value (0 where undecided — see ``decided``).
    values: np.ndarray
    #: Per-variable flag: ``True`` where ``values`` holds a real assignment.
    decided: np.ndarray
    #: Total number of spikes emitted during the run (all attempts).
    total_spikes: int
    #: Number of neuron updates performed (neurons x sub-steps x steps,
    #: summed over all attempts).
    neuron_updates: int
    #: Number of solve attempts launched for this instance.
    attempts: int = 1
    #: Steps consumed by each attempt, launch order (winning or truncated
    #: attempts included); ``sum(attempt_steps) == steps`` for a
    #: single-attempt run.
    attempt_steps: Tuple[int, ...] = ()

    def assignment(self, graph: ConstraintGraph) -> Dict[str, int]:
        """Decided ``{variable name: value}`` entries."""
        return graph.assignment_dict(self.values, self.decided)


def decode_assignment(
    graph: ConstraintGraph,
    window_counts: np.ndarray,
    last_spike_step: np.ndarray,
    clamps: ClampsLike = (),
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode an assignment from recent spike activity.

    Within each variable the value with the most spikes in the sliding
    window wins; ties are broken by the most recent spike (scaled below 1
    by the global recency maximum, exactly as the Sudoku decode does).
    Variables whose candidates have not spiked recently stay undecided;
    clamped variables are always forced to their clamp value.

    Returns ``(values, decided)``; undecided slots of ``values`` hold 0.
    """
    counts = np.asarray(window_counts, dtype=np.float64)
    recency = np.asarray(last_spike_step, dtype=np.float64)
    score = counts + recency / (recency.max() + 1.0) if recency.max() > 0 else counts

    num_vars = graph.num_variables
    values = np.zeros(num_vars, dtype=np.int64)
    shared = graph.homogeneous_domain
    if shared is not None:
        width = len(shared)
        counts2 = counts.reshape(num_vars, width)
        score2 = score.reshape(num_vars, width)
        decided = counts2.max(axis=1) > 0
        winners = np.asarray(shared, dtype=np.int64)[score2.argmax(axis=1)]
        values[decided] = winners[decided]
    else:
        decided = np.zeros(num_vars, dtype=bool)
        for vi in range(num_vars):
            start, end = int(graph.offsets[vi]), int(graph.offsets[vi + 1])
            if counts[start:end].max() > 0:
                decided[vi] = True
                pos = int(score[start:end].argmax())
                values[vi] = graph.variables[vi].domain[pos]
    for vi, value, _ in graph.resolve_clamps(clamps):
        values[vi] = value
        decided[vi] = True
    return values, decided


class SpikingCSPSolver:
    """Solve finite-domain CSPs with an annealed WTA spiking network.

    Parameters
    ----------
    graph:
        The constraint structure (variables, domains, conflict edges).
        Clamps are per-instance and passed to :meth:`solve`.
    config:
        Weights and drive levels (:class:`CSPConfig`).
    backend:
        ``"fixed"`` (default) runs on the NPU fixed-point datapath with
        the membrane pin enabled — the configuration the paper converged
        with; ``"float64"`` runs the double-precision reference dynamics.
    seed:
        Seed of the exploration-noise stream.
    synapses:
        Optional pre-built WTA connectivity to reuse (must come from an
        identical graph and weight configuration).  Solvers sharing one
        synapse object let the batch engine take its shared-matrix fast
        path; by default each solver builds its own.
    """

    def __init__(
        self,
        graph: ConstraintGraph,
        config: Optional[CSPConfig] = None,
        *,
        backend: str = "fixed",
        seed: int = 7,
        synapses=None,
    ) -> None:
        if backend not in ("fixed", "float64"):
            raise ValueError(f"unknown backend {backend!r}")
        self.graph = graph
        self.config = config if config is not None else CSPConfig()
        self.backend = backend
        self.seed = seed
        self.synapses = (
            synapses
            if synapses is not None
            else graph.build_synapses(
                inhibition_weight=self.config.inhibition_weight,
                self_excitation=self.config.self_excitation,
            )
        )

    # ------------------------------------------------------------------ #
    # Network assembly
    # ------------------------------------------------------------------ #
    def build_network(self, clamps: ClampsLike = (), *, seed: Optional[int] = None) -> SNNNetwork:
        """A fresh solver network for one instance (graph + clamps)."""
        cfg = self.config
        num_neurons = self.graph.num_neurons
        a = np.full(num_neurons, cfg.a)
        b = np.full(num_neurons, cfg.b)
        c = np.full(num_neurons, cfg.c)
        d = np.full(num_neurons, cfg.d)
        if self.backend == "fixed":
            population = FixedPointPopulation.from_float_parameters(
                a, b, c, d, h_shift=cfg.h_shift, pin_voltage=cfg.pin_voltage
            )
        else:
            population = IzhikevichPopulation.from_parameters(a, b, c, d)
        rng = np.random.default_rng(self.seed if seed is None else seed)
        drive = self.graph.drive_vector(
            clamps, clamp_drive=cfg.clamp_drive, free_bias=cfg.free_bias
        )
        free_mask = (drive > 0.0) & (drive != cfg.clamp_drive)

        def external(step: int) -> np.ndarray:
            # Annealed exploration noise: each cycle ramps the amplitude
            # from noise_sigma down to anneal_floor * noise_sigma so the
            # network alternates between exploring and settling.
            phase = (step % cfg.anneal_period) / max(cfg.anneal_period, 1)
            amplitude = cfg.noise_sigma * (1.0 - (1.0 - cfg.anneal_floor) * phase)
            noise = amplitude * rng.standard_normal(num_neurons)
            # Clamped values and their silenced siblings get no noise.
            return drive + noise * free_mask

        # Declare the closure's structure so the batch engine can compile
        # a bit-identical vectorised (B, N) provider out of many of them
        # (repro.runtime.drives).  The spec shares this closure's RNG; the
        # compiler clones its state, so whichever of the two ends up being
        # consumed sees the identical stream.
        from ..runtime.drives import AnnealedNoiseSpec

        external.drive_spec = AnnealedNoiseSpec(
            drive=drive,
            free_mask=free_mask,
            rng=rng,
            noise_sigma=cfg.noise_sigma,
            anneal_period=cfg.anneal_period,
            anneal_floor=cfg.anneal_floor,
        )

        return SNNNetwork(
            population=population,
            synapses=self.synapses,
            external_input=external,
            current_mode="decay",
            tau_select=cfg.tau_select,
        )

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        clamps: ClampsLike = (),
        *,
        max_steps: int = 3000,
        check_interval: int = 10,
    ) -> CSPSolveResult:
        """Run the network until the decoded assignment is a solution.

        Parameters
        ----------
        clamps:
            Per-instance unary clamps (``{variable: value}``).
        max_steps:
            Upper bound on 1 ms network steps.
        check_interval:
            How often (in steps) the decoded assignment is tested.
        """
        resolved = self.graph.resolve_clamps(clamps)
        if not self.graph.clamps_consistent(resolved):
            raise ValueError("clamps violate a constraint edge")
        entry = _BatchEntry(self.graph, resolved, self.build_network(resolved))
        return _run_batch(
            [entry], self.config, max_steps=max_steps, check_interval=check_interval
        )[0]

    def solve_batch(
        self,
        clamps_list: Sequence[ClampsLike],
        *,
        max_steps: int = 3000,
        check_interval: int = 10,
    ) -> List[CSPSolveResult]:
        """Solve ``B`` instances of this graph at once on the batch engine.

        All instance networks are stacked into one exact-mode
        :class:`~repro.runtime.batch.BatchedNetwork` (they share the WTA
        connectivity and differ only in drive and noise), so every 1 ms
        step advances the whole batch in fused ``(B, N)`` updates while
        each result stays bit-identical to a sequential :meth:`solve` —
        replicas that solve early are dropped from the live batch while
        the rest keep running.
        """
        entries = []
        for clamps in clamps_list:
            resolved = self.graph.resolve_clamps(clamps)
            if not self.graph.clamps_consistent(resolved):
                raise ValueError("clamps violate a constraint edge")
            entries.append(_BatchEntry(self.graph, resolved, self.build_network(resolved)))
        return _run_batch(entries, self.config, max_steps=max_steps, check_interval=check_interval)


def solve_instances(
    instances: Sequence[Tuple[ConstraintGraph, ClampsLike]],
    *,
    config: Optional[CSPConfig] = None,
    backend: str = "fixed",
    seeds: Optional[Sequence[int]] = None,
    seed: int = 7,
    max_steps: int = 3000,
    check_interval: int = 10,
    checkpoint_dir=None,
    checkpoint_every: Optional[int] = None,
    fault=None,
) -> List[CSPSolveResult]:
    """Solve many ``(graph, clamps)`` instances as one exact-mode batch.

    Unlike :meth:`SpikingCSPSolver.solve_batch`, the graphs may differ
    between instances (e.g. independently generated coloring instances)
    as long as every graph has the same neuron count.  ``seeds`` gives a
    per-instance noise seed.  By default each instance receives an
    *independent* seed spawned from ``seed`` through
    ``numpy.random.SeedSequence`` (the :func:`repro.runtime.sweep.derive_task_seed`
    scheme): historically the default was ``[seed] * len(instances)``,
    which gave every replica the *same* noise stream, so identical
    instances produced identical trajectories and solve-rate sweeps
    measured one sample instead of ``B``.  Pass ``seeds=`` explicitly to
    reproduce old runs (explicit seeds are honoured bit-for-bit,
    including a shared value for every replica).

    With ``checkpoint_dir`` set, the batch loop writes a crash-safe
    snapshot (:mod:`repro.runtime.checkpoint`) every ``checkpoint_every``
    global steps (default ``10 * check_interval``) plus one at
    completion.  Re-calling with the same arguments and directory
    resumes from the newest readable snapshot — killing the process at
    any point and re-running returns results bit-identical to the
    uninterrupted call.  Snapshots are bound to the exact solve
    (instances, seeds, config, backend, budgets) by a content
    fingerprint; a directory holding a different solve's snapshots
    raises :class:`~repro.runtime.checkpoint.CheckpointError`.  ``fault``
    takes a :class:`~repro.runtime.checkpoint.FaultPlan` for the chaos
    suites (deterministic crash/torn-write/corruption injection).
    """
    if not instances:
        return []
    cfg = config if config is not None else CSPConfig()
    if seeds is None:
        from ..runtime.sweep import derive_task_seed

        seeds = [derive_task_seed(seed, i) for i in range(len(instances))]
    if len(seeds) != len(instances):
        raise ValueError("seeds must match the number of instances")
    sizes = {graph.num_neurons for graph, _ in instances}
    if len(sizes) != 1:
        raise ValueError(f"instances have differing neuron counts: {sorted(sizes)}")

    # Instances of the *same* graph object share one synapse build, so
    # the batch engine sees one shared connectivity matrix and takes its
    # shared-sparse fast path instead of stacking B identical copies.
    shared_synapses: Dict[int, object] = {}

    def build_entry(index: int) -> _BatchEntry:
        graph, clamps = instances[index]
        solver = SpikingCSPSolver(
            graph,
            cfg,
            backend=backend,
            seed=int(seeds[index]),
            synapses=shared_synapses.get(id(graph)),
        )
        shared_synapses[id(graph)] = solver.synapses
        resolved = graph.resolve_clamps(clamps)
        if not graph.clamps_consistent(resolved):
            raise ValueError("clamps violate a constraint edge")
        return _BatchEntry(graph, resolved, solver.build_network(resolved))

    if checkpoint_dir is None:
        entries = [build_entry(i) for i in range(len(instances))]
        return _run_batch(entries, cfg, max_steps=max_steps, check_interval=check_interval)
    return _run_batch_checkpointed(
        instances,
        cfg,
        backend=backend,
        seeds=[int(s) for s in seeds],
        build_entry=build_entry,
        max_steps=max_steps,
        check_interval=check_interval,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        fault=fault,
    )


# ---------------------------------------------------------------------- #
# Shared batch loop (bit-identical to the pre-refactor Sudoku loops)
# ---------------------------------------------------------------------- #
@dataclass
class _BatchEntry:
    graph: ConstraintGraph
    clamps: List[Tuple[int, int, int]]
    network: SNNNetwork


class _CSPSlotDecoder:
    """Constraint-graph decode adapter for the runtime slot engine.

    Rows carry their :class:`ConstraintGraph` and resolved clamps; the
    engine hands back the row plus its sliding-window state, and this
    adapter runs the canonical :func:`decode_assignment` + solution
    test.  One instance serves every CSP-layer engine (the decoder is
    stateless).
    """

    def decode(self, row, window_counts, last_spike):
        from ..runtime.slots import SlotDecode

        values, decided = decode_assignment(row.graph, window_counts, last_spike, row.clamps)
        return SlotDecode(
            values=values, decided=decided, solved=row.graph.is_solution(values, decided)
        )


CSP_SLOT_DECODER = _CSPSlotDecoder()


def _run_batch(
    entries: Sequence[_BatchEntry],
    config: CSPConfig,
    *,
    max_steps: int,
    check_interval: int,
) -> List[CSPSolveResult]:
    """Advance all entries together, shrinking the batch as replicas solve.

    This is the Sudoku solver's batch loop, generalised, now expressed
    as the one-shot policy of the shared continuous-batching engine
    (:class:`repro.runtime.slots.SlotEngine`): the per-replica sliding
    windows, recency bookkeeping, decode points and stop conditions are
    the engine's, so a batch of one reproduces the sequential solver
    exactly and a batch of ``B`` reproduces ``B`` sequential runs.

    Three layers of the batched runtime keep the loop fast without
    touching the results (replicas are independent, so none of them can
    observe the others):

    * the annealed-noise closures are compiled into one bit-identical
      vectorised ``(B, N)`` provider (:mod:`repro.runtime.drives`);
    * the WTA weights are small exact Q15.16 values, so propagation runs
      on the integer CSR kernel (:mod:`repro.runtime.batch`);
    * replicas whose decoded assignment is already a solution are
      *dropped from the live batch* (the engine's recomposition over
      :meth:`BatchedNetwork.retain`), so late steps only advance the
      still-unsolved instances instead of merely masking the solved
      ones out of the statistics.

    Degenerate shapes never allocate a batch: an empty entry list has
    nothing to stack, and a non-positive step budget short-circuits in
    :meth:`SlotEngine.run`, leaving every entry to the canonical
    zero-step decode below.
    """
    from ..runtime.slots import OneShotPolicy, SlotEngine, SlotRow

    if not entries:
        return []
    engine = SlotEngine(
        decoder=CSP_SLOT_DECODER,
        window=max(1, config.decode_window),
        check_interval=check_interval,
        extendable=False,
    )
    policy = OneShotPolicy(
        [
            (
                SlotRow(
                    graph=entry.graph, clamps=entry.clamps, budget=max_steps, payload=index
                ),
                entry.network,
            )
            for index, entry in enumerate(entries)
        ]
    )
    engine.run(policy, max_steps=max_steps)

    results: List[Optional[CSPSolveResult]] = [None] * len(entries)
    updates_per_step = engine.updates_per_step or 0
    for outcome in policy.outcomes:
        results[outcome.row.payload] = CSPSolveResult(
            solved=outcome.decode.solved,
            steps=outcome.local_steps,
            values=outcome.decode.values,
            decided=outcome.decode.decided,
            total_spikes=outcome.spikes,
            neuron_updates=outcome.local_steps * updates_per_step,
            attempts=1,
            attempt_steps=(outcome.local_steps,),
        )
    # Entries with no outcome never stepped (max_steps <= 0): the
    # zero-step decode, centralised in the engine's empty window.
    return [
        result if result is not None else _empty_result(entry.graph, entry.clamps)
        for entry, result in zip(entries, results)
    ]


def _solve_fingerprint(
    instances: Sequence[Tuple[ConstraintGraph, ClampsLike]],
    seeds: Sequence[int],
    config: CSPConfig,
    backend: str,
    max_steps: int,
    check_interval: int,
) -> str:
    """Content identity binding a checkpoint to one exact solve call."""
    import hashlib
    import pickle

    from ..runtime.cache import derive_cache_key

    payload = {
        "instances": [
            (graph, sorted((int(v), int(val), int(n)) for v, val, n in graph.resolve_clamps(c)))
            for graph, c in instances
        ],
        "seeds": [int(s) for s in seeds],
        "config": config,
        "backend": backend,
        "max_steps": int(max_steps),
        "check_interval": int(check_interval),
    }
    key = derive_cache_key("csp-checkpoint", payload)
    if key is not None:
        return key
    # No canonical token for some graph payload: fall back to a pickle
    # digest (deterministic for the dataclass/ndarray graphs in use).
    return hashlib.sha256(pickle.dumps(payload)).hexdigest()


def _run_batch_checkpointed(
    instances: Sequence[Tuple[ConstraintGraph, ClampsLike]],
    config: CSPConfig,
    *,
    backend: str,
    seeds: Sequence[int],
    build_entry,
    max_steps: int,
    check_interval: int,
    checkpoint_dir,
    checkpoint_every: Optional[int],
    fault,
) -> List[CSPSolveResult]:
    """The batch loop of :func:`_run_batch` with crash-safe snapshots.

    Runs the same one-shot policy over the same engine, but every
    ``checkpoint_every`` global steps (and once at completion) the full
    engine state plus the already-retired results land in a
    :class:`~repro.runtime.checkpoint.CheckpointStore`.  On entry the
    newest readable snapshot is restored — networks for still-live rows
    are rebuilt from their (graph, clamps, seed) descriptors and
    overwritten with the snapshot state, so the continued trajectory is
    bit-identical to the uninterrupted run's.
    """
    import os

    from ..runtime.checkpoint import CheckpointError, CheckpointStore, FaultPlan
    from ..runtime.slots import OneShotPolicy, SlotEngine, SlotRow

    if max_steps <= 0:
        return [_empty_result(graph, clamps) for graph, clamps in instances]

    every = int(checkpoint_every) if checkpoint_every is not None else 10 * int(check_interval)
    if every <= 0:
        raise ValueError("checkpoint_every must be positive")
    fingerprint = _solve_fingerprint(instances, seeds, config, backend, max_steps, check_interval)
    store = CheckpointStore(checkpoint_dir, kind="csp-solve", fault=fault)

    engine = SlotEngine(
        decoder=CSP_SLOT_DECODER,
        window=max(1, config.decode_window),
        check_interval=check_interval,
        extendable=False,
    )
    policy = OneShotPolicy([])
    completed: Dict[int, CSPSolveResult] = {}

    latest = store.load_latest()
    if latest is not None:
        _, payload = latest
        if payload.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"checkpoint in {os.fspath(checkpoint_dir)} belongs to a different solve "
                "(instances, seeds, config, backend or budgets changed)"
            )
        completed = dict(payload["completed"])
        row_states = payload["engine"]["rows"]
        networks = [build_entry(int(rs["payload"])).network for rs in row_states]
        engine.restore_state(payload["engine"], networks)
    else:
        admissions = []
        for index in range(len(instances)):
            entry = build_entry(index)
            admissions.append(
                (
                    SlotRow(
                        graph=entry.graph, clamps=entry.clamps, budget=max_steps, payload=index
                    ),
                    entry.network,
                )
            )
        engine.recompose([], admissions)

    def drain_outcomes() -> None:
        updates_per_step = engine.updates_per_step or 0
        while policy.outcomes:
            outcome = policy.outcomes.pop()
            completed[int(outcome.row.payload)] = CSPSolveResult(
                solved=outcome.decode.solved,
                steps=outcome.local_steps,
                values=outcome.decode.values,
                decided=outcome.decode.decided,
                total_spikes=outcome.spikes,
                neuron_updates=outcome.local_steps * updates_per_step,
                attempts=1,
                attempt_steps=(outcome.local_steps,),
            )

    def save() -> None:
        store.save(
            engine.global_step,
            {
                "fingerprint": fingerprint,
                "engine": engine.export_state(),
                "completed": dict(completed),
            },
        )

    while engine.rows and engine.global_step < max_steps:
        checkpoint = engine.step()
        if checkpoint is not None:
            decision = policy.on_checkpoint(checkpoint)
            engine.recompose(decision.keep, decision.admissions)
            drain_outcomes()
        if engine.global_step % every == 0:
            save()
        if fault is not None and fault.should_crash(engine.global_step):
            os._exit(FaultPlan.CRASH_EXIT_CODE)
    drain_outcomes()
    save()

    return [
        completed[i] if i in completed else _empty_result(graph, clamps)
        for i, (graph, clamps) in enumerate(instances)
    ]


def _empty_decode(graph: ConstraintGraph, clamps: ClampsLike) -> Tuple[np.ndarray, np.ndarray]:
    """Decode of the canonical zero-step window (clamps only)."""
    from ..runtime.slots import SlotEngine

    window_counts, last_spike = SlotEngine.empty_window(graph.num_neurons)
    return decode_assignment(graph, window_counts, last_spike, clamps)


def _empty_result(graph: ConstraintGraph, clamps: ClampsLike) -> CSPSolveResult:
    """The zero-step result: decode of an empty window (clamps only).

    Bit-identical to what the batch loop produces when the step budget is
    exhausted before the first step — all-zero spike counts, so only
    clamped variables decode (and a fully clamped consistent instance
    counts as solved).  The window itself comes from
    :meth:`repro.runtime.slots.SlotEngine.empty_window`, the single
    owner of the zero-step semantics shared with the portfolio and
    serve layers.
    """
    values, decided = _empty_decode(graph, clamps)
    return CSPSolveResult(
        solved=graph.is_solution(values, decided),
        steps=0,
        values=values,
        decided=decided,
        total_spikes=0,
        neuron_updates=0,
        attempts=1,
        attempt_steps=(0,),
    )
