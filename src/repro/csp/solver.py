"""Spiking constraint solver: annealed WTA search on the NPU datapath.

:class:`SpikingCSPSolver` generalises the paper's SNN Sudoku solver
(§VI-C) to any :class:`~repro.csp.graph.ConstraintGraph`: each candidate
``(variable, value)`` neuron receives a weak noisy drive, clamped values a
strong constant drive, and conflicting candidates suppress each other
through inhibitory synapses until a consistent assignment — a solution —
remains stable.  The board state is decoded from a sliding window of
spike counts with recency tie-breaking.

The numerical machinery is *identical* to the Sudoku solver's: the same
fixed-point population configuration (membrane pin, ``h_shift``), the
same annealed-noise expression, the same decode and the same batch loop —
``repro.sudoku.solver.SNNSudokuSolver`` is a thin adapter over this
module and remains bit-identical to its pre-refactor behaviour.

Batched solving comes in two shapes:

* :meth:`SpikingCSPSolver.solve_batch` — many clamp sets on **one** graph
  (the Sudoku many-puzzles case);
* :func:`solve_instances` — many independent instances whose graphs may
  differ (e.g. a sweep of random coloring instances), as long as their
  neuron counts match.

Both stack the replicas into one exact-mode
:class:`~repro.runtime.batch.BatchedNetwork` riding the integer CSR
synapse kernel and a compiled batched drive provider, and *shrink* the
batch as replicas solve (dropping converged instances from the live
state) — every result stays bit-identical to a sequential :meth:`solve`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..snn.fixed_izhikevich import FixedPointPopulation
from ..snn.izhikevich import IzhikevichPopulation
from ..snn.network import SNNNetwork
from .config import CSPConfig
from .graph import ClampsLike, ConstraintGraph

__all__ = ["CSPSolveResult", "SpikingCSPSolver", "decode_assignment", "solve_instances"]


@dataclass
class CSPSolveResult:
    """Outcome of one spiking constraint-solver run.

    A plain ``solve`` is a single attempt; the restart-portfolio engine
    (:mod:`repro.csp.portfolio`) may launch several attempts per instance
    under fresh noise seeds, in which case ``steps`` / ``values`` /
    ``decided`` describe the *winning* (or, unsolved, the last) attempt
    while ``total_spikes`` / ``neuron_updates`` / ``attempt_steps``
    account for the work of every attempt.
    """

    solved: bool
    steps: int
    #: Per-variable assigned value (0 where undecided — see ``decided``).
    values: np.ndarray
    #: Per-variable flag: ``True`` where ``values`` holds a real assignment.
    decided: np.ndarray
    #: Total number of spikes emitted during the run (all attempts).
    total_spikes: int
    #: Number of neuron updates performed (neurons x sub-steps x steps,
    #: summed over all attempts).
    neuron_updates: int
    #: Number of solve attempts launched for this instance.
    attempts: int = 1
    #: Steps consumed by each attempt, launch order (winning or truncated
    #: attempts included); ``sum(attempt_steps) == steps`` for a
    #: single-attempt run.
    attempt_steps: Tuple[int, ...] = ()

    def assignment(self, graph: ConstraintGraph) -> Dict[str, int]:
        """Decided ``{variable name: value}`` entries."""
        return graph.assignment_dict(self.values, self.decided)


def decode_assignment(
    graph: ConstraintGraph,
    window_counts: np.ndarray,
    last_spike_step: np.ndarray,
    clamps: ClampsLike = (),
) -> Tuple[np.ndarray, np.ndarray]:
    """Decode an assignment from recent spike activity.

    Within each variable the value with the most spikes in the sliding
    window wins; ties are broken by the most recent spike (scaled below 1
    by the global recency maximum, exactly as the Sudoku decode does).
    Variables whose candidates have not spiked recently stay undecided;
    clamped variables are always forced to their clamp value.

    Returns ``(values, decided)``; undecided slots of ``values`` hold 0.
    """
    counts = np.asarray(window_counts, dtype=np.float64)
    recency = np.asarray(last_spike_step, dtype=np.float64)
    score = counts + recency / (recency.max() + 1.0) if recency.max() > 0 else counts

    num_vars = graph.num_variables
    values = np.zeros(num_vars, dtype=np.int64)
    shared = graph.homogeneous_domain
    if shared is not None:
        width = len(shared)
        counts2 = counts.reshape(num_vars, width)
        score2 = score.reshape(num_vars, width)
        decided = counts2.max(axis=1) > 0
        winners = np.asarray(shared, dtype=np.int64)[score2.argmax(axis=1)]
        values[decided] = winners[decided]
    else:
        decided = np.zeros(num_vars, dtype=bool)
        for vi in range(num_vars):
            start, end = int(graph.offsets[vi]), int(graph.offsets[vi + 1])
            if counts[start:end].max() > 0:
                decided[vi] = True
                pos = int(score[start:end].argmax())
                values[vi] = graph.variables[vi].domain[pos]
    for vi, value, _ in graph.resolve_clamps(clamps):
        values[vi] = value
        decided[vi] = True
    return values, decided


class SpikingCSPSolver:
    """Solve finite-domain CSPs with an annealed WTA spiking network.

    Parameters
    ----------
    graph:
        The constraint structure (variables, domains, conflict edges).
        Clamps are per-instance and passed to :meth:`solve`.
    config:
        Weights and drive levels (:class:`CSPConfig`).
    backend:
        ``"fixed"`` (default) runs on the NPU fixed-point datapath with
        the membrane pin enabled — the configuration the paper converged
        with; ``"float64"`` runs the double-precision reference dynamics.
    seed:
        Seed of the exploration-noise stream.
    synapses:
        Optional pre-built WTA connectivity to reuse (must come from an
        identical graph and weight configuration).  Solvers sharing one
        synapse object let the batch engine take its shared-matrix fast
        path; by default each solver builds its own.
    """

    def __init__(
        self,
        graph: ConstraintGraph,
        config: Optional[CSPConfig] = None,
        *,
        backend: str = "fixed",
        seed: int = 7,
        synapses=None,
    ) -> None:
        if backend not in ("fixed", "float64"):
            raise ValueError(f"unknown backend {backend!r}")
        self.graph = graph
        self.config = config if config is not None else CSPConfig()
        self.backend = backend
        self.seed = seed
        self.synapses = (
            synapses
            if synapses is not None
            else graph.build_synapses(
                inhibition_weight=self.config.inhibition_weight,
                self_excitation=self.config.self_excitation,
            )
        )

    # ------------------------------------------------------------------ #
    # Network assembly
    # ------------------------------------------------------------------ #
    def build_network(self, clamps: ClampsLike = (), *, seed: Optional[int] = None) -> SNNNetwork:
        """A fresh solver network for one instance (graph + clamps)."""
        cfg = self.config
        num_neurons = self.graph.num_neurons
        a = np.full(num_neurons, cfg.a)
        b = np.full(num_neurons, cfg.b)
        c = np.full(num_neurons, cfg.c)
        d = np.full(num_neurons, cfg.d)
        if self.backend == "fixed":
            population = FixedPointPopulation.from_float_parameters(
                a, b, c, d, h_shift=cfg.h_shift, pin_voltage=cfg.pin_voltage
            )
        else:
            population = IzhikevichPopulation.from_parameters(a, b, c, d)
        rng = np.random.default_rng(self.seed if seed is None else seed)
        drive = self.graph.drive_vector(
            clamps, clamp_drive=cfg.clamp_drive, free_bias=cfg.free_bias
        )
        free_mask = (drive > 0.0) & (drive != cfg.clamp_drive)

        def external(step: int) -> np.ndarray:
            # Annealed exploration noise: each cycle ramps the amplitude
            # from noise_sigma down to anneal_floor * noise_sigma so the
            # network alternates between exploring and settling.
            phase = (step % cfg.anneal_period) / max(cfg.anneal_period, 1)
            amplitude = cfg.noise_sigma * (1.0 - (1.0 - cfg.anneal_floor) * phase)
            noise = amplitude * rng.standard_normal(num_neurons)
            # Clamped values and their silenced siblings get no noise.
            return drive + noise * free_mask

        # Declare the closure's structure so the batch engine can compile
        # a bit-identical vectorised (B, N) provider out of many of them
        # (repro.runtime.drives).  The spec shares this closure's RNG; the
        # compiler clones its state, so whichever of the two ends up being
        # consumed sees the identical stream.
        from ..runtime.drives import AnnealedNoiseSpec

        external.drive_spec = AnnealedNoiseSpec(
            drive=drive,
            free_mask=free_mask,
            rng=rng,
            noise_sigma=cfg.noise_sigma,
            anneal_period=cfg.anneal_period,
            anneal_floor=cfg.anneal_floor,
        )

        return SNNNetwork(
            population=population,
            synapses=self.synapses,
            external_input=external,
            current_mode="decay",
            tau_select=cfg.tau_select,
        )

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        clamps: ClampsLike = (),
        *,
        max_steps: int = 3000,
        check_interval: int = 10,
    ) -> CSPSolveResult:
        """Run the network until the decoded assignment is a solution.

        Parameters
        ----------
        clamps:
            Per-instance unary clamps (``{variable: value}``).
        max_steps:
            Upper bound on 1 ms network steps.
        check_interval:
            How often (in steps) the decoded assignment is tested.
        """
        resolved = self.graph.resolve_clamps(clamps)
        if not self.graph.clamps_consistent(resolved):
            raise ValueError("clamps violate a constraint edge")
        entry = _BatchEntry(self.graph, resolved, self.build_network(resolved))
        return _run_batch(
            [entry], self.config, max_steps=max_steps, check_interval=check_interval
        )[0]

    def solve_batch(
        self,
        clamps_list: Sequence[ClampsLike],
        *,
        max_steps: int = 3000,
        check_interval: int = 10,
    ) -> List[CSPSolveResult]:
        """Solve ``B`` instances of this graph at once on the batch engine.

        All instance networks are stacked into one exact-mode
        :class:`~repro.runtime.batch.BatchedNetwork` (they share the WTA
        connectivity and differ only in drive and noise), so every 1 ms
        step advances the whole batch in fused ``(B, N)`` updates while
        each result stays bit-identical to a sequential :meth:`solve` —
        replicas that solve early are dropped from the live batch while
        the rest keep running.
        """
        entries = []
        for clamps in clamps_list:
            resolved = self.graph.resolve_clamps(clamps)
            if not self.graph.clamps_consistent(resolved):
                raise ValueError("clamps violate a constraint edge")
            entries.append(_BatchEntry(self.graph, resolved, self.build_network(resolved)))
        return _run_batch(entries, self.config, max_steps=max_steps, check_interval=check_interval)


def solve_instances(
    instances: Sequence[Tuple[ConstraintGraph, ClampsLike]],
    *,
    config: Optional[CSPConfig] = None,
    backend: str = "fixed",
    seeds: Optional[Sequence[int]] = None,
    seed: int = 7,
    max_steps: int = 3000,
    check_interval: int = 10,
) -> List[CSPSolveResult]:
    """Solve many ``(graph, clamps)`` instances as one exact-mode batch.

    Unlike :meth:`SpikingCSPSolver.solve_batch`, the graphs may differ
    between instances (e.g. independently generated coloring instances)
    as long as every graph has the same neuron count.  ``seeds`` gives a
    per-instance noise seed.  By default each instance receives an
    *independent* seed spawned from ``seed`` through
    ``numpy.random.SeedSequence`` (the :func:`repro.runtime.sweep.derive_task_seed`
    scheme): historically the default was ``[seed] * len(instances)``,
    which gave every replica the *same* noise stream, so identical
    instances produced identical trajectories and solve-rate sweeps
    measured one sample instead of ``B``.  Pass ``seeds=`` explicitly to
    reproduce old runs (explicit seeds are honoured bit-for-bit,
    including a shared value for every replica).
    """
    if not instances:
        return []
    cfg = config if config is not None else CSPConfig()
    if seeds is None:
        from ..runtime.sweep import derive_task_seed

        seeds = [derive_task_seed(seed, i) for i in range(len(instances))]
    if len(seeds) != len(instances):
        raise ValueError("seeds must match the number of instances")
    sizes = {graph.num_neurons for graph, _ in instances}
    if len(sizes) != 1:
        raise ValueError(f"instances have differing neuron counts: {sorted(sizes)}")
    entries = []
    # Instances of the *same* graph object share one synapse build, so
    # the batch engine sees one shared connectivity matrix and takes its
    # shared-sparse fast path instead of stacking B identical copies.
    shared_synapses: Dict[int, object] = {}
    for (graph, clamps), instance_seed in zip(instances, seeds):
        solver = SpikingCSPSolver(
            graph,
            cfg,
            backend=backend,
            seed=int(instance_seed),
            synapses=shared_synapses.get(id(graph)),
        )
        shared_synapses[id(graph)] = solver.synapses
        resolved = graph.resolve_clamps(clamps)
        if not graph.clamps_consistent(resolved):
            raise ValueError("clamps violate a constraint edge")
        entries.append(_BatchEntry(graph, resolved, solver.build_network(resolved)))
    return _run_batch(entries, cfg, max_steps=max_steps, check_interval=check_interval)


# ---------------------------------------------------------------------- #
# Shared batch loop (bit-identical to the pre-refactor Sudoku loops)
# ---------------------------------------------------------------------- #
@dataclass
class _BatchEntry:
    graph: ConstraintGraph
    clamps: List[Tuple[int, int, int]]
    network: SNNNetwork


class _CSPSlotDecoder:
    """Constraint-graph decode adapter for the runtime slot engine.

    Rows carry their :class:`ConstraintGraph` and resolved clamps; the
    engine hands back the row plus its sliding-window state, and this
    adapter runs the canonical :func:`decode_assignment` + solution
    test.  One instance serves every CSP-layer engine (the decoder is
    stateless).
    """

    def decode(self, row, window_counts, last_spike):
        from ..runtime.slots import SlotDecode

        values, decided = decode_assignment(row.graph, window_counts, last_spike, row.clamps)
        return SlotDecode(
            values=values, decided=decided, solved=row.graph.is_solution(values, decided)
        )


CSP_SLOT_DECODER = _CSPSlotDecoder()


def _run_batch(
    entries: Sequence[_BatchEntry],
    config: CSPConfig,
    *,
    max_steps: int,
    check_interval: int,
) -> List[CSPSolveResult]:
    """Advance all entries together, shrinking the batch as replicas solve.

    This is the Sudoku solver's batch loop, generalised, now expressed
    as the one-shot policy of the shared continuous-batching engine
    (:class:`repro.runtime.slots.SlotEngine`): the per-replica sliding
    windows, recency bookkeeping, decode points and stop conditions are
    the engine's, so a batch of one reproduces the sequential solver
    exactly and a batch of ``B`` reproduces ``B`` sequential runs.

    Three layers of the batched runtime keep the loop fast without
    touching the results (replicas are independent, so none of them can
    observe the others):

    * the annealed-noise closures are compiled into one bit-identical
      vectorised ``(B, N)`` provider (:mod:`repro.runtime.drives`);
    * the WTA weights are small exact Q15.16 values, so propagation runs
      on the integer CSR kernel (:mod:`repro.runtime.batch`);
    * replicas whose decoded assignment is already a solution are
      *dropped from the live batch* (the engine's recomposition over
      :meth:`BatchedNetwork.retain`), so late steps only advance the
      still-unsolved instances instead of merely masking the solved
      ones out of the statistics.

    Degenerate shapes never allocate a batch: an empty entry list has
    nothing to stack, and a non-positive step budget short-circuits in
    :meth:`SlotEngine.run`, leaving every entry to the canonical
    zero-step decode below.
    """
    from ..runtime.slots import OneShotPolicy, SlotEngine, SlotRow

    if not entries:
        return []
    engine = SlotEngine(
        decoder=CSP_SLOT_DECODER,
        window=max(1, config.decode_window),
        check_interval=check_interval,
        extendable=False,
    )
    policy = OneShotPolicy(
        [
            (
                SlotRow(
                    graph=entry.graph, clamps=entry.clamps, budget=max_steps, payload=index
                ),
                entry.network,
            )
            for index, entry in enumerate(entries)
        ]
    )
    engine.run(policy, max_steps=max_steps)

    results: List[Optional[CSPSolveResult]] = [None] * len(entries)
    updates_per_step = engine.updates_per_step or 0
    for outcome in policy.outcomes:
        results[outcome.row.payload] = CSPSolveResult(
            solved=outcome.decode.solved,
            steps=outcome.local_steps,
            values=outcome.decode.values,
            decided=outcome.decode.decided,
            total_spikes=outcome.spikes,
            neuron_updates=outcome.local_steps * updates_per_step,
            attempts=1,
            attempt_steps=(outcome.local_steps,),
        )
    # Entries with no outcome never stepped (max_steps <= 0): the
    # zero-step decode, centralised in the engine's empty window.
    return [
        result if result is not None else _empty_result(entry.graph, entry.clamps)
        for entry, result in zip(entries, results)
    ]


def _empty_decode(graph: ConstraintGraph, clamps: ClampsLike) -> Tuple[np.ndarray, np.ndarray]:
    """Decode of the canonical zero-step window (clamps only)."""
    from ..runtime.slots import SlotEngine

    window_counts, last_spike = SlotEngine.empty_window(graph.num_neurons)
    return decode_assignment(graph, window_counts, last_spike, clamps)


def _empty_result(graph: ConstraintGraph, clamps: ClampsLike) -> CSPSolveResult:
    """The zero-step result: decode of an empty window (clamps only).

    Bit-identical to what the batch loop produces when the step budget is
    exhausted before the first step — all-zero spike counts, so only
    clamped variables decode (and a fully clamped consistent instance
    counts as solved).  The window itself comes from
    :meth:`repro.runtime.slots.SlotEngine.empty_window`, the single
    owner of the zero-step semantics shared with the portfolio and
    serve layers.
    """
    values, decided = _empty_decode(graph, clamps)
    return CSPSolveResult(
        solved=graph.is_solution(values, decided),
        steps=0,
        values=values,
        decided=decided,
        total_spikes=0,
        neuron_updates=0,
        attempts=1,
        attempt_steps=(0,),
    )
