"""Adaptive restart portfolios for the spiking constraint solver.

The annealed WTA search (paper §VI-C) is a Las-Vegas algorithm: whether
an instance solves within a step budget depends heavily on the noise
stream, and the runtime distribution is heavy-tailed — a hard instance
can stall for the whole budget under one seed yet fall in a few hundred
steps under another.  Fixed-seed :func:`~repro.csp.solver.solve_instances`
pays that tail twice: the stalled replica burns its entire budget, and
the batch capacity freed by early solvers (:meth:`BatchedNetwork.retain`)
sits idle.

:func:`solve_instances_portfolio` keeps the fused batch saturated
instead.  All instances start as one exact-mode batch, and whenever
replicas finish — solved, or out of their per-attempt step budget — the
freed slots are refilled with *restart attempts* of still-unsolved
instances: fresh ``SeedSequence``-derived noise seeds, step budgets from
a Luby (or geometric) schedule, and optionally diversified anneal
configurations.  Several attempts of one instance may race; the first
solution wins and the rest are dropped at the next check point.

Determinism and exactness:

* every attempt is **bit-identical** to a standalone
  ``SpikingCSPSolver(graph, cfg, seed=attempt_seed).solve(clamps,
  max_steps=budget)`` run — attempts keep their own *local* step counter
  (driving the anneal phase, sliding-window decode and recency
  bookkeeping), so stacking an attempt into a half-finished batch cannot
  change its trajectory;
* attempt seeds derive from ``(portfolio seed, instance index, attempt
  index)`` through ``SeedSequence`` spawn keys, so the schedule is
  reproducible regardless of which slot an attempt lands in;
* with restarts disabled the engine runs exactly one full-budget attempt
  per instance and is bit-identical to ``solve_instances``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .config import CSPConfig
from .graph import ClampsLike, ConstraintGraph
from .solver import CSPSolveResult, SpikingCSPSolver, _empty_result, decode_assignment

__all__ = [
    "PortfolioConfig",
    "derive_attempt_seed",
    "luby",
    "solve_instances_portfolio",
]

#: Config fields an anneal variant may override: drive-level parameters
#: only, so every attempt shares the batch's connectivity, population
#: configuration and decode window.
_VARIANT_FIELDS = frozenset({"noise_sigma", "anneal_period", "anneal_floor"})


def luby(index: int) -> int:
    """The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, ... (1-based index).

    The universal strategy of Luby, Sinclair and Zuckerman: restarts
    scheduled by this sequence are within a logarithmic factor of the
    optimal (unknown) fixed cutoff for any Las-Vegas runtime
    distribution.
    """
    if index < 1:
        raise ValueError("luby index is 1-based")
    k = index.bit_length()
    while True:
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        if index < (1 << k) - 1:
            k -= 1
            index -= (1 << k) - 1
            k = index.bit_length()
        else:  # pragma: no cover - unreachable (k = bit_length bound)
            k += 1


def derive_attempt_seed(portfolio_seed: int, instance: int, attempt: int) -> int:
    """Deterministic, well-mixed noise seed for one portfolio attempt.

    Spawns ``SeedSequence(portfolio_seed, spawn_key=(instance, attempt))``
    — the same scheme as :func:`repro.runtime.sweep.derive_task_seed`,
    keyed by both coordinates so neighbouring attempts and instances get
    statistically independent streams.
    """
    sequence = np.random.SeedSequence(int(portfolio_seed), spawn_key=(int(instance), int(attempt)))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


@dataclass(frozen=True)
class PortfolioConfig:
    """Restart schedule and diversification policy of a solve portfolio."""

    #: ``"luby"`` (default), ``"geometric"`` or ``"fixed"`` per-attempt
    #: step budgets: ``base_budget * luby(k)``, ``base_budget *
    #: growth**(k-1)`` or ``base_budget`` for attempt ``k``.
    schedule: str = "luby"
    #: Steps allotted to a first attempt (the schedule's unit).
    base_budget: int = 400
    #: Growth factor of the geometric schedule.
    growth: float = 2.0
    #: Maximum attempts per instance (0 = unbounded within the run's
    #: global step budget).
    max_attempts: int = 0
    #: Maximum *concurrent* attempts per instance (0 = unbounded — freed
    #: slots always refill while any instance is unsolved).
    max_parallel: int = 2
    #: Root seed of the attempt-seed derivation (see
    #: :func:`derive_attempt_seed`).
    seed: int = 0
    #: Optional drive-parameter overrides cycled over restart attempts:
    #: attempt 1 always runs the base config; attempt ``k >= 2`` applies
    #: ``anneal_variants[(k - 2) % len]`` (each a mapping over
    #: ``noise_sigma`` / ``anneal_period`` / ``anneal_floor``).
    anneal_variants: Tuple[Mapping[str, float], ...] = ()
    #: ``False`` runs exactly one full-budget attempt per instance —
    #: bit-identical to :func:`repro.csp.solver.solve_instances`.
    restarts: bool = True

    def __post_init__(self) -> None:
        if self.schedule not in ("luby", "geometric", "fixed"):
            raise ValueError(f"unknown restart schedule {self.schedule!r}")
        if self.base_budget < 1:
            raise ValueError("base_budget must be positive")
        if self.schedule == "geometric" and self.growth < 1.0:
            raise ValueError("geometric growth must be >= 1")
        for variant in self.anneal_variants:
            unknown = set(variant) - _VARIANT_FIELDS
            if unknown:
                raise ValueError(
                    f"anneal variants may only override {sorted(_VARIANT_FIELDS)}; "
                    f"got {sorted(unknown)}"
                )

    def attempt_budget(self, attempt: int) -> int:
        """Step budget of the ``attempt``-th (1-based) attempt."""
        if self.schedule == "luby":
            return self.base_budget * luby(attempt)
        if self.schedule == "geometric":
            return int(round(self.base_budget * self.growth ** (attempt - 1)))
        return self.base_budget

    def attempt_config(self, base: CSPConfig, attempt: int) -> CSPConfig:
        """The (possibly diversified) solver config of one attempt."""
        if attempt < 2 or not self.anneal_variants:
            return base
        variant = self.anneal_variants[(attempt - 2) % len(self.anneal_variants)]
        return base.with_updates(**dict(variant))


@dataclass
class _Attempt:
    """One live batch row: an attempt of one instance."""

    instance: int
    attempt: int  # 1-based per-instance attempt index
    budget: int  # local step budget
    offset: int  # global steps completed when the attempt started


@dataclass
class _InstanceState:
    """Per-instance scheduling and accounting state."""

    graph: ConstraintGraph
    clamps: list
    solved: bool = False
    launched: int = 0
    live: int = 0
    attempt_steps: List[int] = field(default_factory=list)
    total_spikes: int = 0
    #: Winning (or, unsolved, most recent) decode snapshot.
    steps: int = 0
    values: Optional[np.ndarray] = None
    decided: Optional[np.ndarray] = None


def solve_instances_portfolio(
    instances: Sequence[Tuple[ConstraintGraph, ClampsLike]],
    *,
    config: Optional[CSPConfig] = None,
    portfolio: Optional[PortfolioConfig] = None,
    backend: str = "fixed",
    seeds: Optional[Sequence[int]] = None,
    max_steps: int = 3000,
    check_interval: int = 10,
    slots: Optional[int] = None,
) -> List[CSPSolveResult]:
    """Solve instances with an adaptive restart portfolio on one batch.

    The drop-in counterpart of :func:`repro.csp.solver.solve_instances`
    with restart refilling: the global step budget ``max_steps`` bounds
    the run's wall clock (every live replica advances once per global
    step), while each attempt is additionally bounded by its schedule
    budget.  See the module docstring for the scheduling policy.

    Parameters
    ----------
    instances:
        ``(graph, clamps)`` pairs; all graphs must share one neuron count.
    config / portfolio:
        Solver weights (:class:`CSPConfig`) and restart policy
        (:class:`PortfolioConfig`).
    seeds:
        Optional explicit noise seeds of each instance's *first* attempt
        (restart attempts always derive theirs from the portfolio seed).
        With ``portfolio.restarts`` false this makes the run bit-identical
        to ``solve_instances(instances, seeds=seeds, ...)``.
    max_steps:
        Global step budget shared by the whole batch.
    slots:
        Number of parallel batch rows to keep saturated (default: one per
        instance).

    Returns
    -------
    One :class:`CSPSolveResult` per instance, in order, with
    ``attempts`` / ``attempt_steps`` / ``neuron_updates`` accounting for
    every attempt launched for that instance.
    """
    if not instances:
        return []
    cfg = config if config is not None else CSPConfig()
    pcfg = portfolio if portfolio is not None else PortfolioConfig()
    if seeds is not None and len(seeds) != len(instances):
        raise ValueError("seeds must match the number of instances")
    sizes = {graph.num_neurons for graph, _ in instances}
    if len(sizes) != 1:
        raise ValueError(f"instances have differing neuron counts: {sorted(sizes)}")
    num_neurons = next(iter(sizes))
    num_slots = len(instances) if slots is None else max(1, int(slots))

    states: List[_InstanceState] = []
    for graph, clamps in instances:
        resolved = graph.resolve_clamps(clamps)
        if not graph.clamps_consistent(resolved):
            raise ValueError("clamps violate a constraint edge")
        states.append(_InstanceState(graph=graph, clamps=resolved))
    if max_steps <= 0:
        return [_empty_result(state.graph, state.clamps) for state in states]

    # Instances sharing one graph object share one synapse build so the
    # batch engine keeps its shared-matrix fast path across refills.
    shared_synapses: Dict[int, object] = {}

    def build_attempt(instance: int, global_step: int) -> Tuple[_Attempt, object]:
        """A fresh attempt network for ``instance``, starting after ``global_step``."""
        state = states[instance]
        state.launched += 1
        attempt_index = state.launched
        if attempt_index == 1 and seeds is not None:
            attempt_seed = int(seeds[instance])
        else:
            attempt_seed = derive_attempt_seed(pcfg.seed, instance, attempt_index)
        if pcfg.restarts:
            budget = min(pcfg.attempt_budget(attempt_index), max_steps)
        else:
            budget = max_steps
        attempt_cfg = pcfg.attempt_config(cfg, attempt_index)
        solver = SpikingCSPSolver(
            state.graph,
            attempt_cfg,
            backend=backend,
            seed=attempt_seed,
            synapses=shared_synapses.get(id(state.graph)),
        )
        shared_synapses[id(state.graph)] = solver.synapses
        network = solver.build_network(state.clamps)
        # Stamp the attempt's start offset into the drive spec so the
        # batched provider replays the standalone anneal phase sequence.
        network.external_input.drive_spec.step_offset = global_step
        state.live += 1
        attempt = _Attempt(
            instance=instance, attempt=attempt_index, budget=budget, offset=global_step
        )
        return attempt, network

    def eligible(instance: int) -> bool:
        state = states[instance]
        if state.solved:
            return False
        if pcfg.max_attempts and state.launched >= pcfg.max_attempts:
            return False
        if pcfg.max_parallel and state.live >= pcfg.max_parallel:
            return False
        return True

    def pick_refills(count: int, global_step: int) -> List[Tuple[_Attempt, object]]:
        """Launch up to ``count`` attempts for unsolved instances.

        Round-robin by launched-attempt count (fewest first, ties by
        instance index) — deterministic, and it spreads the freed
        capacity over the whole unsolved pool before racing extra
        attempts on any one instance.  With restarts disabled only
        *first* attempts are dispatched (instances beyond the initial
        wave still get their one attempt when a slot frees up; a late
        wave sees whatever global steps remain).
        """
        if global_step >= max_steps:
            return []
        launched: List[Tuple[_Attempt, object]] = []
        while len(launched) < count:
            candidates = [
                i
                for i in range(len(states))
                if eligible(i) and (pcfg.restarts or states[i].launched == 0)
            ]
            if not candidates:
                break
            chosen = min(candidates, key=lambda i: (states[i].launched, i))
            launched.append(build_attempt(chosen, global_step))
        return launched

    # ------------------------------------------------------------------ #
    # Initial wave: attempt 1 of the first `num_slots` instances, then
    # restart refills if slots remain.
    # ------------------------------------------------------------------ #
    rows: List[_Attempt] = []
    networks: List[object] = []
    for instance in range(min(num_slots, len(states))):
        attempt, network = build_attempt(instance, 0)
        rows.append(attempt)
        networks.append(network)
    for attempt, network in pick_refills(num_slots - len(rows), 0):
        rows.append(attempt)
        networks.append(network)

    from ..runtime.batch import BatchedNetwork
    from ..runtime.drives import PortfolioAnnealedDrive, annealed_specs

    def fresh_batch(nets: Sequence[object]) -> BatchedNetwork:
        return BatchedNetwork.from_networks(
            nets,
            synapse_mode="exact",
            batched_external=PortfolioAnnealedDrive(annealed_specs(nets)),
        )

    substeps = getattr(networks[0].population, "substeps_per_ms", 1)
    updates_per_step = num_neurons * substeps
    window = max(1, cfg.decode_window)
    batch = fresh_batch(networks)

    num_rows = len(rows)
    history = np.zeros((window, num_rows, num_neurons), dtype=bool)
    window_counts = np.zeros((num_rows, num_neurons), dtype=np.int64)
    last_spike = np.full((num_rows, num_neurons), -1, dtype=np.int64)
    row_spikes = np.zeros(num_rows, dtype=np.int64)
    offsets = np.asarray([a.offset for a in rows], dtype=np.int64)
    budgets = np.asarray([a.budget for a in rows], dtype=np.int64)

    def finish_attempt(row: int, local_steps: int) -> None:
        """Book a finished attempt's work into its instance state."""
        attempt = rows[row]
        state = states[attempt.instance]
        state.live -= 1
        state.attempt_steps.append(int(local_steps))
        state.total_spikes += int(row_spikes[row])

    def snapshot(row: int, local_steps: int, values: np.ndarray, decided: np.ndarray) -> None:
        state = states[rows[row].instance]
        state.steps = int(local_steps)
        state.values, state.decided = values, decided

    global_step = 0
    unsolved = len(states)
    row_index = np.arange(num_rows, dtype=np.int64)
    while rows and global_step < max_steps and unsolved:
        global_step += 1
        fired = batch.step(global_step)
        local = global_step - offsets  # per-row local step (1-based)
        slot = local % window
        window_counts -= history[slot, row_index]
        history[slot, row_index] = fired
        window_counts += fired
        if fired.any():
            fr, fc = np.nonzero(fired)
            last_spike[fr, fc] = local[fr]
            row_spikes += fired.sum(axis=1)

        at_budget = local >= budgets
        at_check = (local % check_interval == 0) | at_budget
        if not (at_check.any() or global_step == max_steps):
            continue

        # ---- check point: decode, drop, refill ------------------------ #
        keep: List[int] = []
        for row, attempt in enumerate(rows):
            state = states[attempt.instance]
            if state.solved:
                # Raced attempt of an instance another row already solved.
                finish_attempt(row, int(local[row]))
                continue
            if not at_check[row]:
                keep.append(row)
                continue
            values, decided = decode_assignment(
                state.graph, window_counts[row], last_spike[row], state.clamps
            )
            if state.graph.is_solution(values, decided):
                state.solved = True
                unsolved -= 1
                snapshot(row, int(local[row]), values, decided)
                finish_attempt(row, int(local[row]))
            elif at_budget[row]:
                snapshot(row, int(local[row]), values, decided)
                finish_attempt(row, int(local[row]))
            else:
                keep.append(row)
        refills = (
            pick_refills(num_slots - len(keep), global_step)
            if unsolved and global_step < max_steps
            else []
        )
        if len(keep) == len(rows) and not refills:
            continue

        # ---- apply the new batch composition -------------------------- #
        new_rows = [rows[row] for row in keep] + [attempt for attempt, _ in refills]
        new_nets = [network for _, network in refills]
        if not new_rows:
            rows = []
            break
        if keep:
            if len(keep) < len(rows):
                batch.retain(keep)
            if new_nets:
                batch.extend(new_nets)
        else:
            batch = fresh_batch(new_nets)
        rows = new_rows
        num_rows = len(rows)
        pad = (len(refills), num_neurons)
        history = np.concatenate([history[:, keep], np.zeros((window,) + pad, dtype=bool)], axis=1)
        window_counts = np.concatenate([window_counts[keep], np.zeros(pad, dtype=np.int64)])
        last_spike = np.concatenate([last_spike[keep], np.full(pad, -1, dtype=np.int64)])
        row_spikes = np.concatenate([row_spikes[keep], np.zeros(len(refills), dtype=np.int64)])
        offsets = np.asarray([a.offset for a in rows], dtype=np.int64)
        budgets = np.asarray([a.budget for a in rows], dtype=np.int64)
        row_index = np.arange(num_rows, dtype=np.int64)

    # Trailing decode for attempts still live at the global budget,
    # mirroring the batch loop's final decode.
    for row, attempt in enumerate(rows):
        state = states[attempt.instance]
        local_steps = int(global_step - attempt.offset)
        if not state.solved:
            values, decided = decode_assignment(
                state.graph, window_counts[row], last_spike[row], state.clamps
            )
            if state.graph.is_solution(values, decided):
                state.solved = True
                unsolved -= 1
            snapshot(row, local_steps, values, decided)
        finish_attempt(row, local_steps)

    results = []
    for state in states:
        if state.values is None:
            # Never decoded (zero slots or zero budget): empty decode.
            state.values, state.decided = decode_assignment(
                state.graph,
                np.zeros(state.graph.num_neurons, dtype=np.int64),
                np.full(state.graph.num_neurons, -1, dtype=np.int64),
                state.clamps,
            )
            state.solved = state.graph.is_solution(state.values, state.decided)
        results.append(
            CSPSolveResult(
                solved=state.solved,
                steps=state.steps,
                values=state.values,
                decided=state.decided,
                total_spikes=state.total_spikes,
                neuron_updates=sum(state.attempt_steps) * updates_per_step,
                attempts=state.launched,
                attempt_steps=tuple(state.attempt_steps),
            )
        )
    return results
