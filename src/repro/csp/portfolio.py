"""Adaptive restart portfolios for the spiking constraint solver.

The annealed WTA search (paper §VI-C) is a Las-Vegas algorithm: whether
an instance solves within a step budget depends heavily on the noise
stream, and the runtime distribution is heavy-tailed — a hard instance
can stall for the whole budget under one seed yet fall in a few hundred
steps under another.  Fixed-seed :func:`~repro.csp.solver.solve_instances`
pays that tail twice: the stalled replica burns its entire budget, and
the batch capacity freed by early solvers (:meth:`BatchedNetwork.retain`)
sits idle.

:func:`solve_instances_portfolio` keeps the fused batch saturated
instead.  All instances start as one exact-mode batch, and whenever
replicas finish — solved, or out of their per-attempt step budget — the
freed slots are refilled with *restart attempts* of still-unsolved
instances: fresh ``SeedSequence``-derived noise seeds, step budgets from
a Luby (or geometric) schedule, and optionally diversified anneal
configurations.  Several attempts of one instance may race; the first
solution wins and the rest are dropped at the next check point.

Determinism and exactness:

* every attempt is **bit-identical** to a standalone
  ``SpikingCSPSolver(graph, cfg, seed=attempt_seed).solve(clamps,
  max_steps=budget)`` run — attempts keep their own *local* step counter
  (driving the anneal phase, sliding-window decode and recency
  bookkeeping), so stacking an attempt into a half-finished batch cannot
  change its trajectory;
* attempt seeds derive from ``(portfolio seed, instance index, attempt
  index)`` through ``SeedSequence`` spawn keys, so the schedule is
  reproducible regardless of which slot an attempt lands in;
* with restarts disabled the engine runs exactly one full-budget attempt
  per instance and is bit-identical to ``solve_instances``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..runtime.slots import SlotAdmission, SlotDecision, SlotEngine, SlotRow
from .config import CSPConfig
from .graph import ClampsLike, ConstraintGraph
from .solver import (
    CSP_SLOT_DECODER,
    CSPSolveResult,
    SpikingCSPSolver,
    _empty_decode,
    _empty_result,
)

__all__ = [
    "PortfolioConfig",
    "RestartPortfolioPolicy",
    "derive_attempt_seed",
    "luby",
    "solve_instances_portfolio",
]

#: Config fields an anneal variant may override: drive-level parameters
#: only, so every attempt shares the batch's connectivity, population
#: configuration and decode window.
_VARIANT_FIELDS = frozenset({"noise_sigma", "anneal_period", "anneal_floor"})


def luby(index: int) -> int:
    """The Luby restart sequence 1, 1, 2, 1, 1, 2, 4, ... (1-based index).

    The universal strategy of Luby, Sinclair and Zuckerman: restarts
    scheduled by this sequence are within a logarithmic factor of the
    optimal (unknown) fixed cutoff for any Las-Vegas runtime
    distribution.
    """
    if index < 1:
        raise ValueError("luby index is 1-based")
    k = index.bit_length()
    while True:
        if index == (1 << k) - 1:
            return 1 << (k - 1)
        if index < (1 << k) - 1:
            k -= 1
            index -= (1 << k) - 1
            k = index.bit_length()
        else:  # pragma: no cover - unreachable (k = bit_length bound)
            k += 1


def derive_attempt_seed(portfolio_seed: int, instance: int, attempt: int) -> int:
    """Deterministic, well-mixed noise seed for one portfolio attempt.

    Spawns ``SeedSequence(portfolio_seed, spawn_key=(instance, attempt))``
    — the same scheme as :func:`repro.runtime.sweep.derive_task_seed`,
    keyed by both coordinates so neighbouring attempts and instances get
    statistically independent streams.
    """
    sequence = np.random.SeedSequence(int(portfolio_seed), spawn_key=(int(instance), int(attempt)))
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


@dataclass(frozen=True)
class PortfolioConfig:
    """Restart schedule and diversification policy of a solve portfolio."""

    #: ``"luby"`` (default), ``"geometric"`` or ``"fixed"`` per-attempt
    #: step budgets: ``base_budget * luby(k)``, ``base_budget *
    #: growth**(k-1)`` or ``base_budget`` for attempt ``k``.
    schedule: str = "luby"
    #: Steps allotted to a first attempt (the schedule's unit).
    base_budget: int = 400
    #: Growth factor of the geometric schedule.
    growth: float = 2.0
    #: Maximum attempts per instance (0 = unbounded within the run's
    #: global step budget).
    max_attempts: int = 0
    #: Maximum *concurrent* attempts per instance (0 = unbounded — freed
    #: slots always refill while any instance is unsolved).
    max_parallel: int = 2
    #: Root seed of the attempt-seed derivation (see
    #: :func:`derive_attempt_seed`).
    seed: int = 0
    #: Optional drive-parameter overrides cycled over restart attempts:
    #: attempt 1 always runs the base config; attempt ``k >= 2`` applies
    #: ``anneal_variants[(k - 2) % len]`` (each a mapping over
    #: ``noise_sigma`` / ``anneal_period`` / ``anneal_floor``).
    anneal_variants: Tuple[Mapping[str, float], ...] = ()
    #: ``False`` runs exactly one full-budget attempt per instance —
    #: bit-identical to :func:`repro.csp.solver.solve_instances`.
    restarts: bool = True

    def __post_init__(self) -> None:
        if self.schedule not in ("luby", "geometric", "fixed"):
            raise ValueError(f"unknown restart schedule {self.schedule!r}")
        if self.base_budget < 1:
            raise ValueError("base_budget must be positive")
        if self.schedule == "geometric" and self.growth < 1.0:
            raise ValueError("geometric growth must be >= 1")
        for variant in self.anneal_variants:
            unknown = set(variant) - _VARIANT_FIELDS
            if unknown:
                raise ValueError(
                    f"anneal variants may only override {sorted(_VARIANT_FIELDS)}; "
                    f"got {sorted(unknown)}"
                )

    def attempt_budget(self, attempt: int) -> int:
        """Step budget of the ``attempt``-th (1-based) attempt."""
        if self.schedule == "luby":
            return self.base_budget * luby(attempt)
        if self.schedule == "geometric":
            return int(round(self.base_budget * self.growth ** (attempt - 1)))
        return self.base_budget

    def attempt_config(self, base: CSPConfig, attempt: int) -> CSPConfig:
        """The (possibly diversified) solver config of one attempt."""
        if attempt < 2 or not self.anneal_variants:
            return base
        variant = self.anneal_variants[(attempt - 2) % len(self.anneal_variants)]
        return base.with_updates(**dict(variant))


@dataclass
class _Attempt:
    """Policy payload of one live batch row: an attempt of one instance.

    The row's step budget and admission offset live on the engine's
    :class:`~repro.runtime.slots.SlotRow`; the payload only keys the
    attempt back to its instance accounting.
    """

    instance: int
    attempt: int  # 1-based per-instance attempt index


@dataclass
class _InstanceState:
    """Per-instance scheduling and accounting state."""

    graph: ConstraintGraph
    clamps: list
    solved: bool = False
    launched: int = 0
    live: int = 0
    attempt_steps: List[int] = field(default_factory=list)
    total_spikes: int = 0
    #: Winning (or, unsolved, most recent) decode snapshot.
    steps: int = 0
    values: Optional[np.ndarray] = None
    decided: Optional[np.ndarray] = None


def solve_instances_portfolio(
    instances: Sequence[Tuple[ConstraintGraph, ClampsLike]],
    *,
    config: Optional[CSPConfig] = None,
    portfolio: Optional[PortfolioConfig] = None,
    backend: str = "fixed",
    seeds: Optional[Sequence[int]] = None,
    max_steps: int = 3000,
    check_interval: int = 10,
    slots: Optional[int] = None,
) -> List[CSPSolveResult]:
    """Solve instances with an adaptive restart portfolio on one batch.

    The drop-in counterpart of :func:`repro.csp.solver.solve_instances`
    with restart refilling: the global step budget ``max_steps`` bounds
    the run's wall clock (every live replica advances once per global
    step), while each attempt is additionally bounded by its schedule
    budget.  See the module docstring for the scheduling policy.

    Parameters
    ----------
    instances:
        ``(graph, clamps)`` pairs; all graphs must share one neuron count.
    config / portfolio:
        Solver weights (:class:`CSPConfig`) and restart policy
        (:class:`PortfolioConfig`).
    seeds:
        Optional explicit noise seeds of each instance's *first* attempt
        (restart attempts always derive theirs from the portfolio seed).
        With ``portfolio.restarts`` false this makes the run bit-identical
        to ``solve_instances(instances, seeds=seeds, ...)``.
    max_steps:
        Global step budget shared by the whole batch.
    slots:
        Number of parallel batch rows to keep saturated (default: one per
        instance).

    Returns
    -------
    One :class:`CSPSolveResult` per instance, in order, with
    ``attempts`` / ``attempt_steps`` / ``neuron_updates`` accounting for
    every attempt launched for that instance.
    """
    if not instances:
        return []
    cfg = config if config is not None else CSPConfig()
    pcfg = portfolio if portfolio is not None else PortfolioConfig()
    if seeds is not None and len(seeds) != len(instances):
        raise ValueError("seeds must match the number of instances")
    sizes = {graph.num_neurons for graph, _ in instances}
    if len(sizes) != 1:
        raise ValueError(f"instances have differing neuron counts: {sorted(sizes)}")
    num_slots = len(instances) if slots is None else max(1, int(slots))

    states: List[_InstanceState] = []
    for graph, clamps in instances:
        resolved = graph.resolve_clamps(clamps)
        if not graph.clamps_consistent(resolved):
            raise ValueError("clamps violate a constraint edge")
        states.append(_InstanceState(graph=graph, clamps=resolved))
    if max_steps <= 0:
        return [_empty_result(state.graph, state.clamps) for state in states]

    engine = SlotEngine(
        decoder=CSP_SLOT_DECODER,
        window=max(1, cfg.decode_window),
        check_interval=check_interval,
        extendable=True,
    )
    policy = RestartPortfolioPolicy(
        states,
        config=cfg,
        portfolio=pcfg,
        backend=backend,
        seeds=seeds,
        num_slots=num_slots,
        max_steps=max_steps,
    )
    engine.run(policy, max_steps=max_steps)
    policy.finalize(engine)

    updates_per_step = engine.updates_per_step or 0
    results = []
    for state in states:
        if state.values is None:
            # Never decoded (zero slots or zero budget): the canonical
            # zero-step decode (clamps only).
            state.values, state.decided = _empty_decode(state.graph, state.clamps)
            state.solved = state.graph.is_solution(state.values, state.decided)
        results.append(
            CSPSolveResult(
                solved=state.solved,
                steps=state.steps,
                values=state.values,
                decided=state.decided,
                total_spikes=state.total_spikes,
                neuron_updates=sum(state.attempt_steps) * updates_per_step,
                attempts=state.launched,
                attempt_steps=tuple(state.attempt_steps),
            )
        )
    return results


class RestartPortfolioPolicy:
    """Slot policy implementing the adaptive restart portfolio.

    The continuous-batching mechanics — stepping, local counters,
    sliding windows, retain-before-extend recomposition — belong to
    :class:`~repro.runtime.slots.SlotEngine`; this policy holds only
    the *scheduling* intelligence: ``SeedSequence``-derived attempt
    seeds (:func:`derive_attempt_seed`), Luby/geometric/fixed step
    budgets, drive diversification, round-robin refilling of freed
    slots, and racing with first-win cancellation (rows whose instance
    another attempt already solved retire at the next checkpoint).
    """

    def __init__(
        self,
        states: Sequence[_InstanceState],
        *,
        config: CSPConfig,
        portfolio: PortfolioConfig,
        backend: str,
        seeds: Optional[Sequence[int]],
        num_slots: int,
        max_steps: int,
    ) -> None:
        self._states = list(states)
        self._cfg = config
        self._pcfg = portfolio
        self._backend = backend
        self._seeds = seeds
        self._num_slots = num_slots
        self._max_steps = max_steps
        #: Instances not yet solved; the run stops early when it hits 0.
        self.unsolved = len(self._states)
        # Instances sharing one graph object share one synapse build so
        # the batch engine keeps its shared-matrix fast path across
        # refills.
        self._shared_synapses: Dict[int, object] = {}

    # -- attempt construction ------------------------------------------ #
    def _build_attempt(self, instance: int) -> SlotAdmission:
        """A fresh attempt row for ``instance`` (offset stamped at admit)."""
        state = self._states[instance]
        pcfg = self._pcfg
        state.launched += 1
        attempt_index = state.launched
        if attempt_index == 1 and self._seeds is not None:
            attempt_seed = int(self._seeds[instance])
        else:
            attempt_seed = derive_attempt_seed(pcfg.seed, instance, attempt_index)
        if pcfg.restarts:
            budget = min(pcfg.attempt_budget(attempt_index), self._max_steps)
        else:
            budget = self._max_steps
        attempt_cfg = pcfg.attempt_config(self._cfg, attempt_index)
        solver = SpikingCSPSolver(
            state.graph,
            attempt_cfg,
            backend=self._backend,
            seed=attempt_seed,
            synapses=self._shared_synapses.get(id(state.graph)),
        )
        self._shared_synapses[id(state.graph)] = solver.synapses
        network = solver.build_network(state.clamps)
        state.live += 1
        row = SlotRow(
            graph=state.graph,
            clamps=state.clamps,
            budget=budget,
            payload=_Attempt(instance=instance, attempt=attempt_index),
        )
        return row, network

    def _eligible(self, instance: int) -> bool:
        state = self._states[instance]
        pcfg = self._pcfg
        if state.solved:
            return False
        if pcfg.max_attempts and state.launched >= pcfg.max_attempts:
            return False
        if pcfg.max_parallel and state.live >= pcfg.max_parallel:
            return False
        return True

    def _pick_refills(self, count: int, global_step: int) -> List[SlotAdmission]:
        """Launch up to ``count`` attempts for unsolved instances.

        Round-robin by launched-attempt count (fewest first, ties by
        instance index) — deterministic, and it spreads the freed
        capacity over the whole unsolved pool before racing extra
        attempts on any one instance.  With restarts disabled only
        *first* attempts are dispatched (instances beyond the initial
        wave still get their one attempt when a slot frees up; a late
        wave sees whatever global steps remain).
        """
        if global_step >= self._max_steps:
            return []
        pcfg = self._pcfg
        launched: List[SlotAdmission] = []
        while len(launched) < count:
            candidates = [
                i
                for i in range(len(self._states))
                if self._eligible(i) and (pcfg.restarts or self._states[i].launched == 0)
            ]
            if not candidates:
                break
            chosen = min(candidates, key=lambda i: (self._states[i].launched, i))
            launched.append(self._build_attempt(chosen))
        return launched

    # -- accounting ----------------------------------------------------- #
    def _finish_attempt(self, attempt: _Attempt, local_steps: int, spikes: int) -> None:
        """Book a finished attempt's work into its instance state."""
        state = self._states[attempt.instance]
        state.live -= 1
        state.attempt_steps.append(int(local_steps))
        state.total_spikes += int(spikes)

    def _snapshot(self, attempt: _Attempt, local_steps: int, values, decided) -> None:
        state = self._states[attempt.instance]
        state.steps = int(local_steps)
        state.values, state.decided = values, decided

    # -- SlotPolicy ----------------------------------------------------- #
    def initial_admissions(self, engine: SlotEngine) -> List[SlotAdmission]:
        """Attempt 1 of the first ``num_slots`` instances, then restart
        refills if slots remain."""
        admissions = [
            self._build_attempt(instance)
            for instance in range(min(self._num_slots, len(self._states)))
        ]
        admissions.extend(self._pick_refills(self._num_slots - len(admissions), 0))
        return admissions

    def on_checkpoint(self, checkpoint) -> SlotDecision:
        engine = checkpoint.engine
        keep: List[int] = []
        for row_index, row in enumerate(engine.rows):
            attempt = row.payload
            state = self._states[attempt.instance]
            local_steps = int(checkpoint.local[row_index])
            if state.solved:
                # Raced attempt of an instance another row already solved.
                self._finish_attempt(attempt, local_steps, engine.row_spikes[row_index])
                continue
            if not checkpoint.at_check[row_index]:
                keep.append(row_index)
                continue
            decode = engine.decode_row(row_index)
            if decode.solved:
                state.solved = True
                self.unsolved -= 1
                self._snapshot(attempt, local_steps, decode.values, decode.decided)
                self._finish_attempt(attempt, local_steps, engine.row_spikes[row_index])
            elif checkpoint.at_budget[row_index]:
                self._snapshot(attempt, local_steps, decode.values, decode.decided)
                self._finish_attempt(attempt, local_steps, engine.row_spikes[row_index])
            else:
                keep.append(row_index)
        refills = (
            self._pick_refills(self._num_slots - len(keep), checkpoint.step)
            if self.unsolved
            else []
        )
        return SlotDecision(keep=keep, admissions=refills, stop=not self.unsolved)

    def finalize(self, engine: SlotEngine) -> None:
        """Trailing decode for attempts still live at the global budget,
        mirroring the one-shot loop's final decode."""
        local = engine.local_steps()
        for row_index, row in enumerate(engine.rows):
            attempt = row.payload
            state = self._states[attempt.instance]
            local_steps = int(local[row_index])
            if not state.solved:
                decode = engine.decode_row(row_index)
                if decode.solved:
                    state.solved = True
                    self.unsolved -= 1
                self._snapshot(attempt, local_steps, decode.values, decode.decided)
            self._finish_attempt(attempt, local_steps, engine.row_spikes[row_index])
