"""Constraint graphs mapped onto Winner-Takes-All spiking networks.

A finite-domain constraint-satisfaction problem is described by

* **variables** with finite candidate domains — every ``(variable, value)``
  pair becomes one Izhikevich neuron, laid out variable-major with the
  variable's domain order preserved;
* **pairwise conflict edges** — ``(var_a=value_a)`` incompatible with
  ``(var_b=value_b)`` — which become mutual inhibitory synapses;
* **unary clamps** (the generalisation of Sudoku clues) — a variable fixed
  to one value, realised as a strong constant drive on that value's neuron
  and a silenced drive on its siblings.

Every variable additionally carries an implicit one-hot ("multi-level
WTA") constraint: each of its value neurons inhibits all other values of
the same variable, so at most one candidate per variable stays active.
This is exactly the construction of the paper's 729-neuron Sudoku network
(Fig. 4), with the row/column/box structure replaced by arbitrary
conflict edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np
from scipy import sparse

from ..snn.synapse import SparseSynapses

__all__ = ["Variable", "ConstraintGraph", "CSPStatistics"]

#: A variable reference: its index, its name, or the Variable itself.
VariableRef = Union[int, str, "Variable"]

#: Clamps: ``{variable: value}`` or an iterable of ``(variable, value)``.
ClampsLike = Union[Mapping[VariableRef, int], Iterable[Tuple[VariableRef, int]]]


class _ResolvedClamps(list):
    """Marker type for :meth:`ConstraintGraph.resolve_clamps` output.

    Items are validated ``(variable_index, value, neuron_index)`` triples;
    feeding the list back into ``resolve_clamps`` (as the hot decode loop
    does every check interval) skips re-validation.  Plain lists of
    triples do NOT get the shortcut — they take the full validated path.
    """


@dataclass(frozen=True)
class Variable:
    """A named CSP variable with a finite, ordered candidate domain."""

    name: str
    domain: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.domain:
            raise ValueError(f"variable {self.name!r} has an empty domain")
        if len(set(self.domain)) != len(self.domain):
            raise ValueError(f"variable {self.name!r} has duplicate domain values")


@dataclass
class CSPStatistics:
    """Structural statistics of a constraint graph's WTA network."""

    num_variables: int
    num_neurons: int
    #: Directed explicit conflict edges (each symmetric conflict counts twice).
    num_conflict_edges: int
    #: Directed intra-variable one-hot edges.
    num_mutex_edges: int
    #: Largest / mean total inhibitory fan-out of a neuron.
    max_out_degree: int
    mean_out_degree: float


class ConstraintGraph:
    """Variables × domains plus pairwise conflicts, as one neuron array.

    Neurons are numbered variable-major: variable ``i`` owns the
    contiguous index range ``[offset[i], offset[i+1])``, one neuron per
    domain value in the variable's declared domain order.
    """

    def __init__(self, variables: Sequence[Variable], *, name: str = "csp") -> None:
        if not variables:
            raise ValueError("a constraint graph needs at least one variable")
        self.name = name
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self._var_index: Dict[str, int] = {}
        for i, var in enumerate(self.variables):
            if var.name in self._var_index:
                raise ValueError(f"duplicate variable name {var.name!r}")
            self._var_index[var.name] = i
        sizes = np.asarray([len(v.domain) for v in self.variables], dtype=np.int64)
        self.offsets = np.concatenate([[0], np.cumsum(sizes)])
        self.domain_sizes = sizes
        #: Position of each value within its variable's domain.
        self._value_pos: List[Dict[int, int]] = [
            {int(value): pos for pos, value in enumerate(v.domain)} for v in self.variables
        ]
        #: Owning variable of each neuron (for coordinate lookups).
        self._neuron_var = np.repeat(np.arange(len(self.variables)), sizes)
        #: Explicit (inter-variable) conflicts per neuron, as index sets.
        self._explicit: List[Set[int]] = [set() for _ in range(int(self.offsets[-1]))]
        self._conflict_arrays: Optional[List[np.ndarray]] = None
        #: CSR view of the conflict lists (flat targets + indptr), cached
        #: for the vectorised solution check.
        self._conflict_csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        #: value -> in-domain position lookup for the homogeneous-domain
        #: fast path (built lazily; the flag caches the negative case).
        self._pos_lookup: Optional[np.ndarray] = None
        self._pos_lookup_ready = False
        #: Cached structural cache token (see :meth:`cache_token`).
        self._cache_token: Optional[Mapping[str, Any]] = None

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_neurons(self) -> int:
        return int(self.offsets[-1])

    @property
    def homogeneous_domain(self) -> Optional[Tuple[int, ...]]:
        """The shared domain when all variables use the same one, else ``None``."""
        first = self.variables[0].domain
        if all(v.domain == first for v in self.variables[1:]):
            return first
        return None

    def variable_index(self, ref: VariableRef) -> int:
        """Resolve a variable reference (index, name or Variable) to its index."""
        if isinstance(ref, Variable):
            ref = ref.name
        if isinstance(ref, str):
            try:
                return self._var_index[ref]
            except KeyError:
                raise KeyError(f"unknown variable {ref!r} in graph {self.name!r}") from None
        index = int(ref)
        if not 0 <= index < self.num_variables:
            raise IndexError(f"variable index {index} out of range")
        return index

    def neuron_index(self, var: VariableRef, value: int) -> int:
        """Flat neuron index of ``(variable, value)``."""
        vi = self.variable_index(var)
        try:
            pos = self._value_pos[vi][int(value)]
        except KeyError:
            raise ValueError(
                f"value {value!r} not in domain of variable "
                f"{self.variables[vi].name!r}"
            ) from None
        return int(self.offsets[vi]) + pos

    def neuron_coordinates(self, index: int) -> Tuple[int, int]:
        """Inverse of :meth:`neuron_index`: ``(variable_index, value)``."""
        if not 0 <= index < self.num_neurons:
            raise ValueError(f"neuron index {index} out of range")
        vi = int(self._neuron_var[index])
        return vi, int(self.variables[vi].domain[index - int(self.offsets[vi])])

    # ------------------------------------------------------------------ #
    # Constraint construction
    # ------------------------------------------------------------------ #
    def add_conflict(
        self, var_a: VariableRef, value_a: int, var_b: VariableRef, value_b: int
    ) -> None:
        """Declare ``var_a=value_a`` and ``var_b=value_b`` incompatible.

        The conflict is symmetric: both neurons inhibit each other.
        Intra-variable conflicts are implicit (the one-hot WTA) and may
        not be added explicitly.
        """
        na = self.neuron_index(var_a, value_a)
        nb = self.neuron_index(var_b, value_b)
        if self._neuron_var[na] == self._neuron_var[nb]:
            raise ValueError(
                "intra-variable conflicts are implicit (one-hot WTA); "
                f"got two values of variable {self.variables[int(self._neuron_var[na])].name!r}"
            )
        self._explicit[na].add(nb)
        self._explicit[nb].add(na)
        self._conflict_arrays = None
        self._conflict_csr = None
        self._cache_token = None

    def add_not_equal(self, var_a: VariableRef, var_b: VariableRef) -> None:
        """Forbid ``var_a == var_b`` (conflict on every shared domain value)."""
        ia, ib = self.variable_index(var_a), self.variable_index(var_b)
        if ia == ib:
            raise ValueError("add_not_equal needs two distinct variables")
        shared = [v for v in self.variables[ia].domain if v in self._value_pos[ib]]
        for value in shared:
            self.add_conflict(ia, value, ib, value)

    def add_all_different(self, variables: Sequence[VariableRef]) -> None:
        """Pairwise ``not_equal`` over a set of variables (a CSP "unit")."""
        indices = [self.variable_index(v) for v in variables]
        for i, ia in enumerate(indices):
            for ib in indices[i + 1 :]:
                self.add_not_equal(ia, ib)

    # ------------------------------------------------------------------ #
    # Derived structure
    # ------------------------------------------------------------------ #
    def conflicting_neurons(self, index: int) -> List[int]:
        """All neurons inhibited by a spike of ``index`` (mutex + conflicts)."""
        if not 0 <= index < self.num_neurons:
            raise ValueError(f"neuron index {index} out of range")
        vi = int(self._neuron_var[index])
        start, end = int(self.offsets[vi]), int(self.offsets[vi + 1])
        targets = set(range(start, end))
        targets.discard(index)
        targets |= self._explicit[index]
        return sorted(targets)

    def _conflicts(self) -> List[np.ndarray]:
        """Cached per-neuron conflict index arrays (mutex + explicit)."""
        if self._conflict_arrays is None:
            self._conflict_arrays = [
                np.asarray(self.conflicting_neurons(i), dtype=np.int64)
                for i in range(self.num_neurons)
            ]
        return self._conflict_arrays

    def _conflicts_csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The conflict lists as one flat (targets, indptr) CSR pair."""
        if self._conflict_csr is None:
            conflicts = self._conflicts()
            lengths = np.asarray([t.size for t in conflicts], dtype=np.int64)
            indptr = np.concatenate([[0], np.cumsum(lengths)])
            targets = np.concatenate(conflicts) if indptr[-1] else np.empty(0, dtype=np.int64)
            self._conflict_csr = (targets, indptr)
        return self._conflict_csr

    def _shared_pos_lookup(self) -> Optional[np.ndarray]:
        """``value -> domain position`` table for homogeneous domains.

        ``None`` when the variables do not share one domain or the domain
        has negative values (the table is a plain array lookup).
        """
        if not self._pos_lookup_ready:
            self._pos_lookup_ready = True
            shared = self.homogeneous_domain
            if shared is not None and min(shared) >= 0:
                lookup = np.full(max(shared) + 1, -1, dtype=np.int64)
                for pos, value in enumerate(shared):
                    lookup[value] = pos
                self._pos_lookup = lookup
        return self._pos_lookup

    def build_synapses(
        self, *, inhibition_weight: float = -30.0, self_excitation: float = 0.0
    ) -> SparseSynapses:
        """The WTA connectivity: inhibition on conflicts, self-excitation.

        Mirrors the Sudoku construction exactly: for every presynaptic
        neuron (in index order) one inhibitory synapse per conflicting
        neuron (sorted), plus an explicit diagonal self-excitation entry —
        kept even at weight 0 so the synapse count always reflects the
        full WTA structure.
        """
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for pre, targets in enumerate(self._conflicts()):
            rows.extend(int(t) for t in targets)
            cols.extend([pre] * len(targets))
            vals.extend([inhibition_weight] * len(targets))
            rows.append(pre)
            cols.append(pre)
            vals.append(self_excitation)
        matrix = sparse.coo_matrix((vals, (rows, cols)), shape=(self.num_neurons, self.num_neurons))
        return SparseSynapses(matrix)

    def cache_token(self) -> Mapping[str, Any]:
        """Canonical structural identity for content-addressed caching.

        Consumed by :mod:`repro.runtime.cache` through the
        ``cache_token`` protocol, so a graph can key a
        :class:`~repro.runtime.cache.RunResultCache` entry (the serve
        tier dedupes repeat instances this way).  The token covers
        exactly what the solver dynamics see — the per-variable domains
        in declared order plus the explicit conflict edges — and
        deliberately excludes variable *names*: solve results are
        index-based arrays, so structurally identical graphs may share
        cache entries regardless of naming.
        """
        if self._cache_token is None:
            edges = sorted(
                (pre, post)
                for pre, targets in enumerate(self._explicit)
                for post in targets
                if pre < post
            )
            self._cache_token = {
                "domains": [list(map(int, v.domain)) for v in self.variables],
                "conflicts": [[int(a), int(b)] for a, b in edges],
            }
        return self._cache_token

    def statistics(self) -> CSPStatistics:
        """Structural statistics of the WTA graph."""
        mutex = int(np.sum(self.domain_sizes * (self.domain_sizes - 1)))
        explicit = sum(len(s) for s in self._explicit)
        degrees = np.asarray([len(t) for t in self._conflicts()], dtype=np.int64)
        return CSPStatistics(
            num_variables=self.num_variables,
            num_neurons=self.num_neurons,
            num_conflict_edges=explicit,
            num_mutex_edges=mutex,
            max_out_degree=int(degrees.max()),
            mean_out_degree=float(degrees.mean()),
        )

    # ------------------------------------------------------------------ #
    # Clamps and drives
    # ------------------------------------------------------------------ #
    def resolve_clamps(self, clamps: ClampsLike) -> List[Tuple[int, int, int]]:
        """Normalise clamps to ``(variable_index, value, neuron_index)``.

        Raises ``ValueError`` on out-of-domain values or a variable
        clamped twice to different values.
        """
        if isinstance(clamps, _ResolvedClamps):
            # This method's own output, fed back in by the hot decode
            # loop.  Re-resolving is pure overhead: the triples were
            # validated when first produced.
            return clamps
        items = clamps.items() if isinstance(clamps, Mapping) else clamps
        resolved: Dict[int, Tuple[int, int, int]] = {}
        for item in items:
            # Accept already-resolved (variable_index, value, neuron_index)
            # triples so the output of this method can be passed back in.
            ref, value = item[0], item[1]
            vi = self.variable_index(ref)
            nidx = self.neuron_index(vi, value)
            previous = resolved.get(vi)
            if previous is not None and previous[1] != int(value):
                raise ValueError(
                    f"variable {self.variables[vi].name!r} clamped to both "
                    f"{previous[1]} and {value}"
                )
            resolved[vi] = (vi, int(value), nidx)
        return _ResolvedClamps(resolved[vi] for vi in sorted(resolved))

    def clamps_consistent(self, clamps: ClampsLike) -> bool:
        """``True`` when no two clamps sit on a conflict edge."""
        resolved = self.resolve_clamps(clamps)
        clamped = {nidx for _, _, nidx in resolved}
        for _, _, nidx in resolved:
            if self._explicit[nidx] & clamped:
                return False
        return True

    def drive_vector(
        self, clamps: ClampsLike, *, clamp_drive: float, free_bias: float
    ) -> np.ndarray:
        """Constant per-neuron drive: strong for clamped values, bias otherwise.

        Clamped variables have all their candidate neurons silenced except
        the clamped value, which is driven hard — exactly the Sudoku clue
        drive construction.
        """
        drive = np.full(self.num_neurons, free_bias, dtype=np.float64)
        for vi, _, nidx in self.resolve_clamps(clamps):
            start, end = int(self.offsets[vi]), int(self.offsets[vi + 1])
            drive[start:end] = 0.0
            drive[nidx] = clamp_drive
        return drive

    # ------------------------------------------------------------------ #
    # Solution checking
    # ------------------------------------------------------------------ #
    def selected_neurons(self, values: np.ndarray, decided: np.ndarray) -> np.ndarray:
        """Neuron indices selected by the decided entries of an assignment."""
        decided_vars = np.flatnonzero(decided)
        lookup = self._shared_pos_lookup()
        if lookup is not None and decided_vars.size:
            # Homogeneous-domain fast path: one table lookup per variable
            # instead of a Python dict probe (bit-identical indices).
            vals = np.asarray(values, dtype=np.int64)[decided_vars]
            if vals.min() >= 0 and vals.max() < lookup.size:
                positions = lookup[vals]
                if np.all(positions >= 0):
                    return self.offsets[decided_vars] + positions
        indices = [self.neuron_index(vi, int(values[vi])) for vi in decided_vars]
        return np.asarray(indices, dtype=np.int64)

    def is_solution(self, values: np.ndarray, decided: np.ndarray) -> bool:
        """All variables assigned and no conflict edge violated."""
        if not bool(np.all(decided)):
            return False
        selected = np.zeros(self.num_neurons, dtype=bool)
        picks = self.selected_neurons(values, decided)
        selected[picks] = True
        # One vectorised pass over the picks' concatenated conflict lists
        # (equivalent to checking each pick's conflicts in turn).
        targets, indptr = self._conflicts_csr()
        counts = indptr[picks + 1] - indptr[picks]
        total = int(counts.sum())
        if total == 0:
            return True
        offsets = np.repeat(indptr[picks] - (np.cumsum(counts) - counts), counts)
        flat = targets[offsets + np.arange(total)]
        return not bool(selected[flat].any())

    def assignment_dict(self, values: np.ndarray, decided: np.ndarray) -> Dict[str, int]:
        """Decided ``{variable name: value}`` entries of an assignment."""
        return {self.variables[vi].name: int(values[vi]) for vi in np.flatnonzero(decided)}
