"""Drive, weight and decode parameters of the spiking constraint solver.

:class:`CSPConfig` generalises the Sudoku solver's ``WTAConfig``: the same
inhibition / self-excitation weights, clamp ("clue") and free-cell drives,
annealed exploration noise and sliding-window decode apply to *any*
constraint graph built from variables with finite domains.  The defaults
are the values tuned on the fixed-point (Q7.8 / Q15.16) NPU datapath with
the membrane pin enabled — the configuration the paper's 729-neuron
Sudoku network converged with — and they transfer well to the smaller
scenario networks (graph coloring, N-queens, Latin squares).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CSPConfig"]


@dataclass(frozen=True)
class CSPConfig:
    """Weights and drive levels of a WTA constraint-solver network."""

    #: Inhibitory weight applied to every conflicting neuron on a spike.
    inhibition_weight: float = -30.0
    #: Self-excitation applied to the spiking neuron itself (persistence).
    #: The default of 0 gives pure noise-driven sampling, which converged
    #: most reliably on the fixed-point datapath.
    self_excitation: float = 0.0
    #: Constant drive of clamped (clue) value neurons.
    clamp_drive: float = 10.0
    #: Constant bias of free-variable candidate neurons.
    free_bias: float = 3.0
    #: Standard deviation of the exploration noise on free variables.
    noise_sigma: float = 4.0
    #: DCU decay selector for the synaptic current (tau ≈ a few ms).
    tau_select: int = 2
    #: Izhikevich parameters of every neuron (fast-spiking-like).
    a: float = 0.1
    b: float = 0.2
    c: float = -65.0
    d: float = 2.0
    #: Sliding window (in 1 ms steps) over which spike counts are decoded.
    decode_window: int = 20
    #: Period (in steps) of the exploration-noise annealing cycle; within
    #: each period the noise amplitude ramps down from its maximum to a
    #: small residual, letting the network alternately explore and settle.
    anneal_period: int = 200
    #: Fraction of the noise amplitude retained at the end of a cycle.
    anneal_floor: float = 0.25
    #: Fixed-point timestep shift (1 → two 0.5 ms substeps per network step).
    h_shift: int = 1
    #: Pin the membrane at the reset potential (required for convergence on
    #: the fixed-point datapath, per the paper's §VI-C observation).
    pin_voltage: bool = True

    def with_updates(self, **changes) -> "CSPConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)
