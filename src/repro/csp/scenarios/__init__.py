"""Deterministic instance generators for the spiking constraint solver.

Every scenario exposes a generator returning ``(graph, clamps)``; the
:func:`make_instance` registry builds instances by name so runtime
backends, sweeps and benchmarks can select a scenario with a string:

=============  =====================================================
Scenario       Instance family
=============  =====================================================
``coloring``   planted-partition random graph k-coloring
``australia``  the 3-colorable Australian map (fixed instance)
``queens``     N-queens (rows as variables, columns as values)
``latin``      Latin-square completion from a random complete square
``sudoku``     generated uniquely-solvable 9x9 Sudoku puzzles
=============  =====================================================

All generators are deterministic in ``seed`` (and their size parameters),
so sweeps and the on-disk run cache see stable instances.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from ..graph import ConstraintGraph
from .coloring import australia_instance, coloring_graph, random_coloring_instance
from .latin import latin_graph, latin_instance, random_latin_square
from .queens import queens_graph, queens_instance
from .sudoku import clamps_from_cells, cells_from_values, sudoku_graph, sudoku_instance

__all__ = [
    "available_scenarios",
    "make_instance",
    "australia_instance",
    "coloring_graph",
    "random_coloring_instance",
    "latin_graph",
    "latin_instance",
    "random_latin_square",
    "queens_graph",
    "queens_instance",
    "clamps_from_cells",
    "cells_from_values",
    "sudoku_graph",
    "sudoku_instance",
]

Instance = Tuple[ConstraintGraph, Dict[str, int]]


def _make_coloring(seed: int, **params: Any) -> Instance:
    return random_coloring_instance(
        int(params.get("num_vertices", 12)),
        int(params.get("num_colors", 3)),
        edge_probability=float(params.get("edge_probability", 0.6)),
        seed=seed,
    )


def _make_australia(seed: int, **params: Any) -> Instance:
    return australia_instance(int(params.get("num_colors", 3)))


def _make_queens(seed: int, **params: Any) -> Instance:
    return queens_instance(int(params.get("n", 6)), seed=seed)


def _make_latin(seed: int, **params: Any) -> Instance:
    return latin_instance(
        int(params.get("n", 4)),
        seed=seed,
        clamp_fraction=float(params.get("clamp_fraction", 0.5)),
    )


def _make_sudoku(seed: int, **params: Any) -> Instance:
    return sudoku_instance(seed, target_clues=int(params.get("target_clues", 28)))


_SCENARIOS: Dict[str, Callable[..., Instance]] = {
    "coloring": _make_coloring,
    "australia": _make_australia,
    "queens": _make_queens,
    "latin": _make_latin,
    "sudoku": _make_sudoku,
}


def available_scenarios() -> List[str]:
    """Sorted names of all registered scenario families."""
    return sorted(_SCENARIOS)


def make_instance(scenario: str, *, seed: int = 0, **params: Any) -> Instance:
    """Build one deterministic ``(graph, clamps)`` instance by scenario name."""
    try:
        factory = _SCENARIOS[scenario]
    except KeyError:
        known = ", ".join(available_scenarios())
        raise KeyError(f"unknown scenario {scenario!r}; available: {known}") from None
    return factory(seed, **params)
