"""Sudoku as a generic constraint graph (the paper's original scenario).

81 cell variables with domain 1..9, laid out row-major so the neuron
numbering coincides exactly with the historical
``repro.sudoku.wta.neuron_index`` convention
(``row * 81 + col * 9 + digit - 1``), and one ``all_different`` unit per
row, column and 3x3 box.  ``repro.sudoku.solver.SNNSudokuSolver`` builds
its network from this graph; the clue board maps to unary clamps.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

import numpy as np

from ..graph import ConstraintGraph, Variable

__all__ = [
    "GRID",
    "BOX",
    "sudoku_graph",
    "shared_sudoku_graph",
    "clamps_from_cells",
    "cells_from_values",
    "sudoku_instance",
]

GRID = 9
BOX = 3
_DOMAIN = tuple(range(1, GRID + 1))


def _cell_name(row: int, col: int) -> str:
    return f"cell({row},{col})"


def sudoku_graph() -> ConstraintGraph:
    """The 729-neuron Sudoku constraint graph (Fig. 4 connectivity)."""
    variables = [Variable(_cell_name(r, c), _DOMAIN) for r in range(GRID) for c in range(GRID)]
    graph = ConstraintGraph(variables, name="sudoku")
    for r in range(GRID):
        graph.add_all_different([_cell_name(r, c) for c in range(GRID)])
    for c in range(GRID):
        graph.add_all_different([_cell_name(r, c) for r in range(GRID)])
    for br in range(0, GRID, BOX):
        for bc in range(0, GRID, BOX):
            graph.add_all_different(
                [_cell_name(r, c) for r in range(br, br + BOX) for c in range(bc, bc + BOX)]
            )
    return graph


@lru_cache(maxsize=1)
def shared_sudoku_graph() -> ConstraintGraph:
    """A process-wide shared Sudoku graph (treat as immutable).

    The graph structure is fixed, and its cached per-neuron conflict
    arrays are expensive enough to be worth sharing between every
    ``SNNSudokuSolver`` instance and the static decode helper.
    """
    return sudoku_graph()


def clamps_from_cells(cells: np.ndarray) -> Dict[str, int]:
    """Unary clamps for every filled cell of a 9x9 clue grid (0 = empty)."""
    cells = np.asarray(cells, dtype=np.int64)
    if cells.shape != (GRID, GRID):
        raise ValueError(f"a Sudoku grid must be 9x9, got {cells.shape}")
    rows, cols = np.nonzero(cells)
    return {_cell_name(int(r), int(c)): int(cells[r, c]) for r, c in zip(rows, cols)}


def cells_from_values(values: np.ndarray) -> np.ndarray:
    """Reshape a decoded 81-variable assignment back into a 9x9 grid."""
    return np.asarray(values, dtype=np.int64).reshape(GRID, GRID)


def sudoku_instance(
    seed: int = 100, *, target_clues: int = 28
) -> Tuple[ConstraintGraph, Dict[str, int]]:
    """A generated, uniquely-solvable Sudoku instance as (graph, clamps)."""
    from ...sudoku.puzzles import PuzzleGenerator

    generated = PuzzleGenerator().generate(seed=seed, target_clues=target_clues)
    return shared_sudoku_graph(), clamps_from_cells(generated.puzzle.cells)
