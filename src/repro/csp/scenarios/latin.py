"""Latin-square completion instances for the spiking constraint solver.

An ``n x n`` grid must hold every symbol ``1..n`` exactly once per row and
per column; a *completion* instance clamps a subset of cells from a known
complete square (so every generated instance is satisfiable by
construction, with the source square as witness).  Complete squares are
generated deterministically from the cyclic square by seeded row, column
and symbol permutations.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..graph import ConstraintGraph, Variable

__all__ = ["latin_graph", "random_latin_square", "latin_instance"]


def latin_graph(n: int) -> ConstraintGraph:
    """Constraint graph of an ``n x n`` Latin square (rows/cols all-different)."""
    if n < 1:
        raise ValueError("square size must be positive")
    domain = tuple(range(1, n + 1))
    variables = [Variable(f"cell({r},{c})", domain) for r in range(n) for c in range(n)]
    graph = ConstraintGraph(variables, name=f"latin-{n}")
    for r in range(n):
        graph.add_all_different([f"cell({r},{c})" for c in range(n)])
    for c in range(n):
        graph.add_all_different([f"cell({r},{c})" for r in range(n)])
    return graph


def random_latin_square(n: int, *, seed: int = 0) -> np.ndarray:
    """A deterministic random ``n x n`` Latin square (values ``1..n``).

    The cyclic square ``L[r, c] = (r + c) mod n`` is scrambled by seeded
    row, column and symbol permutations — all three operations preserve
    the Latin property.
    """
    rng = np.random.default_rng(seed)
    base = (np.arange(n)[:, None] + np.arange(n)[None, :]) % n
    rows = rng.permutation(n)
    cols = rng.permutation(n)
    symbols = rng.permutation(n)
    return np.asarray(symbols[base[rows][:, cols]] + 1, dtype=np.int64)


def latin_instance(
    n: int = 4, *, seed: int = 0, clamp_fraction: float = 0.5
) -> Tuple[ConstraintGraph, Dict[str, int]]:
    """A Latin-square completion instance as ``(graph, clamps)``.

    ``clamp_fraction`` of the cells (rounded down, at least one) are
    revealed from a deterministic random complete square; the solver must
    fill in the rest.
    """
    if not 0.0 <= clamp_fraction <= 1.0:
        raise ValueError("clamp_fraction must be within [0, 1]")
    square = random_latin_square(n, seed=seed)
    rng = np.random.default_rng(seed + 1)  # reprolint: disable=RL002 -- frozen corpus offset
    positions = [(r, c) for r in range(n) for c in range(n)]
    rng.shuffle(positions)
    num_clamps = max(1, int(clamp_fraction * n * n))
    clamps = {f"cell({r},{c})": int(square[r, c]) for r, c in positions[:num_clamps]}
    graph = latin_graph(n)
    graph.name = f"latin-{n}-s{seed}"
    return graph, clamps
