"""Graph k-coloring instances for the spiking constraint solver.

Two deterministic instance families:

* :func:`random_coloring_instance` — random graphs with a *planted*
  k-partition: vertices are split into ``k`` balanced groups and edges are
  drawn only between groups, so every instance is k-colorable by
  construction (the planted partition is one witness) while the edge
  density still controls difficulty.
* :func:`australia_instance` — the classic map-coloring example (the
  seven Australian territories, 3-colorable).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..graph import ConstraintGraph, Variable

__all__ = ["random_coloring_instance", "australia_instance", "coloring_graph"]

#: Adjacencies of the Australian map (Tasmania is isolated).
AUSTRALIA_EDGES: Tuple[Tuple[str, str], ...] = (
    ("WA", "NT"),
    ("WA", "SA"),
    ("NT", "SA"),
    ("NT", "Q"),
    ("SA", "Q"),
    ("SA", "NSW"),
    ("SA", "V"),
    ("Q", "NSW"),
    ("NSW", "V"),
)

AUSTRALIA_REGIONS: Tuple[str, ...] = ("WA", "NT", "SA", "Q", "NSW", "V", "T")


def coloring_graph(
    vertices: List[str], edges: List[Tuple[str, str]], num_colors: int, *, name: str = "coloring"
) -> ConstraintGraph:
    """Constraint graph: one variable per vertex, ``not_equal`` per edge."""
    domain = tuple(range(1, num_colors + 1))
    graph = ConstraintGraph([Variable(v, domain) for v in vertices], name=name)
    for a, b in edges:
        graph.add_not_equal(a, b)
    return graph


def random_coloring_instance(
    num_vertices: int = 12,
    num_colors: int = 3,
    *,
    edge_probability: float = 0.6,
    seed: int = 0,
) -> Tuple[ConstraintGraph, Dict[str, int]]:
    """A planted-partition k-colorable random graph as ``(graph, clamps)``.

    Vertices are assigned round-robin to ``num_colors`` groups after a
    seeded shuffle; candidate edges between different groups are kept with
    ``edge_probability``.  The first vertex is clamped to color 1 to break
    the global color-permutation symmetry, which measurably speeds up the
    stochastic search without affecting solvability.
    """
    if num_colors < 2:
        raise ValueError("need at least two colors")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_vertices)
    group = np.empty(num_vertices, dtype=np.int64)
    group[order] = np.arange(num_vertices) % num_colors
    vertices = [f"v{i}" for i in range(num_vertices)]
    edges: List[Tuple[str, str]] = []
    for i in range(num_vertices):
        for j in range(i + 1, num_vertices):
            if group[i] != group[j] and rng.random() < edge_probability:
                edges.append((vertices[i], vertices[j]))
    graph = coloring_graph(
        vertices, edges, num_colors, name=f"coloring-{num_vertices}v{num_colors}c-s{seed}"
    )
    clamps = {vertices[0]: int(group[0]) + 1}
    return graph, clamps


def australia_instance(num_colors: int = 3) -> Tuple[ConstraintGraph, Dict[str, int]]:
    """The Australian map-coloring instance as ``(graph, clamps)``."""
    graph = coloring_graph(
        list(AUSTRALIA_REGIONS),
        list(AUSTRALIA_EDGES),
        num_colors,
        name=f"australia-{num_colors}c",
    )
    # Clamp one region to break the color-permutation symmetry.
    return graph, {"SA": 1}
