"""N-queens instances for the spiking constraint solver.

One variable per board row holding the queen's column (domain ``1..N``);
conflict edges forbid shared columns and shared diagonals.  Solvable for
every ``N >= 4`` (and trivially for ``N = 1``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..graph import ConstraintGraph, Variable

__all__ = ["queens_graph", "queens_instance"]


def queens_graph(n: int) -> ConstraintGraph:
    """The N-queens constraint graph (rows as variables, columns as values)."""
    if n < 1:
        raise ValueError("board size must be positive")
    domain = tuple(range(1, n + 1))
    graph = ConstraintGraph([Variable(f"row{r}", domain) for r in range(n)], name=f"queens-{n}")
    for r1 in range(n):
        for r2 in range(r1 + 1, n):
            graph.add_not_equal(f"row{r1}", f"row{r2}")
            offset = r2 - r1
            for c1 in range(1, n + 1):
                if c1 + offset <= n:
                    graph.add_conflict(f"row{r1}", c1, f"row{r2}", c1 + offset)
                if c1 - offset >= 1:
                    graph.add_conflict(f"row{r1}", c1, f"row{r2}", c1 - offset)
    return graph


def queens_instance(n: int = 6, *, seed: int = 0) -> Tuple[ConstraintGraph, Dict[str, int]]:
    """An N-queens instance as ``(graph, clamps)`` (no clamps needed).

    ``seed`` is accepted for interface uniformity with the other scenario
    generators; the constraint structure of N-queens is fully determined
    by ``n``, so it only distinguishes instances by name.
    """
    graph = queens_graph(n)
    graph.name = f"queens-{n}-s{seed}"
    return graph, {}
