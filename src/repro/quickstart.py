#!/usr/bin/env python3
"""Quickstart: the neuromorphic instructions end-to-end in a few minutes.

This walks through the core pieces of the IzhiRISC-V reproduction:

1. packing Izhikevich parameters for the ``nmldl`` configuration
   instruction and stepping a single neuron on the bit-accurate NPU model,
2. decaying a synaptic current with the DCU shift-add approximation,
3. assembling and running a small RISC-V program that uses the custom
   instructions on the functional simulator,
4. timing the same program on the cycle-accurate 3-stage pipeline model,
5. running a batched 80-20 seed sweep on the vectorised runtime.

Run with ``izhirisc-quickstart`` (installed console script),
``python -m repro.quickstart``, or ``python examples/quickstart.py``.
"""

from __future__ import annotations


def single_neuron_on_the_npu() -> None:
    """Step a regular-spiking neuron with a constant 10 pA-equivalent drive."""
    from repro.isa import IzhikevichParams
    from repro.sim import NMConfig, NPU

    print("=== 1. Single Izhikevich neuron on the NPU (nmpn semantics) ===")
    config = NMConfig()
    config.load_params(IzhikevichParams.regular_spiking())
    config.load_timestep(fine_timestep=False)  # 0.5 ms Euler steps
    npu = NPU(config)

    v, u, spikes = -65.0, -13.0, 0
    for _ in range(2000):  # 1 second of biological time
        v, u, fired = npu.update_float(v, u, isyn=10.0)
        spikes += fired
    print(f"  after 1000 ms at Isyn=10: v={v:.2f} mV, u={u:.2f}, spikes={spikes}\n")


def current_decay_on_the_dcu() -> None:
    """Apply the AMPA-style exponential decay used by nmdec."""
    from repro.sim import DCU, NMConfig

    print("=== 2. Synaptic current decay on the DCU (nmdec semantics) ===")
    config = NMConfig()
    config.load_timestep()
    dcu = DCU(config)
    current = 100.0
    trace = []
    for _ in range(10):
        current = dcu.decay_float(current, tau_select=4)
        trace.append(round(current, 3))
    print(f"  I(t) over 10 steps (tau select 4): {trace}\n")


def run_assembly_program():
    """Assemble a program using the custom instructions and execute it."""
    from repro.fixedpoint import Q15_16, pack_vu_float, unpack_vu_float
    from repro.isa import IzhikevichParams, assemble, disassemble, pack_nmldl_operands
    from repro.sim import DEFAULT_MEMORY_MAP, FunctionalSimulator, Memory

    print("=== 3. Assembly program with nmldl/nmldh/nmpn/nmdec ===")
    rs1, rs2 = pack_nmldl_operands(IzhikevichParams.regular_spiking())
    vu_word = pack_vu_float(-65.0, -13.0)
    isyn_word = Q15_16.to_unsigned(Q15_16.from_float(12.0))

    source = f"""
    .equ VU_ADDR, 0x10000000
    _start:
        li   a6, {rs1}
        li   a7, {rs2}
        nmldl x0, a6, a7          # load a, b, c, d
        li   t0, 0
        nmldh x0, t0, x0          # 0.5 ms timestep, no pin
        li   a0, {vu_word}        # packed (v, u)
        li   a1, {isyn_word}      # synaptic current (Q15.16)
        li   a2, VU_ADDR
        li   s0, 100              # simulate 100 timesteps
        li   s1, 0                # spike counter
    loop:
        nmpn a2, a0, a1           # update neuron, store VU word, a2 <- spike
        add  s1, s1, a2
        li   a2, VU_ADDR
        lw   a0, 0(a2)            # reload the updated state
        li   t1, 4
        nmdec a1, t1, a1          # decay the current
        addi s0, s0, -1
        bnez s0, loop
        li   a0, 0
        li   a7, 93
        ecall
    """
    program = assemble(source)
    print("  first instructions of the assembled program:")
    for line in disassemble(program.words[:6]).splitlines():
        print("   ", line)

    memory = Memory(DEFAULT_MEMORY_MAP())
    sim = FunctionalSimulator(memory)
    sim.load_program(program)
    sim.run()
    v, u = unpack_vu_float(memory.load_word(0x1000_0000))
    print(f"  executed {sim.instret} instructions; spikes={sim.regs[9]}, final v={v:.2f} mV, u={u:.2f}\n")
    return sim


def time_it_on_the_pipeline() -> None:
    """Run the same workload on the cycle-accurate 3-stage pipeline."""
    from repro.codegen import build_eighty_twenty_workload
    from repro.sim import CycleAccurateCore

    print("=== 4. Cycle-accurate timing on the 3-stage DTEK-V pipeline ===")
    workload = build_eighty_twenty_workload(num_neurons=64, num_steps=3, kind="extension")
    core = CycleAccurateCore(workload.make_simulator())
    counters = core.run()
    print(f"  cycles={counters.cycles}  instructions={counters.instructions}")
    print(f"  IPC={counters.ipc:.3f}  IPC_eff={counters.ipc_eff:.3f}  "
          f"hazard stalls={counters.hazard_stall_percent:.2f}%")
    print(f"  I-cache hit rate={counters.icache.hit_rate:.2f}%  "
          f"D-cache hit rate={counters.dcache.hit_rate:.2f}%")
    print(f"  execution time @30 MHz = {counters.execution_time_s(30e6) * 1e3:.3f} ms\n")


def batched_seed_sweep() -> None:
    """Sweep eight seeds of a scaled 80-20 network on the batched runtime."""
    import time

    from repro.runtime import eighty_twenty_seed_sweep

    print("=== 5. Batched 80-20 seed sweep on the vectorised runtime ===")
    seeds = list(range(2003, 2011))
    start = time.perf_counter()
    sweep = eighty_twenty_seed_sweep(seeds, num_steps=200, num_neurons=100)
    elapsed = time.perf_counter() - start
    rates = ", ".join(f"{r.mean_rate_hz():.1f}" for r in sweep.rasters)
    print(f"  B={len(seeds)} networks x 100 neurons x 200 ms in {elapsed * 1e3:.0f} ms")
    print(f"  per-seed mean rates [Hz]: {rates}\n")


def main() -> int:
    """Console entry point (``izhirisc-quickstart``)."""
    single_neuron_on_the_npu()
    current_decay_on_the_dcu()
    run_assembly_program()
    time_it_on_the_pipeline()
    batched_seed_sweep()
    print("Quickstart finished.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
