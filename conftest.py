"""Pytest bootstrap: make ``src/`` importable even without installation.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on machines without network access); this hook
only adds the source tree to ``sys.path`` as a fallback so the test and
benchmark suites run from a plain checkout.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_collection_modifyitems(config, items):
    """Gate the crash-injection suite behind ``REPRO_CHAOS=1``.

    Chaos tests spawn and ``kill -9`` real child processes with
    wall-clock backoff waits; they run in the nightly CI chaos job (and
    locally on demand) rather than on every tier-1 iteration.
    """
    if os.environ.get("REPRO_CHAOS") == "1":
        return
    skip_chaos = pytest.mark.skip(reason="chaos tests run only with REPRO_CHAOS=1")
    for item in items:
        if "chaos" in item.keywords:
            item.add_marker(skip_chaos)
