"""Pytest bootstrap: make ``src/`` importable even without installation.

The project is normally installed with ``pip install -e .`` (or
``python setup.py develop`` on machines without network access); this hook
only adds the source tree to ``sys.path`` as a fallback so the test and
benchmark suites run from a plain checkout.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
