"""Setup shim for environments without network access.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed with ``pip install -e . --no-build-isolation``
(or, on machines where the ``wheel`` package is unavailable and PyPI cannot
be reached, the legacy ``pip install -e . --no-build-isolation
--no-use-pep517``).  The explicit ``package_dir``/``packages`` arguments
below keep the legacy path working on setuptools versions that predate
``[tool.setuptools.packages.find]`` support (< 61).
"""

from setuptools import find_packages, setup

setup(
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
