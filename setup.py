"""Setup shim for environments without network access.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed with ``pip install -e . --no-build-isolation
--no-use-pep517`` (legacy editable mode) on machines where the ``wheel``
package is unavailable and PyPI cannot be reached.
"""

from setuptools import setup

setup()
