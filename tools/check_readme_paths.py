#!/usr/bin/env python3
"""Docs lint: fail if README/docs reference repository paths that don't exist.

Scans Markdown files for path-like tokens inside inline code spans and
fenced code blocks (anything that looks like ``dir/file`` rooted at a
known top-level directory, plus top-level files like ``pyproject.toml``)
and verifies each one exists relative to the repository root.  Keeps the
figure/table index in the README and the module references in the docs
from rotting as the tree evolves.

GitHub Actions workflow files (``.github/workflows/*.yml``) are checked
too — every line is treated as code — so CI steps that invoke scripts or
benchmark files (``tools/check_bench_regression.py``,
``benchmarks/bench_csp_solver.py``, ...) break the docs lint instead of
the live pipeline when a referenced file is moved.

Usage:  python tools/check_readme_paths.py [files...]
        (defaults to README.md, docs/*.md and .github/workflows/*.yml)

Exit status: 0 when every referenced path exists, 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Top-level directories whose mention must resolve to a real path.
KNOWN_ROOTS = ("src", "tests", "benchmarks", "examples", "docs", "tools", ".github")

#: Path prefixes of generated (gitignored) outputs: referenced from docs
#: and CI but absent in a fresh checkout, so existence is not required.
#: The committed reference copies under ``benchmarks/baselines/`` do not
#: match these prefixes and stay fully checked.
GENERATED_PREFIXES = ("benchmarks/BENCH_",)

#: Top-level files whose mention must resolve.
KNOWN_FILES = (
    "README.md",
    "ROADMAP.md",
    "CHANGES.md",
    "PAPER.md",
    "PAPERS.md",
    "SNIPPETS.md",
    "pyproject.toml",
    "setup.py",
    "conftest.py",
)

_PATH_RE = re.compile(
    r"(?<![\w./-])((?:" + "|".join(re.escape(r) for r in KNOWN_ROOTS) + r")/[\w./-]+)"
)
_CODE_SPAN_RE = re.compile(r"`([^`\n]+)`")
_FENCE_RE = re.compile(r"^(```|~~~)")


def _candidate_paths(text: str, *, all_code: bool = False) -> set:
    """Path-like tokens from code spans and fenced code blocks.

    With ``all_code=True`` (workflow / script files) every line is
    scanned, not just Markdown code spans.
    """
    candidates = set()
    in_fence = False
    for line in text.splitlines():
        if not all_code and _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if all_code or in_fence:
            segments = [line]
        else:
            segments = [m.group(1) for m in _CODE_SPAN_RE.finditer(line)]
        for segment in segments:
            for match in _PATH_RE.finditer(segment):
                candidates.add(match.group(1))
            for name in KNOWN_FILES:
                if re.search(rf"(?<![\w./-]){re.escape(name)}(?![\w-])", segment):
                    candidates.add(name)
    return candidates


def _normalise(token: str) -> str:
    """Strip trailing punctuation; reduce glob/placeholder refs to their dir."""
    token = token.rstrip(".,:;")
    # A token ending in "_" or "-" is the prefix of a glob like
    # "benchmarks/bench_*.py" (the path regex stops at "*"): validate the
    # directory part instead of the truncated filename.
    if token.endswith(("_", "-")):
        token = token.rsplit("/", 1)[0] if "/" in token else ""
    return token


def check_file(markdown: Path) -> list:
    text = markdown.read_text(encoding="utf-8")
    all_code = markdown.suffix in (".yml", ".yaml")
    missing = []
    for token in sorted(_candidate_paths(text, all_code=all_code)):
        cleaned = _normalise(token)
        if not cleaned or cleaned.endswith("/"):
            cleaned = cleaned.rstrip("/")
        if not cleaned:
            continue
        if cleaned.startswith(GENERATED_PREFIXES):
            continue
        target = REPO_ROOT / cleaned
        if not target.exists():
            missing.append((markdown.relative_to(REPO_ROOT), token))
    return missing


def main(argv: list) -> int:
    if argv:
        files = [Path(a).resolve() for a in argv]
    else:
        workflows = REPO_ROOT / ".github" / "workflows"
        files = (
            [REPO_ROOT / "README.md"]
            + sorted((REPO_ROOT / "docs").glob("*.md"))
            + sorted(workflows.glob("*.yml"))
            + sorted(workflows.glob("*.yaml"))
        )
    files = [f for f in files if f.exists()]
    if not files:
        print("check_readme_paths: no markdown files found", file=sys.stderr)
        return 1
    failures = []
    for markdown in files:
        failures.extend(check_file(markdown))
    if failures:
        print("check_readme_paths: references to nonexistent paths:", file=sys.stderr)
        for source, token in failures:
            print(f"  {source}: {token}", file=sys.stderr)
        return 1
    print(f"check_readme_paths: OK ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
