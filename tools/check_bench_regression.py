#!/usr/bin/env python3
"""Benchmark regression gate: compare emitted BENCH_*.json to the baseline.

The benchmark suite emits machine-readable result files
(``benchmarks/BENCH_iss.json`` from ``benchmarks/bench_iss_throughput.py``,
``benchmarks/BENCH_csp.json`` from ``benchmarks/bench_csp_solver.py`` and
``benchmarks/BENCH_batched.json`` from
``benchmarks/bench_batched_runtime.py``);
this tool compares them against the committed baselines in
``benchmarks/baselines/`` and fails when a tracked higher-is-better
metric dropped by more than the allowed fraction (default 30%).

Comparisons are *configuration-aware*: a metric is only compared when the
run configuration recorded next to it (workload label, instance counts,
step budgets) matches the baseline's, so a CI smoke run at reduced sizes
skips the mismatching entries with a notice instead of producing a bogus
verdict.  Shared CI runners can relax the allowed drop through
``BENCH_REGRESSION_MAX_DROP`` (the 0.30 default is the local /
contractual gate).

Usage:  python tools/check_bench_regression.py [--max-drop 0.30]
            [--baseline-dir benchmarks/baselines] [--current-dir benchmarks]
            [--allow-missing]

Exit status: 0 when every comparable metric is within bounds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Tracked result files: name -> comparison strategy
#: ("iss" | "csp" | "batched" | "serve" | "sweep").
BENCH_FILES = {
    "BENCH_iss.json": "iss",
    "BENCH_csp.json": "csp",
    "BENCH_batched.json": "batched",
    "BENCH_serve.json": "serve",
    "BENCH_sweep.json": "sweep",
}


def _load(path: Path):
    with open(path) as fh:
        return json.load(fh)


class Comparator:
    def __init__(self, max_drop: float) -> None:
        self.max_drop = max_drop
        self.failures = []
        self.notices = []
        self.checked = 0

    def check(self, label: str, metric: str, baseline: float, current: float) -> None:
        """Fail when a higher-is-better metric dropped more than max_drop."""
        self.checked += 1
        if baseline <= 0:
            self.notices.append(f"{label}: baseline {metric} is {baseline}; skipping")
            return
        drop = (baseline - current) / baseline
        if drop > self.max_drop:
            self.failures.append(
                f"{label}: {metric} dropped {drop:.0%} "
                f"(baseline {baseline:.4g} -> current {current:.4g}, "
                f"allowed {self.max_drop:.0%})"
            )

    def check_lower(self, label: str, metric: str, baseline: float, current: float) -> None:
        """Fail when a lower-is-better metric (e.g. latency) grew too much."""
        self.checked += 1
        if baseline <= 0:
            self.notices.append(f"{label}: baseline {metric} is {baseline}; skipping")
            return
        growth = (current - baseline) / baseline
        if growth > self.max_drop:
            self.failures.append(
                f"{label}: {metric} grew {growth:.0%} "
                f"(baseline {baseline:.4g} -> current {current:.4g}, "
                f"allowed {self.max_drop:.0%})"
            )

    def skip(self, message: str) -> None:
        self.notices.append(message)


def compare_iss(baseline: dict, current: dict, cmp: Comparator) -> None:
    """ISS throughput file: one flat record keyed by a workload label."""
    if baseline.get("workload") != current.get("workload"):
        cmp.skip(
            f"BENCH_iss: workload {current.get('workload')!r} does not match "
            f"baseline {baseline.get('workload')!r}; skipping throughput comparison"
        )
        return
    cmp.check("BENCH_iss", "ips_fast", baseline.get("ips_fast", 0), current.get("ips_fast", 0))
    cmp.check("BENCH_iss", "speedup", baseline.get("speedup", 0), current.get("speedup", 0))


def _portfolio_config(record: dict) -> object:
    """The configuration fingerprint of a portfolio record (pool layout)."""
    pools = record.get("pools", {})
    keys = ("num_instances", "num_neurons", "max_steps", "base_budget", "max_parallel", "schedule")
    return {name: tuple(pool.get(k) for k in keys) for name, pool in sorted(pools.items())}


def compare_csp_portfolio(base: dict, cur: dict, cmp: Comparator) -> None:
    """The restart-portfolio record: solve rate and the update ratio.

    ``update_ratio`` is fixed-seed over portfolio total neuron updates at
    equal step budget — higher is better, and a drop means the portfolio
    engine lost efficiency relative to the fixed-seed baseline.  Both
    metrics are deterministic (fully seeded), so any drop is a real code
    change, not runner noise.
    """
    if _portfolio_config(base) != _portfolio_config(cur):
        cmp.skip(
            "BENCH_csp[portfolio]: hard-pool configuration differs from baseline; "
            "skipping comparison"
        )
        return
    label = "BENCH_csp[portfolio]"
    cmp.check(
        label,
        "solve_rate_portfolio",
        base.get("solve_rate_portfolio", 0),
        cur.get("solve_rate_portfolio", 0),
    )
    cmp.check(label, "update_ratio", base.get("update_ratio", 0), cur.get("update_ratio", 0))


def compare_csp(baseline: dict, current: dict, cmp: Comparator) -> None:
    """CSP solver file: one record per scenario family plus the portfolio."""
    for scenario, base in sorted(baseline.items()):
        cur = current.get(scenario)
        if cur is None:
            cmp.skip(f"BENCH_csp[{scenario}]: missing from current run; skipping")
            continue
        if scenario == "portfolio":
            compare_csp_portfolio(base, cur, cmp)
            continue
        config_keys = ("num_instances", "num_neurons", "max_steps", "throughput_steps")
        if any(base.get(k) != cur.get(k) for k in config_keys):
            cmp.skip(
                f"BENCH_csp[{scenario}]: run configuration differs from baseline; "
                "skipping comparison"
            )
            continue
        label = f"BENCH_csp[{scenario}]"
        cmp.check(label, "solve_rate", base.get("solve_rate", 0), cur.get("solve_rate", 0))
        cmp.check(
            label,
            "updates_per_second",
            base.get("updates_per_second", 0),
            cur.get("updates_per_second", 0),
        )


def compare_batched(baseline: dict, current: dict, cmp: Comparator) -> None:
    """Batched-runtime file: one record per exact-mode solve workload."""
    for workload, base in sorted(baseline.items()):
        cur = current.get(workload)
        if cur is None:
            cmp.skip(f"BENCH_batched[{workload}]: missing from current run; skipping")
            continue
        config_keys = ("batch", "num_neurons", "max_steps", "check_interval")
        if any(base.get(k) != cur.get(k) for k in config_keys):
            cmp.skip(
                f"BENCH_batched[{workload}]: run configuration differs from baseline; "
                "skipping comparison"
            )
            continue
        label = f"BENCH_batched[{workload}]"
        cmp.check(label, "speedup", base.get("speedup", 0), cur.get("speedup", 0))
        cmp.check(
            label,
            "solves_per_second",
            base.get("solves_per_second", 0),
            cur.get("solves_per_second", 0),
        )


def compare_serve(baseline: dict, current: dict, cmp: Comparator) -> None:
    """Solve-service file: one record per load scenario.

    ``solves_per_second`` is wall-clock (gated with the usual slack for
    runner noise); ``latency_steps_p99``, ``solve_rate`` and
    ``cache_hit_rate`` are fully deterministic for a seeded workload, so
    any movement there is a real scheduling or dedup change.
    """
    for scenario, base in sorted(baseline.items()):
        cur = current.get(scenario)
        if cur is None:
            cmp.skip(f"BENCH_serve[{scenario}]: missing from current run; skipping")
            continue
        config_keys = (
            "capacity",
            "num_clients",
            "requests_per_client",
            "unique_instances",
            "mean_interarrival_steps",
            "max_steps",
            "num_neurons",
            "scenario",
        )
        if any(base.get(k) != cur.get(k) for k in config_keys):
            cmp.skip(
                f"BENCH_serve[{scenario}]: run configuration differs from baseline; "
                "skipping comparison"
            )
            continue
        label = f"BENCH_serve[{scenario}]"
        cmp.check(
            label,
            "solves_per_second",
            base.get("solves_per_second", 0),
            cur.get("solves_per_second", 0),
        )
        cmp.check(label, "solve_rate", base.get("solve_rate", 0), cur.get("solve_rate", 0))
        cmp.check(
            label, "cache_hit_rate", base.get("cache_hit_rate", 0), cur.get("cache_hit_rate", 0)
        )
        cmp.check_lower(
            label,
            "latency_steps_p99",
            base.get("latency_steps_p99", 0),
            cur.get("latency_steps_p99", 0),
        )


def compare_sweep(baseline: dict, current: dict, cmp: Comparator) -> None:
    """Sweep-fabric file: the scaling record plus the resume record.

    ``efficiency``/``speedup`` are wall-clock (usual runner slack);
    ``solve_rate`` and the resume ``cache_hit_fraction`` are fully
    deterministic for a seeded sweep, so any movement there is a real
    scheduling, seeding or cache-keying change.
    """
    for record, base in sorted(baseline.items()):
        cur = current.get(record)
        if cur is None:
            cmp.skip(f"BENCH_sweep[{record}]: missing from current run; skipping")
            continue
        config_keys = ("count", "max_steps", "num_vertices", "workers")
        if any(base.get(k) != cur.get(k) for k in config_keys):
            cmp.skip(
                f"BENCH_sweep[{record}]: run configuration differs from baseline; "
                "skipping comparison"
            )
            continue
        label = f"BENCH_sweep[{record}]"
        if record == "pooled_csp_resume":
            cmp.check(
                label,
                "cache_hit_fraction",
                base.get("cache_hit_fraction", 0),
                cur.get("cache_hit_fraction", 0),
            )
            continue
        cmp.check(label, "efficiency", base.get("efficiency", 0), cur.get("efficiency", 0))
        cmp.check(label, "speedup", base.get("speedup", 0), cur.get("speedup", 0))
        cmp.check(label, "solve_rate", base.get("solve_rate", 0), cur.get("solve_rate", 0))
        cmp.check(
            label,
            "tasks_per_second",
            base.get("tasks_per_second", 0),
            cur.get("tasks_per_second", 0),
        )


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--max-drop",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_MAX_DROP", "0.30")),
        help="maximum allowed fractional drop of a higher-is-better metric",
    )
    parser.add_argument("--baseline-dir", type=Path, default=REPO_ROOT / "benchmarks" / "baselines")
    parser.add_argument("--current-dir", type=Path, default=REPO_ROOT / "benchmarks")
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="treat missing current result files as a notice instead of an error",
    )
    args = parser.parse_args(argv)

    cmp = Comparator(args.max_drop)
    missing = []
    for name, kind in BENCH_FILES.items():
        baseline_path = args.baseline_dir / name
        current_path = args.current_dir / name
        if not baseline_path.exists():
            cmp.skip(f"{name}: no committed baseline at {baseline_path}; skipping")
            continue
        if not current_path.exists():
            if args.allow_missing:
                cmp.skip(f"{name}: no current results at {current_path}; skipping")
            else:
                missing.append(str(current_path))
            continue
        baseline, current = _load(baseline_path), _load(current_path)
        if kind == "iss":
            compare_iss(baseline, current, cmp)
        elif kind == "batched":
            compare_batched(baseline, current, cmp)
        elif kind == "serve":
            compare_serve(baseline, current, cmp)
        elif kind == "sweep":
            compare_sweep(baseline, current, cmp)
        else:
            compare_csp(baseline, current, cmp)

    for notice in cmp.notices:
        print(f"note: {notice}")
    if missing:
        print("check_bench_regression: missing benchmark results:", file=sys.stderr)
        for path in missing:
            print(f"  {path} (run the emitting benchmark first)", file=sys.stderr)
        return 1
    if cmp.failures:
        print("check_bench_regression: throughput regressions detected:", file=sys.stderr)
        for failure in cmp.failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"check_bench_regression: OK "
        f"({cmp.checked} metrics within {args.max_drop:.0%} of baseline)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
