"""CLI: ``python -m tools.reprolint [roots...]``.

Exit codes: 0 clean, 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import __version__
from .config import load_config
from .engine import run_reprolint
from .rules import get_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant lints for the reproduction repo "
        "(layering, determinism, exact-int, crash safety, worker hygiene).",
    )
    parser.add_argument(
        "roots",
        nargs="*",
        help="repo-relative files/directories to lint (default: the configured roots)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="stdout format (default: human)",
    )
    parser.add_argument(
        "--json-report",
        metavar="PATH",
        help="additionally write a machine-readable JSON report to PATH",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    parser.add_argument(
        "--version", action="version", version=f"reprolint {__version__}"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in get_rules():
            print(f"{rule.rule_id}  {rule.name}: {rule.description}")
        return 0

    config = load_config(REPO_ROOT)
    roots = tuple(args.roots) if args.roots else config.roots
    try:
        result = run_reprolint(REPO_ROOT, roots, config)
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    if args.json_report:
        result.write_json_report(Path(args.json_report))
    if args.format == "json":
        print(json.dumps(result.as_json(), indent=2, sort_keys=True))
    else:
        print(result.render_text())
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
