"""Configuration model for reprolint.

Defaults below encode the repo's real contracts; ``[tool.reprolint]`` in
``pyproject.toml`` can override any of them (keys may be spelled in
kebab-case, TOML style, or snake_case).  On interpreters without
``tomllib``/``tomli`` the built-in defaults — kept identical to the
committed ``pyproject.toml`` — are used, so the lint behaves the same
everywhere it can run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple


@dataclass(frozen=True)
class LayeringConfig:
    """RL001 — declarative import-layer map plus the recomposition seam."""

    #: Repo-relative root of the layered package tree.
    package_root: str = "src/repro"
    #: package name -> layer level; imports may only point level-downward
    #: (or sideways) at module scope.
    layers: Mapping[str, int] = field(
        default_factory=lambda: {
            "isa": 0,
            "sim": 0,
            "fixedpoint": 0,
            "snn": 0,
            "runtime": 1,
            "csp": 2,
            "serve": 3,
        }
    )
    #: Adapter packages sit outside the layer stack: they may import any
    #: layer, and layered code may import them only lazily (function
    #: scope), never at module scope.
    adapters: Tuple[str, ...] = ("harness", "sudoku", "codegen", "hw", "quickstart")
    #: The only subtree allowed to call the batch recomposition mutators
    #: directly (absorbed from the retired ``tools/check_layering.py``).
    seam_owner: str = "src/repro/runtime"
    #: Mutator names owned by ``SlotEngine.recompose``.
    seam_methods: Tuple[str, ...] = ("retain", "extend")


@dataclass(frozen=True)
class DeterminismConfig:
    """RL002 — seeding discipline and wall-clock hygiene."""

    #: Subtrees where RNG construction/seeding is checked.
    rng_scope: Tuple[str, ...] = ("src/repro", "benchmarks", "tools")
    #: Subtrees that must be step-deterministic (no wall-clock reads).
    clock_scope: Tuple[str, ...] = ("src/repro",)
    #: Timing/metrics modules exempt from the wall-clock check (sweep
    #: fabric lease clocks, report timing, CLI stopwatch).
    clock_allow: Tuple[str, ...] = (
        "src/repro/runtime/sweep.py",
        "src/repro/runtime/registry.py",
        "src/repro/quickstart.py",
    )
    #: ``time.<attr>`` reads treated as wall-clock sources.
    clock_attrs: Tuple[str, ...] = (
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    )


@dataclass(frozen=True)
class ExactIntConfig:
    """RL003 — float contamination inside ``# reprolint: exact-int`` regions."""

    #: Subtrees where the region markers are honoured.
    scope: Tuple[str, ...] = ("src/repro",)


@dataclass(frozen=True)
class CrashSafetyConfig:
    """RL004 — durable writes go through the atomic helper; os._exit is gated."""

    #: Modules whose file writes must be temp+fsync+rename atomic.
    durable_modules: Tuple[str, ...] = (
        "src/repro/runtime/checkpoint.py",
        "src/repro/runtime/cache.py",
        "src/repro/serve/journal.py",
    )
    #: Subtrees where ``os._exit`` is only legal as the FaultPlan crash seam.
    exit_scope: Tuple[str, ...] = ("src/repro",)
    #: The attribute name marking a sanctioned fault-injection exit.
    fault_exit_attr: str = "CRASH_EXIT_CODE"


@dataclass(frozen=True)
class WorkerHygieneConfig:
    """RL005 — sweep task functions must be picklable and side-effect free."""

    #: Constructors whose ``fn`` argument is a sweep task function.
    spec_names: Tuple[str, ...] = ("SweepSpec",)
    #: Executor methods whose first argument is a task function.
    executor_methods: Tuple[str, ...] = ("run", "map_seeds")


@dataclass(frozen=True)
class ReprolintConfig:
    """Top-level reprolint configuration."""

    roots: Tuple[str, ...] = ("src", "tools", "benchmarks")
    exclude: Tuple[str, ...] = ("__pycache__", ".git", "build", "dist", ".venv")
    #: Rule ids disabled wholesale (e.g. ``["RL005"]``).
    disable: Tuple[str, ...] = ()
    #: Flag ``# reprolint: disable=...`` comments that suppressed nothing.
    check_unused_suppressions: bool = True
    rl001: LayeringConfig = field(default_factory=LayeringConfig)
    rl002: DeterminismConfig = field(default_factory=DeterminismConfig)
    rl003: ExactIntConfig = field(default_factory=ExactIntConfig)
    rl004: CrashSafetyConfig = field(default_factory=CrashSafetyConfig)
    rl005: WorkerHygieneConfig = field(default_factory=WorkerHygieneConfig)


def _load_toml(path: Path) -> Optional[Dict[str, Any]]:
    try:
        import tomllib  # Python >= 3.11
    except ImportError:  # pragma: no cover - 3.10 fallback
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            return None
    try:
        with open(path, "rb") as handle:
            return tomllib.load(handle)
    except (OSError, ValueError):
        return None


def _normalise(table: Mapping[str, Any]) -> Dict[str, Any]:
    """kebab-case TOML keys -> snake_case dataclass fields."""
    return {str(key).replace("-", "_"): value for key, value in table.items()}


def _coerce(value: Any, template: Any) -> Any:
    """Coerce a TOML value onto the default's shape (tuples stay tuples)."""
    if isinstance(template, tuple) and isinstance(value, list):
        return tuple(value)
    if isinstance(template, Mapping) and isinstance(value, Mapping):
        return {str(key): int(level) for key, level in value.items()}
    return value


def _apply(instance: Any, table: Mapping[str, Any]) -> Any:
    updates: Dict[str, Any] = {}
    known = {f.name: getattr(instance, f.name) for f in fields(instance)}
    for key, value in _normalise(table).items():
        if key in known and not isinstance(known[key], (LayeringConfig, DeterminismConfig, ExactIntConfig, CrashSafetyConfig, WorkerHygieneConfig)):
            updates[key] = _coerce(value, known[key])
    return replace(instance, **updates) if updates else instance


def load_config(repo_root: Path, *, pyproject: Optional[Path] = None) -> ReprolintConfig:
    """Build the effective config from ``pyproject.toml`` under ``repo_root``."""
    config = ReprolintConfig()
    path = pyproject if pyproject is not None else repo_root / "pyproject.toml"
    data = _load_toml(path)
    if not data:
        return config
    table = data.get("tool", {}).get("reprolint")
    if not isinstance(table, Mapping):
        return config
    config = _apply(config, table)
    for name in ("rl001", "rl002", "rl003", "rl004", "rl005"):
        sub = table.get(name)
        if isinstance(sub, Mapping):
            config = replace(config, **{name: _apply(getattr(config, name), sub)})
    return config
