"""reprolint engine: file model, suppression directives, runner, reports.

Directives (comments, anywhere a comment is legal)::

    # reprolint: disable=RL002 -- reason           (this line)
    # reprolint: disable-next-line=RL001,RL004     (the following line)
    # reprolint: disable-file=RL005                 (the whole file)
    # reprolint: exact-int                          (RL003: next/this def or class)
    # reprolint: exact-int-file                     (RL003: the whole file)

Every ``disable*`` directive must suppress at least one finding, or it
is itself reported (``RL000`` unused-suppression) — stale waivers are
how invariants rot silently.  Exit codes: ``0`` clean, ``1`` findings,
``2`` usage/config error.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .config import ReprolintConfig

#: Framework-level findings (parse failures, unused suppressions,
#: dangling region markers).  Not suppressible.
FRAMEWORK_RULE = "RL000"

_DIRECTIVE_RE = re.compile(
    r"#\s*reprolint:\s*"
    r"(?P<kind>disable-next-line|disable-file|disable|exact-int-file|exact-int)"
    r"(?:\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+?))?"
    r"\s*(?:--.*)?$"
)


@dataclass(frozen=True)
class Violation:
    """One finding: ``rule`` at ``path:line``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Directive:
    """One parsed ``# reprolint:`` comment."""

    kind: str
    line: int
    col: int
    rules: Tuple[str, ...]
    used: bool = False


@dataclass
class SourceFile:
    """A parsed source file plus its reprolint directives."""

    path: Path
    rel: str
    text: str
    tree: Optional[ast.AST]
    parse_error: Optional[str]
    directives: List[Directive] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: Path, rel: str) -> "SourceFile":
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return cls(path, rel, "", None, f"unreadable: {exc}")
        tree: Optional[ast.AST] = None
        error: Optional[str] = None
        try:
            tree = ast.parse(text, filename=rel)
        except SyntaxError as exc:
            error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return cls(path, rel, text, tree, error, directives=_parse_directives(text))

    # ------------------------------------------------------------------ #
    def suppression_for(self, rule: str, line: int) -> Optional[Directive]:
        """The directive suppressing ``rule`` at ``line``, if any."""
        for directive in self.directives:
            if rule not in directive.rules:
                continue
            if directive.kind == "disable" and directive.line == line:
                return directive
            if directive.kind == "disable-next-line" and directive.line == line - 1:
                return directive
            if directive.kind == "disable-file":
                return directive
        return None

    def exact_int_markers(self) -> List[Directive]:
        return [d for d in self.directives if d.kind == "exact-int"]

    def has_exact_int_file_marker(self) -> bool:
        return any(d.kind == "exact-int-file" for d in self.directives)


def _parse_directives(text: str) -> List[Directive]:
    directives: List[Directive] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [
            (token.start[0], token.start[1], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # Fall back to a line scan; good enough for directive comments,
        # which conventionally sit alone or at end of line.
        comments = [
            (number, line.index("#"), line[line.index("#") :])
            for number, line in enumerate(text.splitlines(), start=1)
            if "#" in line
        ]
    for line, col, comment in comments:
        match = _DIRECTIVE_RE.search(comment)
        if not match:
            continue
        rules = tuple(
            part.strip().upper()
            for part in (match.group("rules") or "").split(",")
            if part.strip()
        )
        directives.append(Directive(match.group("kind"), line, col, rules))
    return directives


# ---------------------------------------------------------------------- #
# Runner
# ---------------------------------------------------------------------- #
@dataclass
class LintResult:
    """Outcome of one reprolint run."""

    violations: List[Violation]
    files_checked: int
    rules_run: Tuple[str, ...]
    roots: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for violation in self.violations:
            totals[violation.rule] = totals.get(violation.rule, 0) + 1
        return totals

    def render_text(self) -> str:
        lines = [violation.render() for violation in self.violations]
        summary = ", ".join(f"{rule}={count}" for rule, count in sorted(self.counts().items()))
        if self.violations:
            lines.append(f"reprolint: {len(self.violations)} finding(s) [{summary}]")
        else:
            lines.append(
                f"reprolint: OK ({self.files_checked} files, rules {', '.join(self.rules_run)})"
            )
        return "\n".join(lines)

    def as_json(self) -> Dict[str, object]:
        return {
            "tool": "reprolint",
            "roots": list(self.roots),
            "files_checked": self.files_checked,
            "rules": list(self.rules_run),
            "summary": self.counts(),
            "violations": [violation.as_dict() for violation in self.violations],
        }

    def write_json_report(self, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_json(), indent=2, sort_keys=True) + "\n")


def collect_files(
    repo_root: Path, roots: Sequence[str], exclude: Sequence[str]
) -> List[Tuple[Path, str]]:
    """``(absolute, repo-relative-posix)`` for every lintable ``.py`` file."""
    seen: Set[str] = set()
    found: List[Tuple[Path, str]] = []
    for root in roots:
        base = (repo_root / root).resolve()
        if base.is_file() and base.suffix == ".py":
            paths: Iterable[Path] = [base]
        elif base.is_dir():
            paths = sorted(base.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such lint root: {root}")
        for path in paths:
            try:
                rel = path.resolve().relative_to(repo_root.resolve()).as_posix()
            except ValueError:
                rel = path.as_posix()
            if rel in seen or any(part in exclude for part in Path(rel).parts):
                continue
            seen.add(rel)
            found.append((path, rel))
    return found


def run_reprolint(
    repo_root: Path,
    roots: Sequence[str],
    config: ReprolintConfig,
) -> LintResult:
    """Lint ``roots`` (repo-relative) under ``repo_root`` with ``config``."""
    from .rules import get_rules

    rules = [rule for rule in get_rules() if rule.rule_id not in config.disable]
    files = collect_files(repo_root, roots, config.exclude)
    violations: List[Violation] = []
    sources: List[SourceFile] = []
    for path, rel in files:
        source = SourceFile.load(path, rel)
        sources.append(source)
        if source.parse_error is not None:
            violations.append(
                Violation(FRAMEWORK_RULE, rel, 1, 0, f"cannot lint file ({source.parse_error})")
            )
            continue
        for rule in rules:
            for violation in rule.check(source, config):
                directive = source.suppression_for(violation.rule, violation.line)
                if directive is not None:
                    directive.used = True
                else:
                    violations.append(violation)
    if config.check_unused_suppressions:
        for source in sources:
            for directive in source.directives:
                if directive.kind.startswith("disable") and not directive.used:
                    violations.append(
                        Violation(
                            FRAMEWORK_RULE,
                            source.rel,
                            directive.line,
                            directive.col,
                            "unused suppression "
                            f"({directive.kind}={','.join(directive.rules) or '<none>'}) — "
                            "remove it or fix the rule list",
                        )
                    )
    violations.sort(key=lambda v: (v.path, v.line, v.rule, v.col))
    return LintResult(
        violations=violations,
        files_checked=len(files),
        rules_run=tuple(rule.rule_id for rule in rules),
        roots=tuple(roots),
    )


# ---------------------------------------------------------------------- #
# Shared AST helpers used by several rules
# ---------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted source of an expression (``a.b.c`` -> "a.b.c")."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute, else ``None``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def in_scope(rel: str, prefixes: Sequence[str]) -> bool:
    """Is repo-relative ``rel`` under any of the ``prefixes``?"""
    return any(rel == prefix or rel.startswith(prefix.rstrip("/") + "/") for prefix in prefixes)
