"""reprolint — AST-based invariant lints for the reproduction repo.

The repo's correctness story rests on a handful of contracts that are
easy to regress through ordinary refactors: strict import layering with
the batch-recomposition seam (RL001), SeedSequence-routed seeding and
injectable clocks (RL002), bit-exact integer kernels (RL003), atomic
temp+fsync+rename persistence (RL004) and picklable, side-effect-free
sweep task functions (RL005).  ``reprolint`` machine-checks all five::

    python -m tools.reprolint src tools benchmarks

Each rule is a plugin registered in :mod:`tools.reprolint.rules`;
per-rule configuration lives under ``[tool.reprolint]`` in
``pyproject.toml`` and individual findings can be waived inline with
``# reprolint: disable=RLxxx -- reason`` comments (unused waivers are
themselves flagged).  See ``docs/LINTING.md`` for the full contract
catalogue.
"""

from .config import ReprolintConfig, load_config
from .engine import LintResult, SourceFile, Violation, run_reprolint

__all__ = [
    "LintResult",
    "ReprolintConfig",
    "SourceFile",
    "Violation",
    "load_config",
    "run_reprolint",
]

__version__ = "1.0"
