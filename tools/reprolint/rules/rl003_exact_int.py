"""RL003 — float contamination inside ``# reprolint: exact-int`` regions.

The fused batch engine's bit-exactness proof (see
``runtime/batch.py``) rests on regions whose arithmetic is pure
int64: the Q15.16 integer-CSR propagation, the fixed-point Izhikevich
substep and the :mod:`repro.fixedpoint` op kernels.  One stray float
literal, true division or ``astype(float)`` silently turns "exact in
any summation order" into "ULP-dependent", and no test catches it until
a differential suite happens to cross the changed path.

Mark a region with a ``# reprolint: exact-int`` comment on (or directly
above) a ``def``/``class``, or ``# reprolint: exact-int-file`` for a
whole module.  Inside a marked region the rule flags:

* float (and complex) literals,
* true division (``/``, including ``/=``) — integer paths use shifts
  and ``//``,
* ``.astype(float...)`` and ``float(...)`` / ``np.float64(...)`` casts.

Deliberate float excursions that are proven exact (e.g. integer-valued
float64 payloads below 2^53) carry inline ``disable=RL003`` waivers
with the exactness argument in the comment.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from ..config import ReprolintConfig
from ..engine import SourceFile, Violation, in_scope, terminal_name
from . import register

_FLOAT_TYPE_NAMES = {
    "float",
    "float16",
    "float32",
    "float64",
    "float128",
    "half",
    "single",
    "double",
    "longdouble",
}

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _is_float_type(node: ast.AST) -> bool:
    name = terminal_name(node)
    if name is not None:
        return name in _FLOAT_TYPE_NAMES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.startswith("float") or node.value in ("f2", "f4", "f8", "d")
    return False


@register
class ExactIntRule:
    rule_id = "RL003"
    name = "exact-int"
    description = "no float literals, true division or float casts in exact-int regions"

    def check(self, source: SourceFile, config: ReprolintConfig) -> List[Violation]:
        if source.tree is None or not in_scope(source.rel, config.rl003.scope):
            return []
        violations: List[Violation] = []
        spans = self._marked_spans(source, violations)
        if not spans:
            return violations
        for node in ast.walk(source.tree):
            lineno = getattr(node, "lineno", None)
            if lineno is None or not any(lo <= lineno <= hi for lo, hi in spans):
                continue
            violations.extend(self._check_node(source, node))
        return violations

    # ------------------------------------------------------------------ #
    def _marked_spans(
        self, source: SourceFile, violations: List[Violation]
    ) -> List[Tuple[int, int]]:
        if source.has_exact_int_file_marker():
            return [(1, len(source.text.splitlines()) + 1)]
        markers = source.exact_int_markers()
        if not markers:
            return []
        scopes = [node for node in ast.walk(source.tree) if isinstance(node, _SCOPE_NODES)]
        spans: List[Tuple[int, int]] = []
        for marker in markers:
            target = self._attach(marker.line, scopes)
            if target is None:
                violations.append(
                    Violation(
                        self.rule_id,
                        source.rel,
                        marker.line,
                        marker.col,
                        "dangling exact-int marker: no def/class starts on or "
                        "directly below this line",
                    )
                )
                continue
            spans.append((target.lineno, target.end_lineno or target.lineno))
        return spans

    @staticmethod
    def _attach(line: int, scopes) -> Optional[ast.stmt]:
        for node in scopes:
            start = min([node.lineno] + [d.lineno for d in node.decorator_list])
            # Trailing comment on the def line, or a standalone comment
            # directly above the def (decorators included).
            if line == node.lineno or line == start - 1:
                return node
        return None

    # ------------------------------------------------------------------ #
    def _check_node(self, source: SourceFile, node: ast.AST) -> List[Violation]:
        hits: List[Violation] = []

        def flag(message: str) -> None:
            hits.append(
                Violation(self.rule_id, source.rel, node.lineno, node.col_offset, message)
            )

        if isinstance(node, ast.Constant) and isinstance(node.value, (float, complex)):
            flag(
                f"float literal {node.value!r} in an exact-int region — integer "
                "paths must stay in int64 (scale by shifts, not float factors)"
            )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            flag(
                "true division in an exact-int region — use shifts or floor "
                "division; '/' produces float64"
            )
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
            flag("true division ('/=') in an exact-int region — use shifts or '//='")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "astype":
                dtype_args = list(node.args) + [kw.value for kw in node.keywords]
                if any(_is_float_type(arg) for arg in dtype_args):
                    flag(
                        "astype(float...) in an exact-int region breaks the "
                        "bit-exactness contract"
                    )
            elif terminal_name(func) in _FLOAT_TYPE_NAMES:
                flag(
                    f"float cast '{terminal_name(func)}(...)' in an exact-int region "
                    "breaks the bit-exactness contract"
                )
        return hits
