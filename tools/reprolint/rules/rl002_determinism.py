"""RL002 — seeding discipline and wall-clock hygiene.

Three determinism contracts, each one a bug class this repo has already
paid for:

* **No unseeded or global RNG.**  ``np.random.default_rng()`` with no
  argument, the legacy ``np.random.*`` module-level generators, and the
  stdlib ``random`` module all produce process-dependent streams that
  break bit-identical replay.
* **No raw seed arithmetic.**  ``seed + i`` yields correlated streams
  for neighbouring indices (the ``[seed]*N`` replica bias fixed in
  PR 5).  Seeds must route through ``numpy.random.SeedSequence`` or the
  ``derive_*`` helpers; arithmetic is fine *inside* those calls (salting
  the entropy pool is exactly what they are for).  The deliberate
  frozen-corpus enumerations (`mix_seeds=False` legacy opt-outs,
  instance-identity seeds) carry inline waivers.
* **No wall-clock reads in step-deterministic layers.**  ``time.time``
  / ``monotonic`` / ``perf_counter`` values leaking into solve state
  make runs unreplayable.  Timing/metrics modules are allowlisted in
  ``[tool.reprolint.rl002] clock-allow``; the serve tier's injectable
  clock seam carries an inline waiver.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from ..config import ReprolintConfig
from ..engine import SourceFile, Violation, dotted_name, in_scope, terminal_name
from . import register

#: Legacy module-level generators on ``numpy.random``.
_NP_GLOBAL_RNG = {
    "seed",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "bytes",
    "shuffle",
    "permutation",
    "normal",
    "standard_normal",
    "uniform",
    "exponential",
    "poisson",
    "binomial",
    "beta",
    "gamma",
    "laplace",
    "lognormal",
    "multinomial",
    "geometric",
}

#: Mixing entry points inside which seed arithmetic is sanctioned.
_MIXER_PREFIX = "derive_"
_MIXER_NAMES = {"SeedSequence"}

_SEED_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.BitXor)


def _is_seedish(node: ast.AST) -> Optional[str]:
    name = terminal_name(node)
    if name is None:
        return None
    lowered = name.lower()
    if "seed" in lowered and not lowered.endswith("seeds"):
        return name
    return None


@register
class DeterminismRule:
    rule_id = "RL002"
    name = "determinism"
    description = (
        "seeds route through SeedSequence/derive_*; no unseeded/global RNG; "
        "no wall-clock reads in step-deterministic layers"
    )

    def check(self, source: SourceFile, config: ReprolintConfig) -> List[Violation]:
        if source.tree is None:
            return []
        cfg = config.rl002
        violations: List[Violation] = []
        if in_scope(source.rel, cfg.rng_scope):
            violations.extend(self._check_rng(source))
            violations.extend(self._check_seed_arithmetic(source))
        if in_scope(source.rel, cfg.clock_scope) and source.rel not in cfg.clock_allow:
            violations.extend(self._check_clocks(source, cfg.clock_attrs))
        return violations

    # ------------------------------------------------------------------ #
    def _check_rng(self, source: SourceFile) -> List[Violation]:
        violations: List[Violation] = []
        stdlib_random_names: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        stdlib_random_names.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.module == "random" and node.level == 0:
                violations.append(
                    Violation(
                        self.rule_id,
                        source.rel,
                        node.lineno,
                        node.col_offset,
                        "stdlib 'random' has process-global state — use a seeded "
                        "numpy Generator (np.random.default_rng(seed))",
                    )
                )
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            tail = dotted.split(".")
            if tail[-1] == "default_rng" and not node.args and not node.keywords:
                violations.append(
                    Violation(
                        self.rule_id,
                        source.rel,
                        node.lineno,
                        node.col_offset,
                        "unseeded default_rng() — every stream must derive from an "
                        "explicit seed (SeedSequence / derive_task_seed)",
                    )
                )
            elif (
                len(tail) >= 2
                and tail[-2] == "random"
                and tail[0] in ("np", "numpy")
                and tail[-1] in _NP_GLOBAL_RNG
            ):
                violations.append(
                    Violation(
                        self.rule_id,
                        source.rel,
                        node.lineno,
                        node.col_offset,
                        f"module-level numpy RNG 'np.random.{tail[-1]}' shares "
                        "process-global state — use a seeded Generator instance",
                    )
                )
            elif (
                len(tail) == 2
                and tail[0] in stdlib_random_names
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
            ):
                violations.append(
                    Violation(
                        self.rule_id,
                        source.rel,
                        node.lineno,
                        node.col_offset,
                        f"stdlib '{dotted}' has process-global state — use a seeded "
                        "numpy Generator instead",
                    )
                )
        return violations

    # ------------------------------------------------------------------ #
    def _check_seed_arithmetic(self, source: SourceFile) -> List[Violation]:
        sanctioned: Set[int] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                name = terminal_name(node.func)
                if name and (name in _MIXER_NAMES or name.startswith(_MIXER_PREFIX)):
                    for child in ast.walk(node):
                        sanctioned.add(id(child))
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.BinOp) or not isinstance(node.op, _SEED_BINOPS):
                continue
            if id(node) in sanctioned:
                continue
            name = _is_seedish(node.left) or _is_seedish(node.right)
            if name is None:
                continue
            violations.append(
                Violation(
                    self.rule_id,
                    source.rel,
                    node.lineno,
                    node.col_offset,
                    f"raw seed arithmetic on '{name}' — neighbouring values produce "
                    "correlated streams; route through SeedSequence / derive_task_seed "
                    "(arithmetic inside those calls is fine)",
                )
            )
        return violations

    # ------------------------------------------------------------------ #
    def _check_clocks(self, source: SourceFile, clock_attrs) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if not (isinstance(node.value, ast.Name) and node.value.id == "time"):
                continue
            if node.attr not in clock_attrs:
                continue
            violations.append(
                Violation(
                    self.rule_id,
                    source.rel,
                    node.lineno,
                    node.col_offset,
                    f"wall-clock read 'time.{node.attr}' in a step-deterministic "
                    "layer — inject a clock (see SolveService(clock=...)) or add "
                    "the module to [tool.reprolint.rl002] clock-allow",
                )
            )
        return violations
