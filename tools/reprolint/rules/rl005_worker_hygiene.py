"""RL005 — sweep-fabric task functions stay picklable and side-effect free.

The work-stealing fabric re-executes tasks on lease expiry, worker
death and resumed sweeps, and dedupes them through the content-addressed
``RunResultCache`` — both of which assume a task is a *pure, picklable
function of its parameters and seed*:

* A ``lambda`` (or a function nested inside another function) handed to
  ``SweepSpec`` cannot cross the process boundary; today that silently
  degrades to warned serial execution, and a refactor away from the
  fallback turns it into a crash.  Task functions must be module-level
  ``def``s.
* A task function that mutates module globals (``global`` statements,
  or assigning into a module-level container) produces results that
  depend on which worker ran which chunk in which order — exactly the
  nondeterminism the fabric's bit-identical-resume contract forbids.

Detection is intentionally conservative: lambdas and locally-defined
functions passed as ``fn`` are flagged wherever they appear; the global
-mutation check runs on module-level functions that the same module
passes to ``SweepSpec`` (or the deprecated ``run``/``map_seeds``).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..config import ReprolintConfig
from ..engine import SourceFile, Violation, terminal_name
from . import register


@register
class WorkerHygieneRule:
    rule_id = "RL005"
    name = "worker-hygiene"
    description = "sweep task functions must be module-level, picklable and global-free"

    def check(self, source: SourceFile, config: ReprolintConfig) -> List[Violation]:
        if source.tree is None:
            return []
        cfg = config.rl005
        violations: List[Violation] = []
        module_defs: Dict[str, ast.stmt] = {}
        nested_defs: Set[str] = set()
        module_globals: Set[str] = set()
        for child in ast.iter_child_nodes(source.tree):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module_defs[child.name] = child
                for inner in ast.walk(child):
                    if inner is not child and isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        nested_defs.add(inner.name)
            elif isinstance(child, ast.Assign):
                for target in child.targets:
                    name = terminal_name(target)
                    if name:
                        module_globals.add(name)
            elif isinstance(child, ast.AnnAssign):
                name = terminal_name(child.target)
                if name:
                    module_globals.add(name)

        task_fn_names: Set[str] = set()
        for node in ast.walk(source.tree):
            fn = self._task_fn_argument(node, cfg)
            if fn is None:
                continue
            if isinstance(fn, ast.Lambda):
                violations.append(
                    Violation(
                        self.rule_id,
                        source.rel,
                        fn.lineno,
                        fn.col_offset,
                        "lambda as a sweep task function — not picklable across the "
                        "worker pool; define a module-level function",
                    )
                )
            elif isinstance(fn, ast.Name):
                if fn.id in module_defs:
                    task_fn_names.add(fn.id)
                elif fn.id in nested_defs:
                    violations.append(
                        Violation(
                            self.rule_id,
                            source.rel,
                            fn.lineno,
                            fn.col_offset,
                            f"'{fn.id}' is defined inside another function — closures "
                            "are not picklable across the worker pool; hoist it to "
                            "module level",
                        )
                    )

        for name in sorted(task_fn_names):
            violations.extend(
                self._check_task_fn(source, module_defs[name], module_globals)
            )
        return violations

    # ------------------------------------------------------------------ #
    @staticmethod
    def _task_fn_argument(node: ast.AST, cfg) -> Optional[ast.AST]:
        if not isinstance(node, ast.Call):
            return None
        name = terminal_name(node.func)
        if name in cfg.spec_names:
            for keyword in node.keywords:
                if keyword.arg == "fn":
                    return keyword.value
            if node.args:
                return node.args[0]
            return None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in cfg.executor_methods
            and node.args
            and isinstance(node.args[0], ast.Lambda)
        ):
            # The deprecated run()/map_seeds() surface: only the
            # unambiguous lambda case (``.run`` is a common method name).
            return node.args[0]
        return None

    # ------------------------------------------------------------------ #
    def _check_task_fn(
        self, source: SourceFile, fn: ast.stmt, module_globals: Set[str]
    ) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                violations.append(
                    Violation(
                        self.rule_id,
                        source.rel,
                        node.lineno,
                        node.col_offset,
                        f"sweep task function '{fn.name}' declares "
                        f"global {', '.join(node.names)} — task results must be a "
                        "pure function of (params, seed); workers cannot share "
                        "module state",
                    )
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    # A bare-name assignment just binds a local (shadowing);
                    # only container/attribute stores reach module state.
                    if not isinstance(target, (ast.Subscript, ast.Attribute)):
                        continue
                    root = target
                    while isinstance(root, (ast.Subscript, ast.Attribute)):
                        root = root.value
                    if isinstance(root, ast.Name) and root.id in module_globals:
                        violations.append(
                            Violation(
                                self.rule_id,
                                source.rel,
                                node.lineno,
                                node.col_offset,
                                f"sweep task function '{fn.name}' mutates module-level "
                                f"'{root.id}' — worker-local writes are lost and "
                                "order-dependent; return the data instead",
                            )
                        )
        return violations
