"""RL004 — crash-safe persistence and gated process exits.

The checkpoint/cache/journal tier survives ``kill -9`` because every
durable artefact is either (a) written to a temp file, fsynced and
renamed into place (snapshots, cache entries) or (b) append-only with
per-record checksums and fsync (the admission journal).  A bare
``open(path, "w")`` in one of those modules silently reintroduces the
torn-write window the whole of PR 9 exists to close, so:

* In the configured durable modules, builtin ``open``/``io.open`` with
  a ``"w"``/``"x"`` mode and ``Path.write_text``/``write_bytes`` are
  flagged — route the write through ``write_checkpoint`` or the
  fd-based atomic idiom (``os.open`` temp + ``os.fdopen`` + fsync +
  rename), which this rule deliberately does not match.  Append and
  in-place-repair modes (``"ab"``, ``"r+b"``) stay legal: the journal's
  durability story is fsync-per-record, not rename.
* ``os._exit`` anywhere in the exit scope is legal only as the
  deterministic fault-injection seam, i.e. with a
  ``*.CRASH_EXIT_CODE`` argument (``FaultPlan``); any other use
  bypasses ``finally`` blocks and the graceful-drain signal handlers.
"""

from __future__ import annotations

import ast
from typing import List

from ..config import ReprolintConfig
from ..engine import SourceFile, Violation, dotted_name, in_scope
from . import register


def _mode_of(node: ast.Call) -> str:
    for keyword in node.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            value = keyword.value.value
            return value if isinstance(value, str) else ""
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
        value = node.args[1].value
        return value if isinstance(value, str) else ""
    return ""


@register
class CrashSafetyRule:
    rule_id = "RL004"
    name = "crash-safety"
    description = (
        "durable-module writes go through the atomic temp+fsync+rename helper; "
        "os._exit only under FaultPlan"
    )

    def check(self, source: SourceFile, config: ReprolintConfig) -> List[Violation]:
        if source.tree is None:
            return []
        cfg = config.rl004
        violations: List[Violation] = []
        if source.rel in cfg.durable_modules:
            violations.extend(self._check_writes(source))
        if in_scope(source.rel, cfg.exit_scope):
            violations.extend(self._check_exits(source, cfg.fault_exit_attr))
        return violations

    # ------------------------------------------------------------------ #
    def _check_writes(self, source: SourceFile) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted in ("open", "io.open"):
                mode = _mode_of(node)
                if any(flag in mode for flag in ("w", "x")):
                    violations.append(
                        Violation(
                            self.rule_id,
                            source.rel,
                            node.lineno,
                            node.col_offset,
                            f"bare open(..., {mode!r}) in a durable module — a crash "
                            "mid-write leaves a torn file; use the atomic "
                            "temp+fsync+rename helper (write_checkpoint / the "
                            "fd-based idiom in RunResultCache.put)",
                        )
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("write_text", "write_bytes")
            ):
                violations.append(
                    Violation(
                        self.rule_id,
                        source.rel,
                        node.lineno,
                        node.col_offset,
                        f"Path.{node.func.attr}(...) in a durable module is not "
                        "atomic and never fsyncs — use the temp+fsync+rename helper",
                    )
                )
        return violations

    # ------------------------------------------------------------------ #
    def _check_exits(self, source: SourceFile, fault_exit_attr: str) -> List[Violation]:
        violations: List[Violation] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) or dotted_name(node.func) != "os._exit":
                continue
            gated = bool(
                node.args
                and isinstance(node.args[0], ast.Attribute)
                and node.args[0].attr == fault_exit_attr
            )
            if not gated:
                violations.append(
                    Violation(
                        self.rule_id,
                        source.rel,
                        node.lineno,
                        node.col_offset,
                        "os._exit outside the FaultPlan crash seam — it skips "
                        "finally blocks, flushes and the graceful-drain handlers; "
                        "raise SystemExit, or exit with FaultPlan.CRASH_EXIT_CODE "
                        "if this is deliberate fault injection",
                    )
                )
        return violations
