"""Rule registry: each rule module registers one pluggable invariant check.

A rule is a class with ``rule_id``, ``name``, ``description`` and a
``check(source, config) -> list[Violation]`` method; registering is one
decorator::

    from . import register

    @register
    class MyRule:
        rule_id = "RL042"
        ...

Rules must be pure functions of ``(source, config)`` — the engine owns
file discovery, suppression handling and reporting.
"""

from __future__ import annotations

from typing import Dict, List, Protocol

from ..config import ReprolintConfig
from ..engine import SourceFile, Violation


class Rule(Protocol):
    rule_id: str
    name: str
    description: str

    def check(self, source: SourceFile, config: ReprolintConfig) -> List[Violation]: ...


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding a rule (instantiated once) to the registry."""
    instance = cls()
    rule_id = instance.rule_id
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate reprolint rule id {rule_id!r}")
    _REGISTRY[rule_id] = instance
    return cls


def get_rules() -> List[Rule]:
    """All registered rules, ordered by rule id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


# Importing the rule modules populates the registry.
from . import rl001_layering  # noqa: E402,F401
from . import rl002_determinism  # noqa: E402,F401
from . import rl003_exact_int  # noqa: E402,F401
from . import rl004_crash_safety  # noqa: E402,F401
from . import rl005_worker_hygiene  # noqa: E402,F401
